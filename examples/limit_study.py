"""A miniature of the paper's whole limit study.

Run with::

    python examples/limit_study.py [budget]

Runs the full 14-kernel suite through the figures-3/6/7 pipeline at a
configurable instruction budget and prints the paper-style tables.
This is the programmatic equivalent of what the benchmark harness
does — use it when you want the numbers without pytest.
"""

import sys
import time

from repro.exp import ExperimentConfig, collect_profiles, figure3, figure6, figure7
from repro.exp.report import render


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    config = ExperimentConfig(max_instructions=budget)
    start = time.perf_counter()
    profiles = collect_profiles(config)
    elapsed = time.perf_counter() - start
    total = sum(p.dynamic_count for p in profiles)
    print(f"analysed {total} dynamic instructions over "
          f"{len(profiles)} kernels in {elapsed:.1f}s\n")
    for figure in (figure3(profiles), figure6(profiles), figure7(profiles)):
        print(render(figure))
        print()


if __name__ == "__main__":
    main()
