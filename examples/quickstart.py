"""Quickstart: assemble a program, trace it, measure reuse.

Run with::

    python examples/quickstart.py

This walks the library's core loop end to end: write a tiny assembly
program, execute it on the tracing VM, measure instruction-level
reusability, build the maximal reusable traces, and compare the
infinite-window IPC with and without trace-level reuse.
"""

from repro import (
    ConstantReuseLatency,
    DataflowModel,
    Machine,
    assemble,
    ilr_reuse_plan,
    instruction_reusability,
    maximal_reusable_spans,
    tlr_reuse_plan,
)

# A little checksum kernel: three passes over a static table.  After
# the first pass every value the program computes repeats, which is
# exactly the redundancy data-value reuse exploits.
SOURCE = """
    .data
table:  .word 12 7 3 9 4 15 2 8
sums:   .space 8

    .text
main:
    li   s0, 60             # passes
pass:
    la   t0, table
    la   t1, sums
    li   t2, 0              # index
    li   t3, 8
    li   s1, 0              # checksum
loop:
    add  t4, t0, t2
    lw   t5, 0(t4)          # value
    mul  t6, t5, t5         # square it (8-cycle multiply)
    add  s1, s1, t6
    add  t4, t1, t2
    sw   t6, 0(t4)
    addi t2, t2, 1
    blt  t2, t3, loop
    subi s0, s0, 1
    bgtz s0, pass
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")
    machine = Machine(program)
    trace = machine.run()
    print(f"executed {len(trace)} dynamic instructions "
          f"(halted={trace.halted})")

    # 1. how much of the stream is reusable at instruction level?
    reuse = instruction_reusability(trace)
    print(f"instruction-level reusability: {reuse.percent_reusable:.1f}% "
          f"({reuse.reusable_count}/{reuse.total_count})")

    # 2. group reusable instructions into maximal traces (Theorem 1)
    spans = maximal_reusable_spans(trace, reuse.flags)
    if spans:
        avg = sum(s.length for s in spans) / len(spans)
        print(f"maximal reusable traces: {len(spans)}, "
              f"average size {avg:.1f} instructions")

    # 3. timing: base vs instruction-level vs trace-level reuse, on a
    #    64-entry-window machine (where the paper's fetch/window
    #    benefits of trace reuse show up most clearly)
    model = DataflowModel(window_size=64)
    base = model.analyze(trace)
    ilr = model.analyze(trace, ilr_reuse_plan(trace, reuse.flags, 1.0))
    tlr = model.analyze(trace, tlr_reuse_plan(trace, spans,
                                              ConstantReuseLatency(1.0)))
    print(f"base IPC (64-entry window) {base.ipc:6.2f}")
    print(f"instruction-level reuse    {ilr.ipc:6.2f}  "
          f"(speed-up {ilr.speedup_over(base):.2f})")
    print(f"trace-level reuse          {tlr.ipc:6.2f}  "
          f"(speed-up {tlr.speedup_over(base):.2f})")


if __name__ == "__main__":
    main()
