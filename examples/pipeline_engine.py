"""A realistic trace-reuse engine on a cycle-level core.

Run with::

    python examples/pipeline_engine.py [workload] [budget]

This composes the three layers the way the paper's figure 2 sketches:

1. execute the kernel on the tracing VM;
2. drive the finite Reuse Trace Memory engine over the stream
   (functional: which traces get collected and reused?);
3. replay the stream on the cycle-level superscalar model with and
   without those reuse decisions (timing: what do the fetch/window/
   latency savings buy on a bounded core?).
"""

import sys

from repro import (
    FiniteReuseSimulator,
    ILRHeuristic,
    PipelineConfig,
    PipelineModel,
    RTM_PRESETS,
)
from repro.util.tables import format_table
from repro.workloads.base import run_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "li"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    trace = run_workload(workload, max_instructions=budget)
    print(f"workload={workload}, {len(trace)} dynamic instructions")

    model = PipelineModel(PipelineConfig())
    base = model.simulate(trace)
    print(f"\nbaseline 4-wide core: {base.total_cycles} cycles, "
          f"IPC {base.ipc:.2f}")

    rows = []
    for rtm_name in ("512", "4K", "32K", "256K"):
        for reuse_test in ("compare", "invalidate"):
            sim = FiniteReuseSimulator(
                RTM_PRESETS[rtm_name],
                ILRHeuristic(expand=True),
                reuse_test=reuse_test,
            )
            reuse = sim.run(trace)
            timed = model.simulate(trace, reuse)
            rows.append(
                [
                    rtm_name,
                    reuse_test,
                    reuse.percent_reused,
                    reuse.avg_reused_trace_size,
                    timed.total_cycles,
                    timed.speedup_over(base),
                ]
            )
    print()
    print(format_table(
        ["rtm", "reuse_test", "reused_pct", "avg_trace", "cycles", "speedup"],
        rows,
        title="Finite-RTM engine on the cycle-level core (ILR EXP collector)",
    ))


if __name__ == "__main__":
    main()
