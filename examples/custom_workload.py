"""Analysing a custom workload: naive string search.

Run with::

    python examples/custom_workload.py

Shows how to bring your own kernel to the analysis pipeline and read
the paper's headline comparison off it: instruction-level reuse is
bounded by operand-arrival times, while trace-level reuse collapses
whole dependent regions — so the gap between the two grows with how
repetitive (and how serial) the code is.
"""

from repro import (
    ConstantReuseLatency,
    DataflowModel,
    Machine,
    ProportionalReuseLatency,
    assemble,
    ilr_reuse_plan,
    instruction_reusability,
    maximal_reusable_spans,
    tlr_reuse_plan,
)
from repro.core.stats import trace_io_stats

# Search every occurrence of a 4-character needle in a haystack, many
# times over (think of a grep inner loop over a hot buffer).
SOURCE = """
    .data
hay:    .word 3 1 4 1 5 9 2 6 5 3 5 8 9 7 9 3 1 4 1 5 2 6 5 3
needle: .word 3 1 4 1
nhits:  .word 0

    .text
main:
    li   s7, 50               # repetitions
again:
    li   t0, 0                # haystack index
    li   s5, 20               # last start position
outer:
    li   t1, 0                # needle index
inner:
    la   t2, hay
    add  t2, t2, t0
    add  t2, t2, t1
    lw   t3, 0(t2)
    la   t2, needle
    add  t2, t2, t1
    lw   t4, 0(t2)
    bne  t3, t4, nomatch
    addi t1, t1, 1
    li   t5, 4
    blt  t1, t5, inner
    la   t2, nhits            # full match
    lw   t6, 0(t2)
    addi t6, t6, 1
    sw   t6, 0(t2)
nomatch:
    addi t0, t0, 1
    ble  t0, s5, outer
    subi s7, s7, 1
    bgtz s7, again
    halt
"""


def main() -> None:
    trace = Machine(assemble(SOURCE, name="strsearch")).run(max_instructions=40_000)
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)
    stats = trace_io_stats(spans)

    print(f"dynamic instructions : {len(trace)}")
    print(f"reusability          : {reuse.percent_reusable:.1f}%")
    print(f"traces               : {stats.trace_count} "
          f"(avg {stats.avg_trace_size:.1f} instructions, "
          f"{stats.avg_inputs:.1f} live-ins, {stats.avg_outputs:.1f} live-outs)")

    for window in (None, 256):
        model = DataflowModel(window_size=window)
        base = model.analyze(trace)
        ilr = model.analyze(trace, ilr_reuse_plan(trace, reuse.flags, 1.0))
        tlr_const = model.analyze(
            trace, tlr_reuse_plan(trace, spans, ConstantReuseLatency(1.0))
        )
        tlr_prop = model.analyze(
            trace, tlr_reuse_plan(trace, spans, ProportionalReuseLatency(1 / 16))
        )
        label = "infinite window" if window is None else f"{window}-entry window"
        print(f"\n{label}: base IPC {base.ipc:.2f}")
        print(f"  instruction-level reuse  speed-up {ilr.speedup_over(base):.2f}")
        print(f"  trace-level reuse @1cyc  speed-up {tlr_const.speedup_over(base):.2f}")
        print(f"  trace-level reuse @K=1/16 speed-up {tlr_prop.speedup_over(base):.2f}")


if __name__ == "__main__":
    main()
