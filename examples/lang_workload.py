"""Authoring a workload in RL, the bundled mini-language.

Run with::

    python examples/lang_workload.py

Instead of hand-writing assembly, kernels can be written in RL (see
``repro.lang``): this example implements a histogram + prefix-sum
workload, compiles it, and pushes it through the same reuse analyses
as the built-in suite — including the finite Reuse Trace Memory.
"""

from repro import (
    ConstantReuseLatency,
    DataflowModel,
    FiniteReuseSimulator,
    ILRHeuristic,
    Machine,
    RTM_PRESETS,
    instruction_reusability,
    maximal_reusable_spans,
    tlr_reuse_plan,
)
from repro.lang import compile_source

SOURCE = """
# histogram + prefix sums over a pseudo-random buffer, many passes
var data[64]
var hist[16]
var prefix[16]

func lcg(x) {
    return (x * 1103 + 12345) % 9973
}

func fill() {
    var seed = 42
    var i = 0
    while (i < 64) {
        seed = lcg(seed)
        data[i] = seed % 16
        i = i + 1
    }
    return 0
}

func histogram() {
    var i = 0
    while (i < 16) {
        hist[i] = 0
        i = i + 1
    }
    i = 0
    while (i < 64) {
        hist[data[i]] = hist[data[i]] + 1
        i = i + 1
    }
    return 0
}

func prefix_sums() {
    var acc = 0
    var i = 0
    while (i < 16) {
        acc = acc + hist[i]
        prefix[i] = acc
        i = i + 1
    }
    return acc
}

func main() {
    fill()
    var pass = 0
    var check = 0
    while (pass < 40) {
        histogram()
        check = prefix_sums()
        pass = pass + 1
    }
    return check
}
"""


def main() -> None:
    program = compile_source(SOURCE, name="histogram")
    machine = Machine(program)
    trace = machine.run(max_instructions=60_000)
    print(f"compiled {program.static_instruction_count()} static instructions; "
          f"executed {len(trace)} (main returned {machine.regs[2]})")

    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)
    print(f"reusability {reuse.percent_reusable:.1f}%, "
          f"{len(spans)} maximal traces")

    model = DataflowModel(window_size=256)
    base = model.analyze(trace)
    tlr = model.analyze(
        trace, tlr_reuse_plan(trace, spans, ConstantReuseLatency(1.0))
    )
    print(f"base IPC {base.ipc:.2f}; trace-level reuse speed-up "
          f"{tlr.speedup_over(base):.2f} (oracle limit)")

    sim = FiniteReuseSimulator(RTM_PRESETS["4K"], ILRHeuristic(expand=True))
    result = sim.run(trace)
    print(f"finite 4K RTM: {result.percent_reused:.1f}% of instructions "
          f"reused, average trace {result.avg_reused_trace_size:.1f}")


if __name__ == "__main__":
    main()
