"""Exploring the finite Reuse Trace Memory design space.

Run with::

    python examples/rtm_design_space.py [workload] [budget]

For one workload, sweeps the paper's four RTM capacities against a
selection of trace-collection heuristics and prints the figure-9
metrics (percentage of reused instructions, average reused trace
size) plus RTM occupancy — the numbers an architect would look at
when sizing the structure.
"""

import sys

from repro import FiniteReuseSimulator, FixedLengthHeuristic, ILRHeuristic, RTM_PRESETS
from repro.util.tables import format_table
from repro.workloads.base import run_workload

HEURISTICS = [
    ILRHeuristic(expand=False),
    ILRHeuristic(expand=True),
    FixedLengthHeuristic(2),
    FixedLengthHeuristic(4),
    FixedLengthHeuristic(8),
]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "compress"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    trace = run_workload(workload, max_instructions=budget)
    print(f"workload={workload}, {len(trace)} dynamic instructions\n")

    rows = []
    for heuristic in HEURISTICS:
        for rtm_name in ("512", "4K", "32K", "256K"):
            sim = FiniteReuseSimulator(RTM_PRESETS[rtm_name], heuristic)
            result = sim.run(trace)
            rows.append(
                [
                    heuristic.name,
                    rtm_name,
                    result.percent_reused,
                    result.avg_reused_trace_size,
                    result.reuse_events,
                    result.rtm_occupancy,
                ]
            )
    print(
        format_table(
            ["heuristic", "rtm", "reused_pct", "avg_trace", "events", "occupancy"],
            rows,
            title=f"Finite-RTM design space for {workload}",
        )
    )


if __name__ == "__main__":
    main()
