"""Opcode set, operation classes and the instruction latency table.

Latencies follow the Alpha 21164 hardware reference manual, which is
the latency model the paper borrows (section 4): single-cycle integer
ALU, 8-cycle integer multiply, 2-cycle D-cache load hit, 4-cycle
floating add/multiply pipeline, long non-pipelined divides and square
roots.
"""

from __future__ import annotations

from enum import Enum, IntEnum, auto


class OpClass(Enum):
    """Coarse functional classes used by analyses and statistics."""

    INT_ALU = auto()
    INT_MUL = auto()
    INT_DIV = auto()
    LOAD = auto()
    STORE = auto()
    BRANCH = auto()
    JUMP = auto()
    FP_ADD = auto()
    FP_MUL = auto()
    FP_DIV = auto()
    FP_SQRT = auto()
    FP_CVT = auto()
    CONTROL = auto()  # HALT / NOP


class Opcode(IntEnum):
    """Every operation the VM executes.

    Register-register integer ops take ``rd, rs1, rs2``; immediate
    forms take ``rd, rs1, imm``.  Memory ops use ``reg, imm(base)``
    addressing.  Branches compare two registers against a label.
    """

    # --- integer ALU -------------------------------------------------
    ADD = auto()
    SUB = auto()
    AND = auto()
    OR = auto()
    XOR = auto()
    SLL = auto()
    SRL = auto()
    SRA = auto()
    SLT = auto()
    SEQ = auto()
    ADDI = auto()
    ANDI = auto()
    ORI = auto()
    XORI = auto()
    SLLI = auto()
    SRLI = auto()
    SRAI = auto()
    SLTI = auto()
    LI = auto()
    MOV = auto()
    # --- integer multiply / divide ----------------------------------
    MUL = auto()
    MULI = auto()
    DIV = auto()
    REM = auto()
    # --- memory ------------------------------------------------------
    LW = auto()
    SW = auto()
    FLW = auto()
    FSW = auto()
    # --- control flow -------------------------------------------------
    BEQ = auto()
    BNE = auto()
    BLT = auto()
    BGE = auto()
    BLE = auto()
    BGT = auto()
    J = auto()
    JAL = auto()
    JR = auto()
    # --- floating point ----------------------------------------------
    FADD = auto()
    FSUB = auto()
    FMUL = auto()
    FDIV = auto()
    FSQRT = auto()
    FNEG = auto()
    FABS = auto()
    FMOV = auto()
    FLI = auto()
    CVTIF = auto()  # int reg -> fp reg
    CVTFI = auto()  # fp reg -> int reg (truncate)
    FEQ = auto()  # fp compare, result into int reg
    FLT = auto()
    FLE = auto()
    # --- misc ----------------------------------------------------------
    NOP = auto()
    HALT = auto()


_OP_CLASS: dict[Opcode, OpClass] = {}
for _op in (
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.SLT, Opcode.SEQ,
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
    Opcode.SRLI, Opcode.SRAI, Opcode.SLTI, Opcode.LI, Opcode.MOV,
):
    _OP_CLASS[_op] = OpClass.INT_ALU
_OP_CLASS[Opcode.MUL] = OpClass.INT_MUL
_OP_CLASS[Opcode.MULI] = OpClass.INT_MUL
_OP_CLASS[Opcode.DIV] = OpClass.INT_DIV
_OP_CLASS[Opcode.REM] = OpClass.INT_DIV
_OP_CLASS[Opcode.LW] = OpClass.LOAD
_OP_CLASS[Opcode.FLW] = OpClass.LOAD
_OP_CLASS[Opcode.SW] = OpClass.STORE
_OP_CLASS[Opcode.FSW] = OpClass.STORE
for _op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT):
    _OP_CLASS[_op] = OpClass.BRANCH
for _op in (Opcode.J, Opcode.JAL, Opcode.JR):
    _OP_CLASS[_op] = OpClass.JUMP
for _op in (Opcode.FADD, Opcode.FSUB, Opcode.FNEG, Opcode.FABS, Opcode.FMOV,
            Opcode.FLI, Opcode.FEQ, Opcode.FLT, Opcode.FLE):
    _OP_CLASS[_op] = OpClass.FP_ADD
_OP_CLASS[Opcode.FMUL] = OpClass.FP_MUL
_OP_CLASS[Opcode.FDIV] = OpClass.FP_DIV
_OP_CLASS[Opcode.FSQRT] = OpClass.FP_SQRT
_OP_CLASS[Opcode.CVTIF] = OpClass.FP_CVT
_OP_CLASS[Opcode.CVTFI] = OpClass.FP_CVT
_OP_CLASS[Opcode.NOP] = OpClass.CONTROL
_OP_CLASS[Opcode.HALT] = OpClass.CONTROL


#: Cycles from issue to result availability, per operation class,
#: following the Alpha 21164 hardware reference manual.
CLASS_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 8,
    OpClass.INT_DIV: 16,
    OpClass.LOAD: 2,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.FP_ADD: 4,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 18,
    OpClass.FP_SQRT: 33,
    OpClass.FP_CVT: 4,
    OpClass.CONTROL: 1,
}

#: Per-opcode latency, flattened for fast lookup in the VM hot loop.
LATENCY: dict[Opcode, int] = {op: CLASS_LATENCY[_OP_CLASS[op]] for op in Opcode}


def op_class(op: Opcode) -> OpClass:
    """The functional class of an opcode."""
    return _OP_CLASS[op]


def latency_of(op: Opcode) -> int:
    """Result latency in cycles of an opcode."""
    return LATENCY[op]
