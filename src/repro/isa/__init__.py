"""Instruction-set definition for the reproduction substrate.

The paper analysed Alpha 21164 binaries; this package defines a
RISC-like load/store ISA with the same structural properties (32
integer + 32 floating-point registers, register+offset addressing,
compare-into-register branches) and a latency table modelled on the
21164 hardware reference manual.
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    LATENCY,
    OpClass,
    Opcode,
    latency_of,
    op_class,
)
from repro.isa.registers import (
    FP_REG_BASE,
    MEM_LOC_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_ALIASES,
    loc_freg,
    loc_is_freg,
    loc_is_int_reg,
    loc_is_mem,
    loc_is_reg,
    loc_mem,
    loc_mem_addr,
    loc_name,
    loc_reg,
    parse_register,
)

__all__ = [
    "Instruction",
    "Opcode",
    "OpClass",
    "LATENCY",
    "latency_of",
    "op_class",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "FP_REG_BASE",
    "MEM_LOC_BASE",
    "REG_ALIASES",
    "loc_reg",
    "loc_freg",
    "loc_mem",
    "loc_mem_addr",
    "loc_name",
    "loc_is_reg",
    "loc_is_int_reg",
    "loc_is_freg",
    "loc_is_mem",
    "parse_register",
]
