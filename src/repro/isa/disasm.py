"""Disassembler: decoded instructions back to assembly text.

Primarily a debugging and reporting aid — trace dumps, RTM inspection
and error messages all want readable instructions — but also the
round-trip oracle for the assembler's property tests: for any program,
``assemble(disassemble(program))`` must reproduce the instruction
stream exactly.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.vm.program import Program

_R3 = {
    Opcode.ADD: "add", Opcode.SUB: "sub", Opcode.AND: "and", Opcode.OR: "or",
    Opcode.XOR: "xor", Opcode.SLL: "sll", Opcode.SRL: "srl", Opcode.SRA: "sra",
    Opcode.SLT: "slt", Opcode.SEQ: "seq", Opcode.MUL: "mul", Opcode.DIV: "div",
    Opcode.REM: "rem",
}
_R2I = {
    Opcode.ADDI: "addi", Opcode.ANDI: "andi", Opcode.ORI: "ori",
    Opcode.XORI: "xori", Opcode.SLLI: "slli", Opcode.SRLI: "srli",
    Opcode.SRAI: "srai", Opcode.SLTI: "slti", Opcode.MULI: "muli",
}
_BR = {
    Opcode.BEQ: "beq", Opcode.BNE: "bne", Opcode.BLT: "blt",
    Opcode.BGE: "bge", Opcode.BLE: "ble", Opcode.BGT: "bgt",
}
_F3 = {Opcode.FADD: "fadd", Opcode.FSUB: "fsub", Opcode.FMUL: "fmul",
       Opcode.FDIV: "fdiv"}
_F2 = {Opcode.FSQRT: "fsqrt", Opcode.FNEG: "fneg", Opcode.FABS: "fabs",
       Opcode.FMOV: "fmov"}
_FCMP = {Opcode.FEQ: "feq", Opcode.FLT: "flt", Opcode.FLE: "fle"}


def disassemble_instruction(inst: Instruction) -> str:
    """One instruction as assembly text (branch targets as absolute PCs)."""
    op = inst.op
    if op in _R3:
        return f"{_R3[op]} r{inst.rd}, r{inst.rs1}, r{inst.rs2}"
    if op in _R2I:
        return f"{_R2I[op]} r{inst.rd}, r{inst.rs1}, {inst.imm}"
    if op is Opcode.LI:
        return f"li r{inst.rd}, {inst.imm}"
    if op is Opcode.MOV:
        return f"mov r{inst.rd}, r{inst.rs1}"
    if op is Opcode.LW:
        return f"lw r{inst.rd}, {inst.imm}(r{inst.rs1})"
    if op is Opcode.FLW:
        return f"flw f{inst.rd}, {inst.imm}(r{inst.rs1})"
    if op is Opcode.SW:
        return f"sw r{inst.rs2}, {inst.imm}(r{inst.rs1})"
    if op is Opcode.FSW:
        return f"fsw f{inst.rs2}, {inst.imm}(r{inst.rs1})"
    if op in _BR:
        return f"{_BR[op]} r{inst.rs1}, r{inst.rs2}, {inst.imm}"
    if op is Opcode.J:
        return f"j {inst.imm}"
    if op is Opcode.JAL:
        return f"jal r{inst.rd}, {inst.imm}"
    if op is Opcode.JR:
        return f"jr r{inst.rs1}"
    if op in _F3:
        return f"{_F3[op]} f{inst.rd}, f{inst.rs1}, f{inst.rs2}"
    if op in _F2:
        return f"{_F2[op]} f{inst.rd}, f{inst.rs1}"
    if op is Opcode.FLI:
        return f"fli f{inst.rd}, {float(inst.imm)!r}"
    if op is Opcode.CVTIF:
        return f"cvtif f{inst.rd}, r{inst.rs1}"
    if op is Opcode.CVTFI:
        return f"cvtfi r{inst.rd}, f{inst.rs1}"
    if op in _FCMP:
        return f"{_FCMP[op]} r{inst.rd}, f{inst.rs1}, f{inst.rs2}"
    if op is Opcode.NOP:
        return "nop"
    if op is Opcode.HALT:
        return "halt"
    raise ValueError(f"cannot disassemble {op!r}")  # pragma: no cover


def disassemble(
    program: Program | Iterable[Instruction], *, with_pcs: bool = False
) -> str:
    """A whole program as assembly text.

    Branch/jump targets are emitted as absolute instruction indices,
    which the assembler accepts, so the output re-assembles to the
    same instruction stream (data segments are not reconstructed —
    disassembly covers the text segment).
    """
    instructions = (
        program.instructions if isinstance(program, Program) else list(program)
    )
    lines = []
    for pc, inst in enumerate(instructions):
        text = disassemble_instruction(inst)
        lines.append(f"{pc:6d}: {text}" if with_pcs else f"    {text}")
    return "\n".join(lines)
