"""Register conventions and the flat *location* encoding.

Analyses track data dependences through registers **and** memory
words uniformly (the paper's dataflow model keeps a completion-time
entry per logical register and per memory location).  To keep those
tables plain ``dict[int, ...]`` we encode every storage location as a
single non-negative integer:

====================  =======================
location              encoded id
====================  =======================
integer register i    ``i``              (0..31)
fp register i         ``32 + i``         (32..63)
memory word at a      ``64 + a``         (64..)
====================  =======================
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
FP_REG_BASE = NUM_INT_REGS
MEM_LOC_BASE = NUM_INT_REGS + NUM_FP_REGS

#: MIPS-flavoured aliases accepted by the assembler.  ``r0`` is a
#: hardwired zero register; ``sp`` starts at the top of the address
#: space; ``ra`` receives return addresses from ``jal``.
REG_ALIASES: dict[str, int] = {
    "zero": 0,
    "at": 1,
    "v0": 2,
    "v1": 3,
    "a0": 4,
    "a1": 5,
    "a2": 6,
    "a3": 7,
    "t0": 8,
    "t1": 9,
    "t2": 10,
    "t3": 11,
    "t4": 12,
    "t5": 13,
    "t6": 14,
    "t7": 15,
    "s0": 16,
    "s1": 17,
    "s2": 18,
    "s3": 19,
    "s4": 20,
    "s5": 21,
    "s6": 22,
    "s7": 23,
    "t8": 24,
    "t9": 25,
    "k0": 26,
    "k1": 27,
    "gp": 28,
    "sp": 29,
    "fp": 30,
    "ra": 31,
}


def loc_reg(i: int) -> int:
    """Location id of integer register ``i``."""
    return i


def loc_freg(i: int) -> int:
    """Location id of floating-point register ``i``."""
    return FP_REG_BASE + i


def loc_mem(addr: int) -> int:
    """Location id of the memory word at ``addr`` (word-addressed)."""
    return MEM_LOC_BASE + addr


def loc_is_mem(loc: int) -> bool:
    """True if the location id denotes a memory word."""
    return loc >= MEM_LOC_BASE


def loc_is_reg(loc: int) -> bool:
    """True if the location id denotes any register."""
    return loc < MEM_LOC_BASE


def loc_is_int_reg(loc: int) -> bool:
    """True if the location id denotes an integer register."""
    return loc < FP_REG_BASE


def loc_is_freg(loc: int) -> bool:
    """True if the location id denotes a floating-point register."""
    return FP_REG_BASE <= loc < MEM_LOC_BASE


def loc_mem_addr(loc: int) -> int:
    """Recover the word address from a memory location id."""
    if not loc_is_mem(loc):
        raise ValueError(f"location {loc} is not a memory location")
    return loc - MEM_LOC_BASE


def loc_name(loc: int) -> str:
    """Human-readable name of a location id (for diagnostics)."""
    if loc < 0:
        raise ValueError(f"invalid location id {loc}")
    if loc < FP_REG_BASE:
        return f"r{loc}"
    if loc < MEM_LOC_BASE:
        return f"f{loc - FP_REG_BASE}"
    return f"mem[{loc - MEM_LOC_BASE:#x}]"


def parse_register(token: str) -> tuple[bool, int]:
    """Parse a register token into ``(is_fp, index)``.

    Accepts ``rN``/``fN`` numeric names, ``$``-prefixed variants and
    the MIPS-style aliases in :data:`REG_ALIASES`.
    """
    tok = token.strip().lower().lstrip("$")
    if tok in REG_ALIASES:
        return False, REG_ALIASES[tok]
    if len(tok) >= 2 and tok[0] in ("r", "f") and tok[1:].isdigit():
        idx = int(tok[1:])
        limit = NUM_FP_REGS if tok[0] == "f" else NUM_INT_REGS
        if idx >= limit:
            raise ValueError(f"register index out of range: {token!r}")
        return tok[0] == "f", idx
    raise ValueError(f"not a register: {token!r}")
