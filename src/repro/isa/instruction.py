"""The static instruction record produced by the assembler.

Instructions are fully decoded at assembly time so the VM's hot loop
never parses anything: the operand fields below are plain integers
(or a float immediate for ``FLI``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, latency_of


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded static instruction.

    Field usage depends on the opcode:

    - ALU reg-reg: ``rd, rs1, rs2``
    - ALU immediate: ``rd, rs1, imm``
    - ``LI rd, imm`` / ``FLI fd, imm``
    - loads: ``rd, imm(rs1)``; stores: ``rs2, imm(rs1)``
    - branches: ``rs1, rs2, imm`` (imm = resolved target pc)
    - ``J imm`` / ``JAL rd, imm`` / ``JR rs1``

    Unused fields are 0 and never read by the VM for that opcode.
    ``line`` is the 1-based source line for diagnostics.
    """

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int | float = 0
    #: source line (diagnostics only; excluded from equality so that
    #: re-assembled programs compare equal to their originals)
    line: int = field(default=0, compare=False)
    #: result latency in cycles, resolved once at decode time so the
    #: VM's hot loop never consults the ``LATENCY`` table (derived from
    #: ``op``, hence excluded from equality)
    latency: int = field(default=-1, compare=False)

    def __post_init__(self):
        if self.latency < 0:
            object.__setattr__(self, "latency", latency_of(self.op))

    def __str__(self) -> str:
        return (
            f"{self.op.name.lower()} rd={self.rd} rs1={self.rs1} "
            f"rs2={self.rs2} imm={self.imm}"
        )
