"""Trace-level reuse timing plans (sections 4.4/4.5).

For a reusable trace every output-producing instruction completes at
``max(completion of the producers of the trace's live-ins) +
reuse_latency``; the per-instruction oracle still caps that by normal
execution.  Two reuse-latency models are provided:

- :class:`ConstantReuseLatency` — a fixed cost per reuse operation
  (appropriate when the reuse test is a valid-bit check);
- :class:`ProportionalReuseLatency` — ``K * (inputs + outputs)``,
  modelling an engine that must read and compare every input and
  write every output, where ``1/K`` is the engine's read/write
  bandwidth in values per cycle (the paper highlights K = 1/16 as
  achievable: the Alpha 21264 already sustains 14 reads+writes per
  cycle).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.traces import TraceSpan
from repro.dataflow.model import ReusePoint
from repro.vm.trace import AnyTrace, DynInst, stream_of


@dataclass(frozen=True, slots=True)
class ConstantReuseLatency:
    """A constant number of cycles per trace reuse operation."""

    cycles: float = 1.0

    def latency_for(self, span: TraceSpan) -> float:
        """Reuse latency of a span (independent of its I/O size)."""
        return self.cycles


@dataclass(frozen=True, slots=True)
class ProportionalReuseLatency:
    """``K * (live-ins + live-outs)`` cycles per trace reuse.

    ``k`` is the inverse of the reuse engine's read/write bandwidth:
    ``k = 1/16`` means 16 values can be read or written per cycle.
    """

    k: float

    def latency_for(self, span: TraceSpan) -> float:
        """Reuse latency of a span, proportional to its I/O size."""
        return self.k * (span.input_count + span.output_count)


LatencyModel = ConstantReuseLatency | ProportionalReuseLatency


def tlr_reuse_plan(
    trace: AnyTrace | Sequence[DynInst],
    spans: Sequence[TraceSpan],
    latency_model: LatencyModel,
    *,
    fetch_free: bool = True,
) -> list[ReusePoint | None]:
    """Build a dataflow-model reuse plan from reusable trace spans.

    Every instruction inside a span receives a :class:`ReusePoint`
    gated by the *span's* live-in locations — this is what lets a
    chain of dependent instructions complete all at once and exceed
    the dataflow limit.  ``fetch_free=True`` (the default) models the
    fetch-skip benefit: reused instructions occupy no window slots.
    """
    instructions = stream_of(trace)
    plan: list[ReusePoint | None] = [None] * len(instructions)
    last_stop = 0
    for span in sorted(spans, key=lambda s: s.start):
        if span.start < last_stop:
            raise ValueError("spans overlap")
        if span.stop > len(instructions):
            raise ValueError("span extends past the end of the stream")
        last_stop = span.stop
        point = ReusePoint(
            inputs=span.input_locations(),
            latency=latency_model.latency_for(span),
            fetch_free=fetch_free,
        )
        for i in range(span.start, span.stop):
            plan[i] = point
    return plan
