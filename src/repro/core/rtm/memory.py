"""The set-associative Reuse Trace Memory.

Organisation follows section 4.6: the memory is indexed by the
least-significant bits of the PC; each set holds a bounded number of
distinct starting PCs (the associativity) and each PC holds a bounded
number of alternative traces (``traces_per_pc`` — "4/8/16 entries per
initial PC" in the paper's configurations).  Replacement is LRU at
both levels: reusing a trace refreshes it, and "the older trace with
the same PC ... is the one that is being replaced when a new trace is
collected".

The paper's four configurations::

    512 entries:  4-way  (5-bit index, 32 sets),  4 traces per PC
    4K entries:   4-way  (7-bit index, 128 sets), 8 traces per PC
    32K entries:  8-way  (8-bit index, 256 sets), 16 traces per PC
    256K entries: 8-way (11-bit index, 2048 sets), 16 traces per PC

(in every case ``sets * ways * traces_per_pc`` equals the entry count).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.rtm.entry import RTMEntry
from repro.util.rng import mix64


@dataclass(frozen=True, slots=True)
class RTMConfig:
    """Geometry of a Reuse Trace Memory."""

    name: str
    num_sets: int
    ways: int
    traces_per_pc: int

    @property
    def total_entries(self) -> int:
        """Total trace capacity."""
        return self.num_sets * self.ways * self.traces_per_pc


#: The paper's four RTM configurations (section 4.6).
RTM_PRESETS: dict[str, RTMConfig] = {
    "512": RTMConfig("512", num_sets=32, ways=4, traces_per_pc=4),
    "4K": RTMConfig("4K", num_sets=128, ways=4, traces_per_pc=8),
    "32K": RTMConfig("32K", num_sets=256, ways=8, traces_per_pc=16),
    "256K": RTMConfig("256K", num_sets=2048, ways=8, traces_per_pc=16),
}


def pc_index(pc: int) -> int:
    """Default index scheme: the PC's least-significant bits."""
    return pc


def hashed_index(pc: int) -> int:
    """Alternative index scheme (section 3.1): a hash of the PC,
    spreading hot loop bodies across sets."""
    return mix64(pc)


class ReuseTraceMemory:
    """Finite trace storage with two-level LRU replacement.

    ``index_fn`` maps a PC to a value whose residue modulo the set
    count selects the set — section 3.1 notes the RTM "can be indexed
    by different schemes"; :func:`pc_index` and :func:`hashed_index`
    are provided, and the ablation benchmark compares them.
    """

    #: this scheme verifies input values at lookup; it does not need
    #: to observe architectural writes
    needs_write_events = False

    def __init__(self, config: RTMConfig, *, index_fn: Callable[[int], int] = pc_index):
        if config.num_sets <= 0 or config.ways <= 0 or config.traces_per_pc <= 0:
            raise ValueError("RTM geometry values must be positive")
        self.config = config
        self._index_fn = index_fn
        # set index -> (pc -> (identity -> RTMEntry)); both inner maps
        # are LRU-ordered (least-recent first)
        self._sets: list[OrderedDict[int, OrderedDict[tuple, RTMEntry]]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.trace_evictions = 0
        self.pc_evictions = 0

    def _set_for(self, pc: int) -> OrderedDict:
        return self._sets[self._index_fn(pc) % self.config.num_sets]

    def lookup(self, pc: int, current: dict[int, int | float]) -> RTMEntry | None:
        """The reuse test at a fetch: the longest matching trace wins.

        Among stored traces starting at ``pc`` whose live-in values all
        match the current architectural state, return the longest (a
        single reuse operation should skip as many instructions as
        possible — section 4.4); ties go to the most recently used.
        A hit refreshes LRU state at both levels.
        """
        self.lookups += 1
        entry_set = self._set_for(pc)
        bucket = entry_set.get(pc)
        if bucket is None:
            return None
        best: RTMEntry | None = None
        for entry in reversed(bucket.values()):  # MRU first
            if entry.matches(current) and (best is None or entry.length > best.length):
                best = entry
        if best is None:
            return None
        self.hits += 1
        bucket.move_to_end(best.identity())
        entry_set.move_to_end(pc)
        return best

    def insert(self, entry: RTMEntry) -> None:
        """Store a collected trace, evicting LRU victims when full.

        An entry identical to a stored one (same PC, length and input
        values) only refreshes the stored entry's LRU position.
        """
        entry_set = self._set_for(entry.start_pc)
        bucket = entry_set.get(entry.start_pc)
        if bucket is None:
            if len(entry_set) >= self.config.ways:
                entry_set.popitem(last=False)
                self.pc_evictions += 1
            bucket = OrderedDict()
            entry_set[entry.start_pc] = bucket
        key = entry.identity()
        if key in bucket:
            bucket[key] = entry
            bucket.move_to_end(key)
            entry_set.move_to_end(entry.start_pc)
            return
        if len(bucket) >= self.config.traces_per_pc:
            bucket.popitem(last=False)
            self.trace_evictions += 1
        bucket[key] = entry
        entry_set.move_to_end(entry.start_pc)
        self.insertions += 1

    @property
    def occupancy(self) -> int:
        """Number of traces currently stored."""
        return sum(
            len(bucket) for entry_set in self._sets for bucket in entry_set.values()
        )

    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0 when never probed)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def stored_entries(self) -> list[RTMEntry]:
        """All stored traces (for inspection and tests)."""
        return [
            entry
            for entry_set in self._sets
            for bucket in entry_set.values()
            for entry in bucket.values()
        ]
