"""The valid-bit Reuse Trace Memory (the paper's second reuse test).

Section 3.3 describes two ways to decide whether a trace is reusable:

1. read the current values of all input locations and compare them
   with the stored ones (what :class:`~repro.core.rtm.memory
   .ReuseTraceMemory` does); or
2. keep a **valid bit** per entry: set it when the trace is stored,
   and clear it whenever *any* register or memory location in the
   entry's input list is written.  The reuse test is then just a
   valid-bit check — much simpler hardware, but conservative: a write
   that stores the *same* value still invalidates.

``InvalidatingRTM`` implements scheme 2 behind the same interface as
the comparing RTM, so :class:`~repro.core.rtm.simulator
.FiniteReuseSimulator` can drive either.  The ablation benchmark
quantifies the reuse the conservatism gives up (entries whose inputs
include frequently rewritten registers barely survive).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.rtm.entry import RTMEntry
from repro.core.rtm.memory import RTMConfig


class InvalidatingRTM:
    """Set-associative trace memory with write-invalidation.

    Same geometry and two-level LRU as the comparing RTM; entries die
    on any write to one of their input locations rather than being
    value-checked at lookup.  Callers must forward every architectural
    write via :meth:`on_write` (the simulator does this when
    ``rtm.needs_write_events`` is true).
    """

    needs_write_events = True

    def __init__(self, config: RTMConfig):
        if config.num_sets <= 0 or config.ways <= 0 or config.traces_per_pc <= 0:
            raise ValueError("RTM geometry values must be positive")
        self.config = config
        self._sets: list[OrderedDict[int, OrderedDict[tuple, RTMEntry]]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        # input location -> set of (set_index, pc, identity) holders
        self._watchers: dict[int, set[tuple[int, int, tuple]]] = {}
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.invalidations = 0
        self.trace_evictions = 0
        self.pc_evictions = 0

    # ------------------------------------------------------------------
    def _set_for(self, pc: int) -> OrderedDict:
        return self._sets[pc % self.config.num_sets]

    def _watch(self, entry: RTMEntry) -> None:
        key = (entry.start_pc % self.config.num_sets, entry.start_pc, entry.identity())
        for loc, _value in entry.inputs:
            self._watchers.setdefault(loc, set()).add(key)

    def _unwatch(self, entry: RTMEntry) -> None:
        key = (entry.start_pc % self.config.num_sets, entry.start_pc, entry.identity())
        for loc, _value in entry.inputs:
            holders = self._watchers.get(loc)
            if holders:
                holders.discard(key)
                if not holders:
                    del self._watchers[loc]

    # ------------------------------------------------------------------
    def on_write(self, loc: int) -> None:
        """Invalidate every entry whose input list contains ``loc``."""
        holders = self._watchers.pop(loc, None)
        if not holders:
            return
        for set_index, pc, identity in holders:
            bucket = self._sets[set_index].get(pc)
            if bucket is None:
                continue
            entry = bucket.pop(identity, None)
            if entry is not None:
                self.invalidations += 1
                self._unwatch(entry)
                if not bucket:
                    del self._sets[set_index][pc]

    def lookup(self, pc: int, current: dict[int, int | float]) -> RTMEntry | None:
        """Valid-bit reuse test: any surviving entry at this PC matches.

        The ``current`` mapping is accepted for interface compatibility
        but *not* consulted — validity guarantees the inputs still hold
        their recorded values (every write to them invalidates).
        """
        self.lookups += 1
        entry_set = self._set_for(pc)
        bucket = entry_set.get(pc)
        if not bucket:
            return None
        best: RTMEntry | None = None
        for entry in bucket.values():
            if best is None or entry.length > best.length:
                best = entry
        if best is None:
            return None
        self.hits += 1
        bucket.move_to_end(best.identity())
        entry_set.move_to_end(pc)
        return best

    def insert(self, entry: RTMEntry) -> None:
        """Store a trace; same replacement policy as the comparing RTM."""
        entry_set = self._set_for(entry.start_pc)
        bucket = entry_set.get(entry.start_pc)
        if bucket is None:
            if len(entry_set) >= self.config.ways:
                _pc, victims = entry_set.popitem(last=False)
                for victim in victims.values():
                    self._unwatch(victim)
                self.pc_evictions += 1
            bucket = OrderedDict()
            entry_set[entry.start_pc] = bucket
        key = entry.identity()
        if key in bucket:
            bucket.move_to_end(key)
            entry_set.move_to_end(entry.start_pc)
            return
        if len(bucket) >= self.config.traces_per_pc:
            _k, victim = bucket.popitem(last=False)
            self._unwatch(victim)
            self.trace_evictions += 1
        bucket[key] = entry
        self._watch(entry)
        entry_set.move_to_end(entry.start_pc)
        self.insertions += 1

    @property
    def occupancy(self) -> int:
        """Number of valid traces currently stored."""
        return sum(
            len(bucket) for entry_set in self._sets for bucket in entry_set.values()
        )

    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0 when never probed)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def stored_entries(self) -> list[RTMEntry]:
        """All valid traces (for inspection and tests)."""
        return [
            entry
            for entry_set in self._sets
            for bucket in entry_set.values()
            for entry in bucket.values()
        ]
