"""One Reuse Trace Memory entry (Figure 1 of the paper).

An entry stores everything needed to *skip* a trace: the starting PC,
the live-in identifiers with their values (the reuse test), the
live-out identifiers with their values (the state update) and the
next PC (where fetch resumes).  Note that the instructions themselves
are **not** stored — the trace length is kept only so the simulator
can account for skipped instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import loc_is_mem


@dataclass(frozen=True, slots=True)
class RTMEntry:
    """A stored trace, identified by its input and output."""

    start_pc: int
    length: int
    inputs: tuple[tuple[int, int | float], ...]
    outputs: tuple[tuple[int, int | float], ...]
    next_pc: int

    def matches(self, current: dict[int, int | float]) -> bool:
        """The reuse test: every live-in holds its recorded value.

        ``current`` maps location ids to current architectural values;
        a live-in location missing from the map cannot be verified and
        fails the test.
        """
        sentinel = object()
        for loc, val in self.inputs:
            if current.get(loc, sentinel) != val:
                return False
        return True

    @property
    def input_count(self) -> int:
        """Number of live-in values stored."""
        return len(self.inputs)

    @property
    def output_count(self) -> int:
        """Number of live-out values stored."""
        return len(self.outputs)

    @property
    def reg_input_count(self) -> int:
        """Live-in registers."""
        return sum(1 for loc, _ in self.inputs if not loc_is_mem(loc))

    @property
    def mem_input_count(self) -> int:
        """Live-in memory words."""
        return sum(1 for loc, _ in self.inputs if loc_is_mem(loc))

    @property
    def reg_output_count(self) -> int:
        """Live-out registers."""
        return sum(1 for loc, _ in self.outputs if not loc_is_mem(loc))

    @property
    def mem_output_count(self) -> int:
        """Live-out memory words."""
        return sum(1 for loc, _ in self.outputs if loc_is_mem(loc))

    def identity(self) -> tuple:
        """Dedup key: two entries with equal identity are the same trace."""
        return (self.start_pc, self.length, self.inputs)
