"""Finite Reuse Trace Memory and the realistic engine (section 4.6)."""

from repro.core.rtm.collector import (
    FixedLengthHeuristic,
    Heuristic,
    ILRHeuristic,
    TraceCollector,
)
from repro.core.rtm.entry import RTMEntry
from repro.core.rtm.invalidating import InvalidatingRTM
from repro.core.rtm.memory import (
    RTM_PRESETS,
    ReuseTraceMemory,
    RTMConfig,
    hashed_index,
    pc_index,
)
from repro.core.rtm.simulator import FiniteReuseSimulator, FiniteReuseResult

__all__ = [
    "RTMEntry",
    "ReuseTraceMemory",
    "InvalidatingRTM",
    "RTMConfig",
    "RTM_PRESETS",
    "pc_index",
    "hashed_index",
    "Heuristic",
    "ILRHeuristic",
    "FixedLengthHeuristic",
    "TraceCollector",
    "FiniteReuseSimulator",
    "FiniteReuseResult",
]
