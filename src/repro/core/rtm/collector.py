"""Dynamic trace-collection heuristics (section 4.6).

Three heuristics decide where candidate traces start and end:

- **ILR NE** — a trace is a run of instructions that are reusable at
  instruction level (tested against a finite instruction reuse
  buffer); no expansion.
- **ILR EXP** — as ILR NE, but traces grow dynamically: when two
  consecutive traces are reused, or when the instructions following a
  reused trace are reusable, a longer merged trace is stored.
- **I(n) EXP** — traces are fixed runs of ``n`` instructions of any
  kind; a reused trace is expanded with ``n`` further instructions.

All heuristics respect the per-trace I/O limits (8 registers + 4
memory values on each side by default): a trace that would exceed
them is terminated at the limit.  Collection is *incremental*: the
collector maintains the live-in/live-out sets of the trace under
construction and finalises it into the RTM when a boundary is hit.

Insertion policy details (documented here because the paper leaves
them open): ILR traces are stored whenever non-empty; fixed-length
traces are stored only when they reach their target length or are
terminated by the I/O limits — fragments interrupted by a reuse event
are discarded.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.baselines.ilr import InstructionReuseBuffer
from repro.core.rtm.entry import RTMEntry
from repro.core.rtm.memory import ReuseTraceMemory
from repro.core.traces import TraceLimits
from repro.isa.registers import MEM_LOC_BASE as _MEM_LOC_BASE
from repro.vm.trace import DynInst


@dataclass(frozen=True, slots=True)
class ILRHeuristic:
    """Traces are runs of instruction-level-reusable instructions."""

    expand: bool = False

    @property
    def name(self) -> str:
        """Paper label: ``ILR NE`` or ``ILR EXP``."""
        return "ILR EXP" if self.expand else "ILR NE"


@dataclass(frozen=True, slots=True)
class FixedLengthHeuristic:
    """Traces are fixed runs of ``n`` instructions, always expanding."""

    n: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("fixed trace length must be positive")

    @property
    def expand(self) -> bool:
        """The paper's I(n) heuristic always expands on reuse."""
        return True

    @property
    def name(self) -> str:
        """Paper label, e.g. ``I4 EXP``."""
        return f"I{self.n} EXP"


Heuristic = ILRHeuristic | FixedLengthHeuristic


class TraceCollector:
    """Builds candidate traces from the fetched stream and fills the RTM."""

    def __init__(
        self,
        heuristic: Heuristic,
        rtm: ReuseTraceMemory,
        stream: Sequence[DynInst] | None = None,
        *,
        limits: TraceLimits = TraceLimits(),
        ilr_buffer: InstructionReuseBuffer | None = None,
    ):
        self.heuristic = heuristic
        self.rtm = rtm
        # Collection itself is stream-free: every entry field is
        # recorded as instructions arrive (``_start_pc`` on the first
        # append, ``_last_next_pc`` on every append).  ``stream`` is
        # only kept as a random-access fallback for ``on_reuse`` calls
        # that do not hand over the skipped instructions.
        self.stream = stream
        self.limits = limits
        if isinstance(heuristic, ILRHeuristic):
            if ilr_buffer is None:
                raise ValueError("ILR heuristics need an instruction reuse buffer")
            self.ilr_buffer = ilr_buffer
        else:
            self.ilr_buffer = ilr_buffer  # unused by fixed-length collection
        # trace under construction
        self._base: int | None = None
        self._min_end = 0  # finalisation inserts only if end > _min_end
        self._expanding = False
        self._target_end: int | None = None  # fixed-length mode only
        self._start_pc: int | None = None
        self._last_next_pc: int | None = None
        # incremental liveness of the trace under construction
        self._live_in: dict[int, int | float] = {}
        self._live_out: dict[int, int | float] = {}
        self._reg_in = 0
        self._mem_in = 0
        self._reg_out = 0
        self._mem_out = 0
        # statistics
        self.collected = 0
        self.limit_terminations = 0
        self.discarded_fragments = 0

    # ------------------------------------------------------------------
    # trace-under-construction management
    # ------------------------------------------------------------------
    def _start(self, i: int) -> None:
        self._base = i
        self._min_end = i
        self._expanding = False
        self._target_end = None
        self._start_pc = None
        self._last_next_pc = None
        self._live_in = {}
        self._live_out = {}
        self._reg_in = self._mem_in = self._reg_out = self._mem_out = 0

    def _try_append(self, inst: DynInst) -> bool:
        """Extend the current trace's liveness; False if limits block it."""
        live_in, live_out = self._live_in, self._live_out
        mem_base = _MEM_LOC_BASE
        reg_in = self._reg_in
        mem_in = self._mem_in
        new_in = None
        for loc, val in inst.reads:
            if loc not in live_out and loc not in live_in:
                if new_in is None:
                    new_in = [(loc, val)]
                else:
                    new_in.append((loc, val))
                if loc >= mem_base:
                    mem_in += 1
                else:
                    reg_in += 1
        reg_out = self._reg_out
        mem_out = self._mem_out
        for loc, _val in inst.writes:
            if loc not in live_out:
                if loc >= mem_base:
                    mem_out += 1
                else:
                    reg_out += 1
        if not self.limits.admits(reg_in, mem_in, reg_out, mem_out):
            return False
        if new_in is not None:
            for loc, val in new_in:
                live_in[loc] = val
        for loc, val in inst.writes:
            live_out[loc] = val
        self._reg_in, self._mem_in = reg_in, mem_in
        self._reg_out, self._mem_out = reg_out, mem_out
        if self._start_pc is None:
            self._start_pc = inst.pc
        self._last_next_pc = inst.next_pc
        return True

    def _abandon(self) -> None:
        if self._base is not None:
            self.discarded_fragments += 1
        self._base = None
        self._expanding = False
        self._target_end = None

    def _insert_range(self, end: int) -> None:
        """Insert ``stream[base:end]`` without closing the collection.

        The entry's PCs come from the recorded ``_start_pc`` /
        ``_last_next_pc`` — every appended instruction updated them, so
        they equal ``stream[base].pc`` / ``stream[end - 1].next_pc``
        without touching the stream.
        """
        base = self._base
        assert base is not None
        assert self._start_pc is not None and self._last_next_pc is not None
        entry = RTMEntry(
            start_pc=self._start_pc,
            length=end - base,
            inputs=tuple(self._live_in.items()),
            outputs=tuple(self._live_out.items()),
            next_pc=self._last_next_pc,
        )
        self.rtm.insert(entry)
        self.collected += 1

    def _finalize(self, end: int) -> None:
        """Insert the trace under construction as ``stream[base:end]``."""
        base = self._base
        if base is not None and end > self._min_end and end > base:
            self._insert_range(end)
        self._base = None
        self._expanding = False
        self._target_end = None

    def _replay(
        self, start: int, stop: int,
        insts: Sequence[DynInst] | None = None,
    ) -> bool:
        """Append already-known stream instructions (a reused range).

        ``insts``, when given, supplies ``stream[start:stop]`` directly
        (the streaming simulator hands over its lookahead window);
        otherwise the range is read from ``self.stream``.  Returns
        False if the I/O limits were hit part-way, in which case the
        merged prefix has been finalised and collection stopped.
        """
        if insts is None:
            if self.stream is None:
                raise ValueError(
                    "on_reuse needs the skipped instructions when the "
                    "collector has no random-access stream"
                )
            insts = self.stream[start:stop]
        for off, inst in enumerate(insts):
            if not self._try_append(inst):
                self.limit_terminations += 1
                self._finalize(start + off)
                return False
        return True

    # ------------------------------------------------------------------
    # simulator callbacks
    # ------------------------------------------------------------------
    def on_fetch(self, i: int, inst: DynInst) -> None:
        """A normally fetched/executed instruction at stream index ``i``."""
        if isinstance(self.heuristic, ILRHeuristic):
            self._on_fetch_ilr(i, inst)
        else:
            self._on_fetch_fixed(i, inst)

    def _on_fetch_ilr(self, i: int, inst: DynInst) -> None:
        reusable = self.ilr_buffer.access(inst)
        if not reusable:
            if self._base is not None:
                self._finalize(i)
            return
        if self._base is None:
            self._start(i)
        if not self._try_append(inst):
            self.limit_terminations += 1
            self._finalize(i)
            self._start(i)
            appended = self._try_append(inst)
            assert appended, "a single instruction must fit the I/O limits"

    def _on_fetch_fixed(self, i: int, inst: DynInst) -> None:
        heuristic = self.heuristic
        assert isinstance(heuristic, FixedLengthHeuristic)
        if self._base is None:
            self._start(i)
            self._target_end = i + heuristic.n
        if not self._try_append(inst):
            self.limit_terminations += 1
            self._finalize(i)
            self._start(i)
            self._target_end = i + heuristic.n
            appended = self._try_append(inst)
            assert appended, "a single instruction must fit the I/O limits"
        if self._target_end is not None and i + 1 >= self._target_end:
            self._finalize(i + 1)

    def on_reuse(
        self, i: int, entry: RTMEntry,
        insts: Sequence[DynInst] | None = None,
    ) -> None:
        """A trace reuse at index ``i`` covering ``stream[i:i+length]``.

        ``insts`` optionally carries the skipped instructions
        themselves, which frees the collector from random stream
        access (required when driving from a chunk stream).
        """
        stop = i + entry.length
        if self._base is not None:
            if self._expanding:
                # consecutive reuse: chain the new trace onto the
                # expansion in progress and store the merged trace now
                # ("traces can be dynamically expanded when two
                # consecutive traces are reused")
                if self._replay(i, stop, insts):
                    self._insert_range(stop)
                    self._min_end = stop
                    if isinstance(self.heuristic, FixedLengthHeuristic):
                        self._target_end = stop + self.heuristic.n
                    return
                # limits hit: the merged prefix was stored; fall through
                # to start a fresh expansion from this reuse
            elif isinstance(self.heuristic, ILRHeuristic):
                self._finalize(i)
            else:
                self._abandon()
        if not self.heuristic.expand:
            return
        self._start(i)
        self._expanding = True
        if self._replay(i, stop, insts):
            self._min_end = stop
            if isinstance(self.heuristic, FixedLengthHeuristic):
                self._target_end = stop + self.heuristic.n
        else:
            # the entry alone exceeds the limits (possible only if the
            # collector's limits are tighter than the inserting one's)
            self._abandon()

    def flush(self, end: int) -> None:
        """End of stream: store or discard the pending trace."""
        if self._base is None:
            return
        if isinstance(self.heuristic, ILRHeuristic):
            self._finalize(end)
        else:
            self._abandon()
