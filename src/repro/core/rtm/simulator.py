"""The realistic finite-table reuse engine (section 4.6).

``FiniteReuseSimulator`` walks a captured dynamic instruction stream
maintaining the architectural values of every location touched so
far.  At every fetch it performs the RTM reuse test; on a hit the
trace's instructions are *skipped* (counted as reused, invisible to
the collector and the instruction reuse buffer — they are never
fetched) and the architectural state advances over them.  On a miss
the instruction executes normally and feeds the trace collector.

Because trace collection recorded every live-in of a stored trace,
matching live-in values guarantee — by the paper's Theorem 1
machinery — that the dynamic path following the fetch *is* the stored
trace; ``validate=True`` asserts this invariant against the actual
stream, which doubles as an end-to-end soundness check of the whole
pipeline.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines.ilr import InstructionReuseBuffer
from repro.core.rtm.collector import (
    FixedLengthHeuristic,
    Heuristic,
    ILRHeuristic,
    TraceCollector,
)
from repro.core.rtm.invalidating import InvalidatingRTM
from repro.core.rtm.memory import ReuseTraceMemory, RTMConfig
from repro.core.traces import TraceLimits
from repro.vm.trace import AnyTrace, DynInst
from repro.vm.tracestream import iter_insts


class _StreamCursor:
    """A bounded forward window over a ``DynInst`` iterator.

    The simulator needs one-instruction lookahead plus, on a reuse
    hit, the next ``entry.length`` instructions; everything behind the
    fetch point is released.  Memory is O(longest RTM entry + one
    source chunk), never O(stream).
    """

    __slots__ = ("_it", "_buf", "_base", "_eof")

    def __init__(self, it):
        self._it = it
        self._buf: list[DynInst] = []
        self._base = 0
        self._eof = False

    def _fill_to(self, stop: int) -> bool:
        """Buffer through global index ``stop`` (exclusive); False at EOF."""
        need = stop - self._base - len(self._buf)
        while need > 0:
            try:
                self._buf.append(next(self._it))
            except StopIteration:
                self._eof = True
                return False
            need -= 1
        return True

    def get(self, i: int) -> DynInst | None:
        """The instruction at global index ``i`` (None past the end)."""
        if not self._fill_to(i + 1):
            return None
        return self._buf[i - self._base]

    def get_range(self, i: int, stop: int) -> list[DynInst] | None:
        """``stream[i:stop]`` as a list, or None if the stream ends first."""
        if not self._fill_to(stop):
            return None
        base = self._base
        return self._buf[i - base : stop - base]

    def release(self, i: int) -> None:
        """Drop every buffered instruction before global index ``i``."""
        drop = i - self._base
        if drop > 0:
            del self._buf[:drop]
            self._base = i


@dataclass(slots=True)
class FiniteReuseResult:
    """Outcome of a finite-table reuse simulation (Figure 9 metrics)."""

    heuristic_name: str
    rtm_name: str
    total_instructions: int
    reused_instructions: int
    reuse_events: int
    #: (start, stop) stream ranges that were skipped via reuse
    reused_ranges: list[tuple[int, int]] = field(default_factory=list)
    #: the RTM entry used for each reuse event (aligned with ranges)
    reused_entries: list = field(default_factory=list)
    rtm_insertions: int = 0
    rtm_occupancy: int = 0
    rtm_invalidations: int = 0
    collector_limit_terminations: int = 0

    @property
    def percent_reused(self) -> float:
        """Percentage of dynamic instructions skipped via reuse."""
        if self.total_instructions == 0:
            return 0.0
        return 100.0 * self.reused_instructions / self.total_instructions

    @property
    def avg_reused_trace_size(self) -> float:
        """Average size in instructions of reused traces."""
        if self.reuse_events == 0:
            return 0.0
        return self.reused_instructions / self.reuse_events


class TraceMismatchError(AssertionError):
    """A reused RTM entry disagreed with the actual dynamic stream.

    This can only happen if trace collection failed to record a
    live-in, so it indicates a bug rather than a workload property.
    """


class _FreshInsertGate:
    """Collector-facing insert wrapper for the valid-bit scheme.

    The valid-bit lookup performs no value comparison, so entries may
    only be stored while their recorded input values still hold (the
    trace's own internal writes may already have clobbered them —
    hardware would have cleared the valid bit).  The gate shares the
    simulator's live ``current`` mapping and drops stale inserts.
    """

    def __init__(self, rtm, current: dict):
        self._rtm = rtm
        self._current = current

    def insert(self, entry) -> None:
        if entry.matches(self._current):
            self._rtm.insert(entry)


class FiniteReuseSimulator:
    """Drives the RTM + collector over a dynamic instruction stream.

    ``reuse_test`` selects between the paper's two section-3.3
    schemes: ``"compare"`` (read and compare every input value at
    lookup) and ``"invalidate"`` (a valid bit cleared by any write to
    an input location — simpler but conservative).
    """

    def __init__(
        self,
        rtm_config: RTMConfig,
        heuristic: Heuristic,
        *,
        limits: TraceLimits = TraceLimits(),
        validate: bool = True,
        reuse_test: str = "compare",
    ):
        if reuse_test not in ("compare", "invalidate"):
            raise ValueError(f"unknown reuse test {reuse_test!r}")
        self.rtm_config = rtm_config
        self.heuristic = heuristic
        self.limits = limits
        self.validate = validate
        self.reuse_test = reuse_test

    def run(self, trace: AnyTrace | Sequence[DynInst]) -> FiniteReuseResult:
        """Simulate the engine over one captured stream.

        ``trace`` may be a materialized trace *or* a chunk stream
        (:mod:`repro.vm.tracestream`); either way the walk is a single
        forward pass through a :class:`_StreamCursor` whose lookahead
        never exceeds the longest stored trace, so streams larger than
        memory simulate fine.
        """
        if self.reuse_test == "invalidate":
            rtm = InvalidatingRTM(self.rtm_config)
        else:
            rtm = ReuseTraceMemory(self.rtm_config)
        ilr_buffer: InstructionReuseBuffer | None = None
        if isinstance(self.heuristic, ILRHeuristic):
            # "this memory has as many entries as the RTM" (section 4.6)
            ilr_buffer = InstructionReuseBuffer(
                total_entries=self.rtm_config.total_entries,
                associativity=self.rtm_config.ways * self.rtm_config.traces_per_pc,
            )
        current: dict[int, int | float] = {}
        invalidating = rtm.needs_write_events
        collector_rtm = _FreshInsertGate(rtm, current) if invalidating else rtm
        collector = TraceCollector(
            self.heuristic,
            collector_rtm,
            limits=self.limits,
            ilr_buffer=ilr_buffer,
        )

        reused_ranges: list[tuple[int, int]] = []
        reused_entries: list = []
        reused_instructions = 0
        cursor = _StreamCursor(iter_insts(trace))
        i = 0
        while True:
            inst = cursor.get(i)
            if inst is None:
                break
            entry = rtm.lookup(inst.pc, current)
            if entry is not None:
                stop = i + entry.length
                # a stream that ends before the entry does cannot reuse
                # it (the materialized guard was i + length <= n)
                window = cursor.get_range(i, stop)
            else:
                window = None
            if window is not None:
                if self.validate:
                    self._check_entry(window, i, stop, entry)
                collector.on_reuse(i, entry, window)
                for skipped in window:
                    for loc, val in skipped.reads:
                        current[loc] = val
                    for loc, val in skipped.writes:
                        current[loc] = val
                        if invalidating:
                            rtm.on_write(loc)
                reused_ranges.append((i, stop))
                reused_entries.append(entry)
                reused_instructions += entry.length
                i = stop
                cursor.release(i)
                continue
            collector.on_fetch(i, inst)
            for loc, val in inst.reads:
                current[loc] = val
            for loc, val in inst.writes:
                current[loc] = val
                if invalidating:
                    rtm.on_write(loc)
            i += 1
            cursor.release(i)
        n = i
        collector.flush(n)

        return FiniteReuseResult(
            heuristic_name=self.heuristic.name,
            rtm_name=self.rtm_config.name,
            total_instructions=n,
            reused_instructions=reused_instructions,
            reuse_events=len(reused_ranges),
            reused_ranges=reused_ranges,
            reused_entries=reused_entries,
            rtm_insertions=rtm.insertions,
            rtm_occupancy=rtm.occupancy,
            rtm_invalidations=getattr(rtm, "invalidations", 0),
            collector_limit_terminations=collector.limit_terminations,
        )

    @staticmethod
    def _check_entry(
        window: Sequence[DynInst], start: int, stop: int, entry
    ) -> None:
        """Assert the stored trace matches the actual dynamic path.

        ``window`` holds ``stream[start:stop]``; the indices are for
        error messages only.
        """
        if window[0].pc != entry.start_pc:
            raise TraceMismatchError(
                f"entry start pc {entry.start_pc} != stream pc {window[0].pc}"
            )
        if window[-1].next_pc != entry.next_pc:
            raise TraceMismatchError(
                f"entry next pc {entry.next_pc} != actual "
                f"{window[-1].next_pc} at index {stop - 1}"
            )
        outputs = dict(entry.outputs)
        actual: dict[int, int | float] = {}
        for skipped in window:
            for loc, val in skipped.writes:
                if loc in outputs:
                    actual[loc] = val
        if actual != outputs:
            raise TraceMismatchError(
                f"entry outputs diverge from the stream at [{start}, {stop})"
            )
