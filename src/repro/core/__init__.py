"""Trace-level reuse: the paper's primary contribution.

- :mod:`repro.core.traces` — the trace model: live-in/live-out
  computation, maximal-reusable-trace partitioning (the Theorem 1
  construction) and per-trace I/O limits.
- :mod:`repro.core.reuse_tlr` — trace-level reuse timing plans with
  constant and proportional reuse-latency models (sections 4.4/4.5).
- :mod:`repro.core.stats` — per-trace input/output statistics
  (section 4.5's bandwidth discussion).
- :mod:`repro.core.rtm` — the finite Reuse Trace Memory, dynamic
  trace-collection heuristics and the realistic engine (section 4.6).
"""

from repro.core.reuse_tlr import (
    ConstantReuseLatency,
    ProportionalReuseLatency,
    tlr_reuse_plan,
)
from repro.core.stats import TraceIOStats, trace_io_stats
from repro.core.traces import (
    TraceLimits,
    TraceSpan,
    compute_liveness,
    maximal_reusable_spans,
    spans_from_ranges,
)

__all__ = [
    "TraceSpan",
    "TraceLimits",
    "compute_liveness",
    "maximal_reusable_spans",
    "spans_from_ranges",
    "tlr_reuse_plan",
    "ConstantReuseLatency",
    "ProportionalReuseLatency",
    "TraceIOStats",
    "trace_io_stats",
]
