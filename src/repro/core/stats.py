"""Per-trace input/output statistics (section 4.5's bandwidth study).

The paper reports, averaged over all reused traces: 6.5 input values
(2.7 register + 3.8 memory), 5.0 output values (3.3 register + 1.7
memory) and 15.0 instructions per trace, i.e. 0.43 reads and 0.33
writes per reused instruction — far below the bandwidth an actual
execution of those instructions would need.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.traces import TraceSpan
from repro.isa.registers import MEM_LOC_BASE


@dataclass(frozen=True, slots=True)
class TraceIOStats:
    """Aggregate I/O statistics over a set of trace spans."""

    trace_count: int
    total_instructions: int
    avg_trace_size: float
    avg_inputs: float
    avg_reg_inputs: float
    avg_mem_inputs: float
    avg_outputs: float
    avg_reg_outputs: float
    avg_mem_outputs: float
    #: live-in values read per reused instruction (paper: 0.43)
    reads_per_instruction: float
    #: live-out values written per reused instruction (paper: 0.33)
    writes_per_instruction: float


def trace_io_stats(spans: Sequence[TraceSpan]) -> TraceIOStats:
    """Compute :class:`TraceIOStats` over the given spans."""
    n = len(spans)
    if n == 0:
        return TraceIOStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    # one pass over the spans (the per-span properties would walk each
    # live set several times over)
    total_instr = total_in = total_reg_in = 0
    total_out = total_reg_out = 0
    for s in spans:
        total_instr += s.stop - s.start
        live_ins = s.live_ins
        live_outs = s.live_outs
        total_in += len(live_ins)
        total_out += len(live_outs)
        for loc, _value in live_ins:
            if loc < MEM_LOC_BASE:
                total_reg_in += 1
        for loc, _value in live_outs:
            if loc < MEM_LOC_BASE:
                total_reg_out += 1
    total_mem_in = total_in - total_reg_in
    total_mem_out = total_out - total_reg_out
    return TraceIOStats(
        trace_count=n,
        total_instructions=total_instr,
        avg_trace_size=total_instr / n,
        avg_inputs=total_in / n,
        avg_reg_inputs=total_reg_in / n,
        avg_mem_inputs=total_mem_in / n,
        avg_outputs=total_out / n,
        avg_reg_outputs=total_reg_out / n,
        avg_mem_outputs=total_mem_out / n,
        reads_per_instruction=total_in / total_instr if total_instr else 0.0,
        writes_per_instruction=total_out / total_instr if total_instr else 0.0,
    )
