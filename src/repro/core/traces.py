"""The trace model: liveness, spans and the Theorem 1 construction.

A *trace* is any dynamic sequence of instructions (section 3).  From
the reuse perspective a trace is identified by:

- **input**: the starting PC plus the sequence of live-in locations
  (read before written inside the trace) and their values;
- **output**: the locations the trace writes with their final values,
  plus the next PC.

Theorem 1 proves that a reusable trace consists solely of reusable
instructions, so partitioning the stream into *maximal runs of
instruction-level-reusable instructions* yields an upper bound on
trace-level reusability with the minimum number of traces — the
construction used throughout section 4.4/4.5 and implemented by
:func:`maximal_reusable_spans`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.isa.registers import loc_is_mem
from repro.vm.trace import AnyTrace, ColumnarTrace, DynInst, stream_of


@dataclass(frozen=True, slots=True)
class TraceLimits:
    """Implementation bounds on a trace's live-in/live-out sets.

    Section 4.6: *"For each trace, the number of inputs and outputs
    have been limited to 8 registers and 4 memory values."*
    """

    max_reg_inputs: int = 8
    max_mem_inputs: int = 4
    max_reg_outputs: int = 8
    max_mem_outputs: int = 4

    def admits(self, reg_in: int, mem_in: int, reg_out: int, mem_out: int) -> bool:
        """True when the given live-set sizes fit within the limits."""
        return (
            reg_in <= self.max_reg_inputs
            and mem_in <= self.max_mem_inputs
            and reg_out <= self.max_reg_outputs
            and mem_out <= self.max_mem_outputs
        )


#: Unbounded limits, for the limit-study scenarios of sections 4.4/4.5.
UNLIMITED = TraceLimits(
    max_reg_inputs=1 << 30,
    max_mem_inputs=1 << 30,
    max_reg_outputs=1 << 30,
    max_mem_outputs=1 << 30,
)


def compute_liveness(
    instructions: Sequence[DynInst],
) -> tuple[tuple[tuple[int, int | float], ...], tuple[tuple[int, int | float], ...]]:
    """Live-in and live-out sets of an instruction sequence.

    Returns ``(live_ins, live_outs)`` where live-ins are ``(location,
    value first read)`` pairs in first-read order and live-outs are
    ``(location, final value written)`` pairs in first-write order —
    the paper's IL/IV and OL/OV sequences.
    """
    live_in: dict[int, int | float] = {}
    live_out: dict[int, int | float] = {}
    for inst in instructions:
        for loc, val in inst.reads:
            if loc not in live_out and loc not in live_in:
                live_in[loc] = val
        for loc, val in inst.writes:
            live_out[loc] = val
    return tuple(live_in.items()), tuple(live_out.items())


@dataclass(frozen=True, slots=True)
class TraceSpan:
    """A candidate reusable trace over ``stream[start:stop]``."""

    start: int
    stop: int
    start_pc: int
    next_pc: int
    live_ins: tuple[tuple[int, int | float], ...]
    live_outs: tuple[tuple[int, int | float], ...]

    @property
    def length(self) -> int:
        """Number of dynamic instructions covered."""
        return self.stop - self.start

    @property
    def input_count(self) -> int:
        """Total live-in locations (register + memory)."""
        return len(self.live_ins)

    @property
    def output_count(self) -> int:
        """Total live-out locations (register + memory)."""
        return len(self.live_outs)

    @property
    def reg_input_count(self) -> int:
        """Live-in registers."""
        return sum(1 for loc, _ in self.live_ins if not loc_is_mem(loc))

    @property
    def mem_input_count(self) -> int:
        """Live-in memory words."""
        return sum(1 for loc, _ in self.live_ins if loc_is_mem(loc))

    @property
    def reg_output_count(self) -> int:
        """Live-out registers."""
        return sum(1 for loc, _ in self.live_outs if not loc_is_mem(loc))

    @property
    def mem_output_count(self) -> int:
        """Live-out memory words."""
        return sum(1 for loc, _ in self.live_outs if loc_is_mem(loc))

    def input_locations(self) -> tuple[int, ...]:
        """The live-in location ids (gate the trace's reuse timing)."""
        return tuple(loc for loc, _ in self.live_ins)

    def within(self, limits: TraceLimits) -> bool:
        """True when this span fits the given I/O limits."""
        return limits.admits(
            self.reg_input_count,
            self.mem_input_count,
            self.reg_output_count,
            self.mem_output_count,
        )


def span_from_range(
    instructions: Sequence[DynInst], start: int, stop: int
) -> TraceSpan:
    """Build a :class:`TraceSpan` over ``instructions[start:stop]``."""
    if not 0 <= start < stop <= len(instructions):
        raise ValueError(f"bad span range [{start}, {stop})")
    body = instructions[start:stop]
    live_ins, live_outs = compute_liveness(body)
    return TraceSpan(
        start=start,
        stop=stop,
        start_pc=body[0].pc,
        next_pc=body[-1].next_pc,
        live_ins=live_ins,
        live_outs=live_outs,
    )


def _span_from_columnar(trace: ColumnarTrace, start: int, stop: int) -> TraceSpan:
    """:func:`span_from_range` over trace columns — no row records.

    Liveness walks the flattened location/value columns with running
    cursors; the dict-insertion-order construction matches
    :func:`compute_liveness` exactly, so the resulting span is equal
    to the row-layout one field for field.
    """
    live_in: dict[int, int | float] = {}
    live_out: dict[int, int | float] = {}
    rb, rl, rv = trace.read_bounds, trace.read_locs, trace.read_vals
    wb, wl, wv = trace.write_bounds, trace.write_locs, trace.write_vals
    a = rb[start]
    wa = wb[start]
    for i in range(start, stop):
        b = rb[i + 1]
        while a < b:
            loc = rl[a]
            if loc not in live_out and loc not in live_in:
                live_in[loc] = rv[a]
            a += 1
        b = wb[i + 1]
        while wa < b:
            live_out[wl[wa]] = wv[wa]
            wa += 1
    return TraceSpan(
        start=start,
        stop=stop,
        start_pc=trace.pcs[start],
        next_pc=trace.next_pcs[stop - 1],
        live_ins=tuple(live_in.items()),
        live_outs=tuple(live_out.items()),
    )


def spans_from_ranges(
    trace: AnyTrace | Sequence[DynInst], ranges: Sequence[tuple[int, int]]
) -> list[TraceSpan]:
    """Build spans for explicit ``(start, stop)`` ranges."""
    instructions = stream_of(trace)
    return [span_from_range(instructions, a, b) for a, b in ranges]


def maximal_reusable_spans(
    trace: AnyTrace | Sequence[DynInst],
    flags: Sequence[bool],
) -> list[TraceSpan]:
    """Partition the stream into maximal runs of reusable instructions.

    ``flags`` is the per-instruction reusability from
    :func:`repro.baselines.ilr.instruction_reusability`.  By Theorem 1
    the resulting spans upper-bound what any trace-reuse scheme can
    cover, using the minimum number of reuse operations.

    Chunk streams (:mod:`repro.vm.tracestream`) are walked lazily:
    only the rows of the flagged run under construction are buffered,
    so memory is O(longest span), not O(stream).
    """
    from repro.vm.tracestream import is_chunk_stream

    if is_chunk_stream(trace):
        return _stream_maximal_spans(trace, flags)
    if isinstance(trace, ColumnarTrace):
        n = len(trace)

        def make_span(a: int, b: int) -> TraceSpan:
            return _span_from_columnar(trace, a, b)

    else:
        instructions = stream_of(trace)
        n = len(instructions)

        def make_span(a: int, b: int) -> TraceSpan:
            return span_from_range(instructions, a, b)

    if len(flags) != n:
        raise ValueError("flags must align with the instruction stream")
    spans: list[TraceSpan] = []
    start: int | None = None
    for i, flag in enumerate(flags):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            spans.append(make_span(start, i))
            start = None
    if start is not None:
        spans.append(make_span(start, n))
    return spans


def _stream_maximal_spans(
    stream, flags: Sequence[bool]
) -> list[TraceSpan]:
    """:func:`maximal_reusable_spans` over a chunk stream.

    The liveness construction matches :func:`compute_liveness` (same
    dict-insertion order), so the spans equal the materialized ones
    field for field.
    """
    from repro.vm.tracestream import iter_insts

    flag_count = len(flags)
    spans: list[TraceSpan] = []
    body: list[DynInst] = []
    start: int | None = None

    def close(stop: int) -> None:
        live_ins, live_outs = compute_liveness(body)
        spans.append(TraceSpan(
            start=start,
            stop=stop,
            start_pc=body[0].pc,
            next_pc=body[-1].next_pc,
            live_ins=live_ins,
            live_outs=live_outs,
        ))
        body.clear()

    i = 0
    for inst in iter_insts(stream):
        if i >= flag_count:
            raise ValueError("flags must align with the instruction stream")
        if flags[i]:
            if start is None:
                start = i
            body.append(inst)
        elif start is not None:
            close(i)
            start = None
        i += 1
    if i != flag_count:
        raise ValueError("flags must align with the instruction stream")
    if start is not None:
        close(i)
    return spans


def average_span_length(spans: Sequence[TraceSpan]) -> float:
    """Average trace size in instructions (Figure 7); 0 for no spans."""
    if not spans:
        return 0.0
    return sum(s.length for s in spans) / len(spans)
