"""Baseline reuse techniques the paper compares against.

- :mod:`repro.baselines.ilr` — instruction-level reuse (Sodani & Sohi
  style), both the infinite-history limit and a finite reuse buffer.
- :mod:`repro.baselines.block` — basic-block reuse (Huang & Lilja),
  i.e. trace-level reuse with traces clipped at basic-block
  boundaries; used as an ablation.
"""

from repro.baselines.block import basic_block_spans
from repro.baselines.ilr import (
    InstructionReuseBuffer,
    ReusabilityResult,
    ilr_reuse_plan,
    instruction_reusability,
)

__all__ = [
    "instruction_reusability",
    "ilr_reuse_plan",
    "ReusabilityResult",
    "InstructionReuseBuffer",
    "basic_block_spans",
]
