"""Basic-block reuse (Huang & Lilja, HPCA 1999) as an ablation.

The paper positions basic-block reuse as "a particular case of
trace-level reuse in which traces are limited to basic blocks".  We
reproduce that restriction by splitting each maximal reusable run at
basic-block boundaries: a control-transfer instruction (branch or
jump) ends a block, and a taken control transfer begins a new one.
Comparing the resulting speed-up against unrestricted trace-level
reuse quantifies how much the generality of traces buys.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.isa.opcodes import OpClass
from repro.vm.trace import AnyTrace, DynInst


def basic_block_spans(
    trace: AnyTrace | Sequence[DynInst],
    flags: Sequence[bool],
) -> list[tuple[int, int]]:
    """Split maximal reusable runs at basic-block boundaries.

    Returns ``(start, stop)`` index pairs (half-open) such that every
    span lies inside one maximal run of reusable instructions *and*
    inside one basic block.  A branch or jump terminates its block
    (the control transfer itself is the last instruction of the
    block); a discontinuous ``next_pc`` also forces a boundary, which
    catches fall-through targets of taken branches elsewhere.

    Accepts chunk streams: the walk is lazy and holds no rows beyond
    the current chunk.
    """
    from repro.vm.tracestream import iter_insts, stream_length

    known = stream_length(trace)
    if known is not None and len(flags) != known:
        raise ValueError("flags must align with the instruction stream")
    flag_count = len(flags)
    spans: list[tuple[int, int]] = []
    start: int | None = None
    i = 0
    for inst in iter_insts(trace):
        if i >= flag_count:
            raise ValueError("flags must align with the instruction stream")
        flag = flags[i]
        if not flag:
            if start is not None:
                spans.append((start, i))
                start = None
            i += 1
            continue
        if start is None:
            start = i
        ends_block = inst.op_class in (OpClass.BRANCH, OpClass.JUMP) or (
            inst.next_pc != inst.pc + 1
        )
        if ends_block:
            spans.append((start, i + 1))
            start = None
        i += 1
    if i != flag_count:
        raise ValueError("flags must align with the instruction stream")
    if start is not None:
        spans.append((start, i))
    return spans
