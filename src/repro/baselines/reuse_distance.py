"""Reuse-distance analysis: why finite tables hit or miss.

For every reusable dynamic instruction, the *reuse distance* is the
number of distinct ``(pc, input signature)`` pairs observed since the
matching previous instance — i.e. how many other entries an LRU table
would have had to retain for the reuse to hit.  The distance CDF
therefore *predicts* the capacity curve of figure 9: a fully
associative LRU table of capacity C captures exactly the reuses with
distance < C (Mattson's stack-distance argument applied to reuse
signatures).

Two granularities are provided:

- :func:`signature_reuse_distances` — distances over instruction-level
  signatures (predicts the instruction reuse buffer);
- :func:`capacity_hit_curve` — the induced hit/miss curve for a sweep
  of table capacities, computed in one pass.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.exp.figures import FigureResult
from repro.vm.trace import AnyTrace, DynInst


class _Fenwick:
    """Binary indexed tree over timestamps (1-based), growable.

    ``append`` extends the indexed domain by one (value 0) in
    amortised O(log n): the new node's partial sum is assembled from
    the sub-ranges it covers.  That lets the reuse-distance scan grow
    the tree alongside an unsized stream instead of pre-sizing it to
    ``len(trace)``.
    """

    __slots__ = ("_tree", "_size")

    def __init__(self, size: int = 0):
        self._size = size
        self._tree = [0] * (size + 1)

    def append(self) -> None:
        """Extend the domain by one zero-valued entry."""
        index = self._size + 1
        total = 0
        j = 1
        step = index & -index
        while j < step:
            total += self._tree[index - j]
            j <<= 1
        self._tree.append(total)
        self._size = index

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & -index

    def prefix(self, index: int) -> int:
        """Sum of entries [0, index)."""
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of entries [lo, hi)."""
        return self.prefix(hi) - self.prefix(lo)


@dataclass(slots=True)
class ReuseDistanceResult:
    """Distances for every reusable instruction (-1 = first occurrence)."""

    distances: list[int] = field(default_factory=list)
    reusable_count: int = 0
    total_count: int = 0

    def cdf(self, capacities: Sequence[int]) -> list[tuple[int, float]]:
        """Fraction of *dynamic instructions* whose reuse distance is
        below each capacity (the predicted LRU hit rate)."""
        out = []
        reuses = [d for d in self.distances if d >= 0]
        for capacity in capacities:
            hits = sum(1 for d in reuses if d < capacity)
            out.append((capacity, hits / self.total_count if self.total_count else 0.0))
        return out


def signature_reuse_distances(
    trace: AnyTrace | Sequence[DynInst],
) -> ReuseDistanceResult:
    """LRU stack distances over ``(pc, inputs)`` signatures.

    Uses the Fenwick-tree formulation of Mattson stack distances:
    a signature's distance is the number of *distinct* signatures
    whose most recent access falls between its previous access and
    now — O(n log n) for the whole stream.  Chunk streams are walked
    lazily; the tree grows with the stream instead of being pre-sized.
    """
    from repro.vm.tracestream import iter_insts

    result = ReuseDistanceResult()
    tree = _Fenwick()
    last_access: dict[tuple, int] = {}
    t = 0
    for inst in iter_insts(trace):
        tree.append()
        key = (inst.pc, inst.reads)
        prev = last_access.get(key)
        if prev is None:
            result.distances.append(-1)
        else:
            # distinct signatures touched strictly after prev
            distance = tree.range_sum(prev + 1, t)
            result.distances.append(distance)
            result.reusable_count += 1
            tree.add(prev, -1)
        tree.add(t, 1)
        last_access[key] = t
        t += 1
    result.total_count = t
    return result


def capacity_hit_curve(
    workloads: Sequence[str],
    *,
    capacities: Sequence[int] = (64, 256, 1024, 4096, 16384, 65536),
    max_instructions: int = 20_000,
) -> FigureResult:
    """Predicted fully-associative LRU hit rate vs table capacity,
    averaged over workloads — the idealised version of figure 9's
    capacity axis."""
    from repro.util.means import arithmetic_mean
    from repro.workloads.base import run_workload

    result = FigureResult(
        figure_id="ext_reuse_distance",
        title="Extension: predicted LRU hit rate vs table capacity "
        "(signature reuse distances)",
        headers=["capacity", "predicted_hit_pct"],
    )
    per_workload = []
    for name in workloads:
        trace = run_workload(name, max_instructions=max_instructions)
        per_workload.append(signature_reuse_distances(trace))
    for capacity in capacities:
        rates = [
            dict(r.cdf([capacity]))[capacity] * 100.0 for r in per_workload
        ]
        result.rows.append([str(capacity), arithmetic_mean(rates)])
    return result
