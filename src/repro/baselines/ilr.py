"""Instruction-level reuse: the limit study and a finite buffer.

Section 4.2 of the paper: for each *static* instruction, record every
input-value tuple of its past dynamic instances; a dynamic instance is
**reusable** when its current inputs match a previously recorded
tuple.  Inputs are the values of every location the instruction reads
— source registers and, for memory operations, the memory word —
so address and data locality both participate, exactly as in the
paper ("the reusability of a program takes into account any kind of
instructions, including memory accesses").
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.dataflow.model import ReusePoint
from repro.vm.trace import AnyTrace, ColumnarTrace, DynInst, stream_of


@dataclass(slots=True)
class ReusabilityResult:
    """Which dynamic instructions were reusable, and summary rates."""

    flags: list[bool]
    reusable_count: int
    total_count: int
    #: distinct static instructions observed
    static_count: int = 0
    #: total distinct input signatures stored (table footprint proxy)
    signature_count: int = 0

    @property
    def percent_reusable(self) -> float:
        """Percentage of dynamic instructions that were reusable."""
        if self.total_count == 0:
            return 0.0
        return 100.0 * self.reusable_count / self.total_count


def instruction_reusability(
    trace: AnyTrace | Sequence[DynInst],
) -> ReusabilityResult:
    """Infinite-history instruction-level reusability (Figure 3).

    One forward pass: a dynamic instance is reusable iff its
    ``(pc, input signature)`` was seen before; afterwards the
    signature is recorded.

    Columnar traces take a fast path that builds signatures straight
    from the location/value columns — ``(locs, values)`` tuple pairs
    discriminate exactly like the row layout's pair-tuples, so the
    flags are identical, without materialising any row records.
    Chunk streams (:mod:`repro.vm.tracestream`) run the same columnar
    loop chunk by chunk with a persistent history; only the flag list
    itself is O(n) (one byte-ish per instruction), never the trace.
    """
    if isinstance(trace, ColumnarTrace):
        return _columnar_reusability(trace)
    from repro.vm.tracestream import is_chunk_stream

    if is_chunk_stream(trace):
        return _stream_reusability(trace)
    instructions = stream_of(trace)
    history: dict[int, set] = {}
    flags: list[bool] = []
    reusable = 0
    signature_count = 0
    for inst in instructions:
        seen = history.get(inst.pc)
        if seen is None:
            seen = set()
            history[inst.pc] = seen
        sig = inst.reads
        if sig in seen:
            flags.append(True)
            reusable += 1
        else:
            seen.add(sig)
            signature_count += 1
            flags.append(False)
    return ReusabilityResult(
        flags=flags,
        reusable_count=reusable,
        total_count=len(flags),
        static_count=len(history),
        signature_count=signature_count,
    )


def _columnar_reusability(trace: ColumnarTrace) -> ReusabilityResult:
    pcs = trace.pcs
    rb, rl, rv = trace.read_bounds, trace.read_locs, trace.read_vals
    history: dict[int, set] = {}
    history_get = history.get
    flags: list[bool] = []
    flags_append = flags.append
    reusable = 0
    signature_count = 0
    a = 0
    for i, pc in enumerate(pcs):
        b = rb[i + 1]
        seen = history_get(pc)
        if seen is None:
            seen = set()
            history[pc] = seen
        sig = (tuple(rl[a:b]), tuple(rv[a:b]))
        if sig in seen:
            flags_append(True)
            reusable += 1
        else:
            seen.add(sig)
            signature_count += 1
            flags_append(False)
        a = b
    return ReusabilityResult(
        flags=flags,
        reusable_count=reusable,
        total_count=len(flags),
        static_count=len(history),
        signature_count=signature_count,
    )


def _stream_reusability(stream) -> ReusabilityResult:
    """:func:`_columnar_reusability` folded over a chunk stream."""
    history: dict[int, set] = {}
    history_get = history.get
    flags: list[bool] = []
    flags_append = flags.append
    reusable = 0
    signature_count = 0
    for chunk in stream.chunks():
        pcs = chunk.pcs
        rb, rl, rv = chunk.read_bounds, chunk.read_locs, chunk.read_vals
        a = 0
        for i, pc in enumerate(pcs):
            b = rb[i + 1]
            seen = history_get(pc)
            if seen is None:
                seen = set()
                history[pc] = seen
            sig = (tuple(rl[a:b]), tuple(rv[a:b]))
            if sig in seen:
                flags_append(True)
                reusable += 1
            else:
                seen.add(sig)
                signature_count += 1
                flags_append(False)
            a = b
    return ReusabilityResult(
        flags=flags,
        reusable_count=reusable,
        total_count=len(flags),
        static_count=len(history),
        signature_count=signature_count,
    )


def reusability_by_class(
    trace: AnyTrace | Sequence[DynInst],
    flags: Sequence[bool] | None = None,
) -> dict[str, tuple[int, int, float]]:
    """Sources of repetition (Sodani & Sohi's [13] style breakdown).

    Returns ``{op-class name: (reusable, total, percent)}``, computed
    from existing flags when provided (one pass otherwise).  Accepts
    chunk streams: the walk is lazy, one chunk of rows at a time.
    """
    from repro.vm.tracestream import iter_insts, stream_length

    if flags is None:
        flags = instruction_reusability(trace).flags
    known = stream_length(trace)
    if known is not None and len(flags) != known:
        raise ValueError("flags must align with the instruction stream")
    totals: dict[str, int] = {}
    hits: dict[str, int] = {}
    flag_count = len(flags)
    count = 0
    for inst in iter_insts(trace):
        if count >= flag_count:
            raise ValueError("flags must align with the instruction stream")
        flag = flags[count]
        count += 1
        name = inst.op_class.name
        totals[name] = totals.get(name, 0) + 1
        if flag:
            hits[name] = hits.get(name, 0) + 1
    if count != flag_count:
        raise ValueError("flags must align with the instruction stream")
    return {
        name: (
            hits.get(name, 0),
            total,
            100.0 * hits.get(name, 0) / total,
        )
        for name, total in sorted(totals.items())
    }


def ilr_reuse_plan(
    trace: AnyTrace | Sequence[DynInst],
    flags: Sequence[bool],
    reuse_latency: float,
) -> list[ReusePoint | None]:
    """Reuse plan for the dataflow model: reusable instructions may
    complete at ``max(own producers) + reuse_latency`` (sections
    4.3/4.5: reuse cannot begin until the instruction's source
    operands are available).

    The plan itself is inherently materialized (one entry per dynamic
    instruction), but the walk is lazy, so chunk streams work without
    ever holding the trace rows.
    """
    from repro.vm.tracestream import iter_insts, stream_length

    known = stream_length(trace)
    if known is not None and len(flags) != known:
        raise ValueError("flags must align with the instruction stream")
    flag_count = len(flags)
    plan: list[ReusePoint | None] = []
    for inst in iter_insts(trace):
        i = len(plan)
        if i >= flag_count:
            raise ValueError("flags must align with the instruction stream")
        if flags[i]:
            inputs = tuple(loc for loc, _ in inst.reads)
            plan.append(ReusePoint(inputs=inputs, latency=reuse_latency))
        else:
            plan.append(None)
    if len(plan) != flag_count:
        raise ValueError("flags must align with the instruction stream")
    return plan


@dataclass(slots=True)
class _BufferSet:
    """One set of the finite reuse buffer: signature -> LRU order."""

    entries: OrderedDict = field(default_factory=OrderedDict)


class InstructionReuseBuffer:
    """A finite, set-associative instruction reuse table.

    Models the per-instruction history memory required by the ILR
    trace-collection heuristics of section 4.6 ("a different reuse
    memory used for testing instruction-level reusability is also
    needed; this memory has as many entries as the RTM").

    Indexed by the PC's least-significant bits; each set holds
    ``associativity`` entries of ``(pc, input signature)`` with LRU
    replacement.
    """

    def __init__(self, total_entries: int, associativity: int):
        if total_entries <= 0 or associativity <= 0:
            raise ValueError("capacity parameters must be positive")
        if total_entries % associativity:
            raise ValueError("total_entries must be a multiple of associativity")
        self.total_entries = total_entries
        self.associativity = associativity
        self.num_sets = total_entries // associativity
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_for(self, pc: int) -> OrderedDict:
        return self._sets[pc % self.num_sets]

    def probe(self, inst: DynInst) -> bool:
        """Reuse test *without* updating the table (state inspection)."""
        key = (inst.pc, inst.reads)
        return key in self._set_for(inst.pc)

    def access(self, inst: DynInst) -> bool:
        """Reuse test + update: returns True on a hit.

        On a hit the entry is refreshed to most-recently-used; on a
        miss the new signature is inserted, evicting the LRU entry of
        the set when full.
        """
        entry_set = self._set_for(inst.pc)
        key = (inst.pc, inst.reads)
        if key in entry_set:
            entry_set.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if len(entry_set) >= self.associativity:
            entry_set.popitem(last=False)
        entry_set[key] = True
        return False

    @property
    def occupancy(self) -> int:
        """Number of live entries across all sets."""
        return sum(len(s) for s in self._sets)

    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0 when never accessed)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
