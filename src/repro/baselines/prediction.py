"""Value prediction baseline (the Sodani & Sohi [14] comparison).

The paper contrasts data value *reuse* with data value *prediction*:
reuse is non-speculative but must wait for the instruction's inputs to
be available before the reuse test; prediction supplies the result
immediately (validation happens off the critical path) but is
speculative.  In the oracle limit model used here, a correctly
predicted instruction completes one cycle after fetch with **no
dependence on its producers** — contrast with
:func:`repro.baselines.ilr.ilr_reuse_plan`, whose reuse points are
gated by the instruction's own read locations.

Two classic predictors are provided:

- :class:`LastValuePredictor` — predicts the previous output values of
  the static instruction;
- :class:`StridePredictor` — predicts ``last + (last - previous)`` for
  numeric outputs, capturing induction variables.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.dataflow.model import ReusePoint
from repro.vm.trace import AnyTrace, DynInst


class LastValuePredictor:
    """Predicts each static instruction repeats its previous outputs."""

    def __init__(self) -> None:
        self._last: dict[int, tuple] = {}

    def predict_and_update(self, inst: DynInst) -> bool:
        """True if every output value was predicted correctly."""
        actual = tuple(value for _loc, value in inst.writes)
        predicted = self._last.get(inst.pc)
        self._last[inst.pc] = actual
        return predicted == actual and bool(actual)


class StridePredictor:
    """Last-value plus stride: catches arithmetic progressions."""

    def __init__(self) -> None:
        self._last: dict[int, tuple] = {}
        self._stride: dict[int, tuple] = {}

    def predict_and_update(self, inst: DynInst) -> bool:
        """True if every output value matched ``last + stride``."""
        actual = tuple(value for _loc, value in inst.writes)
        last = self._last.get(inst.pc)
        stride = self._stride.get(inst.pc)
        correct = False
        if last is not None and len(last) == len(actual):
            if stride is not None and len(stride) == len(actual):
                prediction = tuple(l + s for l, s in zip(last, stride))
            else:
                prediction = last
            correct = prediction == actual and bool(actual)
            try:
                self._stride[inst.pc] = tuple(a - l for a, l in zip(actual, last))
            except TypeError:  # non-numeric outputs: no stride
                self._stride.pop(inst.pc, None)
        self._last[inst.pc] = actual
        return correct


@dataclass(slots=True)
class PredictionResult:
    """Coverage of a value predictor over a stream."""

    flags: list[bool] = field(default_factory=list)
    predicted_count: int = 0
    total_count: int = 0

    @property
    def percent_predicted(self) -> float:
        """Percentage of dynamic instructions with all outputs predicted."""
        if self.total_count == 0:
            return 0.0
        return 100.0 * self.predicted_count / self.total_count


def value_predictability(
    trace: AnyTrace | Sequence[DynInst], predictor
) -> PredictionResult:
    """Run a predictor over a stream, recording per-instruction hits.

    Accepts chunk streams; the walk is lazy (only the flag list is
    O(n)).
    """
    from repro.vm.tracestream import iter_insts

    result = PredictionResult()
    for inst in iter_insts(trace):
        hit = predictor.predict_and_update(inst)
        result.flags.append(hit)
        result.predicted_count += hit
    result.total_count = len(result.flags)
    return result


def value_prediction_plan(
    trace: AnyTrace | Sequence[DynInst],
    flags: Sequence[bool],
    *,
    latency: float = 1.0,
) -> list[ReusePoint | None]:
    """Timing plan: predicted instructions complete without waiting
    for their producers (``inputs=()``) — the key difference from
    instruction-level reuse, which is operand-gated."""
    from repro.vm.tracestream import stream_length

    known = stream_length(trace)
    if known is not None and len(flags) != known:
        raise ValueError("flags must align with the instruction stream")
    return [
        ReusePoint(inputs=(), latency=latency) if hit else None for hit in flags
    ]
