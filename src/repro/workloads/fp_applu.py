"""``applu`` — in-place SSOR sweep with time-dependent forcing
(SPEC95 applu).

The solution field is updated *in place* every sweep and driven by a
forcing term that itself evolves each step, so the floating-point
values never repeat — only the integer address arithmetic and loop
control become reusable after the first sweep.  This reproduces
applu's place in the paper: the lowest instruction-level reusability
of the suite (53%) and very short reusable traces.
"""

from __future__ import annotations

from repro.workloads.base import register
from repro.workloads.generators import floats_directive, smooth_grid, words_directive

_N = 96

#: per-colour strides for the red-black sweep (both 1: a full sweep)
words_directive_bounds = words_directive("bounds", [1, 1])


@register("applu", "FP", "in-place SSOR relaxation with evolving forcing")
def build(scale: int) -> str:
    grid = smooth_grid(_N + 2, seed=0xAB1D, lo=0.5, hi=2.5)
    coef = smooth_grid(_N + 2, seed=0xAB1E, lo=0.1, hi=0.3)
    return f"""
# applu: u[i] += c[i]*(u[i-1] + u[i+1] - 2u[i]) + dt*force, force evolving
.data
{floats_directive("u", grid)}
{floats_directive("coef", coef)}
{words_directive_bounds}

.text
main:
    li   a0, 1048576          # sweep budget
    fli  f11, 0.001           # dt
    fli  f12, 0.7310585       # initial forcing
    fli  f13, 1.0001          # forcing growth per sweep
    fli  f14, 2.0
sweep_loop:
    la   s0, u
    la   s1, coef
    la   s2, bounds
    li   t0, 1
    li   s5, {_N + 1}
cell_loop:
    # red-black colouring and bounds lookup (static: repeats)
    andi t2, t0, 1
    add  t3, s2, t2
    lw   t4, 0(t3)            # stride for this colour
    add  t1, s0, t0
    add  t5, s1, t0
    flw  f10, 0(t5)           # c[i] (static coefficient, repeats)
    flw  f0, -1(t1)           # u[i-1] (evolving)
    flw  f1, 0(t1)            # u[i]
    flw  f2, 1(t1)            # u[i+1]
    fadd f3, f0, f2
    fmul f4, f1, f14
    fsub f3, f3, f4           # laplacian
    fmul f3, f3, f10
    fmul f5, f12, f11         # dt * force
    fadd f3, f3, f5
    fadd f1, f1, f3
    fsw  f1, 0(t1)            # in-place update: values never repeat
    add  t0, t0, t4           # advance by the colour stride
    blt  t0, s5, cell_loop
    fmul f12, f12, f13        # the forcing itself evolves
    subi a0, a0, 1
    bgtz a0, sweep_loop
    halt
"""
