"""``ijpeg`` — integer DCT + quantisation over image blocks
(SPEC95 132.ijpeg).

The image is built from a handful of distinct 4x4 tile patterns, so
whole-block transforms repeat with identical inputs — the block-level
value locality that gives ijpeg the largest trace-level-reuse win in
the paper (entire dependent MAC chains collapse into one reuse).
"""

from __future__ import annotations

from repro.util.rng import DeterministicRNG
from repro.workloads.base import register
from repro.workloads.generators import words_directive

_N = 4  # block edge
_BLOCK = _N * _N
_BLOCKS = 8

#: 4-point DCT-II basis, scaled by 64 and rounded.
_COEF = [
    [64, 64, 64, 64],
    [84, 35, -35, -84],
    [64, -64, -64, 64],
    [35, -84, 84, -35],
]
_QSHIFT = [2, 3, 4, 5]  # quantisation as right shifts per frequency row


def _image(seed: int) -> list[int]:
    rng = DeterministicRNG(seed)
    patterns = [
        [rng.randint(0, 255) for _ in range(_BLOCK)] for _ in range(2)
    ]
    img: list[int] = []
    for b in range(_BLOCKS):
        img.extend(patterns[b % len(patterns)])
    return img


@register("ijpeg", "INT", "4x4 integer DCT and quantisation over image blocks")
def build(scale: int) -> str:
    img = _image(seed=0x1395 + scale)
    coef = [c for row in _COEF for c in row]
    return f"""
# ijpeg: separable integer DCT per block, then quantisation; two
# identical image copies alternate via a periodic phase
.data
{words_directive("img", img + img)}
{words_directive("coef", coef)}
{words_directive("qshift", _QSHIFT)}
tmp:    .space {_BLOCK}
outbuf: .space {_BLOCKS * _BLOCK}

.text
main:
    li   a0, 1048576          # pass budget
    li   s7, 0                # periodic phase
pass_loop:
    addi s7, s7, 1
    andi s7, s7, 1            # phase alternates 0/1 (periodic spine)
    li   s4, 0                # block index
block_loop:
    muli s0, s7, {_BLOCKS * _BLOCK}
    muli t0, s4, {_BLOCK}
    add  s0, s0, t0
    la   t0, img
    add  s0, s0, t0           # s0 = &img[phase][block]
    la   s1, tmp
    la   s2, coef

    # row transform: tmp[r][k] = (sum_x img[r][x] * coef[k][x]) >> 6
    li   a1, 0                # r
row_loop:
    li   a2, 0                # k
rowk_loop:
    li   t5, 0                # acc
    li   a3, 0                # x
rowx_loop:
    muli t1, a1, {_N}
    add  t1, t1, a3
    add  t1, s0, t1
    lw   t2, 0(t1)            # img[r][x]
    muli t3, a2, {_N}
    add  t3, t3, a3
    add  t3, s2, t3
    lw   t4, 0(t3)            # coef[k][x]
    mul  t2, t2, t4
    add  t5, t5, t2
    addi a3, a3, 1
    slti t6, a3, {_N}
    bnez t6, rowx_loop
    srai t5, t5, 6
    muli t1, a1, {_N}
    add  t1, t1, a2
    add  t1, s1, t1
    sw   t5, 0(t1)            # tmp[r][k]
    addi a2, a2, 1
    slti t6, a2, {_N}
    bnez t6, rowk_loop
    addi a1, a1, 1
    slti t6, a1, {_N}
    bnez t6, row_loop

    # column transform + quantisation:
    #   out[k][c] = ((sum_y tmp[y][c] * coef[k][y]) >> 6) >> qshift[k]
    muli s3, s4, {_BLOCK}
    la   t0, outbuf
    add  s3, s3, t0           # s3 = &outbuf[block]
    li   a1, 0                # c
col_loop:
    li   a2, 0                # k
colk_loop:
    li   t5, 0                # acc
    li   a3, 0                # y
coly_loop:
    muli t1, a3, {_N}
    add  t1, t1, a1
    add  t1, s1, t1
    lw   t2, 0(t1)            # tmp[y][c]
    muli t3, a2, {_N}
    add  t3, t3, a3
    add  t3, s2, t3
    lw   t4, 0(t3)            # coef[k][y]
    mul  t2, t2, t4
    add  t5, t5, t2
    addi a3, a3, 1
    slti t6, a3, {_N}
    bnez t6, coly_loop
    srai t5, t5, 6
    la   t3, qshift
    add  t3, t3, a2
    lw   t4, 0(t3)
    sra  t5, t5, t4           # quantise
    muli t1, a2, {_N}
    add  t1, t1, a1
    add  t1, s3, t1
    sw   t5, 0(t1)            # out[k][c]
    addi a2, a2, 1
    slti t6, a2, {_N}
    bnez t6, colk_loop
    addi a1, a1, 1
    slti t6, a1, {_N}
    bnez t6, col_loop

    addi s4, s4, 1
    slti t6, s4, {_BLOCKS}
    bnez t6, block_loop
    subi a0, a0, 1
    bgtz a0, pass_loop
    halt
"""
