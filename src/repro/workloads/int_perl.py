"""``perl`` — string hashing and pattern matching (SPEC95 134.perl).

Each iteration builds a key by splicing an evolving counter digit
into a pooled template string, hashes it character by character into
bucket counters, and then runs a naive substring search of a static
pattern over static text.  The evolving key makes the hash chains
produce fresh values every iteration while the match loop repeats —
a mix of short reusable runs broken up by never-repeating hash
arithmetic.
"""

from __future__ import annotations

from repro.util.rng import DeterministicRNG
from repro.workloads.base import register
from repro.workloads.generators import repetitive_text, words_directive

_KEY_LEN = 8
_POOL = 4
_TEXT_LEN = 96
_PAT_LEN = 5
_BUCKETS = 64


@register("perl", "INT", "string hashing with an evolving key plus matching")
def build(scale: int) -> str:
    rng = DeterministicRNG(0x9E41 + scale)
    pool = [rng.ints(_KEY_LEN, 1, 26) for _ in range(_POOL)]
    text = repetitive_text(_TEXT_LEN, seed=0x9E42, alphabet=8, phrase_len=6)
    pattern = text[17 : 17 + _PAT_LEN]  # guaranteed to occur at least once
    flat_pool = [c for key in pool for c in key]
    return f"""
# perl: hash evolving keys, then match a pattern over static text
.data
{words_directive("pool", flat_pool)}
{words_directive("text", text)}
{words_directive("pattern", pattern)}
buckets: .space {_BUCKETS}
keybuf:  .space {_KEY_LEN}
nmatch:  .word 0

.text
main:
    li   a0, 1048576          # iteration budget
iter_loop:
    # build key: template from the pool with the counter spliced in
    andi t0, a0, {_POOL - 1}
    muli t0, t0, {_KEY_LEN}
    la   t1, pool
    add  t1, t1, t0           # template base
    la   t2, keybuf
    li   t3, 0
copy_key:
    add  t4, t1, t3
    lw   t5, 0(t4)
    add  t4, t2, t3
    sw   t5, 0(t4)
    addi t3, t3, 1
    li   t6, {_KEY_LEN}
    blt  t3, t6, copy_key
    andi t5, a0, 255          # evolving digit (fresh value per iteration)
    sw   t5, 0(t2)            # keybuf[0] = digit

    # hash: h = h*31 + c over the key characters
    li   s0, 0                # h
    li   t3, 0
hash_loop:
    add  t4, t2, t3
    lw   t5, 0(t4)
    muli s0, s0, 31
    add  s0, s0, t5
    addi t3, t3, 1
    li   t6, {_KEY_LEN}
    blt  t3, t6, hash_loop
    andi s0, s0, {_BUCKETS - 1}
    la   t4, buckets
    add  t4, t4, s0
    lw   t5, 0(t4)
    addi t5, t5, 1
    sw   t5, 0(t4)            # buckets[h]++

    # naive substring search of pattern over text (static, repeats)
    la   s1, text
    la   s2, pattern
    li   t0, 0                # text index
    li   s5, {_TEXT_LEN - _PAT_LEN}
match_outer:
    li   t3, 0                # pattern index
match_inner:
    add  t4, s1, t0
    add  t4, t4, t3
    lw   t5, 0(t4)
    add  t4, s2, t3
    lw   t6, 0(t4)
    bne  t5, t6, match_fail
    addi t3, t3, 1
    li   t7, {_PAT_LEN}
    blt  t3, t7, match_inner
    la   t4, nmatch
    lw   t5, 0(t4)
    addi t5, t5, 1
    sw   t5, 0(t4)            # full match
match_fail:
    addi t0, t0, 1
    ble  t0, s5, match_outer

    subi a0, a0, 1
    bgtz a0, iter_loop
    halt
"""
