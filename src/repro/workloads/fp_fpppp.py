"""``fpppp`` — long straight-line FP blocks bound by accumulators
(SPEC95 fpppp).

Gaussian-integral style code: each iteration evaluates a long
straight-line block of pairwise products over a static basis table —
those repeat — but every few operations the result is folded into
running energy accumulators that never take the same value twice.
The dense interleaving of reusable and non-reusable instructions
yields fpppp's paper profile: decent instruction reusability but the
shortest traces and the smallest trace-reuse benefit of the suite.
"""

from __future__ import annotations

from repro.workloads.base import register
from repro.workloads.generators import floats_directive, smooth_grid

_BASIS = 16


@register("fpppp", "FP", "straight-line FP blocks folded into accumulators")
def build(scale: int) -> str:
    basis = smooth_grid(_BASIS, seed=0xF999, lo=0.2, hi=1.8)
    body = []
    # a long straight-line block: product terms over the static basis
    # interleaved with accumulator folds (the accumulators evolve).
    for i in range(_BASIS // 2):
        j = (_BASIS // 2) + i
        body.append(f"    flw  f0, {i}(s0)")
        body.append(f"    flw  f1, {j}(s0)")
        body.append("    fmul f2, f0, f1          # static product (reusable)")
        body.append("    fadd f4, f0, f1")
        body.append("    fmul f4, f4, f4           # static square of the sum")
        body.append("    fmul f5, f2, f4           # static overlap term")
        body.append("    fadd f5, f5, f2")
        body.append("    fadd f20, f20, f5         # energy fold (never repeats)")
        body.append("    fsub f3, f0, f1")
        body.append("    fmul f3, f3, f3           # static square (reusable)")
        body.append("    fmul f6, f3, f2           # static cross term")
        body.append("    fadd f6, f6, f3")
        body.append("    fadd f21, f21, f6         # exchange fold (never repeats)")
    block = "\n".join(body)
    return f"""
# fpppp: straight-line two-electron blocks with running accumulators
.data
{floats_directive("basis", basis)}
energy: .space 2

.text
main:
    li   a0, 1048576          # block budget
    fli  f20, 0.0             # energy accumulator
    fli  f21, 0.0             # exchange accumulator
    fli  f22, 1.0000001       # drift factor keeps accumulators fresh
block_loop:
    la   s0, basis
{block}
    fmul f20, f20, f22        # prevent any accidental fixpoint
    la   t0, energy
    fsw  f20, 0(t0)
    fsw  f21, 1(t0)
    subi a0, a0, 1
    bgtz a0, block_loop
    halt
"""
