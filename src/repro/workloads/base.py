"""Workload registry and execution helpers."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.vm import backends, tracecache
from repro.vm.assembler import assemble
from repro.vm.program import Program
from repro.vm.trace import ColumnarTrace

#: Suite order follows the paper's figures (FP first, then INT).
FP_SUITE = ["applu", "apsi", "fpppp", "hydro2d", "su2cor", "tomcatv", "turb3d"]
INT_SUITE = ["compress", "gcc", "go", "ijpeg", "li", "perl", "vortex"]


@dataclass(frozen=True, slots=True)
class Workload:
    """A registered benchmark kernel.

    ``builder`` returns assembly source text; ``scale`` grows data
    sizes and iteration counts roughly linearly.
    """

    name: str
    suite: str
    description: str
    builder: Callable[[int], str] = field(compare=False)

    def source(self, scale: int = 1) -> str:
        """Assembly source at the given scale."""
        if scale < 1:
            raise ValueError("scale must be >= 1")
        return self.builder(scale)

    def program(self, scale: int = 1) -> Program:
        """Assemble the kernel."""
        return assemble(self.source(scale), name=self.name)


_REGISTRY: dict[str, Workload] = {}


def register(name: str, suite: str, description: str):
    """Decorator: register a kernel builder under ``name``."""
    if suite not in ("INT", "FP"):
        raise ValueError(f"unknown suite {suite!r}")

    def wrap(builder: Callable[[int], str]) -> Callable[[int], str]:
        if name in _REGISTRY:
            raise ValueError(f"duplicate workload {name!r}")
        _REGISTRY[name] = Workload(
            name=name, suite=suite, description=description, builder=builder
        )
        return builder

    return wrap


def get_workload(name: str) -> Workload:
    """Look up a registered kernel by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def all_workloads() -> list[Workload]:
    """All kernels in the paper's reporting order (FP suite, INT suite)."""
    ordered = FP_SUITE + INT_SUITE
    return [_REGISTRY[name] for name in ordered if name in _REGISTRY]


def build_program(name: str, scale: int = 1) -> Program:
    """Assemble a kernel by name."""
    return get_workload(name).program(scale)


def run_workload(
    name: str,
    *,
    scale: int = 1,
    max_instructions: int | None = 60_000,
    use_cache: bool = True,
    backend: str | None = None,
) -> ColumnarTrace:
    """Assemble and execute a kernel, capturing its dynamic trace.

    Kernels contain outer repetition loops sized well beyond any
    realistic budget, so the run is normally truncated at
    ``max_instructions`` — the analogue of the paper's fixed 50M
    instruction window per program.

    ``backend`` picks the execution backend (see
    :mod:`repro.vm.backends`): ``None`` defers to the
    ``REPRO_BACKEND`` environment variable and then the default
    interpreter.  Backends are bit-identical by contract, so the
    choice affects wall-clock time only; cache entries are
    nevertheless keyed per backend.

    Kernels are deterministic, so the trace is memoised on disk via
    :mod:`repro.vm.tracecache` (keyed by the generated assembly source
    and the VM code fingerprint); pass ``use_cache=False`` — or set
    ``REPRO_TRACE_CACHE=0`` — to force re-execution.
    """
    resolved = backends.resolve_backend(backend)
    workload = get_workload(name)
    source = workload.source(scale)
    if use_cache:
        cached = tracecache.load_cached_trace(
            name, scale, max_instructions, source, resolved
        )
        if cached is not None:
            return cached
    machine = backends.create_machine(
        assemble(source, name=name), resolved
    )
    trace = machine.run(max_instructions=max_instructions)
    if use_cache:
        tracecache.store_cached_trace(
            name, scale, max_instructions, source, trace, resolved
        )
    return trace


def stream_workload(
    name: str,
    *,
    scale: int = 1,
    max_instructions: int | None = 60_000,
    use_cache: bool = True,
    backend: str | None = None,
    chunk_size: int | None = None,
    direct: bool | None = None,
):
    """Like :func:`run_workload`, but returns a **chunk stream** — the
    trace is never held whole in memory.

    Cache hits stream straight out of the v3 entry
    (:class:`~repro.vm.tracestream.FileTraceStream`, O(chunk) decode).
    Misses with the cache enabled take the **direct execute→analyze
    path** by default: a :class:`~repro.vm.tracestream.TeeChunkStream`
    feeds segments straight from the machine to the consumer while a
    background writer persists the same segments into the cache entry
    — one execution, no serialize-then-reread round trip.  ``direct``
    (or ``REPRO_DIRECT_STREAM=0``) forces the legacy write-then-reread
    path instead; both are bit-identical.  With the cache off, an
    :class:`~repro.vm.tracestream.ExecutionChunkStream` re-executes
    the (deterministic) kernel on every drain.
    """
    from repro.vm.tracestream import (
        DEFAULT_CHUNK_SIZE,
        ExecutionChunkStream,
        direct_stream_enabled,
    )

    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    resolved = backends.resolve_backend(backend)
    workload = get_workload(name)
    source = workload.source(scale)
    if use_cache:
        cached = tracecache.load_cached_trace_stream(
            name, scale, max_instructions, source, resolved
        )
        if cached is not None:
            return cached

    def factory():
        return backends.create_machine(assemble(source, name=name), resolved)

    exec_stream = ExecutionChunkStream(
        factory,
        program_name=name,
        max_instructions=max_instructions,
        chunk_size=chunk_size,
    )
    if use_cache:
        if direct_stream_enabled(direct):
            return tracecache.tee_cached_trace_stream(
                name, scale, max_instructions, source, exec_stream, resolved
            )
        written = tracecache.store_cached_trace_stream(
            name, scale, max_instructions, source, exec_stream, resolved
        )
        if written:
            cached = tracecache.load_cached_trace_stream(
                name, scale, max_instructions, source, resolved
            )
            if cached is not None:
                return cached
    return exec_stream
