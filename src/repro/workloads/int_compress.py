"""``compress`` — LZW compression of repetitive text (SPEC95 129.compress).

Each pass first recodes the text buffer through an involutive
substitution table (a ROT13-style cipher: applying it twice restores
the original), ping-ponging between two buffers, then LZW-compresses
the current buffer with a hash-table dictionary.  The recode step
threads a genuine load-latency-bound dependence chain through the
whole run whose values repeat with period two — exactly the repeated
high-latency chains that let instruction-level reuse shorten
compress's critical path in the paper — while the LZW dictionary
probes keep the control flow branchy and data-dependent.
"""

from __future__ import annotations

from repro.workloads.base import register
from repro.workloads.generators import repetitive_text, words_directive

_HASH_SIZE = 128
_TEXT_LEN = 48
_ALPHABET = 16


def _involution() -> list[int]:
    """A substitution table over 1..2*ALPHABET that is its own inverse."""
    table = [0] * (2 * _ALPHABET + 1)
    for c in range(1, _ALPHABET + 1):
        table[c] = c + _ALPHABET
        table[c + _ALPHABET] = c
    return table


@register("compress", "INT", "LZW with an involutive recode pass")
def build(scale: int) -> str:
    text = repetitive_text(_TEXT_LEN * scale, seed=0xC0_3, alphabet=_ALPHABET)
    text_len = len(text)
    return f"""
# compress: recode buffer through an involutive cipher, then LZW it
.data
{words_directive("bufa", text)}
bufb:   .space {text_len}
{words_directive("subst", _involution())}
tkey:   .space {_HASH_SIZE}
tval:   .space {_HASH_SIZE}
outbuf: .space {text_len + 4}

.text
main:
    li   a0, 1048576          # pass budget (run is truncated by the harness)
    li   s7, 0                # ping-pong phase
pass_loop:
    # select source/destination buffers (alternate every pass)
    la   s0, bufa
    la   s1, bufb
    beqz s7, no_swap
    mov  t0, s0
    mov  s0, s1
    mov  s1, t0
no_swap:
    li   t1, 1
    sub  s7, t1, s7           # flip phase

    # recode: dst[i] = subst[src[i]]  (values have period 2)
    la   s2, subst
    li   t0, 0
recode_loop:
    add  t1, s0, t0
    lw   t2, 0(t1)
    add  t3, s2, t2
    lw   t4, 0(t3)
    add  t5, s1, t0
    sw   t4, 0(t5)
    addi t0, t0, 1
    li   t6, {text_len}
    blt  t0, t6, recode_loop

    # reset the dictionary
    la   t0, tkey
    li   t1, {_HASH_SIZE}
clear_loop:
    sw   r0, 0(t0)
    addi t0, t0, 1
    subi t1, t1, 1
    bgtz t1, clear_loop

    # LZW over the freshly recoded buffer (in s1)
    li   s3, {2 * _ALPHABET + 1}   # next dictionary code
    la   s4, outbuf
    lw   t1, 0(s1)            # w = buf[0]
    li   t0, 1                # i = 1
    li   s5, {text_len}
lzw_loop:
    add  t5, s1, t0
    lw   t2, 0(t5)            # c = buf[i]
    slli t3, t1, 6
    add  t3, t3, t2           # key = w*64 + c
    andi t4, t3, {_HASH_SIZE - 1}
probe:
    la   t5, tkey
    add  t5, t5, t4
    lw   t6, 0(t5)
    beqz t6, miss
    beq  t6, t3, hit
    addi t4, t4, 1
    andi t4, t4, {_HASH_SIZE - 1}
    j    probe
hit:
    la   t5, tval
    add  t5, t5, t4
    lw   t1, 0(t5)            # w = dictionary code
    j    advance
miss:
    sw   t3, 0(t5)            # tkey[h] = key
    la   t7, tval
    add  t7, t7, t4
    sw   s3, 0(t7)            # tval[h] = next code
    addi s3, s3, 1
    sw   t1, 0(s4)            # emit code for w
    addi s4, s4, 1
    mov  t1, t2               # w = c
advance:
    addi t0, t0, 1
    blt  t0, s5, lzw_loop
    sw   t1, 0(s4)            # emit the final code
    subi a0, a0, 1
    bgtz a0, pass_loop
    halt
"""
