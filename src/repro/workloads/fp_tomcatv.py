"""``tomcatv`` — mesh-coordinate smoothing with residual tracking
(SPEC95 tomcatv).

The new mesh coordinates are computed out-of-place from static input
meshes (repeats after the first iteration), but each point also folds
its displacement into a running residual norm that never repeats —
one fresh instruction in every ~17 splits the long repetitive runs
into medium traces, matching tomcatv's paper profile.
"""

from __future__ import annotations

from repro.workloads.base import register
from repro.workloads.generators import floats_directive, smooth_grid

_N = 96


@register("tomcatv", "FP", "out-of-place mesh smoothing with residual norm")
def build(scale: int) -> str:
    xs = smooth_grid(_N + 2, seed=0x70CA, lo=0.0, hi=10.0)
    ys = smooth_grid(_N + 2, seed=0x70CB, lo=0.0, hi=5.0)
    return f"""
# tomcatv: xn[i] = 0.25*(x[i-1] + x[i+1] + y[i-1] + y[i+1]) (static)
#          res += (xn[i] - x[i])^2 (per-iteration residual norm; reset
#          each iteration so its long FP chain is periodic)
.data
{floats_directive("x", xs + xs)}
{floats_directive("y", ys + ys)}
xn:  .space {_N + 2}
res: .space 1

.text
main:
    li   a0, 1048576          # iteration budget
    li   s7, 0                # periodic phase
    fli  f10, 0.25
iter_loop:
    addi s7, s7, 1
    andi s7, s7, 1            # phase alternates 0/1 (periodic spine)
    fli  f20, 0.0             # residual resets every iteration
    muli s0, s7, {_N + 2}
    la   t5, x
    add  s0, s0, t5
    muli s1, s7, {_N + 2}
    la   t5, y
    add  s1, s1, t5
    la   s2, xn
    li   t0, 1
    li   s5, {_N + 1}
point_loop:
    add  t1, s0, t0
    flw  f0, -1(t1)
    flw  f1, 1(t1)
    fadd f2, f0, f1
    add  t2, s1, t0
    flw  f3, -1(t2)
    flw  f4, 1(t2)
    fadd f5, f3, f4
    fadd f2, f2, f5
    fmul f2, f2, f10          # smoothed coordinate (static, repeats)
    add  t3, s2, t0
    fsw  f2, 0(t3)
    flw  f6, 0(t1)
    fsub f7, f2, f6
    fmul f7, f7, f7
    fadd f20, f20, f7         # residual fold: fresh every execution
    addi t0, t0, 1
    blt  t0, s5, point_loop
    la   t4, res
    fsw  f20, 0(t4)
    subi a0, a0, 1
    bgtz a0, iter_loop
    halt
"""
