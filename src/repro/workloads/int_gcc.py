"""``gcc`` — table-driven token automaton (SPEC95 126.gcc).

A compiler front-end in miniature: a DFA drives over a token stream
with grammar-like bigram structure, reducing on accepting states and
bumping per-class statistics counters.  The counters accumulate
across passes, so a sprinkling of never-repeating instructions
interrupts the otherwise repetitive parse — giving gcc its paper
profile of high instruction reusability but only moderate trace
sizes.
"""

from __future__ import annotations

from repro.util.rng import DeterministicRNG
from repro.workloads.base import register
from repro.workloads.generators import token_stream, words_directive

_KINDS = 10
_STATES = 16
_ACCEPT = 15


def _transition_table(seed: int) -> list[int]:
    rng = DeterministicRNG(seed)
    table = []
    for state in range(_STATES):
        for kind in range(_KINDS):
            if state >= 12 and kind >= 7:
                table.append(_ACCEPT)  # reduction
            else:
                table.append(rng.randint(0, _STATES - 2))
    return table


@register("gcc", "INT", "DFA parser over a structured token stream")
def build(scale: int) -> str:
    tokens = token_stream(384 * scale, seed=0x6CC)
    trans = _transition_table(seed=0x6CC + 1)
    return f"""
# gcc: table-driven parse with per-class statistics
.data
{words_directive("tokens", tokens)}
{words_directive("trans", trans)}
symtab: .space 256
counts: .space {_STATES}
outbuf: .space 260
nred:   .word 0

.text
main:
    li   a0, 1048576          # pass budget
pass_loop:
    li   s0, 0                # state
    li   t0, 0                # token index
    li   s5, {len(tokens)}
    la   s1, tokens
    la   s2, trans
    la   s6, outbuf
parse_loop:
    add  t1, s1, t0
    lw   t2, 0(t1)            # tok = tokens[i]
    muli t3, s0, {_KINDS}
    add  t3, t3, t2
    add  t3, s2, t3
    lw   s0, 0(t3)            # state = trans[state][tok]

    # identifiers (kind 3) go through the symbol table
    li   t4, 3
    bne  t2, t4, not_ident
    slli t5, t0, 3
    add  t5, t5, t2
    andi t5, t5, 255
    la   t6, symtab
    add  t6, t6, t5
    lw   t7, 0(t6)
    addi t7, t7, 1
    sw   t7, 0(t6)            # symtab[h]++ (accumulates across passes)
not_ident:
    li   t4, {_ACCEPT}
    bne  s0, t4, no_reduce
    # statistics only on reductions (accumulate across passes)
    la   t6, counts
    add  t6, t6, t2
    lw   t7, 0(t6)
    addi t7, t7, 1
    sw   t7, 0(t6)
    la   t6, nred
    lw   t7, 0(t6)
    addi t7, t7, 1
    sw   t7, 0(t6)            # reductions++
    andi t5, t7, 255
    add  t6, s6, t5
    sw   t0, 0(t6)            # record reduction site
    li   s0, 0
no_reduce:
    addi t0, t0, 1
    blt  t0, s5, parse_loop
    subi a0, a0, 1
    bgtz a0, pass_loop
    halt
"""
