"""``turb3d`` — alternating forward/inverse transform passes
(SPEC95 turb3d).

turb3d spends its time in FFT/inverse-FFT pairs over the turbulence
grid.  We model one radix-2 stage pair exactly: each pass permutes
the complex field through the bit-reversal involution, applies an
exactly-representable power-of-two scaling with sign inversion (so
two passes restore the field bit-for-bit), and computes a twiddle
spectrum diagnostic per point.  The field ping-pongs between two
buffers, threading a long serial chain of loads and FP multiplies
through the whole run whose values have period two — the repeated
high-latency dependence chains that give turb3d the largest
instruction-level-reuse speed-up in the paper.
"""

from __future__ import annotations

import math

from repro.workloads.base import register
from repro.workloads.generators import floats_directive, words_directive

_N = 48
_TW = 16  # twiddle table size


def _scramble() -> list[int]:
    """An involutive permutation (index reversal, like bit-reversal
    for power-of-two sizes): applying it twice is the identity."""
    return [_N - 1 - i for i in range(_N)]


def _signal() -> tuple[list[float], list[float]]:
    re, im = [], []
    for i in range(_N):
        x = 2 * math.pi * i / _N
        re.append(math.sin(3 * x) + 0.5 * math.sin(7 * x + 0.4))
        im.append(0.25 * math.cos(5 * x))
    return re, im


@register("turb3d", "FP", "ping-pong butterfly passes with exact inverses")
def build(scale: int) -> str:
    re, im = _signal()
    twr = [math.cos(-2 * math.pi * k / _TW) for k in range(_TW)]
    twi = [math.sin(-2 * math.pi * k / _TW) for k in range(_TW)]
    return f"""
# turb3d: dst[i] = -((src[perm[i]] * -0.5) * -2.0)  (exact involution
# over two passes) plus a twiddle power spectrum diagnostic
.data
{floats_directive("are", re)}
{floats_directive("aim", im)}
bre: .space {_N}
bim: .space {_N}
{floats_directive("twr", twr)}
{floats_directive("twi", twi)}
{words_directive("perm", _scramble())}
diag: .space {_N}

.text
main:
    li   a0, 1048576          # pass budget
    li   s7, 0                # ping-pong phase
    fli  f10, -0.5
    fli  f11, -2.0
pass_loop:
    la   s0, are
    la   s1, aim
    la   s2, bre
    la   s3, bim
    beqz s7, no_swap
    mov  t0, s0
    mov  s0, s2
    mov  s2, t0
    mov  t0, s1
    mov  s1, s3
    mov  s3, t0
no_swap:
    li   t1, 1
    sub  s7, t1, s7           # flip phase
    la   s4, perm
    la   s5, diag
    li   t0, 0
point_loop:
    add  t1, s4, t0
    lw   t2, 0(t1)            # j = perm[i]
    add  t3, s0, t2
    flw  f0, 0(t3)            # xr = src_re[j]  (chained across passes)
    add  t3, s1, t2
    flw  f1, 0(t3)            # xi = src_im[j]
    # exact scale-and-flip: survives two passes bit-for-bit
    fmul f2, f0, f10
    fmul f2, f2, f11
    fneg f2, f2
    add  t3, s2, t0
    fsw  f2, 0(t3)            # dst_re[i]
    fmul f3, f1, f10
    fmul f3, f3, f11
    fneg f3, f3
    add  t3, s3, t0
    fsw  f3, 0(t3)            # dst_im[i]
    # twiddle spectrum diagnostic (off the chain, heavily reusable)
    andi t4, t0, {_TW - 1}
    la   t5, twr
    add  t5, t5, t4
    flw  f4, 0(t5)
    la   t5, twi
    add  t5, t5, t4
    flw  f5, 0(t5)
    fmul f6, f0, f4
    fmul f7, f1, f5
    fsub f6, f6, f7           # real part
    fmul f7, f0, f5
    fmul f8, f1, f4
    fadd f7, f7, f8           # imaginary part
    fmul f6, f6, f6
    fmul f7, f7, f7
    fadd f6, f6, f7           # power
    add  t5, s5, t0
    fsw  f6, 0(t5)
    addi t0, t0, 1
    li   t6, {_N}
    blt  t0, t6, point_loop
    subi a0, a0, 1
    bgtz a0, pass_loop
    halt
"""
