"""``hydro2d`` — out-of-place flux computation over a static field
(SPEC95 hydro2d).

Each "time step" computes fluxes, energies and a predicted field from
the *same* input grid (results go to separate output arrays), so
every pass after the first replays identical values end to end.  This
gives hydro2d its paper profile: the highest instruction-level
reusability of the suite (99%) and by far the longest reusable traces
(hundreds of instructions).
"""

from __future__ import annotations

from repro.workloads.base import register
from repro.workloads.generators import floats_directive, smooth_grid

_N = 128


@register("hydro2d", "FP", "out-of-place flux sweep over a static grid")
def build(scale: int) -> str:
    grid = smooth_grid(_N + 2, seed=0x44D0, lo=1.0, hi=3.0)
    return f"""
# hydro2d: flux = 0.5*(u[i+1]-u[i-1]); e = q*flux^2; pred = u + dt*flux
# plus a serial flux limiter s = 0.5*s + flux (Gauss-Seidel-style
# recurrence: a long dependent FP chain that repeats every other step)
.data
{floats_directive("u", grid)}
flux: .space {_N + 2}
en:   .space {_N + 2}
pred:   .space {_N + 2}
lim:    .space {_N + 2}
visits: .space {_N + 2}

.text
main:
    li   a0, 1048576          # step budget
    fli  f10, 0.5
    fli  f11, 0.85            # q
    fli  f12, 0.01            # dt
step_loop:
    la   s0, u                # the input grid never changes
    la   s1, flux
    la   s2, en
    la   s3, pred
    la   s4, lim
    fli  f20, 0.0             # flux limiter (reset each step -> periodic)
    li   t0, 1
    li   s5, {_N + 1}
cell_loop:
    add  t1, s0, t0
    flw  f0, -1(t1)
    flw  f1, 1(t1)
    fsub f2, f1, f0
    fmul f2, f2, f10          # flux
    add  t2, s1, t0
    fsw  f2, 0(t2)
    fmul f3, f2, f2
    fmul f3, f3, f11          # energy
    add  t2, s2, t0
    fsw  f3, 0(t2)
    flw  f4, 0(t1)
    fmul f5, f2, f12
    fadd f4, f4, f5           # predicted field (not written back to u)
    add  t2, s3, t0
    fsw  f4, 0(t2)
    fmul f20, f20, f10
    fadd f20, f20, f2         # serial limiter recurrence
    add  t2, s4, t0
    fsw  f20, 0(t2)
    # sparse bookkeeping: visit counters on every 32nd cell keep trace
    # lengths at the couple-hundred-instruction scale
    andi t3, t0, 31
    bnez t3, no_visit
    la   t4, visits
    add  t4, t4, t0
    lw   t5, 0(t4)
    addi t5, t5, 1
    sw   t5, 0(t4)
no_visit:
    addi t0, t0, 1
    blt  t0, s5, cell_loop
    subi a0, a0, 1
    bgtz a0, step_loop
    halt
"""
