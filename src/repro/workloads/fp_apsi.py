"""``apsi`` — meteorology kernel: evolving advection plus static
terrain pressure (SPEC95 apsi).

Half the work advects a wind field in place (values evolve every
step, like applu), the other half derives pressure diagnostics from a
static terrain table (repeats after the first step).  The mix puts
apsi between applu and the repetitive FP codes, matching its paper
profile of low-to-middling reusability and short traces.
"""

from __future__ import annotations

from repro.workloads.base import register
from repro.workloads.generators import floats_directive, smooth_grid

_N = 80


@register("apsi", "FP", "advected wind field plus static terrain diagnostics")
def build(scale: int) -> str:
    wind = smooth_grid(_N + 2, seed=0xA951, lo=-1.0, hi=1.0)
    terrain = smooth_grid(_N + 2, seed=0xA952, lo=0.0, hi=2.0)
    return f"""
# apsi: w[i] -= c*(w[i]-w[i-1]) (in place, evolving)
#       p[i] = alpha*terrain[i] + beta*terrain[i]^2 (static, repeats)
.data
{floats_directive("wind", wind)}
{floats_directive("terrain", terrain)}
press: .space {_N + 2}

.text
main:
    li   a0, 1048576          # step budget
    fli  f10, 0.15            # advection coefficient
    fli  f11, 9.81            # alpha
    fli  f12, 0.5             # beta
step_loop:
    la   s0, wind
    la   s1, terrain
    la   s2, press
    li   t0, 1
    li   s5, {_N + 1}
cell_loop:
    add  t1, s0, t0
    flw  f0, 0(t1)            # w[i]
    flw  f1, -1(t1)           # w[i-1]
    fsub f2, f0, f1
    fmul f2, f2, f10
    fsub f0, f0, f2
    fsw  f0, 0(t1)            # in-place advection: evolves forever
    add  t2, s1, t0
    flw  f3, 0(t2)            # terrain[i] (static)
    fmul f4, f3, f11
    fmul f5, f3, f3
    fmul f5, f5, f12
    fadd f4, f4, f5
    add  t2, s2, t0
    fsw  f4, 0(t2)            # pressure diagnostic: repeats
    addi t0, t0, 1
    blt  t0, s5, cell_loop
    subi a0, a0, 1
    bgtz a0, step_loop
    halt
"""
