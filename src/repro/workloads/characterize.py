"""Workload characterisation: the numbers a suite release reports.

For each kernel: dynamic operation mix, branch behaviour, basic-block
geometry and memory footprint.  These are the statistics used to
argue that a synthetic kernel stands in for its SPEC95 counterpart —
and they feed the suite table in the documentation.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from repro.exp.figures import FigureResult
from repro.isa.opcodes import OpClass
from repro.isa.registers import loc_is_mem
from repro.vm.trace import AnyTrace, DynInst, stream_of


@dataclass(frozen=True, slots=True)
class WorkloadCharacter:
    """Summary statistics of one dynamic instruction stream."""

    dynamic_count: int
    static_count: int
    #: fraction of dynamic instructions per coarse class
    int_alu_frac: float
    mul_div_frac: float
    load_frac: float
    store_frac: float
    branch_frac: float
    fp_frac: float
    #: fraction of executed conditional branches that were taken
    branch_taken_rate: float
    #: average dynamic basic-block length (instructions per control
    #: transfer)
    avg_basic_block: float
    #: distinct memory words touched
    memory_footprint: int
    #: share of dynamic instructions contributed by the 10 hottest PCs
    top10_pc_share: float


def characterize(trace: AnyTrace | Sequence[DynInst]) -> WorkloadCharacter:
    """Compute :class:`WorkloadCharacter` for a stream."""
    instructions = stream_of(trace)
    n = len(instructions)
    if n == 0:
        return WorkloadCharacter(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0)

    class_counts: Counter = Counter()
    pc_counts: Counter = Counter()
    touched: set[int] = set()
    branches = 0
    taken = 0
    transfers = 0
    for inst in instructions:
        cls = inst.op_class
        class_counts[cls] += 1
        pc_counts[inst.pc] += 1
        for loc, _ in inst.reads:
            if loc_is_mem(loc):
                touched.add(loc)
        for loc, _ in inst.writes:
            if loc_is_mem(loc):
                touched.add(loc)
        if cls is OpClass.BRANCH:
            branches += 1
            if inst.next_pc != inst.pc + 1:
                taken += 1
        if inst.next_pc != inst.pc + 1:
            transfers += 1

    def frac(*classes: OpClass) -> float:
        return sum(class_counts.get(c, 0) for c in classes) / n

    top10 = sum(count for _pc, count in pc_counts.most_common(10))
    return WorkloadCharacter(
        dynamic_count=n,
        static_count=len(pc_counts),
        int_alu_frac=frac(OpClass.INT_ALU),
        mul_div_frac=frac(OpClass.INT_MUL, OpClass.INT_DIV),
        load_frac=frac(OpClass.LOAD),
        store_frac=frac(OpClass.STORE),
        branch_frac=frac(OpClass.BRANCH),
        fp_frac=frac(
            OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV,
            OpClass.FP_SQRT, OpClass.FP_CVT,
        ),
        branch_taken_rate=taken / branches if branches else 0.0,
        avg_basic_block=n / transfers if transfers else float(n),
        memory_footprint=len(touched),
        top10_pc_share=top10 / n,
    )


def suite_characterization(
    workloads: Sequence[str], *, max_instructions: int = 10_000,
    use_cache: bool = True, backend: str | None = None,
) -> FigureResult:
    """Characterisation table over a set of kernels.

    ``backend`` selects the execution backend for uncached runs (see
    :mod:`repro.vm.backends`); the table itself is backend-independent
    because backends produce bit-identical traces.
    """
    from repro.workloads.base import get_workload, run_workload

    result = FigureResult(
        figure_id="suite_character",
        title="Workload suite characterisation",
        headers=[
            "program", "suite", "static", "alu%", "ld%", "st%", "br%",
            "fp%", "taken%", "bb_len", "mem_words",
        ],
    )
    for name in workloads:
        trace = run_workload(name, max_instructions=max_instructions,
                             use_cache=use_cache, backend=backend)
        ch = characterize(trace)
        result.rows.append(
            [
                name,
                get_workload(name).suite,
                ch.static_count,
                100 * ch.int_alu_frac,
                100 * ch.load_frac,
                100 * ch.store_frac,
                100 * ch.branch_frac,
                100 * ch.fp_frac,
                100 * ch.branch_taken_rate,
                ch.avg_basic_block,
                ch.memory_footprint,
            ]
        )
    return result
