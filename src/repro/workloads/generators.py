"""Shared helpers for emitting kernel data segments.

Kernels embed their input data (text buffers, images, grids, token
streams) as ``.data`` directives; these helpers render Python lists
into directive lines with deterministic contents derived from
:class:`repro.util.rng.DeterministicRNG`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.util.rng import DeterministicRNG


def words_directive(label: str, values: Sequence[int], per_line: int = 16) -> str:
    """Render ``label: .word v v v ...`` lines for an int array."""
    lines = [f"{label}:"]
    vals = list(values)
    if not vals:
        return f"{label}: .space 0"
    for i in range(0, len(vals), per_line):
        chunk = " ".join(str(v) for v in vals[i : i + per_line])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


def floats_directive(label: str, values: Sequence[float], per_line: int = 8) -> str:
    """Render ``label: .float v v v ...`` lines for an FP array."""
    lines = [f"{label}:"]
    vals = list(values)
    if not vals:
        return f"{label}: .space 0"
    for i in range(0, len(vals), per_line):
        chunk = " ".join(f"{v!r}" for v in vals[i : i + per_line])
        lines.append(f"    .float {chunk}")
    return "\n".join(lines)


def space_directive(label: str, count: int) -> str:
    """Render a zero-initialised array reservation."""
    return f"{label}: .space {count}"


def repetitive_text(length: int, seed: int, *, alphabet: int = 16,
                    phrase_pool: int = 12, phrase_len: int = 8) -> list[int]:
    """Text with heavy phrase-level repetition (compress/gcc food).

    Builds a small pool of random phrases and concatenates random
    picks from it, so n-gram repetition is high — the property LZW
    compression and tokenisers exploit, and the source of value
    repetition the paper measures in ``compress``.
    """
    rng = DeterministicRNG(seed)
    phrases = [
        [rng.randint(1, alphabet) for _ in range(phrase_len)]
        for _ in range(phrase_pool)
    ]
    out: list[int] = []
    while len(out) < length:
        out.extend(rng.choice(phrases))
    return out[:length]


def smooth_grid(n: int, seed: int, *, lo: float = 0.0, hi: float = 4.0) -> list[float]:
    """A smooth 1-D field for stencil kernels (sum of a few harmonics)."""
    import math

    rng = DeterministicRNG(seed)
    amps = rng.floats(4, 0.1, 1.0)
    phases = rng.floats(4, 0.0, 6.283)
    span = hi - lo
    out = []
    for i in range(n):
        x = i / max(n - 1, 1)
        v = sum(a * math.sin((k + 1) * 6.283 * x + p)
                for k, (a, p) in enumerate(zip(amps, phases)))
        out.append(lo + span * (0.5 + 0.25 * v))
    return out


def token_stream(length: int, seed: int, *, kinds: int = 10) -> list[int]:
    """A token-id stream with grammar-like bigram structure (gcc food)."""
    rng = DeterministicRNG(seed)
    # favoured successor for each token kind makes bigrams repetitive
    successor = [rng.randint(0, kinds - 1) for _ in range(kinds)]
    out: list[int] = []
    tok = 0
    for _ in range(length):
        out.append(tok)
        tok = successor[tok] if rng.random() < 0.7 else rng.randint(0, kinds - 1)
    return out
