"""Shared helpers for emitting kernel data segments.

Kernels embed their input data (text buffers, images, grids, token
streams) as ``.data`` directives; these helpers render Python lists
into directive lines with deterministic contents derived from
:class:`repro.util.rng.DeterministicRNG`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.util.rng import DeterministicRNG


def words_directive(label: str, values: Sequence[int], per_line: int = 16) -> str:
    """Render ``label: .word v v v ...`` lines for an int array."""
    lines = [f"{label}:"]
    vals = list(values)
    if not vals:
        return f"{label}: .space 0"
    for i in range(0, len(vals), per_line):
        chunk = " ".join(str(v) for v in vals[i : i + per_line])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


def floats_directive(label: str, values: Sequence[float], per_line: int = 8) -> str:
    """Render ``label: .float v v v ...`` lines for an FP array."""
    lines = [f"{label}:"]
    vals = list(values)
    if not vals:
        return f"{label}: .space 0"
    for i in range(0, len(vals), per_line):
        chunk = " ".join(f"{v!r}" for v in vals[i : i + per_line])
        lines.append(f"    .float {chunk}")
    return "\n".join(lines)


def space_directive(label: str, count: int) -> str:
    """Render a zero-initialised array reservation."""
    return f"{label}: .space {count}"


def repetitive_text(length: int, seed: int, *, alphabet: int = 16,
                    phrase_pool: int = 12, phrase_len: int = 8) -> list[int]:
    """Text with heavy phrase-level repetition (compress/gcc food).

    Builds a small pool of random phrases and concatenates random
    picks from it, so n-gram repetition is high — the property LZW
    compression and tokenisers exploit, and the source of value
    repetition the paper measures in ``compress``.
    """
    rng = DeterministicRNG(seed)
    phrases = [
        [rng.randint(1, alphabet) for _ in range(phrase_len)]
        for _ in range(phrase_pool)
    ]
    out: list[int] = []
    while len(out) < length:
        out.extend(rng.choice(phrases))
    return out[:length]


def smooth_grid(n: int, seed: int, *, lo: float = 0.0, hi: float = 4.0) -> list[float]:
    """A smooth 1-D field for stencil kernels (sum of a few harmonics)."""
    import math

    rng = DeterministicRNG(seed)
    amps = rng.floats(4, 0.1, 1.0)
    phases = rng.floats(4, 0.0, 6.283)
    span = hi - lo
    out = []
    for i in range(n):
        x = i / max(n - 1, 1)
        v = sum(a * math.sin((k + 1) * 6.283 * x + p)
                for k, (a, p) in enumerate(zip(amps, phases)))
        out.append(lo + span * (0.5 + 0.25 * v))
    return out


def rl_loop_nest(
    *,
    depth: int = 2,
    trips: int = 8,
    branchiness: int = 0,
    value_period: int = 0,
    array_size: int = 16,
) -> str:
    """An RL program shaped like the paper's kernels, parameterised.

    ``depth`` nested counted loops of ``trips`` iterations each;
    ``branchiness`` adds a data-dependent ``if`` per nesting level;
    ``value_period`` > 0 makes the innermost body read an array
    through a modular index, so input values repeat with that period
    (the knob that separates value repetition from pure control
    repetition).  Deterministic: same arguments, same source.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    lines = [
        words_directive_rl("data", [
            (3 + 7 * i) % 23 for i in range(max(array_size, 1))
        ]),
        "var acc = 0",
        "func main() {",
    ]
    indent = "    "
    counters = [f"i{d}" for d in range(depth)]
    for d, c in enumerate(counters):
        pad = indent * (d + 1)
        lines.append(f"{pad}var {c} = 0")
        lines.append(f"{pad}while ({c} < {trips}) {{")
    pad = indent * (depth + 1)
    inner = counters[-1]
    if value_period > 0:
        lines.append(
            f"{pad}acc = acc + data[{inner} % {value_period}]"
        )
    else:
        lines.append(f"{pad}acc = acc + {inner} * 3")
    if branchiness > 0:
        lines.append(f"{pad}if (acc % {branchiness + 1} == 0) {{")
        lines.append(f"{pad}{indent}acc = acc + 1")
        lines.append(f"{pad}}}")
    for d in range(depth - 1, -1, -1):
        pad = indent * (d + 1)
        lines.append(f"{pad}{indent}{counters[d]} = {counters[d]} + 1")
        lines.append(f"{pad}}}")
    lines.append(f"{indent}return acc")
    lines.append("}")
    return "\n".join(lines)


def words_directive_rl(name: str, values: Sequence[int]) -> str:
    """Render an initialised RL global array declaration."""
    vals = list(values)
    joined = ", ".join(str(v) for v in vals)
    return f"var {name}[{len(vals)}] = {{{joined}}}"


def generated_families() -> list[tuple[str, str]]:
    """The fixed (name, RL source) grid the validation harness sweeps.

    Spans the axes the static model keys on: nesting depth, trip
    count, branch density and value-repetition period.
    """
    families: list[tuple[str, str]] = []
    for depth in (1, 2, 3):
        families.append((
            f"gen_depth{depth}",
            rl_loop_nest(depth=depth, trips=12),
        ))
    for trips in (4, 32):
        families.append((
            f"gen_trips{trips}",
            rl_loop_nest(depth=2, trips=trips),
        ))
    families.append((
        "gen_branchy",
        rl_loop_nest(depth=2, trips=12, branchiness=3),
    ))
    for period in (2, 8):
        families.append((
            f"gen_period{period}",
            rl_loop_nest(depth=2, trips=12, value_period=period),
        ))
    return families


def token_stream(length: int, seed: int, *, kinds: int = 10) -> list[int]:
    """A token-id stream with grammar-like bigram structure (gcc food)."""
    rng = DeterministicRNG(seed)
    # favoured successor for each token kind makes bigrams repetitive
    successor = [rng.randint(0, kinds - 1) for _ in range(kinds)]
    out: list[int] = []
    tok = 0
    for _ in range(length):
        out.append(tok)
        tok = successor[tok] if rng.random() < 0.7 else rng.randint(0, kinds - 1)
    return out
