"""``vortex`` — an object store with hashed chains (SPEC95 147.vortex).

A database in miniature: objects live in parallel arrays linked into
hash-bucket chains.  The op mix is seven lookups of hot keys per one
insertion of a fresh key, so the store grows monotonically: chain
walks for hot keys are repetitive but keep lengthening as new objects
are prepended, mirroring vortex's mix of highly repetitive queries
over an evolving database.
"""

from __future__ import annotations

from repro.util.rng import DeterministicRNG
from repro.workloads.base import register
from repro.workloads.generators import words_directive

_BUCKETS = 64
_MAX_OBJECTS = 2048
_POOL = 16


@register("vortex", "INT", "hashed object store: hot lookups + fresh inserts")
def build(scale: int) -> str:
    rng = DeterministicRNG(0x40F + scale)
    keypool = sorted({rng.randint(1, 600) for _ in range(_POOL * 2)})[:_POOL]
    assert len(keypool) == _POOL
    return f"""
# vortex: hash-chained object store
.data
{words_directive("keypool", keypool)}
heads: .space {_BUCKETS}
okey:  .space {_MAX_OBJECTS}
oval:  .space {_MAX_OBJECTS}
onext: .space {_MAX_OBJECTS}

.text
main:
    li   s3, 1                # next object slot (0 = null)
    li   t0, 0                # pre-insert the hot keys
init_loop:
    la   t1, keypool
    add  t1, t1, t0
    lw   a1, 0(t1)
    call insert
    addi t0, t0, 1
    li   t2, {_POOL}
    blt  t0, t2, init_loop

    li   a0, 1048576          # op budget
    li   s6, 0                # checksum of looked-up values
op_loop:
    andi t0, a0, 15
    bnez t0, do_lookup
    li   t1, 1000             # fresh key (never repeats)
    add  a1, t1, s3
    call insert
    j    op_next
do_lookup:
    andi t0, a0, {_POOL - 1}
    la   t1, keypool
    add  t1, t1, t0
    lw   a1, 0(t1)
    call lookup
    add  s6, s6, v0
op_next:
    subi a0, a0, 1
    bgtz a0, op_loop
    halt

# insert: a1 = key; prepends a new object to its bucket chain
insert:
    andi t0, a1, {_BUCKETS - 1}
    la   t1, heads
    add  t1, t1, t0
    la   t2, okey
    add  t2, t2, s3
    sw   a1, 0(t2)
    muli t3, a1, 3
    la   t2, oval
    add  t2, t2, s3
    sw   t3, 0(t2)
    lw   t4, 0(t1)            # old chain head
    la   t2, onext
    add  t2, t2, s3
    sw   t4, 0(t2)
    sw   s3, 0(t1)            # heads[h] = new object
    addi s3, s3, 1
    ret

# lookup: a1 = key -> v0 = value (0 when absent)
lookup:
    andi t0, a1, {_BUCKETS - 1}
    la   t1, heads
    add  t1, t1, t0
    lw   t2, 0(t1)            # cursor
walk:
    beqz t2, not_found
    la   t3, okey
    add  t3, t3, t2
    lw   t4, 0(t3)
    beq  t4, a1, found
    la   t3, onext
    add  t3, t3, t2
    lw   t2, 0(t3)
    j    walk
found:
    la   t3, oval
    add  t3, t3, t2
    lw   v0, 0(t3)
    ret
not_found:
    li   v0, 0
    ret
"""
