"""``go`` — branchy board evaluation with a slowly evolving board
(SPEC95 099.go).

Each "move" evaluates influence over the interior of a 19x19 board
(neighbour sums with data-dependent branching on stone colour), picks
the best empty point, and places a stone there.  The board mutates a
little every move, so the evaluation is largely repetitive but keeps
being perturbed near the new stones — moderate reusability with
medium traces, like the original's pattern matchers.
"""

from __future__ import annotations

from repro.util.rng import DeterministicRNG
from repro.workloads.base import register
from repro.workloads.generators import words_directive

_SIZE = 19
_CELLS = _SIZE * _SIZE


def _initial_board(seed: int) -> list[int]:
    rng = DeterministicRNG(seed)
    board = [0] * _CELLS
    for _ in range(40):  # sprinkle some stones of both colours
        board[rng.randint(0, _CELLS - 1)] = rng.randint(1, 2)
    return board


@register("go", "INT", "board influence evaluation with move placement")
def build(scale: int) -> str:
    board = _initial_board(seed=0x60 + scale)
    return f"""
# go: evaluate influence, then place a stone at the best empty point
.data
{words_directive("board", board)}
infl:   .space {_CELLS}

.text
main:
    li   a0, 1048576          # move budget
    li   s7, 1                # colour to move
move_loop:
    la   s0, board
    la   s1, infl
    li   t0, {_SIZE + 1}      # first interior cell
    li   s5, {_CELLS - _SIZE - 1}
    li   s3, -1               # best score
    li   s4, 0                # best cell
eval_loop:
    add  t1, s0, t0
    lw   t2, 0(t1)            # stone at cell
    bnez t2, occupied
    # influence = weighted sum of the four neighbours
    lw   t3, -1(t1)
    lw   t4, 1(t1)
    add  t3, t3, t4
    lw   t4, -{_SIZE}(t1)
    add  t3, t3, t4
    lw   t4, {_SIZE}(t1)
    add  t3, t3, t4
    # friendly stones pull harder: +3 if left neighbour is ours
    lw   t4, -1(t1)
    bne  t4, s7, no_bonus
    addi t3, t3, 3
no_bonus:
    add  t5, s1, t0
    sw   t3, 0(t5)            # infl[cell] = score
    ble  t3, s3, not_best
    mov  s3, t3
    mov  s4, t0
not_best:
    j    eval_next
occupied:
    add  t5, s1, t0
    sw   r0, 0(t5)
eval_next:
    addi t0, t0, 1
    blt  t0, s5, eval_loop

    # place a stone at the best cell (mutates the board)
    add  t1, s0, s4
    sw   s7, 0(t1)
    # swap colour 1 <-> 2
    li   t2, 3
    sub  s7, t2, s7
    subi a0, a0, 1
    bgtz a0, move_loop
    halt
"""
