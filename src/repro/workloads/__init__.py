"""The 14-kernel workload suite standing in for SPEC95.

Each module provides one kernel written in the reproduction ISA whose
dynamic behaviour mirrors the *character* of the corresponding SPEC95
program: algorithm class, INT/FP mix, branchiness and — critically
for this paper — its value-repetition profile (how quickly the values
flowing through the program evolve, which is what instruction- and
trace-level reusability measure).

Importing this package registers every kernel; use
:func:`repro.workloads.base.get_workload` or
:data:`repro.workloads.base.INT_SUITE` / ``FP_SUITE`` to enumerate.
"""

from repro.workloads import (  # noqa: F401  (imports register the kernels)
    fp_applu,
    fp_apsi,
    fp_fpppp,
    fp_hydro2d,
    fp_su2cor,
    fp_tomcatv,
    fp_turb3d,
    int_compress,
    int_gcc,
    int_go,
    int_ijpeg,
    int_li,
    int_perl,
    int_vortex,
)
from repro.workloads.base import (
    FP_SUITE,
    INT_SUITE,
    Workload,
    all_workloads,
    build_program,
    get_workload,
    run_workload,
)

__all__ = [
    "Workload",
    "get_workload",
    "all_workloads",
    "build_program",
    "run_workload",
    "INT_SUITE",
    "FP_SUITE",
]
