"""``li`` — recursive expression interpreter (SPEC95 130.li).

A miniature Lisp evaluator: expression trees stored as node arrays
are evaluated by a recursive ``eval`` routine (real call/return with
stack saves).  The environment is almost static — one variable is
bumped each pass — so evaluation is heavily repetitive, with the
recursion producing subroutine-shaped traces like xlisp's
interpreter loop.
"""

from __future__ import annotations

from repro.util.rng import DeterministicRNG
from repro.workloads.base import register
from repro.workloads.generators import words_directive

_OP_CONST, _OP_VAR, _OP_ADD, _OP_SUB, _OP_MUL = 0, 1, 2, 3, 4
_ENV_SIZE = 8
_TREES = 6


def _build_trees(seed: int):
    """Generate expression-tree node arrays and per-tree root indices."""
    rng = DeterministicRNG(seed)
    ops: list[int] = []
    a: list[int] = []
    b: list[int] = []

    def leaf() -> int:
        idx = len(ops)
        if rng.random() < 0.6:
            ops.append(_OP_CONST)
            a.append(rng.randint(1, 9))
        else:
            ops.append(_OP_VAR)
            a.append(rng.randint(1, _ENV_SIZE - 1))  # var 0 appears once below
        b.append(0)
        return idx

    def tree(depth: int) -> int:
        if depth == 0:
            return leaf()
        left = tree(depth - 1 if rng.random() < 0.8 else 0)
        right = tree(depth - 1 if rng.random() < 0.8 else 0)
        idx = len(ops)
        ops.append(rng.choice([_OP_ADD, _OP_SUB, _OP_MUL]))
        a.append(left)
        b.append(right)
        return idx

    roots = [tree(3) for _ in range(_TREES - 1)]
    # one tree references the evolving variable env[0]
    var0 = len(ops)
    ops.append(_OP_VAR)
    a.append(0)
    b.append(0)
    const = len(ops)
    ops.append(_OP_CONST)
    a.append(3)
    b.append(0)
    root = len(ops)
    ops.append(_OP_ADD)
    a.append(var0)
    b.append(const)
    roots.append(root)
    return ops, a, b, roots


@register("li", "INT", "recursive evaluation of expression trees")
def build(scale: int) -> str:
    ops, a, b, roots = _build_trees(seed=0x115 + scale)
    env = DeterministicRNG(0x115).ints(_ENV_SIZE, 1, 9)
    return f"""
# li: recursive expression evaluator over static trees
.data
{words_directive("nodeop", ops)}
{words_directive("nodea", a)}
{words_directive("nodeb", b)}
{words_directive("roots", roots)}
{words_directive("env", env)}
results: .space {_TREES}
visits:  .space {len(ops)}

.text
main:
    li   a0, 1048576          # pass budget
pass_loop:
    li   s4, 0                # tree index
tree_loop:
    la   t0, roots
    add  t0, t0, s4
    lw   a1, 0(t0)
    call eval
    la   t0, results
    add  t0, t0, s4
    sw   v0, 0(t0)
    addi s4, s4, 1
    li   t1, {_TREES}
    blt  s4, t1, tree_loop
    # evolve env[0] with period 4: the cross-pass chain is periodic,
    # so evaluation becomes fully repetitive after four passes
    la   t0, env
    lw   t1, 0(t0)
    addi t1, t1, 1
    andi t1, t1, 3
    sw   t1, 0(t0)
    subi a0, a0, 1
    bgtz a0, pass_loop
    halt

# eval: a1 = node index -> v0 = value
eval:
    # GC bookkeeping: visits[node]++ (evolving, bounds trace sizes;
    # the chains are per-node, so they stay off the critical path)
    la   t0, visits
    add  t0, t0, a1
    lw   t1, 0(t0)
    addi t1, t1, 1
    sw   t1, 0(t0)
    la   t0, nodeop
    add  t0, t0, a1
    lw   t1, 0(t0)            # op
    bnez t1, eval_not_const
    la   t0, nodea
    add  t0, t0, a1
    lw   v0, 0(t0)
    ret
eval_not_const:
    li   t2, {_OP_VAR}
    bne  t1, t2, eval_binop
    la   t0, nodea
    add  t0, t0, a1
    lw   t3, 0(t0)
    la   t0, env
    add  t0, t0, t3
    lw   v0, 0(t0)
    ret
eval_binop:
    push ra
    push a1                   # save node index
    la   t0, nodea
    add  t0, t0, a1
    lw   a1, 0(t0)
    call eval                 # left operand
    push v0
    lw   a1, 1(sp)            # reload node index
    la   t0, nodeb
    add  t0, t0, a1
    lw   a1, 0(t0)
    call eval                 # right operand (in v0)
    pop  t4                   # left value
    pop  a1                   # node index
    la   t0, nodeop
    add  t0, t0, a1
    lw   t1, 0(t0)
    li   t2, {_OP_ADD}
    bne  t1, t2, eval_try_sub
    add  v0, t4, v0
    j    eval_done
eval_try_sub:
    li   t2, {_OP_SUB}
    bne  t1, t2, eval_mul
    sub  v0, t4, v0
    j    eval_done
eval_mul:
    mul  v0, t4, v0
eval_done:
    pop  ra
    ret
"""
