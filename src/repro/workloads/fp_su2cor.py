"""``su2cor`` — lattice correlation with bookkeeping counters
(SPEC95 su2cor).

Most of the work computes nearest-neighbour correlations over a
static table of gauge links (periodic across sweeps via an
alternating input copy, hence reusable); per-site visit counters in
memory keep a minority of the instructions genuinely evolving.  This
lands su2cor in the upper-middle of the reusability range with medium
traces, as in the paper.
"""

from __future__ import annotations

from repro.workloads.base import register
from repro.workloads.generators import floats_directive, smooth_grid

_N = 64


@register("su2cor", "FP", "static link correlations plus per-site visit counters")
def build(scale: int) -> str:
    links = smooth_grid(_N + 4, seed=0x52C0, lo=-1.0, hi=1.0)
    return f"""
# su2cor: corr[i][d] = links[i]*links[i+d] for d in 1..3 (periodic)
#         visits[i]++ (evolving bookkeeping, never repeats)
.data
{floats_directive("links", links + links)}
corr:   .space {3 * _N}
visits: .space {_N}

.text
main:
    li   a0, 1048576          # sweep budget
    li   s7, 0                # periodic phase
sweep_loop:
    addi s7, s7, 1
    andi s7, s7, 1            # phase alternates 0/1 (periodic spine)
    muli s0, s7, {_N + 4}
    la   t5, links
    add  s0, s0, t5           # this sweep's link copy
    la   s1, corr
    la   s2, visits
    li   t0, 0
    li   s5, {_N}
site_loop:
    add  t1, s0, t0
    flw  f0, 0(t1)            # links[i]
    # correlations at distances 1..3 (periodic, repeat every 2 sweeps)
    flw  f1, 1(t1)
    fmul f2, f0, f1
    muli t2, t0, 3
    add  t2, s1, t2
    fsw  f2, 0(t2)
    flw  f1, 2(t1)
    fmul f2, f0, f1
    fsw  f2, 1(t2)
    flw  f1, 3(t1)
    fmul f2, f0, f1
    fsw  f2, 2(t2)
    # bookkeeping on even sites only: visits[i]++ (evolving)
    andi t4, t0, 1
    bnez t4, skip_visit
    add  t3, s2, t0
    lw   t4, 0(t3)
    addi t4, t4, 1
    sw   t4, 0(t3)
skip_visit:
    addi t0, t0, 1
    blt  t0, s5, site_loop
    subi a0, a0, 1
    bgtz a0, sweep_loop
    halt
"""
