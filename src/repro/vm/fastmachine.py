"""Block-compiling execution backend: ``FastMachine``.

:class:`~repro.vm.machine.Machine` already compiles each *static
instruction* into a closure; at paper-scale budgets (50M dynamic
instructions) the remaining cost is the per-instruction closure call
plus ten bound-method appends per trace record.  ``FastMachine``
removes both: any pc that becomes *hot* seeds a superblock trace
(profile-biased, optionally loop-unrolled) which compiles once into
one specialised Python function of straight-line code (register
indices constant-folded, ``r0`` reads folded to ``0``, 64-bit wraps
inlined, trace emission batched per exit site), while cold or
irregular code — including mid-block entries via ``jr`` — runs
through the inherited one-at-a-time interpreter.

The contract is **bit-identical traces**: for any program, budget and
machine state, ``FastMachine.run`` must produce exactly the trace,
final architectural state and errors of ``Machine.run``.  The
differential suite (``tests/test_fastmachine.py``) enforces this with
``Machine`` as the oracle, over every workload kernel and over
generated ``repro.lang`` programs.

Mechanics worth knowing:

- Blocks are *superblocks*: a conditional branch does not end one.
  Normally its taken side compiles to an early exit and the
  fallthrough continues straight-line; when the interpreter's warm-up
  branch profile says the branch is mostly *taken*, :func:`form_trace`
  follows the taken side instead and the emitted compare is inverted —
  which is what keeps loop-shaped code inside one trace.  A pure loop
  trace (sole backedge is the final transition) is additionally
  unrolled (:func:`unroll_loop_path`) and compiles to an internal loop
  that re-enters itself while budget remains.
- Trace emission happens exactly once per block invocation, at
  whichever exit is taken: the dynamic fixed-width columns (pc and
  next-pc) are staged as one interleaved pair array sliced from
  bind-time constants — one slice-assign per exit site — while the
  static ones (op, latency) are never staged at all, being gathered
  from per-pc tables at the end; the variable-width pair columns get
  at most one
  ``list.extend``/``array.extend`` per column per site, with dynamic
  memory locations patched in by negative index.  A fault exit
  flushes every instruction before the faulting one and raises the
  interpreter's exact ``VMError`` (message, pc, line).
- ``read_bounds``/``write_bounds`` are not maintained in the hot loop
  at all: the number of read/write pairs an instruction emits is a
  static property of its opcode and destination, so both columns are
  reconstructed in one vectorised (numpy) or
  :func:`itertools.accumulate` pass at the end.
- A block whose executions keep exiting in its first quarter was
  formed from a stale profile; after 64 short exits the driver
  retires it, feeds the observed exit direction back into the branch
  profile and recompiles (at most 4 times per head), so mispredicted
  traces self-correct even when the divergent branch only ever
  executes inside compiled code.
- Cyclic GC is disabled for the duration of :meth:`FastMachine.run`
  (steady-state allocations are acyclic; generational passes over the
  ever-growing trace columns are what makes the plain interpreter
  *degrade* at paper-scale budgets) and restored on exit.
"""

from __future__ import annotations

import gc

from array import array
from itertools import accumulate
from math import isfinite

try:  # vectorised bounds reconstruction; stdlib fallback below
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

from repro.isa.opcodes import Opcode
from repro.isa.registers import FP_REG_BASE, MEM_LOC_BASE
from repro.vm.errors import VMError
from repro.vm.machine import DEFAULT_STACK_TOP, Machine
from repro.vm.program import Program
from repro.vm.trace import ColumnarTrace, preallocated_pcn

#: Compile a block once it has been entered this many times; earlier
#: entries run through the interpreter (cold path), which doubles as
#: the warm-up branch profile that steers trace formation.
DEFAULT_HOT_THRESHOLD = 8

#: Upper bound on compiled-block length.  Deliberately modest: besides
#: bounding generated-function compile time, short blocks keep the
#: emitted bytecode friendly to CPython's adaptive interpreter and the
#: CPU's caches, and a shorter biased trace overruns its real
#: divergence point less often — a (48, 32, 8) sweep optimum beat
#: (96, 64, 16) by 10-15% on the branchy and FP kernels.  Longer
#: straight-line stretches split into consecutive blocks linked by
#: fallthrough returns.
MAX_BLOCK_LEN = 48

#: Pure loop traces (sole backedge at the end) are unrolled until the
#: generated block reaches about this many entries, capped at
#: :data:`MAX_LOOP_UNROLL` copies, so one exit-site flush covers many
#: iterations of a short loop body.
LOOP_UNROLL_ENTRIES = 32
MAX_LOOP_UNROLL = 8

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


class _Unsupported(Exception):
    """Internal: this block cannot be compiled; interpret it forever."""


_wrap_n = 0


def _wrap(e: str) -> str:
    """Inline 64-bit two's-complement wrap of an int expression.

    The wrap arithmetic allocates multi-digit longs, so it only runs
    when the value actually left the int64 range: the common in-range
    case is two compares.  The walrus binding lives in the condition,
    which Python evaluates first.
    """
    global _wrap_n
    _wrap_n += 1
    t = f"t{_wrap_n}"
    return (
        f"({t} if {-_SIGN64} <= ({t} := {e}) <= {_SIGN64 - 1} "
        f"else (({t} + {_SIGN64}) & {_MASK64}) - {_SIGN64})"
    )


def _lit(v) -> str:
    """A Python literal for an int/float constant operand."""
    s = repr(v)
    if isinstance(v, float) and not isfinite(v):
        raise _Unsupported("non-finite float immediate")
    return f"({s})" if s.startswith("-") else s


_INT_RR_EXPR = {
    Opcode.ADD: lambda a, b: _wrap(f"{a} + {b}"),
    Opcode.SUB: lambda a, b: _wrap(f"{a} - {b}"),
    Opcode.AND: lambda a, b: f"{a} & {b}",
    Opcode.OR: lambda a, b: f"{a} | {b}",
    Opcode.XOR: lambda a, b: f"{a} ^ {b}",
    Opcode.SLL: lambda a, b: _wrap(f"{a} << ({b} & 63)"),
    Opcode.SRL: lambda a, b: _wrap(f"({a} & {_MASK64}) >> ({b} & 63)"),
    Opcode.SRA: lambda a, b: f"{a} >> ({b} & 63)",
    Opcode.SLT: lambda a, b: f"(1 if {a} < {b} else 0)",
    Opcode.SEQ: lambda a, b: f"(1 if {a} == {b} else 0)",
    Opcode.MUL: lambda a, b: _wrap(f"{a} * {b}"),
}
#: Immediate forms; shift amounts fold to ``imm & 63`` at codegen time.
_INT_RI_EXPR = {
    Opcode.ADDI: lambda a, v: _wrap(f"{a} + {_lit(v)}"),
    Opcode.ANDI: lambda a, v: f"{a} & {_lit(v)}",
    Opcode.ORI: lambda a, v: f"{a} | {_lit(v)}",
    Opcode.XORI: lambda a, v: f"{a} ^ {_lit(v)}",
    Opcode.SLLI: lambda a, v: _wrap(f"{a} << {v & 63}"),
    Opcode.SRLI: lambda a, v: _wrap(f"({a} & {_MASK64}) >> {v & 63}"),
    Opcode.SRAI: lambda a, v: f"{a} >> {v & 63}",
    Opcode.SLTI: lambda a, v: f"(1 if {a} < {_lit(v)} else 0)",
    Opcode.MULI: lambda a, v: _wrap(f"{a} * {_lit(v)}"),
}
_BRANCH_SYM = {
    Opcode.BEQ: "==", Opcode.BNE: "!=", Opcode.BLT: "<",
    Opcode.BGE: ">=", Opcode.BLE: "<=", Opcode.BGT: ">",
}
#: Negated comparison, for branches followed along their taken side
#: (the block then *exits* on the fallthrough condition).
_BRANCH_NEG = {
    Opcode.BEQ: "!=", Opcode.BNE: "==", Opcode.BLT: ">=",
    Opcode.BGE: "<", Opcode.BLE: ">", Opcode.BGT: "<=",
}
_FP_RR_SYM = {Opcode.FADD: "+", Opcode.FSUB: "-", Opcode.FMUL: "*"}
_FP_CMP_SYM = {Opcode.FEQ: "==", Opcode.FLT: "<", Opcode.FLE: "<="}

#: Opcodes that unconditionally end a superblock.  Conditional
#: branches do *not*: their taken side compiles to an early exit and
#: the fallthrough side continues in the same block.
_UNCOND_CTRL = frozenset({Opcode.J, Opcode.JAL, Opcode.JR, Opcode.HALT})

#: All control-transfer opcodes (kept for external callers/tests).
_CTRL_OPS = frozenset(_BRANCH_SYM) | _UNCOND_CTRL

#: Upper bound on conditional-branch exits per superblock; bounds the
#: per-exit flush code the block factory carries.
MAX_BLOCK_EXITS = 16


# ----------------------------------------------------------------------
# static program analysis
# ----------------------------------------------------------------------

def discover_blocks(
    program: Program, max_len: int = MAX_BLOCK_LEN,
    max_exits: int = MAX_BLOCK_EXITS,
) -> dict[int, tuple[int, ...]]:
    """Superblock traces as ``{leader_pc: (pc, pc, ...)}`` paths.

    Leaders are the entry point, every branch/jump target and the
    instruction after an unconditional transfer.  From each leader the
    trace follows the static fallthrough path: a conditional branch
    does *not* end it (the taken side becomes an early exit), and
    neither does an unconditional ``j``/``jal`` with an in-range
    target — the jump is *folded* into the trace and formation
    continues at its target, so a path is not necessarily contiguous
    and may duplicate the tail of another block.  Formation stops at
    ``jr``/``halt``, at a backedge into the path itself, and at the
    ``max_len``/``max_exits`` bounds.  ``jr`` targets are dynamic and
    therefore not leaders; entering the middle of a path that way
    simply runs on the interpreter until the next leader.
    """
    instrs = program.instructions
    n = len(instrs)
    if n == 0:
        return {}
    leaders = {0, program.text_labels.get("main", 0)} & set(range(n))
    for pc, inst in enumerate(instrs):
        op = inst.op
        if op in _UNCOND_CTRL:
            if pc + 1 < n:
                leaders.add(pc + 1)
            if op is Opcode.J or op is Opcode.JAL:
                target = int(inst.imm)
                if 0 <= target < n:
                    leaders.add(target)
        elif op in _BRANCH_SYM:
            target = int(inst.imm)
            if 0 <= target < n:
                leaders.add(target)
    blocks: dict[int, tuple[int, ...]] = {}
    work = sorted(leaders)
    while work:
        start = work.pop()
        if start in blocks:
            continue
        path, cont = form_trace(program, start, max_len=max_len,
                                max_exits=max_exits)
        blocks[start] = path
        # a cut not at an unconditional terminator starts a
        # continuation block, so long stretches chain instead of
        # falling back to the interpreter
        if 0 <= cont < n and cont not in blocks:
            work.append(cont)
    return blocks


def form_trace(
    program: Program, start: int, *, max_len: int = MAX_BLOCK_LEN,
    max_exits: int = MAX_BLOCK_EXITS, bias=None,
) -> tuple[tuple[int, ...], int]:
    """One superblock trace from ``start``: ``(path, continuation)``.

    Walks the static fallthrough path, folding unconditional
    ``j``/``jal`` jumps into the trace.  With ``bias`` (a
    ``pc -> bool`` predicate fed by the interpreter's warm-up branch
    profile), a conditional branch observed to be mostly *taken* is
    followed along its taken side instead — the block then exits on
    the fallthrough condition — which is what keeps loop-shaped code
    inside one trace.  ``continuation`` is the pc where a
    length/exit-bound cut left off (−1 when the trace closed itself).
    """
    instrs = program.instructions
    n = len(instrs)
    path: list[int] = []
    seen: set[int] = set()
    exits = 0
    pc = start
    cont = -1  # continuation leader when cut mid-stream
    while True:
        path.append(pc)
        seen.add(pc)
        inst = instrs[pc]
        op = inst.op
        if op in _UNCOND_CTRL:
            if op is Opcode.J or op is Opcode.JAL:
                t = int(inst.imm)
                if 0 <= t < n and t not in seen and len(path) < max_len:
                    pc = t  # fold the jump; continue at its target
                    continue
            break  # jr/halt, or a jump we do not fold
        if op in _BRANCH_SYM:
            exits += 1
            if exits >= max_exits:
                cont = pc + 1
                break
            if bias is not None and bias(pc):
                t = int(inst.imm)
                if 0 <= t < n and t not in seen and len(path) < max_len:
                    pc = t  # follow the taken side; exit on fallthrough
                    continue
        nxt = pc + 1
        if nxt >= n or nxt in seen or len(path) >= max_len:
            cont = nxt
            break
        pc = nxt
    return tuple(path), cont


def emission_counts(program: Program) -> tuple[list[int], list[int]]:
    """Per-static-pc ``(reads, writes)`` pair counts of the trace record.

    Both are static properties of the decoded instruction (an ``r0``
    destination discards the write), which is what lets the backends
    rebuild the bounds columns after the run instead of maintaining
    them per instruction.
    """
    rcounts: list[int] = []
    wcounts: list[int] = []
    for inst in program.instructions:
        op = inst.op
        dst = 1 if inst.rd else 0
        if op in _INT_RR_EXPR or op is Opcode.DIV or op is Opcode.REM:
            r, w = 2, dst
        elif op in _INT_RI_EXPR:
            r, w = 1, dst
        elif op in _BRANCH_SYM:
            r, w = 2, 0
        elif op in _FP_RR_SYM or op is Opcode.FDIV:
            r, w = 2, 1
        elif op in _FP_CMP_SYM:
            r, w = 2, dst
        elif op is Opcode.LI:
            r, w = 0, dst
        elif op is Opcode.MOV:
            r, w = 1, dst
        elif op is Opcode.LW:
            r, w = 2, dst
        elif op in (Opcode.SW, Opcode.FLW, Opcode.FSW):
            r, w = 2, 1
        elif op is Opcode.J:
            r, w = 0, 0
        elif op is Opcode.JAL:
            r, w = 0, dst
        elif op is Opcode.JR:
            r, w = 1, 0
        elif op in (Opcode.FSQRT, Opcode.FNEG, Opcode.FABS, Opcode.FMOV,
                    Opcode.CVTIF):
            r, w = 1, 1
        elif op is Opcode.CVTFI:
            r, w = 1, dst
        elif op is Opcode.FLI:
            r, w = 0, 1
        elif op in (Opcode.NOP, Opcode.HALT):
            r, w = 0, 0
        else:  # pragma: no cover - all opcodes are wired up
            raise VMError(f"unimplemented opcode {op.name}")
        rcounts.append(r)
        wcounts.append(w)
    return rcounts, wcounts


# ----------------------------------------------------------------------
# block code generation
# ----------------------------------------------------------------------

class _BlockCodegen:
    """Generates the factory source for one superblock.

    The factory binds machine state and column sinks once per run and
    returns ``_block(c)``: execute from the block leader with the trace
    cursor at ``c``, mutate architectural state in place, and return an
    ``(executed, next_pc)`` tuple.  Taken conditional branches and
    faults are *early exits*; every exit site — including the final
    fallthrough — flushes exactly the trace prefix it executed in one
    batch (slice assignments from arrays sliced once at bind time, at
    most one ``extend`` per pair column), so nothing is emitted per
    instruction on the way through.
    """

    def __init__(self, n_static: int, leader: int = -1,
                 loop_mode: bool = False):
        self.n_static = n_static
        self.leader = leader
        #: when the trace has an exit targeting its own leader, the
        #: block iterates internally: the backedge site advances the
        #: cursors and re-enters the top while ``room`` allows
        self.loop_mode = loop_mode
        self.body: list[str] = []
        self.consts: list[str] = []
        self.entries: list[tuple] = []  # (pc, op, lat, fall_next, reads, writes)
        self.regmap: dict[int, str] = {}
        self.fregmap: dict[int, str] = {}
        self.site = 0
        self.closed = False        # an unconditional terminator was emitted
        self.uses_fexit = False
        self.full_size: int | None = None
        self.final_ret: int | None = None   # next pc for J/JAL/HALT ends
        self.final_dyn: str | None = None   # next-pc expression for JR

    # -- operand helpers ------------------------------------------------
    def _rread(self, r: int, off: int) -> str:
        if r == 0:
            return "0"  # r0 is hardwired zero; skip the list load
        name = self.regmap.get(r)
        if name is None:
            name = f"r{r}_{off}"
            self.body.append(f"{name} = regs[{r}]")
            self.regmap[r] = name
        return name

    def _fread(self, r: int, off: int) -> str:
        name = self.fregmap.get(r)
        if name is None:
            name = f"f{r}_{off}"
            self.body.append(f"{name} = fregs[{r}]")
            self.fregmap[r] = name
        return name

    def _rwrite(self, rd: int, expr: str, off: int, writes: list) -> None:
        if rd == 0:
            return  # r0 is hardwired zero; the write is discarded
        name = f"w{rd}_{off}"
        self.body.append(f"{name} = {expr}")
        self.body.append(f"regs[{rd}] = {name}")
        self.regmap[rd] = name
        writes.append((rd, name))

    def _fwrite(self, rd: int, expr: str, off: int, writes: list) -> None:
        name = f"g{rd}_{off}"
        self.body.append(f"{name} = {expr}")
        self.body.append(f"fregs[{rd}] = {name}")
        self.fregmap[rd] = name
        writes.append((FP_REG_BASE + rd, name))

    def _fault(self, cond: str, off: int, pc: int, line: int,
               msg: str) -> None:
        """Emit a guarded fault exit: the shared ``_fexit`` helper
        flushes the executed prefix, restores machine state, and builds
        the ``VMError`` with the interpreter's exact message."""
        self.uses_fexit = True
        ents = self.entries  # exactly the ``off`` instructions before us
        rl = [p[0] for t in ents for p in t[4]]
        rv = [p[1] for t in ents for p in t[4]]
        wl = [p[0] for t in ents for p in t[5]]
        wv = [p[1] for t in ents for p in t[5]]
        self.body.append(
            f"if {cond}: raise _fexit(c, {pc}, {off}, {line}, {msg}, "
            f"{self._tuple(rl)}, {self._tuple(rv)}, "
            f"{self._tuple(wl)}, {self._tuple(wv)})"
        )

    # -- emission -------------------------------------------------------
    @staticmethod
    def _fmt(x) -> str:
        return x if isinstance(x, str) else repr(x)

    def _tuple(self, xs: list) -> str:
        if not xs:
            return "()"
        return "(" + ", ".join(self._fmt(x) for x in xs) + ",)"

    def _const(self, name: str, src: str) -> None:
        self.consts.append(f"{name} = {src}")

    def _pair_lines(self, ents: list, s: int) -> list[str]:
        """Pair-column emission for a prefix: one ``extend`` per column.

        Locations are almost entirely static, so each site extends the
        ``array('q')`` loc column from a constant array (a memcpy) and
        then *patches* the few dynamic memory locations in place by
        negative index — no per-entry Python-object loc traffic and no
        end-of-run list-to-array conversion.  Values are genuinely
        dynamic and go through one tuple ``extend`` per column.
        """
        out: list[str] = []
        for idx, arr, lext, vext, tag in ((4, "RL", "RLx", "RVx", "r"),
                                          (5, "WL", "WLx", "WVx", "w")):
            pairs = [p for t in ents for p in t[idx]]
            if not pairs:
                continue
            k = len(pairs)
            locs = [p[0] for p in pairs]
            vals = [p[1] for p in pairs]
            name = f"_{tag}l{s}"
            self._const(name, "_A('q', %r)" % (
                tuple(0 if isinstance(x, str) else x for x in locs),))
            out.append(f"{lext}({name})")
            for d, x in enumerate(locs):
                if isinstance(x, str):  # dynamic memory loc: patch
                    out.append(f"{arr}[{d - k}] = {x}")
            if all(not isinstance(x, str) for x in vals):
                vname = f"_{tag}v{s}"
                self._const(vname, repr(tuple(vals)))
                out.append(f"{vext}({vname})")
            else:
                out.append(f"{vext}({self._tuple(vals)})")
        return out

    def _flush_lines(self, k: int, last_next: int | None, s: int) -> list[str]:
        """Batched emission of ``entries[:k]``; ``last_next`` overrides
        the final entry's next-pc column (taken-branch exits)."""
        ents = self.entries[:k]
        if self.full_size is not None and k == self.full_size:
            qa = "_q"
        else:
            qa = f"_qe{s}"
            self._const(qa, f"_q[:{2 * k}]")
            if last_next is not None and last_next != ents[-1][3]:
                # patch the exit's own next pc once, at bind time
                self.consts.append(f"{qa}[{2 * k - 1}] = {last_next}")
        out = [f"PCN[c2:c2+{2 * k}] = {qa}"]
        out += self._pair_lines(ents, s)
        return out

    def _branch_exit(self, cond: str, target: int) -> None:
        """The exiting side of a conditional branch: flush the prefix
        (including the branch itself) and leave — or, for a backedge
        into the block's own leader, loop internally while the budget
        ``room`` holds another full iteration."""
        k = len(self.entries)
        s = self.site
        self.site += 1
        B = self.body.append
        B(f"if {cond}:")
        for line in self._flush_lines(k, target, s):
            B("    " + line)
        if self.loop_mode and target == self.leader:
            B(f"    c2 += {2 * k}")
            B(f"    c += {k}")
            B(f"    kt += {k}")
            B(f"    room -= {k}")
            B("    if room >= _SZ:")
            B("        continue")
            B(f"    return (kt, {target})")
        elif self.loop_mode:
            B(f"    return (kt + {k}, {target})")
        else:
            self._const(f"_x{s}", repr((k, target)))
            B(f"    return _x{s}")

    # -- per-instruction translation ------------------------------------
    def emit(self, inst, pc: int, off: int, follow: bool = False,
             invert: bool = False) -> None:
        """Translate one instruction at path offset ``off``.

        ``follow`` marks a ``j``/``jal`` folded into the path: it
        emits its trace record (next pc = target) without closing the
        block, because the caller continues emission at the target.
        ``invert`` marks a conditional branch followed along its
        *taken* side: the block continues at the branch target and
        exits on the fallthrough condition instead.
        """
        if self.closed:
            raise _Unsupported("unconditional terminator mid-block")
        op = inst.op
        rd, rs1, rs2, imm = inst.rd, inst.rs1, inst.rs2, inst.imm
        line = inst.line
        reads: list = []
        writes: list = []
        nxt: int = pc + 1

        if op in _INT_RR_EXPR:
            a = self._rread(rs1, off)
            b = self._rread(rs2, off)
            reads = [(rs1, a), (rs2, b)]
            self._rwrite(rd, _INT_RR_EXPR[op](a, b), off, writes)
        elif op in _INT_RI_EXPR:
            a = self._rread(rs1, off)
            reads = [(rs1, a)]
            self._rwrite(rd, _INT_RI_EXPR[op](a, imm), off, writes)
        elif op in _BRANCH_SYM:
            a = self._rread(rs1, off)
            b = self._rread(rs2, off)
            reads = [(rs1, a), (rs2, b)]
            # the record's next pc is the direction the block keeps
            # going; the other side exits with its own prefix flush
            if invert:
                self.entries.append(
                    (pc, int(op), inst.latency, int(imm), reads, writes)
                )
                self._branch_exit(f"{a} {_BRANCH_NEG[op]} {b}", pc + 1)
            else:
                self.entries.append(
                    (pc, int(op), inst.latency, pc + 1, reads, writes)
                )
                self._branch_exit(f"{a} {_BRANCH_SYM[op]} {b}", int(imm))
            return
        elif op in _FP_RR_SYM:
            a = self._fread(rs1, off)
            b = self._fread(rs2, off)
            reads = [(FP_REG_BASE + rs1, a), (FP_REG_BASE + rs2, b)]
            self._fwrite(rd, f"{a} {_FP_RR_SYM[op]} {b}", off, writes)
        elif op in _FP_CMP_SYM:
            a = self._fread(rs1, off)
            b = self._fread(rs2, off)
            reads = [(FP_REG_BASE + rs1, a), (FP_REG_BASE + rs2, b)]
            self._rwrite(rd, f"(1 if {a} {_FP_CMP_SYM[op]} {b} else 0)",
                         off, writes)
        elif op is Opcode.DIV or op is Opcode.REM:
            a = self._rread(rs1, off)
            b = self._rread(rs2, off)
            reads = [(rs1, a), (rs2, b)]
            kind = "remainder" if op is Opcode.REM else "division"
            self._fault(f"{b} == 0", off, pc, line,
                        f"'integer {kind} by zero'")
            q = f"q{off}"
            self.body.append(f"{q} = trunc({a}, {b})")
            expr = (_wrap(f"{a} - {q} * {b}") if op is Opcode.REM
                    else _wrap(q))
            self._rwrite(rd, expr, off, writes)
        elif op is Opcode.LI:
            v = int(imm)
            if rd:
                self.body.append(f"regs[{rd}] = {_lit(v)}")
                self.regmap[rd] = _lit(v)
                writes = [(rd, v)]
        elif op is Opcode.MOV:
            a = self._rread(rs1, off)
            reads = [(rs1, a)]
            self._rwrite(rd, a, off, writes)
        elif op is Opcode.LW:
            base = self._rread(rs1, off)
            ad = f"ad{off}"
            if imm:
                self.body.append(f"{ad} = {base} + {_lit(imm)}")
            else:
                ad = base
            self._fault(f"{ad} < 0", off, pc, line,
                        f"'negative memory address %d' % {ad}")
            v = f"v{off}"
            self.body.append(f"{v} = mem_get({ad}, 0)")
            self.body.append(f"if {v}.__class__ is float: {v} = _int({v})")
            reads = [(rs1, base), (f"{MEM_LOC_BASE} + {ad}", v)]
            self._rwrite(rd, v, off, writes)
        elif op is Opcode.SW:
            base = self._rread(rs1, off)
            ad = f"ad{off}"
            if imm:
                self.body.append(f"{ad} = {base} + {_lit(imm)}")
            else:
                ad = base
            self._fault(f"{ad} < 0", off, pc, line,
                        f"'negative memory address %d' % {ad}")
            v = self._rread(rs2, off)
            self.body.append(f"memory[{ad}] = {v}")
            reads = [(rs1, base), (rs2, v)]
            writes = [(f"{MEM_LOC_BASE} + {ad}", v)]
        elif op is Opcode.FLW:
            base = self._rread(rs1, off)
            ad = f"ad{off}"
            if imm:
                self.body.append(f"{ad} = {base} + {_lit(imm)}")
            else:
                ad = base
            self._fault(f"{ad} < 0", off, pc, line,
                        f"'negative memory address %d' % {ad}")
            v = f"v{off}"
            self.body.append(f"{v} = mem_get({ad}, 0)")
            self.body.append(
                f"if {v}.__class__ is not float: {v} = _float({v})"
            )
            self.body.append(f"fregs[{rd}] = {v}")
            self.fregmap[rd] = v
            reads = [(rs1, base), (f"{MEM_LOC_BASE} + {ad}", v)]
            writes = [(FP_REG_BASE + rd, v)]
        elif op is Opcode.FSW:
            base = self._rread(rs1, off)
            ad = f"ad{off}"
            if imm:
                self.body.append(f"{ad} = {base} + {_lit(imm)}")
            else:
                ad = base
            self._fault(f"{ad} < 0", off, pc, line,
                        f"'negative memory address %d' % {ad}")
            v = self._fread(rs2, off)
            self.body.append(f"memory[{ad}] = {v}")
            reads = [(rs1, base), (FP_REG_BASE + rs2, v)]
            writes = [(f"{MEM_LOC_BASE} + {ad}", v)]
        elif op is Opcode.J:
            nxt = int(imm)
            if not follow:
                self.closed = True
                self.final_ret = nxt
        elif op is Opcode.JAL:
            link = pc + 1
            if rd:
                self.body.append(f"regs[{rd}] = {link}")
                self.regmap[rd] = str(link)
                writes = [(rd, link)]
            nxt = int(imm)
            if not follow:
                self.closed = True
                self.final_ret = nxt
        elif op is Opcode.JR:
            a = self._rread(rs1, off)
            reads = [(rs1, a)]
            nxt = 0  # placeholder; patched with the dynamic target
            self.closed = True
            self.final_dyn = a
        elif op is Opcode.FDIV:
            a = self._fread(rs1, off)
            b = self._fread(rs2, off)
            reads = [(FP_REG_BASE + rs1, a), (FP_REG_BASE + rs2, b)]
            self._fault(f"{b} == 0.0", off, pc, line,
                        "'floating division by zero'")
            self._fwrite(rd, f"{a} / {b}", off, writes)
        elif op is Opcode.FSQRT:
            a = self._fread(rs1, off)
            reads = [(FP_REG_BASE + rs1, a)]
            self._fault(f"{a} < 0.0", off, pc, line,
                        "'square root of a negative value'")
            self._fwrite(rd, f"{a} ** 0.5", off, writes)
        elif op is Opcode.FNEG:
            a = self._fread(rs1, off)
            reads = [(FP_REG_BASE + rs1, a)]
            self._fwrite(rd, f"-{a}", off, writes)
        elif op is Opcode.FABS:
            a = self._fread(rs1, off)
            reads = [(FP_REG_BASE + rs1, a)]
            self._fwrite(rd, f"_abs({a})", off, writes)
        elif op is Opcode.FMOV:
            a = self._fread(rs1, off)
            reads = [(FP_REG_BASE + rs1, a)]
            self._fwrite(rd, a, off, writes)
        elif op is Opcode.FLI:
            v = float(imm)
            lit = _lit(v)
            self.body.append(f"fregs[{rd}] = {lit}")
            self.fregmap[rd] = lit
            writes = [(FP_REG_BASE + rd, v)]
        elif op is Opcode.CVTIF:
            a = self._rread(rs1, off)
            reads = [(rs1, a)]
            self._fwrite(rd, f"_float({a})", off, writes)
        elif op is Opcode.CVTFI:
            a = self._fread(rs1, off)
            reads = [(FP_REG_BASE + rs1, a)]
            # computed even for an r0 destination, like the interpreter
            # (int(inf) raises on both backends)
            r = f"cv{off}"
            self.body.append(f"{r} = {_wrap(f'_int({a})')}")
            if rd:
                self.body.append(f"regs[{rd}] = {r}")
                self.regmap[rd] = r
                writes = [(rd, r)]
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.body.append("m.halted = True")
            self.body.append(f"m.pc = {pc}")
            nxt = pc
            self.closed = True
            self.final_ret = self.n_static  # out-of-range sentinel;
            # the driver breaks on the halted flag and restores m.pc
        else:
            raise _Unsupported(op.name)

        self.entries.append((pc, int(op), inst.latency, nxt, reads, writes))

    def source(self, fallthrough: int) -> str:
        """Assemble the factory source after all instructions emitted."""
        size = len(self.entries)
        self.full_size = size
        s = self.site
        self.site += 1
        body = list(self.body)
        body += self._flush_lines(size, None, s)
        if self.final_dyn is not None:  # JR: patch the dynamic target
            body.append(f"PCN[c2+{2 * size - 1}] = {self.final_dyn}")
            if self.loop_mode:
                body.append(f"return (kt + {size}, {self.final_dyn})")
            else:
                body.append(f"return ({size}, {self.final_dyn})")
        else:
            npc = self.final_ret if self.closed else fallthrough
            if self.loop_mode and npc == self.leader:
                body += [
                    f"c2 += {2 * size}", f"c += {size}",
                    f"kt += {size}", f"room -= {size}",
                    "if room >= _SZ:", "    continue",
                    f"return (kt, {npc})",
                ]
            elif self.loop_mode:
                body.append(f"return (kt + {size}, {npc})")
            else:
                self._const(f"_x{s}", repr((size, npc)))
                body.append(f"return _x{s}")
        if self.loop_mode:
            self._const("_SZ", str(size))
            body = ["kt = 0", "while 1:"] + ["    " + line for line in body]

        flat: list[int] = []
        for t in self.entries:
            flat += (t[0], t[3])
        heads = [f"_q = _A('i', {tuple(flat)!r})"]
        out = [
            "def _factory(m, regs, fregs, memory, mem_get, PCN, "
            "RL, RLx, RVx, WL, WLx, WVx, VMError, trunc, B0):",
            "    _int = int; _float = float; _abs = abs; _A = _array",
        ]
        out += [f"    {line}" for line in heads]
        out += [f"    {line}" for line in self.consts]
        if self.uses_fexit:
            out += [
                "    def _fexit(c, pc, off, line, msg, "
                "rlocs, rvals, wlocs, wvals):",
                "        q = 2 * c",
                "        PCN[q:q + 2 * off] = _q[:2 * off]",
                "        if rlocs:",
                "            RLx(rlocs)",
                "            RVx(rvals)",
                "        if wlocs:",
                "            WLx(wlocs)",
                "            WVx(wvals)",
                "        m.pc = pc",
                "        m.instruction_count = B0 + c + off",
                "        return VMError(msg, pc=pc, line=line)",
            ]
        out.append("    def _block(c, room):")
        out.append("        c2 = 2 * c")
        out += [f"        {line}" for line in body]
        out.append("    return _block")
        return "\n".join(out) + "\n"


def _trace_steps(instrs, path: tuple[int, ...]):
    """Per-element ``(pc, follow, invert, exit_target)`` of a path.

    ``follow`` folds a ``j``/``jal`` into the trace; ``invert`` means
    a conditional branch is followed along its taken side (so its exit
    target is the fallthrough).  ``exit_target`` is the pc an early
    exit at this element would leave to (None when it cannot exit).
    """
    last = len(path) - 1
    for off, pc in enumerate(path):
        inst = instrs[pc]
        op = inst.op
        follow = invert = False
        exit_target = None
        if op is Opcode.J or op is Opcode.JAL:
            follow = off < last and path[off + 1] == int(inst.imm)
        elif op in _BRANCH_SYM and off < last:
            nxt = path[off + 1]
            target = int(inst.imm)
            if nxt == target and nxt != pc + 1:
                invert = True
                exit_target = pc + 1
            else:
                exit_target = target
        elif op in _BRANCH_SYM:
            exit_target = int(inst.imm)
        yield off, pc, follow, invert, exit_target


def generate_block_source(program: Program, path: tuple[int, ...]) -> str:
    """The factory source for the superblock trace along ``path``.

    A ``j``/``jal`` whose target is the next path element is folded;
    a conditional branch followed along its taken side is inverted.
    When any exit (or the final next pc) targets the path's own
    leader, the block compiles to an internal loop gated on the
    remaining budget.  Exposed for tests and for ``repro
    disasm``-style debugging; raises :class:`_Unsupported` when the
    path cannot be compiled.
    """
    global _wrap_n
    _wrap_n = 0  # temp names restart per block: same path -> same source
    instrs = program.instructions
    leader = path[0]
    steps = list(_trace_steps(instrs, path))
    loop_mode = any(t == leader for _, _, _, _, t in steps)
    if not loop_mode:
        # the final transition may also re-enter the leader
        lpc = path[-1]
        lop = instrs[lpc].op
        if lop is Opcode.J or lop is Opcode.JAL:
            loop_mode = int(instrs[lpc].imm) == leader
        elif lop not in _UNCOND_CTRL:
            loop_mode = lpc + 1 == leader
    gen = _BlockCodegen(len(instrs), leader=leader, loop_mode=loop_mode)
    for off, pc, follow, invert, _ in steps:
        gen.emit(instrs[pc], pc, off, follow, invert)
    return gen.source(path[-1] + 1)


def unroll_loop_path(program: Program, path: tuple[int, ...]) -> tuple[int, ...]:
    """Repeat a *pure* loop trace so one flush covers many iterations.

    A pure loop trace is one whose only backedge into its own leader
    is the final transition.  Exit-site emission has a fixed cost of a
    handful of C calls regardless of span, so short loop bodies pay it
    every iteration; repeating the path lets the generated block run
    up to :data:`MAX_LOOP_UNROLL` iterations between flushes.
    Unrolling is literally path repetition — ``_trace_steps`` folds
    each seam (a ``j`` or fallthrough continues, a backedge branch
    inverts into the next copy) exactly like any followed transition,
    so the emitted trace records are unchanged.  Traces with a
    mid-path backedge (loop plus epilogue) are returned as-is.
    """
    if len(path) >= LOOP_UNROLL_ENTRIES:
        return path
    instrs = program.instructions
    leader = path[0]
    steps = list(_trace_steps(instrs, path))
    if any(t == leader for *_, t in steps[:-1]):
        return path  # impure: mid-path backedge
    back = steps[-1][4] == leader
    if not back:
        lpc = path[-1]
        lop = instrs[lpc].op
        if lop is Opcode.J or lop is Opcode.JAL:
            back = int(instrs[lpc].imm) == leader
        elif lop not in _UNCOND_CTRL:
            back = lpc + 1 == leader
    if not back:
        return path
    unroll = min(MAX_LOOP_UNROLL, LOOP_UNROLL_ENTRIES // len(path))
    return path * unroll if unroll > 1 else path


def _bounds_from_counts(counts: list[int], pcs: array) -> array:
    """Cumulative pair-count column for an executed-pc column.

    ``counts[pc]`` is the (static) number of read or write pairs the
    instruction at ``pc`` emits; the bounds column is its running sum
    with a leading 0.  The numpy path is a gather + cumsum over the
    whole run; the stdlib path streams through ``accumulate``.
    """
    if _np is not None and len(pcs) >= 4096:
        gathered = _np.asarray(counts, dtype=_np.uint32)[
            _np.frombuffer(pcs, dtype=_np.int32)
        ]
        bounds = _np.empty(len(pcs) + 1, dtype=_np.uint32)
        bounds[0] = 0
        _np.cumsum(gathered, out=bounds[1:])
        out = array("I")
        out.frombytes(memoryview(bounds).cast("B"))
        return out
    return array("I", accumulate(map(counts.__getitem__, pcs), initial=0))


def _split_pcn(
    pcn: array, op_table: list[int], lat_table: list[int],
) -> tuple[array, array, array, array]:
    """Expand the staged ``[pc, next_pc]`` pairs into ``(pcs, ops,
    lats, next_pcs)`` with the :class:`ColumnarTrace` typecodes.

    Opcode and latency are static per-pc properties, so they are never
    staged in the hot path at all — they are gathered here from the
    per-pc tables in one vectorised pass (numpy) or one ``map``
    (stdlib fallback).
    """
    n = len(pcn) // 2
    if _np is not None and n >= 4096:
        m = _np.frombuffer(pcn, dtype=_np.int32).reshape(n, 2)
        pcs_np = _np.ascontiguousarray(m[:, 0])
        pcs = array("i")
        pcs.frombytes(memoryview(pcs_np).cast("B"))
        ops = array("h")
        ops.frombytes(memoryview(
            _np.asarray(op_table, dtype=_np.int16)[pcs_np]).cast("B"))
        lats = array("h")
        lats.frombytes(memoryview(
            _np.asarray(lat_table, dtype=_np.int16)[pcs_np]).cast("B"))
        npcs = array("i")
        npcs.frombytes(memoryview(_np.ascontiguousarray(m[:, 1])).cast("B"))
        return pcs, ops, lats, npcs
    pcs = pcn[0::2]
    return (pcs, array("h", map(op_table.__getitem__, pcs)),
            array("h", map(lat_table.__getitem__, pcs)), pcn[1::2])


# ----------------------------------------------------------------------
# the machine
# ----------------------------------------------------------------------

class FastMachine(Machine):
    """Drop-in ``Machine`` whose :meth:`run` executes hot basic blocks
    as compiled straight-line Python.

    ``hot_threshold`` is the number of block entries before a block is
    compiled; below it (and for irregular code such as ``jr`` targets
    into the middle of a block) execution single-steps through the
    inherited interpreter against the same trace columns.
    """

    def __init__(self, program: Program, *,
                 stack_top: int = DEFAULT_STACK_TOP,
                 hot_threshold: int = DEFAULT_HOT_THRESHOLD):
        super().__init__(program, stack_top=stack_top)
        self.hot_threshold = hot_threshold
        self._blocks: dict[int, tuple[int, ...]] | None = None
        self._sizes: list[int] = []
        self._codes: dict[int, object] = {}
        self._rcounts: list[int] = []
        self._wcounts: list[int] = []
        self._hits: list[int] | None = None

    def _analyze(self) -> None:
        n = len(self.program.instructions)
        self._blocks = discover_blocks(self.program)
        self._sizes = [0] * n
        for leader, path in self._blocks.items():
            self._sizes[leader] = len(path)
        self._rcounts, self._wcounts = emission_counts(self.program)
        # static per-pc columns, gathered into the trace at the end
        self._op_table = [int(inst.op) for inst in self.program.instructions]
        self._lat_table = [inst.latency for inst in self.program.instructions]
        self._btaken = [0] * n   # warm-up branch profile: taken count
        self._bseen = [0] * n    # ... and total executions, per branch
        self._isbr = [inst.op in _BRANCH_SYM
                      for inst in self.program.instructions]

    def _bias(self, pc: int) -> bool:
        """Warm-up verdict: was this branch mostly taken so far?"""
        return 2 * self._btaken[pc] > self._bseen[pc] > 0

    def _block_code(self, leader: int):
        """Compiled factory code object for a block (None: uncompilable).

        The trace is (re-)formed here, at compile time, so the warm-up
        branch profile can steer it through the observed hot direction
        of each conditional branch; the leader's dispatch size is
        updated to the profiled trace's length.
        """
        try:
            return self._codes[leader]
        except KeyError:
            pass
        path, _ = form_trace(self.program, leader, bias=self._bias)
        path = unroll_loop_path(self.program, path)
        try:
            src = generate_block_source(self.program, path)
            code = compile(
                src, f"<fastblock {self.program.name}:{leader}>", "exec"
            )
            self._blocks[leader] = path
            self._sizes[leader] = len(path)
        except _Unsupported:
            code = None
        self._codes[leader] = code
        return code

    def run(self, max_instructions: int | None = None) -> ColumnarTrace:
        """Execute until HALT or the budget; bit-identical to
        :meth:`Machine.run` by construction (and by the differential
        suite)."""
        if self._blocks is None:
            self._analyze()
        instrs = self.program.instructions
        n_static = len(instrs)
        sizes = self._sizes
        threshold = self.hot_threshold

        count0 = self.instruction_count
        count = count0
        cur = 0
        pc = self.pc
        finite = max_instructions is not None
        budget = max_instructions if finite else float("inf")

        cap = max(max_instructions - count0, 0) if finite else 1024
        PCN = preallocated_pcn(cap)
        read_locs = array("q")
        read_vals: list = []
        write_locs = array("q")
        write_vals: list = []
        RLa, RVa = read_locs.append, read_vals.append
        WLa, WVa = write_locs.append, write_vals.append
        runtime = (
            self, self.regs, self.fregs, self.memory, self.memory.get,
            PCN,
            read_locs, read_locs.extend, read_vals.extend,
            write_locs, write_locs.extend, write_vals.extend,
            VMError, Machine._trunc_div, count0,
        )

        def ensure(need: int) -> None:
            nonlocal cap
            while cap < need:
                add = max(cap, 1024)
                PCN.frombytes(bytes(2 * add * PCN.itemsize))
                cap += add

        fns: list = [None] * n_static
        # ``hits`` persists across run() calls so chunked execution
        # (run_chunks) recompiles already-hot blocks immediately
        # instead of re-warming per chunk; ``fns`` must stay per-call
        # because each closure binds this call's trace columns.
        hits = self._hits
        if hits is None or len(hits) != n_static:
            hits = self._hits = [0] * n_static
        shorts = [0] * n_static  # entries that exited in the 1st quarter
        retired: dict[int, int] = {}
        blocks = self._blocks
        isbr = self._isbr
        btaken = self._btaken
        bseen = self._bseen

        # Block execution allocates in bursts (value tuples, column
        # growth) that never form reference cycles; cyclic-gc passes
        # over the ever-growing value columns are pure overhead, so
        # collection is paused for the duration of the loop.
        gc_enabled = gc.isenabled()
        if gc_enabled:
            gc.disable()
        try:
            halted_at_entry = self.halted
            while not halted_at_entry and count < budget:
                if not 0 <= pc < n_static:
                    if self.halted:
                        break
                    self.pc = pc
                    self.instruction_count = count
                    raise VMError(f"pc {pc} outside program", pc=pc)
                fn = fns[pc]
                if fn is not None:
                    # a superblock may exit early or loop internally,
                    # so gate on its full size, hand it the remaining
                    # room and advance by what it actually executed
                    size = sizes[pc]
                    if count + size <= budget:
                        if cur + size > cap:
                            ensure(cur + size)
                        head = pc
                        k, pc = fn(
                            cur, budget - count if finite else cap - cur
                        )
                        cur += k
                        count += k
                        # a trace formed from a misleading warm-up
                        # profile keeps exiting near its head; its
                        # divergent branch only ever executes inside
                        # compiled blocks, so the interpreter-side
                        # profile would never self-correct.  Feed the
                        # observed outcome back into the profile and
                        # retire the trace so it re-forms along the
                        # real hot path (capped per head so a
                        # genuinely irregular block cannot churn).
                        if k * 4 < size:
                            shorts[head] = sh = shorts[head] + 1
                            if sh >= 64:
                                shorts[head] = 0
                                r = retired.get(head, 0)
                                if r < 4:
                                    retired[head] = r + 1
                                    div = blocks[head][k - 1]
                                    if isbr[div]:
                                        bseen[div] += 64
                                        if pc != div + 1:
                                            btaken[div] += 64
                                        hits[head] = threshold - 1
                                    else:
                                        hits[head] = 0
                                    fns[head] = None
                                    self._codes.pop(head, None)
                        continue
                else:
                    # every pc can become a trace head (a biased trace
                    # may exit into the middle of a static block, and
                    # ``jr`` lands on dynamic targets)
                    hits[pc] = h = hits[pc] + 1
                    if h >= threshold:
                        code = self._block_code(pc)
                        if code is not None:
                            ns = {"_array": array}
                            exec(code, ns)
                            fns[pc] = ns["_factory"](*runtime)
                            continue
                # cold path: one interpreter step into the same columns
                if cur >= cap:
                    ensure(cur + 1)
                self.pc = pc
                self.instruction_count = count
                rec = self.step()
                q = 2 * cur
                PCN[q] = pc
                PCN[q + 1] = rec.next_pc
                for loc, val in rec.reads:
                    RLa(loc)
                    RVa(val)
                for loc, val in rec.writes:
                    WLa(loc)
                    WVa(val)
                cur += 1
                count += 1
                if isbr[pc]:  # feed the warm-up branch profile
                    bseen[pc] += 1
                    if rec.next_pc != pc + 1:
                        btaken[pc] += 1
                pc = rec.next_pc
                if self.halted:
                    break
        finally:
            if gc_enabled:
                gc.enable()
        if self.halted:
            pc = self.pc
        self.pc = pc
        self.instruction_count = count

        del PCN[2 * cur:]
        PCS, OPS, LATS, NPCS = _split_pcn(
            PCN, self._op_table, self._lat_table
        )
        trace = ColumnarTrace(
            program_name=self.program.name,
            halted=self.halted,
            truncated=not self.halted,
        )
        trace.pcs = PCS
        trace.ops = OPS
        trace.lats = LATS
        trace.next_pcs = NPCS
        trace.read_bounds = _bounds_from_counts(self._rcounts, PCS)
        trace.write_bounds = _bounds_from_counts(self._wcounts, PCS)
        if (trace.read_bounds[-1] != len(read_locs)
                or trace.write_bounds[-1] != len(write_locs)
                or len(read_locs) != len(read_vals)
                or len(write_locs) != len(write_vals)):
            raise RuntimeError(
                "fast backend emitted inconsistent trace columns "
                f"(internal error in {self.program.name})"
            )
        trace.read_locs = read_locs
        trace.read_vals = read_vals
        trace.write_locs = write_locs
        trace.write_vals = write_vals
        return trace
