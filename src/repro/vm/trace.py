"""Dynamic instruction records — the unit every analysis consumes.

A :class:`DynInst` is the Python equivalent of one ATOM trace record:
it captures which storage locations an executed instruction read and
wrote **and the values involved**, which is exactly the information
the paper's reuse analyses need.  Locations use the flat integer
encoding from :mod:`repro.isa.registers` so registers and memory flow
through the same dependence tables.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OpClass, op_class
from repro.isa.registers import loc_is_mem


class DynInst:
    """One executed instruction.

    Attributes
    ----------
    pc:
        Instruction index of this dynamic instance.
    op:
        The executed opcode.
    reads:
        Tuple of ``(location, value)`` pairs, in read order.  Includes
        source registers and, for loads, the memory word read.
    writes:
        Tuple of ``(location, value)`` pairs, in write order.
    latency:
        Result latency in cycles (Alpha-21164 model).
    next_pc:
        PC of the dynamically following instruction (branch outcome
        included), which the RTM stores as the resume point of a trace.
    """

    __slots__ = ("pc", "op", "reads", "writes", "latency", "next_pc")

    def __init__(
        self,
        pc: int,
        op: Opcode,
        reads: tuple[tuple[int, int | float], ...],
        writes: tuple[tuple[int, int | float], ...],
        latency: int,
        next_pc: int,
    ) -> None:
        self.pc = pc
        self.op = op
        self.reads = reads
        self.writes = writes
        self.latency = latency
        self.next_pc = next_pc

    def input_signature(self) -> tuple:
        """Hashable identity of this instance's inputs.

        Two dynamic instances of the same static instruction with equal
        signatures read the same locations with the same values — the
        reusability criterion of section 4.2.  The branch/jump outcome
        is a pure function of the inputs, so ``next_pc`` need not be
        part of the signature.
        """
        return self.reads

    def is_memory_op(self) -> bool:
        """True for loads and stores."""
        return self.op_class in (OpClass.LOAD, OpClass.STORE)

    @property
    def op_class(self) -> OpClass:
        """Functional class of the executed opcode."""
        return op_class(self.op)

    def reads_memory(self) -> bool:
        """True if any read location is a memory word."""
        return any(loc_is_mem(loc) for loc, _ in self.reads)

    def writes_memory(self) -> bool:
        """True if any written location is a memory word."""
        return any(loc_is_mem(loc) for loc, _ in self.writes)

    def __repr__(self) -> str:
        return (
            f"DynInst(pc={self.pc}, op={self.op.name}, reads={self.reads!r}, "
            f"writes={self.writes!r}, lat={self.latency}, next={self.next_pc})"
        )


@dataclass(slots=True)
class Trace:
    """A captured dynamic instruction stream plus execution metadata."""

    instructions: list[DynInst] = field(default_factory=list)
    program_name: str = "<anonymous>"
    halted: bool = False
    #: True when the run stopped because it hit the instruction budget.
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    @property
    def dynamic_count(self) -> int:
        """Number of dynamic instructions captured."""
        return len(self.instructions)

    def static_pcs(self) -> set[int]:
        """The set of distinct static PCs that executed."""
        return {d.pc for d in self.instructions}

    def opcode_histogram(self) -> dict[Opcode, int]:
        """Dynamic opcode mix (useful for workload characterisation)."""
        hist: dict[Opcode, int] = {}
        for d in self.instructions:
            hist[d.op] = hist.get(d.op, 0) + 1
        return hist

    def class_histogram(self) -> dict[OpClass, int]:
        """Dynamic operation-class mix."""
        hist: dict[OpClass, int] = {}
        for d in self.instructions:
            cls = d.op_class
            hist[cls] = hist.get(cls, 0) + 1
        return hist


def slice_trace(trace: Trace, start: int, stop: int) -> Trace:
    """A sub-range of a trace as a new :class:`Trace` (shares records)."""
    return Trace(
        instructions=trace.instructions[start:stop],
        program_name=trace.program_name,
        halted=False,
        truncated=True,
    )


def merge_reads(dyninsts: Sequence[DynInst]) -> list[tuple[int, int | float]]:
    """All reads of a sequence in order (helper for trace liveness tests)."""
    out: list[tuple[int, int | float]] = []
    for d in dyninsts:
        out.extend(d.reads)
    return out
