"""Dynamic instruction records — the unit every analysis consumes.

A :class:`DynInst` is the Python equivalent of one ATOM trace record:
it captures which storage locations an executed instruction read and
wrote **and the values involved**, which is exactly the information
the paper's reuse analyses need.  Locations use the flat integer
encoding from :mod:`repro.isa.registers` so registers and memory flow
through the same dependence tables.

Two trace containers exist:

- :class:`Trace` — the original row layout, a list of
  :class:`DynInst` records;
- :class:`ColumnarTrace` — a struct-of-arrays layout built on the
  stdlib :mod:`array` module (pc / op / latency / next-pc columns plus
  flattened read/write location and value columns with per-instruction
  offsets).  :meth:`repro.vm.machine.Machine.run` emits this form
  natively; it is cheaper to hold, pickle and cache than forty
  thousand ``DynInst`` objects, and the fused dataflow engine and the
  reusability/liveness analyses consume its columns directly.

``ColumnarTrace`` is duck-compatible with ``Trace`` (``len``,
iteration, indexing, ``instructions``, metadata attributes), so every
consumer of the row layout keeps working; row records are materialised
lazily and cached on first access.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OpClass, op_class
from repro.isa.registers import loc_is_mem


class DynInst:
    """One executed instruction.

    Attributes
    ----------
    pc:
        Instruction index of this dynamic instance.
    op:
        The executed opcode.
    reads:
        Tuple of ``(location, value)`` pairs, in read order.  Includes
        source registers and, for loads, the memory word read.
    writes:
        Tuple of ``(location, value)`` pairs, in write order.
    latency:
        Result latency in cycles (Alpha-21164 model).
    next_pc:
        PC of the dynamically following instruction (branch outcome
        included), which the RTM stores as the resume point of a trace.
    """

    __slots__ = ("pc", "op", "reads", "writes", "latency", "next_pc")

    def __init__(
        self,
        pc: int,
        op: Opcode,
        reads: tuple[tuple[int, int | float], ...],
        writes: tuple[tuple[int, int | float], ...],
        latency: int,
        next_pc: int,
    ) -> None:
        self.pc = pc
        self.op = op
        self.reads = reads
        self.writes = writes
        self.latency = latency
        self.next_pc = next_pc

    def input_signature(self) -> tuple:
        """Hashable identity of this instance's inputs.

        Two dynamic instances of the same static instruction with equal
        signatures read the same locations with the same values — the
        reusability criterion of section 4.2.  The branch/jump outcome
        is a pure function of the inputs, so ``next_pc`` need not be
        part of the signature.
        """
        return self.reads

    def is_memory_op(self) -> bool:
        """True for loads and stores."""
        return self.op_class in (OpClass.LOAD, OpClass.STORE)

    @property
    def op_class(self) -> OpClass:
        """Functional class of the executed opcode."""
        return op_class(self.op)

    def reads_memory(self) -> bool:
        """True if any read location is a memory word."""
        return any(loc_is_mem(loc) for loc, _ in self.reads)

    def writes_memory(self) -> bool:
        """True if any written location is a memory word."""
        return any(loc_is_mem(loc) for loc, _ in self.writes)

    def __repr__(self) -> str:
        return (
            f"DynInst(pc={self.pc}, op={self.op.name}, reads={self.reads!r}, "
            f"writes={self.writes!r}, lat={self.latency}, next={self.next_pc})"
        )


@dataclass(slots=True)
class Trace:
    """A captured dynamic instruction stream plus execution metadata."""

    instructions: list[DynInst] = field(default_factory=list)
    program_name: str = "<anonymous>"
    halted: bool = False
    #: True when the run stopped because it hit the instruction budget.
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    @property
    def dynamic_count(self) -> int:
        """Number of dynamic instructions captured."""
        return len(self.instructions)

    def static_pcs(self) -> set[int]:
        """The set of distinct static PCs that executed."""
        return {d.pc for d in self.instructions}

    def opcode_histogram(self) -> dict[Opcode, int]:
        """Dynamic opcode mix (useful for workload characterisation)."""
        hist: dict[Opcode, int] = {}
        for d in self.instructions:
            hist[d.op] = hist.get(d.op, 0) + 1
        return hist

    def class_histogram(self) -> dict[OpClass, int]:
        """Dynamic operation-class mix."""
        hist: dict[OpClass, int] = {}
        for d in self.instructions:
            cls = d.op_class
            hist[cls] = hist.get(cls, 0) + 1
        return hist


#: Opcode lookup by integer value (cheaper than the EnumMeta call).
_OPCODE_BY_VALUE: dict[int, Opcode] = {int(op): op for op in Opcode}


class ColumnarTrace:
    """A captured dynamic stream in struct-of-arrays layout.

    Columns
    -------
    ``pcs`` / ``ops`` / ``lats`` / ``next_pcs``
        One fixed-width entry per dynamic instruction.
    ``read_locs`` / ``read_vals`` (and the ``write_*`` twins)
        The flattened per-instruction read/write pairs; instruction
        ``i`` owns the half-open slice ``read_bounds[i] :
        read_bounds[i+1]``.  Locations live in ``array('q')``; values
        stay in a plain list because a value may be a 64-bit int or an
        IEEE double and must round-trip exactly.
    """

    __slots__ = (
        "program_name", "halted", "truncated",
        "pcs", "ops", "lats", "next_pcs",
        "read_bounds", "read_locs", "read_vals",
        "write_bounds", "write_locs", "write_vals",
        "_rows",
    )

    def __init__(
        self,
        program_name: str = "<anonymous>",
        halted: bool = False,
        truncated: bool = False,
    ) -> None:
        self.program_name = program_name
        self.halted = halted
        self.truncated = truncated
        self.pcs = array("i")
        self.ops = array("h")
        self.lats = array("h")
        self.next_pcs = array("i")
        self.read_bounds = array("I", (0,))
        self.read_locs = array("q")
        self.read_vals: list = []
        self.write_bounds = array("I", (0,))
        self.write_locs = array("q")
        self.write_vals: list = []
        self._rows: list[DynInst] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(
        self,
        pc: int,
        op: int,
        reads: Sequence[tuple[int, int | float]],
        writes: Sequence[tuple[int, int | float]],
        latency: int,
        next_pc: int,
    ) -> None:
        """Append one dynamic instruction from (location, value) pairs."""
        self.pcs.append(pc)
        self.ops.append(op)
        self.lats.append(latency)
        self.next_pcs.append(next_pc)
        rloc, rval = self.read_locs, self.read_vals
        for loc, val in reads:
            rloc.append(loc)
            rval.append(val)
        self.read_bounds.append(len(rloc))
        wloc, wval = self.write_locs, self.write_vals
        for loc, val in writes:
            wloc.append(loc)
            wval.append(val)
        self.write_bounds.append(len(wloc))
        self._rows = None

    def append_flat(
        self,
        pc: int,
        op: int,
        reads_flat: Sequence,
        writes_flat: Sequence,
        latency: int,
        next_pc: int,
    ) -> None:
        """Append from interleaved ``[loc, value, loc, value, ...]`` lists
        (the tracefile wire layout)."""
        if len(reads_flat) % 2 or len(writes_flat) % 2:
            raise ValueError("odd-length location/value list")
        self.pcs.append(pc)
        self.ops.append(op)
        self.lats.append(latency)
        self.next_pcs.append(next_pc)
        self.read_locs.extend(reads_flat[::2])
        self.read_vals.extend(reads_flat[1::2])
        self.read_bounds.append(len(self.read_locs))
        self.write_locs.extend(writes_flat[::2])
        self.write_vals.extend(writes_flat[1::2])
        self.write_bounds.append(len(self.write_locs))
        self._rows = None

    @classmethod
    def from_rows(
        cls,
        pcs: Sequence[int],
        ops: Sequence[int],
        reads: Sequence[Sequence[tuple[int, int | float]]],
        writes: Sequence[Sequence[tuple[int, int | float]]],
        lats: Sequence[int],
        next_pcs: Sequence[int],
        *,
        program_name: str = "<anonymous>",
        halted: bool = False,
        truncated: bool = False,
    ) -> "ColumnarTrace":
        """Bulk-build from parallel row lists (the ``Machine.run`` path)."""
        ct = cls(program_name=program_name, halted=halted, truncated=truncated)
        ct.pcs = array("i", pcs)
        ct.ops = array("h", ops)
        ct.lats = array("h", lats)
        ct.next_pcs = array("i", next_pcs)
        rloc, rval, rb = ct.read_locs, ct.read_vals, ct.read_bounds
        for pairs in reads:
            for loc, val in pairs:
                rloc.append(loc)
                rval.append(val)
            rb.append(len(rloc))
        wloc, wval, wb = ct.write_locs, ct.write_vals, ct.write_bounds
        for pairs in writes:
            for loc, val in pairs:
                wloc.append(loc)
                wval.append(val)
            wb.append(len(wloc))
        return ct

    @classmethod
    def from_trace(cls, trace: "Trace | Sequence[DynInst]") -> "ColumnarTrace":
        """Convert a row-layout trace (or any ``DynInst`` sequence)."""
        if isinstance(trace, ColumnarTrace):
            return trace
        insts = trace.instructions if isinstance(trace, Trace) else list(trace)
        ct = cls(
            program_name=getattr(trace, "program_name", "<anonymous>"),
            halted=getattr(trace, "halted", False),
            truncated=getattr(trace, "truncated", False),
        )
        for d in insts:
            ct.append(d.pc, int(d.op), d.reads, d.writes, d.latency, d.next_pc)
        return ct

    # ------------------------------------------------------------------
    # columnar access
    # ------------------------------------------------------------------
    def reads_of(self, i: int) -> tuple[tuple[int, int | float], ...]:
        """Read pairs of instruction ``i`` (same shape as DynInst.reads)."""
        a, b = self.read_bounds[i], self.read_bounds[i + 1]
        return tuple(zip(self.read_locs[a:b], self.read_vals[a:b]))

    def writes_of(self, i: int) -> tuple[tuple[int, int | float], ...]:
        """Write pairs of instruction ``i``."""
        a, b = self.write_bounds[i], self.write_bounds[i + 1]
        return tuple(zip(self.write_locs[a:b], self.write_vals[a:b]))

    def inst(self, i: int) -> DynInst:
        """Materialise instruction ``i`` as a row record."""
        return DynInst(
            pc=self.pcs[i],
            op=_OPCODE_BY_VALUE[self.ops[i]],
            reads=self.reads_of(i),
            writes=self.writes_of(i),
            latency=self.lats[i],
            next_pc=self.next_pcs[i],
        )

    # ------------------------------------------------------------------
    # Trace-compatible API
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> list[DynInst]:
        """Row records, materialised lazily and cached."""
        rows = self._rows
        if rows is None:
            rows = [self.inst(i) for i in range(len(self.pcs))]
            self._rows = rows
        return rows

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self.instructions)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.instructions[index]
        return self._rows[index] if self._rows is not None else self.inst(index)

    @property
    def dynamic_count(self) -> int:
        """Number of dynamic instructions captured."""
        return len(self.pcs)

    def static_pcs(self) -> set[int]:
        """The set of distinct static PCs that executed."""
        return set(self.pcs)

    def opcode_histogram(self) -> dict[Opcode, int]:
        """Dynamic opcode mix (no row materialisation needed)."""
        hist: dict[int, int] = {}
        for op in self.ops:
            hist[op] = hist.get(op, 0) + 1
        return {_OPCODE_BY_VALUE[op]: n for op, n in hist.items()}

    def class_histogram(self) -> dict[OpClass, int]:
        """Dynamic operation-class mix."""
        hist: dict[OpClass, int] = {}
        for op, n in self.opcode_histogram().items():
            cls = op_class(op)
            hist[cls] = hist.get(cls, 0) + n
        return hist

    def __repr__(self) -> str:
        return (
            f"ColumnarTrace({self.program_name!r}, n={len(self.pcs)}, "
            f"halted={self.halted}, truncated={self.truncated})"
        )

    # Arrays pickle as compact bytes; drop the materialisation cache so
    # cached trace files and pool transfers stay small.
    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__
                if slot != "_rows"}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._rows = None


def _zeros(typecode: str, n: int) -> array:
    a = array(typecode)
    a.frombytes(bytes(n * a.itemsize))
    return a


def preallocated_pcn(capacity: int) -> array:
    """Zero-filled interleaved staging column for ``capacity``
    instructions: ``[pc, next_pc]`` per record, one ``array('i')``.

    Interleaving lets a block flush both dynamic fixed-width columns
    with a *single* slice assignment per exit; the run de-interleaves
    once at the end into the :class:`ColumnarTrace` typecodes.  The
    remaining fixed-width columns (op, latency) are static functions
    of the pc and are gathered from per-pc tables afterwards instead
    of being staged per instruction.
    """
    return _zeros("i", 2 * capacity)


def _values_identical(xs: list, ys: list) -> bool:
    if len(xs) != len(ys):
        return False
    for x, y in zip(xs, ys):
        if type(x) is not type(y):
            return False
        # NaN != NaN, but bitwise-equal traces may legitimately hold it
        if x != y and not (x != x and y != y):
            return False
    return True


def trace_identical(a: ColumnarTrace, b: ColumnarTrace) -> bool:
    """True when two columnar traces are bit-identical.

    Stricter than element ``==``: values must match in *type* as well
    (``1`` and ``1.0`` are different trace contents), which is the
    contract the fast backend's differential tests enforce against the
    interpreter oracle.
    """
    return (
        len(a) == len(b)
        and a.halted == b.halted
        and a.truncated == b.truncated
        and a.program_name == b.program_name
        and a.pcs == b.pcs
        and a.ops == b.ops
        and a.lats == b.lats
        and a.next_pcs == b.next_pcs
        and a.read_bounds == b.read_bounds
        and a.write_bounds == b.write_bounds
        and a.read_locs == b.read_locs
        and a.write_locs == b.write_locs
        and _values_identical(a.read_vals, b.read_vals)
        and _values_identical(a.write_vals, b.write_vals)
    )


AnyTrace = Trace | ColumnarTrace


def stream_of(trace: "AnyTrace | Sequence[DynInst]") -> Sequence[DynInst]:
    """The ``DynInst`` sequence behind any trace-like argument.

    Accepts either trace layout or a plain sequence of records; the
    uniform entry point analyses use instead of per-call-site
    ``isinstance`` ladders.
    """
    if isinstance(trace, (Trace, ColumnarTrace)):
        return trace.instructions
    return trace


def as_columnar(trace) -> ColumnarTrace:
    """The columnar view of any trace-like argument (converting if needed).

    Accepts either trace layout, a plain ``DynInst`` sequence, or a
    *chunk stream* (any object with a ``chunks()`` method yielding
    columnar segments, e.g. :class:`repro.vm.tracestream.TraceStream`
    or :class:`repro.vm.tracev3.TraceReader`) — the materializing
    adapter the streaming pipeline keeps for whole-trace consumers.
    """
    if isinstance(trace, ColumnarTrace):
        return trace
    if isinstance(trace, Trace):
        return ColumnarTrace.from_trace(trace)
    if hasattr(trace, "chunks"):
        out = ColumnarTrace()
        for segment in trace.chunks():
            extend_columnar(out, segment)
        # metadata is read *after* draining: execution-backed streams
        # only know halted/truncated once the run finishes
        out.program_name = getattr(trace, "program_name", "<anonymous>")
        out.halted = getattr(trace, "halted", False)
        out.truncated = getattr(trace, "truncated", False)
        return out
    return ColumnarTrace.from_trace(trace)


def extend_columnar(dst: ColumnarTrace, src: ColumnarTrace) -> None:
    """Append every instruction of ``src`` onto ``dst`` (column-wise).

    The concatenation primitive behind the streaming adapters: bounds
    are rebased so ``dst`` stays a self-consistent columnar trace.
    """
    dst.pcs.extend(src.pcs)
    dst.ops.extend(src.ops)
    dst.lats.extend(src.lats)
    dst.next_pcs.extend(src.next_pcs)
    rbase = dst.read_bounds[-1]
    dst.read_bounds.extend(b + rbase for b in src.read_bounds[1:])
    dst.read_locs.extend(src.read_locs)
    dst.read_vals.extend(src.read_vals)
    wbase = dst.write_bounds[-1]
    dst.write_bounds.extend(b + wbase for b in src.write_bounds[1:])
    dst.write_locs.extend(src.write_locs)
    dst.write_vals.extend(src.write_vals)
    dst._rows = None


def slice_columnar(ct: ColumnarTrace, start: int, stop: int) -> ColumnarTrace:
    """Instructions ``[start, stop)`` as a new columnar segment.

    Bounds are rebased to the slice; the segment carries
    ``halted=False, truncated=True`` (it is a piece of a stream, not a
    complete run).
    """
    n = len(ct.pcs)
    start = max(0, min(start, n))
    stop = max(start, min(stop, n))
    out = ColumnarTrace(program_name=ct.program_name, halted=False,
                        truncated=True)
    out.pcs = ct.pcs[start:stop]
    out.ops = ct.ops[start:stop]
    out.lats = ct.lats[start:stop]
    out.next_pcs = ct.next_pcs[start:stop]
    ra, rb = ct.read_bounds[start], ct.read_bounds[stop]
    out.read_bounds = array("I", (b - ra for b in ct.read_bounds[start:stop + 1]))
    out.read_locs = ct.read_locs[ra:rb]
    out.read_vals = ct.read_vals[ra:rb]
    wa, wb = ct.write_bounds[start], ct.write_bounds[stop]
    out.write_bounds = array("I", (b - wa for b in ct.write_bounds[start:stop + 1]))
    out.write_locs = ct.write_locs[wa:wb]
    out.write_vals = ct.write_vals[wa:wb]
    return out


def slice_trace(trace: "AnyTrace", start: int, stop: int) -> Trace:
    """A sub-range of a trace as a new :class:`Trace` (shares records)."""
    return Trace(
        instructions=stream_of(trace)[start:stop],
        program_name=trace.program_name,
        halted=False,
        truncated=True,
    )


def merge_reads(dyninsts: Sequence[DynInst]) -> list[tuple[int, int | float]]:
    """All reads of a sequence in order (helper for trace liveness tests)."""
    out: list[tuple[int, int | float]] = []
    for d in dyninsts:
        out.extend(d.reads)
    return out
