"""Tracefile v3: chunked, compactly encoded, streamable trace files.

The v1/v2 formats in :mod:`repro.vm.tracefile` serialize a whole
materialized trace, which caps the analyzable budget at process RAM.
v3 is a *chunked* binary format built for streaming:

- the dynamic stream is split into fixed-size instruction-count
  chunks (``chunk_size`` instructions each, last chunk short);
- each chunk is encoded column-wise — delta-encoded PCs, a
  branch-direction bitmap (a set bit means the instruction fell
  through to ``pc + 1``) with explicit target offsets only for the
  rest, per-column minimal-width zigzag integers, and typed value
  columns that keep 64-bit ints and IEEE doubles bit-exact;
- every encoded chunk is independently zlib-compressed and framed
  (magic, raw length, compressed length), so a reader holds O(chunk)
  memory;
- a footer carries a JSON index of chunk offsets plus stream metadata
  (program name, halted/truncated flags, instruction count) and the
  file ends with a fixed tail pointing at the footer, giving O(1)
  seek to any chunk.  A file missing its tail or footer — e.g. a
  crashed writer — is *detected* as truncated and raises
  :class:`TraceFileError` instead of yielding garbage.

``TraceWriter`` accepts instructions incrementally (rows or columnar
segments) while a machine executes, flushing a frame every
``chunk_size`` instructions; ``TraceReader`` seeks the footer and
yields :class:`~repro.vm.trace.ColumnarTrace` chunks one at a time.
Round-tripping preserves every field bit-for-bit (ints stay ints,
floats keep their exact bits, NaN payloads included), which the
property tests assert at chunk sizes 1, 7 and 4096.

File layout::

    MAGIC_V3
    repeat:  b"TRCC"  u32 raw_len  u32 comp_len  <zlib payload>
    footer:  b"TRCF"  u32 meta_len  <meta JSON>
    tail:    u64 footer_offset  TAIL_MAGIC

Integer columns are encoded as ``varint count`` + ``u8 mode`` +
payload, where mode 1/2/4/8 selects the minimal little-endian byte
width holding the column's zigzag values (numpy-vectorized both
ways), and mode 0xFF falls back to per-element zigzag varints for
integers outside the 64-bit range.  Value columns add a float bitmap
so each slot round-trips with its exact Python type.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import pickle
import struct
import sys
import zlib
from array import array
from collections import deque
from collections.abc import Iterator
from concurrent.futures import ThreadPoolExecutor
from itertools import compress
from typing import NamedTuple

import numpy as np

from repro.vm.errors import TraceFileError
from repro.vm.trace import ColumnarTrace

#: Leading bytes of a v3 (chunked streaming) trace file.
MAGIC_V3 = b"repro-trace-v3\x00"
#: Frame magic preceding every compressed chunk.
CHUNK_MAGIC = b"TRCC"
#: Frame magic preceding the footer index.
FOOTER_MAGIC = b"TRCF"
#: Fixed-size file tail: u64 footer offset + this marker.
TAIL_MAGIC = b"repro-trace-v3:end"
_TAIL_LEN = 8 + len(TAIL_MAGIC)

#: Default instructions per chunk.  64Ki keeps chunk working sets in
#: the few-MB range while amortizing the per-frame codec/deflate cost.
DEFAULT_CHUNK_SIZE = 65536

#: Default zlib level for chunk frames.  Trace chunks are so
#: repetitive that level 3 already compresses them ~11x; level 6 buys
#: ~30% more size for ~2.5x the deflate time, which matters once the
#: codec is the cold-path bottleneck.
DEFAULT_COMPRESSLEVEL = 3

_LE = sys.byteorder == "little"

# Column encoding modes: 1/2/4/8 = fixed little-endian byte width of
# the zigzag values; _MODE_VARINT = per-element zigzag varints (ints
# beyond 64 bits); value sections additionally allow _VMODE_PICKLE for
# exotic element types so round-trips never silently coerce.
_MODE_VARINT = 0xFF
_VMODE_COLUMNS = 0
_VMODE_PICKLE = 1

#: Pool size for the pipelined codec (writer compression / reader
#: prefetch).  ``0`` runs everything inline on the caller's thread.
CODEC_THREADS_ENV = "REPRO_CODEC_THREADS"


def codec_threads() -> int:
    """Resolve the codec thread-pool size.

    ``REPRO_CODEC_THREADS`` wins when set (0 disables the pool);
    otherwise single-CPU hosts stay serial — zlib releases the GIL,
    but a pool buys nothing without a second core — and multi-core
    hosts get a small pool that overlaps compression with execution.
    """
    raw = os.environ.get(CODEC_THREADS_ENV)
    if raw is not None:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-linux
        cpus = os.cpu_count() or 1
    return 0 if cpus <= 1 else min(4, cpus - 1)


# ----------------------------------------------------------------------
# primitive codecs
# ----------------------------------------------------------------------

def _w_varint(out: bytearray, v: int) -> None:
    """Append an unsigned LEB128 varint (arbitrary precision)."""
    while True:
        b = v & 0x7F
        v >>= 7
        if v:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _r_varint(buf, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    n = len(buf)
    while True:
        if pos >= n:
            raise TraceFileError("truncated varint")
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7


def _zigzag(v: int) -> int:
    return (v << 1) if v >= 0 else ((-v << 1) - 1)


def _unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def _enc_int_column(out: bytearray, vals) -> None:
    """Encode a column of Python/numpy integers (count, mode, payload)."""
    k = len(vals)
    _w_varint(out, k)
    if not k:
        return
    if isinstance(vals, np.ndarray):
        a = vals if vals.dtype == np.int64 else vals.astype(np.int64)
    else:
        try:
            a = np.asarray(vals, dtype=np.int64)
        except (OverflowError, ValueError, TypeError):
            a = None
    if a is None:
        out.append(_MODE_VARINT)
        for v in vals:
            _w_varint(out, _zigzag(v))
        return
    # zigzag in two's complement: (v << 1) ^ (v >> 63), viewed unsigned
    z = ((a << np.int64(1)) ^ (a >> np.int64(63))).view(np.uint64)
    top = int(z.max())
    if top < 1 << 8:
        width = 1
    elif top < 1 << 16:
        width = 2
    elif top < 1 << 32:
        width = 4
    else:
        width = 8
    out.append(width)
    out += z.astype(f"<u{width}", copy=False).tobytes()


def _dec_int_column(buf, pos: int) -> tuple[np.ndarray | list, int]:
    """Decode a column; returns int64 ndarray (or a list when the
    varint fallback carried out-of-range ints)."""
    k, pos = _r_varint(buf, pos)
    if not k:
        return np.empty(0, np.int64), pos
    if pos >= len(buf):
        raise TraceFileError("truncated column header")
    mode = buf[pos]
    pos += 1
    if mode == _MODE_VARINT:
        vals = []
        for _ in range(k):
            z, pos = _r_varint(buf, pos)
            vals.append(_unzigzag(z))
        return vals, pos
    if mode not in (1, 2, 4, 8):
        raise TraceFileError(f"bad column mode {mode:#x}")
    end = pos + k * mode
    if end > len(buf):
        raise TraceFileError("truncated column payload")
    z = np.frombuffer(buf, dtype=f"<u{mode}", count=k, offset=pos)
    z = z.astype(np.uint64)
    pos = end
    v = (z >> np.uint64(1)).astype(np.int64) ^ -(z & np.uint64(1)).astype(np.int64)
    return v, pos


def _col_i64(col) -> np.ndarray:
    """Normalize a decoded column to an int64 ndarray."""
    return col if isinstance(col, np.ndarray) else np.asarray(col, np.int64)


# Maps the *exact* type of a well-behaved value slot to its bitmap
# bit.  Anything else (bool, numpy scalars, ...) raises KeyError,
# which is the pickle-fallback signal — the whole classification runs
# at C speed via bytes(map(...)).
_VTYPE_BIT = {float: 1, int: 0}
_VTYPE_INVERT = bytes.maketrans(b"\x00\x01", b"\x01\x00")


def float_mask(vals: list) -> bytes | None:
    """Per-slot float/int mask of a value column, or ``None`` when the
    column holds exotic element types (bool, numpy scalars, ...).

    Byte ``1`` marks a ``float`` slot, ``0`` an ``int`` slot.  Runs
    entirely in C, so callers (the chunk encoder, the streaming
    engine's batched signature pass) can classify millions of slots
    per second without a Python-level loop.
    """
    try:
        return bytes(map(_VTYPE_BIT.__getitem__, map(type, vals)))
    except KeyError:
        return None


def _enc_values(out: bytearray, vals: list) -> None:
    """Encode a value column with exact Python types (int | float)."""
    k = len(vals)
    _w_varint(out, k)
    if not k:
        return
    tmap = float_mask(vals)
    if tmap is None:
        # exotic element types (never emitted by the VM): keep the
        # round-trip exact rather than coercing
        blob = pickle.dumps(list(vals), protocol=pickle.HIGHEST_PROTOCOL)
        out.append(_VMODE_PICKLE)
        _w_varint(out, len(blob))
        out += blob
        return
    out.append(_VMODE_COLUMNS)
    fmask = np.frombuffer(tmap, np.uint8)
    out += np.packbits(fmask, bitorder="little").tobytes()
    nf = tmap.count(1)
    if nf:
        floats = (np.asarray(vals, np.float64) if nf == k
                  else np.fromiter(compress(vals, tmap), np.float64, count=nf))
        out += floats.astype("<f8", copy=False).tobytes()
    if nf == k:
        ints: list | np.ndarray = []
    elif nf == 0:
        ints = vals
    else:
        sel = compress(vals, tmap.translate(_VTYPE_INVERT))
        try:
            ints = np.fromiter(sel, np.int64, count=k - nf)
        except OverflowError:
            # beyond-64-bit ints: rebuild the selection as a list so
            # _enc_int_column takes its varint fallback
            ints = list(compress(vals, tmap.translate(_VTYPE_INVERT)))
    _enc_int_column(out, ints)


def _dec_values(buf, pos: int) -> tuple[list, int]:
    k, pos = _r_varint(buf, pos)
    if not k:
        return [], pos
    if pos >= len(buf):
        raise TraceFileError("truncated value section")
    vmode = buf[pos]
    pos += 1
    if vmode == _VMODE_PICKLE:
        length, pos = _r_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise TraceFileError("truncated value payload")
        vals = pickle.loads(bytes(buf[pos:end]))
        if not isinstance(vals, list) or len(vals) != k:
            raise TraceFileError("bad pickled value column")
        return vals, end
    if vmode != _VMODE_COLUMNS:
        raise TraceFileError(f"bad value mode {vmode:#x}")
    nb = (k + 7) // 8
    if pos + nb > len(buf):
        raise TraceFileError("truncated value bitmap")
    fmask = np.unpackbits(
        np.frombuffer(buf, np.uint8, count=nb, offset=pos),
        count=k, bitorder="little",
    )
    pos += nb
    nf = int(fmask.sum())
    if pos + 8 * nf > len(buf):
        raise TraceFileError("truncated float payload")
    floats = np.frombuffer(buf, "<f8", count=nf, offset=pos).tolist()
    pos += 8 * nf
    ints_col, pos = _dec_int_column(buf, pos)
    ints = ints_col.tolist() if isinstance(ints_col, np.ndarray) else ints_col
    if len(ints) != k - nf:
        raise TraceFileError("value column count mismatch")
    if nf == 0:
        return ints, pos
    if nf == k:
        return floats, pos
    # mixed column: scatter through an object ndarray (the per-element
    # Python loop this replaces was the tomcatv decode anomaly).  The
    # object-dtype intermediates keep the exact Python objects, so the
    # int/float types round-trip bit-for-bit.
    out = np.empty(k, object)
    fb = fmask.view(bool)
    out[fb] = np.asarray(floats, object)
    out[~fb] = np.asarray(ints, object)
    return out.tolist(), pos


def _deltas(a: np.ndarray) -> np.ndarray:
    """First element absolute, the rest consecutive differences."""
    if not len(a):
        return a
    d = np.empty(len(a), np.int64)
    d[0] = a[0]
    np.subtract(a[1:], a[:-1], out=d[1:])
    return d


def _np_to_array(typecode: str, a: np.ndarray, dtype: str) -> array:
    """An stdlib array built from a numpy column (zero-copy-ish on LE)."""
    out = array(typecode)
    if _LE:
        out.frombytes(a.astype(dtype, copy=False).tobytes())
    else:  # pragma: no cover - big-endian hosts
        out.extend(a.tolist())
    return out


# ----------------------------------------------------------------------
# chunk codec
# ----------------------------------------------------------------------

def encode_chunk(ct: ColumnarTrace) -> bytes:
    """Encode one columnar segment to the (uncompressed) v3 chunk payload."""
    out = bytearray()
    n = len(ct.pcs)
    _w_varint(out, n)
    if not n:
        return bytes(out)
    pcs = np.asarray(ct.pcs, np.int64)
    nxt = np.asarray(ct.next_pcs, np.int64)
    _enc_int_column(out, _deltas(pcs))
    fallthrough = pcs + 1
    seq = nxt == fallthrough
    out += np.packbits(seq, bitorder="little").tobytes()
    _enc_int_column(out, (nxt - fallthrough)[~seq])
    _enc_int_column(out, np.asarray(ct.ops, np.int64))
    _enc_int_column(out, np.asarray(ct.lats, np.int64))
    rbounds = np.asarray(ct.read_bounds, np.int64)
    wbounds = np.asarray(ct.write_bounds, np.int64)
    if len(rbounds) != n + 1 or len(wbounds) != n + 1:
        raise TraceFileError("inconsistent bounds columns")
    _enc_int_column(out, np.diff(rbounds))
    _enc_int_column(out, np.diff(wbounds))
    _enc_int_column(out, _deltas(np.asarray(ct.read_locs, np.int64)))
    _enc_int_column(out, _deltas(np.asarray(ct.write_locs, np.int64)))
    _enc_values(out, ct.read_vals)
    _enc_values(out, ct.write_vals)
    return bytes(out)


def decode_chunk(buf: bytes, *, program_name: str = "<anonymous>") -> ColumnarTrace:
    """Decode one chunk payload back to a columnar segment.

    Segments carry ``halted=False, truncated=True`` — they are pieces
    of a stream; file-level flags live in the reader's footer metadata.
    """
    ct = ColumnarTrace(program_name=program_name, halted=False, truncated=True)
    try:
        pos = 0
        n, pos = _r_varint(buf, pos)
        if not n:
            if pos != len(buf):
                raise TraceFileError("trailing bytes after empty chunk")
            return ct
        d, pos = _dec_int_column(buf, pos)
        pcs = np.cumsum(_col_i64(d))
        if len(pcs) != n:
            raise TraceFileError("pc column count mismatch")
        nb = (n + 7) // 8
        if pos + nb > len(buf):
            raise TraceFileError("truncated branch bitmap")
        seq = np.unpackbits(
            np.frombuffer(buf, np.uint8, count=nb, offset=pos),
            count=n, bitorder="little",
        ).astype(bool)
        pos += nb
        offs, pos = _dec_int_column(buf, pos)
        offs = _col_i64(offs)
        taken = ~seq
        if len(offs) != int(taken.sum()):
            raise TraceFileError("branch offset count mismatch")
        nxt = pcs + 1
        nxt[taken] += offs
        ops, pos = _dec_int_column(buf, pos)
        lats, pos = _dec_int_column(buf, pos)
        rcounts, pos = _dec_int_column(buf, pos)
        wcounts, pos = _dec_int_column(buf, pos)
        rlocs_d, pos = _dec_int_column(buf, pos)
        wlocs_d, pos = _dec_int_column(buf, pos)
        read_vals, pos = _dec_values(buf, pos)
        write_vals, pos = _dec_values(buf, pos)
        if pos != len(buf):
            raise TraceFileError("trailing bytes after chunk payload")
        ops, lats = _col_i64(ops), _col_i64(lats)
        rcounts, wcounts = _col_i64(rcounts), _col_i64(wcounts)
        if not (len(ops) == len(lats) == len(rcounts) == len(wcounts) == n):
            raise TraceFileError("fixed column count mismatch")
        rbounds = np.empty(n + 1, np.int64)
        rbounds[0] = 0
        np.cumsum(rcounts, out=rbounds[1:])
        wbounds = np.empty(n + 1, np.int64)
        wbounds[0] = 0
        np.cumsum(wcounts, out=wbounds[1:])
        rlocs = np.cumsum(_col_i64(rlocs_d))
        wlocs = np.cumsum(_col_i64(wlocs_d))
        if len(rlocs) != int(rbounds[-1]) or len(read_vals) != len(rlocs):
            raise TraceFileError("read column count mismatch")
        if len(wlocs) != int(wbounds[-1]) or len(write_vals) != len(wlocs):
            raise TraceFileError("write column count mismatch")
        ct.pcs = _np_to_array("i", pcs, "<i4")
        ct.ops = _np_to_array("h", ops, "<i2")
        ct.lats = _np_to_array("h", lats, "<i2")
        ct.next_pcs = _np_to_array("i", nxt, "<i4")
        ct.read_bounds = _np_to_array("I", rbounds, "<u4")
        ct.write_bounds = _np_to_array("I", wbounds, "<u4")
        ct.read_locs = _np_to_array("q", rlocs, "<i8")
        ct.write_locs = _np_to_array("q", wlocs, "<i8")
        ct.read_vals = read_vals
        ct.write_vals = write_vals
        return ct
    except TraceFileError:
        raise
    except (ValueError, IndexError, OverflowError, struct.error,
            pickle.UnpicklingError, EOFError, KeyError) as exc:
        raise TraceFileError(f"corrupt chunk payload: {exc}") from exc


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------

class TraceWriter:
    """Incremental writer for v3 trace files.

    Instructions arrive via :meth:`append` (row form) or
    :meth:`write_segment` (a columnar segment, e.g. one
    ``Machine.run`` chunk); one compressed frame is flushed per
    ``chunk_size`` instructions, so writer memory stays O(chunk)
    regardless of trace length.  A segment that arrives exactly
    chunk-aligned is emitted as-is, with no buffering copy — callers
    must not mutate a segment after handing it over.

    With ``threads > 0`` sealed chunks are encoded + deflated on a
    bounded :class:`~concurrent.futures.ThreadPoolExecutor` (zlib and
    the numpy codec release the GIL) while the caller keeps
    executing; completed frames are serialized to the file *in
    submission order* on the caller's thread, so the output is
    byte-identical to a serial writer at every pool size.  At most
    ``threads + 2`` chunks are in flight — the writer blocks on the
    oldest frame beyond that, keeping memory O(threads · chunk).

    Call :meth:`close` (or use the writer as a context manager) to
    emit the footer index; crashes before that leave a tail-less
    file the reader rejects as truncated.
    """

    def __init__(
        self,
        path_or_file,
        *,
        program_name: str = "<anonymous>",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        compresslevel: int = DEFAULT_COMPRESSLEVEL,
        threads: int | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns_fh = False
        else:
            self._fh = open(pathlib.Path(path_or_file), "wb")
            self._owns_fh = True
        self.program_name = program_name
        self.halted = False
        self.truncated = False
        self.chunk_size = chunk_size
        self._compresslevel = compresslevel
        self.threads = codec_threads() if threads is None else max(0, threads)
        self._pool = (
            ThreadPoolExecutor(
                self.threads, thread_name_prefix="repro-codec-w")
            if self.threads else None
        )
        self._inflight: deque = deque()  # (future, instruction count)
        self._pending = ColumnarTrace(program_name=program_name)
        self._index: list[list[int]] = []
        self._count = 0
        self._offset = len(MAGIC_V3)
        self._closed = False
        self._fh.write(MAGIC_V3)

    @property
    def count(self) -> int:
        """Instructions accepted so far (flushed + pending)."""
        return (self._count + sum(c for _, c in self._inflight)
                + len(self._pending))

    def append(self, pc, op, reads, writes, latency, next_pc) -> None:
        """Append one dynamic instruction."""
        self._pending.append(pc, op, reads, writes, latency, next_pc)
        if len(self._pending) >= self.chunk_size:
            self._flush_full()

    def write_segment(self, segment: ColumnarTrace) -> None:
        """Append a columnar segment (any length; rechunked internally).

        The segment is treated as frozen from here on: chunk-aligned
        input is emitted without copying (possibly from a pool
        thread), so mutating it afterwards corrupts the file.
        """
        from repro.vm.trace import extend_columnar, slice_columnar

        cs = self.chunk_size
        if not len(self._pending):
            # fast path: nothing buffered, slice frames straight off
            # the incoming segment (zero copies when already aligned)
            n = len(segment)
            start = 0
            while n - start >= cs:
                if start == 0 and n == cs:
                    self._emit(segment)
                else:
                    self._emit(slice_columnar(segment, start, start + cs))
                start += cs
            if start < n:
                extend_columnar(
                    self._pending,
                    segment if start == 0 else slice_columnar(segment, start, n),
                )
            return
        extend_columnar(self._pending, segment)
        if len(self._pending) >= cs:
            self._flush_full()

    def _flush_full(self) -> None:
        from repro.vm.trace import slice_columnar

        cs = self.chunk_size
        pending = self._pending
        while len(pending) >= cs:
            self._emit(slice_columnar(pending, 0, cs))
            pending = slice_columnar(pending, cs, len(pending))
        self._pending = pending

    def _emit(self, segment: ColumnarTrace) -> None:
        if self._pool is None:
            raw = encode_chunk(segment)
            self._write_frame(len(segment), len(raw),
                              zlib.compress(raw, self._compresslevel))
            return
        self._inflight.append(
            (self._pool.submit(self._encode_job, segment), len(segment)))
        self._reap(max_inflight=self.threads + 2)

    def _encode_job(self, segment: ColumnarTrace) -> tuple[int, bytes]:
        raw = encode_chunk(segment)
        return len(raw), zlib.compress(raw, self._compresslevel)

    def _reap(self, *, max_inflight: int = 0) -> None:
        """Write completed frames in submission order; block only while
        more than ``max_inflight`` encode jobs are outstanding."""
        inflight = self._inflight
        while inflight:
            fut, count = inflight[0]
            if len(inflight) <= max_inflight and not fut.done():
                return
            inflight.popleft()
            raw_len, comp = fut.result()
            self._write_frame(count, raw_len, comp)

    def _write_frame(self, count: int, raw_len: int, comp: bytes) -> None:
        self._fh.write(CHUNK_MAGIC)
        self._fh.write(struct.pack("<II", raw_len, len(comp)))
        self._fh.write(comp)
        self._index.append([self._offset, count, raw_len, len(comp)])
        self._offset += len(CHUNK_MAGIC) + 8 + len(comp)
        self._count += count

    def close(self, *, halted: bool | None = None,
              truncated: bool | None = None) -> None:
        """Flush remaining instructions and write the footer + tail."""
        if self._closed:
            return
        if halted is not None:
            self.halted = halted
        if truncated is not None:
            self.truncated = truncated
        if len(self._pending):
            self._emit(self._pending)
            self._pending = ColumnarTrace(program_name=self.program_name)
        self._reap()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        meta = {
            "program": self.program_name,
            "halted": bool(self.halted),
            "truncated": bool(self.truncated),
            "count": self._count,
            "chunk_size": self.chunk_size,
            "chunks": self._index,
        }
        payload = json.dumps(meta, separators=(",", ":")).encode("utf-8")
        footer_offset = self._offset
        self._fh.write(FOOTER_MAGIC)
        self._fh.write(struct.pack("<I", len(payload)))
        self._fh.write(payload)
        self._fh.write(struct.pack("<Q", footer_offset))
        self._fh.write(TAIL_MAGIC)
        self._fh.flush()
        self._closed = True
        if self._owns_fh:
            self._fh.close()

    def abort(self) -> None:
        """Close the underlying file without writing a footer."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._inflight.clear()
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------

class ChunkInfo(NamedTuple):
    """Footer-index entry for one chunk."""

    offset: int
    count: int
    raw_bytes: int
    comp_bytes: int


class TraceReader:
    """Random-access / streaming reader for v3 trace files.

    Construction reads only the footer (O(1) seek from the tail);
    :meth:`chunk` decodes one chunk by index, :meth:`chunks` iterates
    them in order with O(chunk) live memory.  Any structural damage —
    missing tail, bad frame magic, short frames, undecodable payloads
    — raises :class:`TraceFileError`.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self._path = pathlib.Path(path)
        self._fh: io.BufferedReader | None = open(self._path, "rb")
        try:
            self._load_footer()
        except BaseException:
            self.close()
            raise

    def _err(self, msg: str) -> TraceFileError:
        return TraceFileError(f"{self._path}: {msg}")

    def _load_footer(self) -> None:
        fh = self._fh
        assert fh is not None
        head = fh.read(len(MAGIC_V3))
        if head != MAGIC_V3:
            raise self._err("not a v3 trace file")
        fh.seek(0, io.SEEK_END)
        size = fh.tell()
        if size < len(MAGIC_V3) + _TAIL_LEN:
            raise self._err("truncated v3 trace (no footer tail)")
        fh.seek(size - _TAIL_LEN)
        tail = fh.read(_TAIL_LEN)
        if len(tail) != _TAIL_LEN or tail[8:] != TAIL_MAGIC:
            raise self._err("truncated v3 trace (missing footer tail; "
                            "writer did not finish)")
        (footer_offset,) = struct.unpack("<Q", tail[:8])
        if not len(MAGIC_V3) <= footer_offset <= size - _TAIL_LEN - 8:
            raise self._err("corrupt v3 trace (footer offset out of range)")
        fh.seek(footer_offset)
        hdr = fh.read(8)
        if len(hdr) != 8 or hdr[:4] != FOOTER_MAGIC:
            raise self._err("corrupt v3 trace (bad footer magic)")
        (meta_len,) = struct.unpack("<I", hdr[4:])
        if footer_offset + 8 + meta_len > size - _TAIL_LEN:
            raise self._err("corrupt v3 trace (footer overruns tail)")
        payload = fh.read(meta_len)
        if len(payload) != meta_len:
            raise self._err("corrupt v3 trace (short footer)")
        try:
            meta = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise self._err(f"corrupt v3 footer: {exc}") from exc
        try:
            self.program_name = str(meta["program"])
            self.halted = bool(meta["halted"])
            self.truncated = bool(meta["truncated"])
            self.count = int(meta["count"])
            self.chunk_size = int(meta["chunk_size"])
            index = [ChunkInfo(*map(int, entry)) for entry in meta["chunks"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise self._err(f"corrupt v3 footer fields: {exc}") from exc
        if sum(e.count for e in index) != self.count:
            raise self._err("corrupt v3 footer (chunk counts disagree "
                            "with instruction count)")
        for entry in index:
            if not len(MAGIC_V3) <= entry.offset <= footer_offset:
                raise self._err("corrupt v3 footer (chunk offset out of range)")
        self.index: tuple[ChunkInfo, ...] = tuple(index)

    # -- metadata ------------------------------------------------------
    @property
    def chunk_count(self) -> int:
        return len(self.index)

    @property
    def raw_bytes(self) -> int:
        """Total encoded-but-uncompressed payload bytes."""
        return sum(e.raw_bytes for e in self.index)

    @property
    def comp_bytes(self) -> int:
        """Total compressed payload bytes (excluding framing)."""
        return sum(e.comp_bytes for e in self.index)

    def __len__(self) -> int:
        return self.count

    # -- chunk access --------------------------------------------------
    def _read_frame(self, i: int) -> bytes:
        """Read (and validate) chunk ``i``'s compressed frame payload."""
        fh = self._fh
        if fh is None:
            raise ValueError("reader is closed")
        entry = self.index[i]
        fh.seek(entry.offset)
        hdr = fh.read(len(CHUNK_MAGIC) + 8)
        if len(hdr) != len(CHUNK_MAGIC) + 8 or hdr[:4] != CHUNK_MAGIC:
            raise self._err(f"corrupt chunk {i} (bad frame magic)")
        raw_len, comp_len = struct.unpack("<II", hdr[4:])
        if raw_len != entry.raw_bytes or comp_len != entry.comp_bytes:
            raise self._err(f"corrupt chunk {i} (frame/index length mismatch)")
        comp = fh.read(comp_len)
        if len(comp) != comp_len:
            raise self._err(f"corrupt chunk {i} (short frame)")
        return comp

    def _decode_frame(self, i: int, comp: bytes) -> ColumnarTrace:
        """Inflate + decode one frame payload (thread-safe: touches no
        reader state besides immutable footer fields)."""
        entry = self.index[i]
        try:
            raw = zlib.decompress(comp)
        except zlib.error as exc:
            raise self._err(f"corrupt chunk {i}: {exc}") from exc
        if len(raw) != entry.raw_bytes:
            raise self._err(f"corrupt chunk {i} (decompressed length mismatch)")
        try:
            ct = decode_chunk(raw, program_name=self.program_name)
        except TraceFileError as exc:
            raise self._err(f"corrupt chunk {i}: {exc}") from exc
        if len(ct) != entry.count:
            raise self._err(f"corrupt chunk {i} (instruction count mismatch)")
        return ct

    def chunk(self, i: int) -> ColumnarTrace:
        """Decode chunk ``i`` (O(1) seek via the footer index)."""
        return self._decode_frame(i, self._read_frame(i))

    def chunks(self, *, prefetch: int | None = None) -> Iterator[ColumnarTrace]:
        """Yield chunks in stream order.

        With ``prefetch=K > 0`` (default: :func:`codec_threads`) the
        next K frames are read ahead and inflated + decoded on a
        thread pool while the consumer works on the current chunk.
        Frame reads stay on the consumer's thread (one seek cursor);
        only the CPU-bound inflate/decode is offloaded.  At most
        ``K + 2`` decoded chunks are ever live — K in flight, the one
        being yielded, and the consumer's previous one — so memory
        stays O(K · chunk) regardless of file size.
        """
        k = codec_threads() if prefetch is None else max(0, prefetch)
        n = len(self.index)
        if not k or n <= 1:
            for i in range(n):
                yield self.chunk(i)
            return
        pool = ThreadPoolExecutor(
            min(k, 8), thread_name_prefix="repro-codec-r")
        try:
            pending: deque = deque()
            for i in range(n):
                while len(pending) < k and (j := i + len(pending)) < n:
                    pending.append(
                        pool.submit(self._decode_frame, j, self._read_frame(j)))
                yield pending.popleft().result()
        finally:
            for fut in pending:
                fut.cancel()
            pool.shutdown(wait=True, cancel_futures=True)

    def materialize(self) -> ColumnarTrace:
        """The whole trace as one :class:`ColumnarTrace` (adapter path)."""
        from repro.vm.trace import extend_columnar

        out = ColumnarTrace(
            program_name=self.program_name,
            halted=self.halted,
            truncated=self.truncated,
        )
        for ct in self.chunks():
            extend_columnar(out, ct)
        if len(out) != self.count:
            raise self._err("chunk contents disagree with footer count")
        return out

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# convenience front-ends
# ----------------------------------------------------------------------

def write_v3(trace, path: str | pathlib.Path, *,
             chunk_size: int = DEFAULT_CHUNK_SIZE,
             compresslevel: int = DEFAULT_COMPRESSLEVEL) -> None:
    """Write a materialized trace as a v3 file (chunked on the way out)."""
    from repro.vm.trace import as_columnar

    ct = as_columnar(trace)
    writer = TraceWriter(
        path,
        program_name=ct.program_name,
        chunk_size=chunk_size,
        compresslevel=compresslevel,
    )
    try:
        writer.write_segment(ct)
    except BaseException:
        writer.abort()
        raise
    writer.close(halted=ct.halted, truncated=ct.truncated)


#: Chunk payload sections, in on-disk order.
SECTION_NAMES = (
    "pcs", "branch_bitmap", "branch_offsets", "ops", "lats",
    "read_counts", "write_counts", "read_locs", "write_locs",
    "read_vals", "write_vals",
)

_INT_MODE_NAMES = {1: "u8", 2: "u16", 4: "u32", 8: "u64",
                   _MODE_VARINT: "varint"}


def _peek_int_mode(buf, pos: int) -> str:
    k, p = _r_varint(buf, pos)
    if not k:
        return "empty"
    return _INT_MODE_NAMES.get(buf[p], f"{buf[p]:#x}") if p < len(buf) else "?"


def _peek_value_mode(buf, pos: int) -> str:
    k, p = _r_varint(buf, pos)
    if not k:
        return "empty"
    if p >= len(buf):
        return "?"
    if buf[p] == _VMODE_PICKLE:
        return "pickle"
    nb = (k + 7) // 8
    return f"bitmap+f8+{_peek_int_mode(buf, p + 1 + nb)}"


def _scan_sections(buf: bytes) -> list[dict]:
    """Decode one chunk payload section-by-section, timing each decode
    and recording its encoded size and codec mode.  The section walk
    mirrors :func:`decode_chunk` exactly, so sizes sum to the payload."""
    import time

    out: list[dict] = []

    def record(name, mode, start_pos, fn):
        t0 = time.perf_counter()
        pos = fn(start_pos)
        out.append({
            "column": name,
            "mode": mode,
            "encoded_bytes": pos - start_pos,
            "decode_seconds": time.perf_counter() - t0,
        })
        return pos

    pos = 0
    n, pos = _r_varint(buf, pos)
    header = pos
    if n:
        pos = record("pcs", _peek_int_mode(buf, pos), pos,
                     lambda p: _dec_int_column(buf, p)[1])
        nb = (n + 7) // 8
        pos = record("branch_bitmap", "bitmap", pos, lambda p: p + nb)
        for name in ("branch_offsets", "ops", "lats", "read_counts",
                     "write_counts", "read_locs", "write_locs"):
            pos = record(name, _peek_int_mode(buf, pos), pos,
                         lambda p: _dec_int_column(buf, p)[1])
        for name in ("read_vals", "write_vals"):
            pos = record(name, _peek_value_mode(buf, pos), pos,
                         lambda p: _dec_values(buf, p)[1])
    if pos != len(buf):
        raise TraceFileError("trailing bytes after chunk payload")
    out.insert(0, {"column": "header", "mode": "varint",
                   "encoded_bytes": header, "decode_seconds": 0.0})
    return out


def trace_v3_info(path: str | pathlib.Path, *, columns: bool = False,
                  per_chunk: bool = False) -> dict:
    """Structural stats of a v3 file (for ``repro trace info``).

    ``columns=True`` decodes every chunk section-by-section and
    aggregates per-column encoded size, decode time and codec mode;
    ``per_chunk=True`` adds one entry per chunk (sizes, ratio,
    inflate+decode wall time).  Both default off — the base call
    reads only the footer.
    """
    import time

    path = pathlib.Path(path)
    with TraceReader(path) as reader:
        raw = reader.raw_bytes
        comp = reader.comp_bytes
        info = {
            "format": "v3",
            "path": str(path),
            "program": reader.program_name,
            "halted": reader.halted,
            "truncated": reader.truncated,
            "instructions": reader.count,
            "chunk_count": reader.chunk_count,
            "chunk_size": reader.chunk_size,
            "file_bytes": path.stat().st_size,
            "encoded_bytes": raw,
            "compressed_bytes": comp,
            "compression_ratio": (raw / comp) if comp else 0.0,
            "bytes_per_instruction": (
                path.stat().st_size / reader.count if reader.count else 0.0
            ),
        }
        if not (columns or per_chunk):
            return info
        col_stats: dict[str, dict] = {}
        chunk_stats: list[dict] = []
        for i, entry in enumerate(reader.index):
            frame = reader._read_frame(i)
            t0 = time.perf_counter()
            payload = zlib.decompress(frame)
            if len(payload) != entry.raw_bytes:
                raise TraceFileError(
                    f"{path}: corrupt chunk {i} (decompressed length mismatch)")
            sections = _scan_sections(payload)
            elapsed = time.perf_counter() - t0
            for sec in sections:
                agg = col_stats.setdefault(sec["column"], {
                    "encoded_bytes": 0, "decode_seconds": 0.0, "modes": {},
                })
                agg["encoded_bytes"] += sec["encoded_bytes"]
                agg["decode_seconds"] += sec["decode_seconds"]
                agg["modes"][sec["mode"]] = agg["modes"].get(sec["mode"], 0) + 1
            if per_chunk:
                chunk_stats.append({
                    "chunk": i,
                    "instructions": entry.count,
                    "encoded_bytes": entry.raw_bytes,
                    "compressed_bytes": entry.comp_bytes,
                    "compression_ratio": (
                        entry.raw_bytes / entry.comp_bytes
                        if entry.comp_bytes else 0.0),
                    "decode_seconds": elapsed,
                })
        if columns:
            info["columns"] = col_stats
        if per_chunk:
            info["chunks"] = chunk_stats
        return info
