"""Trace serialization: ATOM-style trace files for the Python era.

Dynamic traces are expensive to regenerate for big budgets, and
shipping them between machines (or caching them between experiment
runs) wants a stable on-disk format.  Three formats coexist:

- **v1** (default): line-oriented JSON — line 1 is a header object
  (format tag, program name, flags, count) followed by one compact
  JSON array per dynamic instruction,
  ``[pc, opcode, [loc, value, ...], [loc, value, ...], latency,
  next_pc]`` with the read/write pair lists flattened.  Portable and
  diffable.
- **v2**: a binary magic prefix followed by the pickled
  :class:`~repro.vm.trace.ColumnarTrace` columns.  Roughly an order
  of magnitude faster to write and read than v1.
- **v3**: the chunked streaming format of :mod:`repro.vm.tracev3` —
  delta/bitmap/typed-column encoded, per-chunk zlib frames, footer
  index.  Much smaller on disk, written incrementally during
  execution, and readable chunk-at-a-time with O(chunk) memory; the
  persistent trace cache (:mod:`repro.vm.tracecache`) stores v3.

``load_trace`` sniffs the format from the leading bytes, so callers
never need to know which one a file uses (v2 files remain readable
forever).  ``.gz`` paths are transparently gzip-compressed for
v1/v2; v3 compresses its own chunks, so it rejects ``.gz`` paths
rather than double-compressing into an unseekable wrapper.
Round-tripping preserves every field bit-for-bit (ints stay ints,
floats stay floats), which the property tests assert.
"""

from __future__ import annotations

import gzip
import json
import pathlib
import pickle
from collections.abc import Iterable

from repro.isa.opcodes import Opcode
from repro.obs import get_logger
from repro.vm.errors import TraceFileError
from repro.vm.trace import AnyTrace, ColumnarTrace, DynInst, Trace, as_columnar
from repro.vm.tracev3 import MAGIC_V3

FORMAT_TAG = "repro-trace-v1"

#: Leading bytes of a v2 (binary columnar) trace file.
MAGIC_V2 = b"repro-trace-v2\x00"

#: What a malformed/truncated v2 payload can legitimately raise:
#: ``pickle.load``'s documented failure modes plus ``ValueError``
#: (struct-level garbage) and ``OSError`` (short reads, bad gzip
#: streams).  Anything outside this set — ``MemoryError``, interpreter
#: state errors, genuine format-handling bugs — is *not* a corrupt
#: file and must propagate instead of masquerading as a cache miss.
EXPECTED_V2_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
    OSError,
)

_log = get_logger("tracefile")


def _open(path: pathlib.Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _open_binary(path: pathlib.Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def _flatten(pairs: Iterable[tuple[int, int | float]]) -> list:
    out: list = []
    for loc, value in pairs:
        out.append(loc)
        out.append(value)
    return out


def _unflatten(flat: list) -> tuple[tuple[int, int | float], ...]:
    if len(flat) % 2:
        raise TraceFileError("odd-length location/value list")
    return tuple((flat[i], flat[i + 1]) for i in range(0, len(flat), 2))


def save_trace(trace: AnyTrace, path: str | pathlib.Path, *,
               format: str = "v1") -> None:
    """Write a trace; ``.gz`` suffixes enable compression (v1/v2).

    ``format="v3"`` selects the chunked streaming layout (smallest,
    seekable; used by the trace cache), ``"v2"`` the pickled columnar
    layout; the default ``"v1"`` stays the portable JSON-lines format.
    """
    path = pathlib.Path(path)
    if format == "v3":
        if path.suffix == ".gz":
            raise TraceFileError(
                "v3 traces are already compressed per chunk; "
                "drop the .gz suffix"
            )
        from repro.vm.tracev3 import write_v3

        write_v3(trace, path)
        return
    if format == "v2":
        with _open_binary(path, "wb") as bfh:
            bfh.write(MAGIC_V2)
            pickle.dump(as_columnar(trace), bfh,
                        protocol=pickle.HIGHEST_PROTOCOL)
        return
    if format != "v1":
        raise TraceFileError(f"unknown trace format {format!r}")
    header = {
        "format": FORMAT_TAG,
        "program": trace.program_name,
        "halted": trace.halted,
        "truncated": trace.truncated,
        "count": len(trace),
    }
    with _open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for inst in trace:
            record = [
                inst.pc,
                int(inst.op),
                _flatten(inst.reads),
                _flatten(inst.writes),
                inst.latency,
                inst.next_pc,
            ]
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")


def load_trace(path: str | pathlib.Path) -> AnyTrace:
    """Read a trace written by :func:`save_trace` (either format).

    The format is sniffed from the file's leading bytes: v2 files
    deserialize straight into a :class:`ColumnarTrace`; v1 files come
    back as the row-layout :class:`Trace`.
    """
    path = pathlib.Path(path)
    with _open_binary(path, "rb") as bfh:
        try:
            prefix = bfh.read(len(MAGIC_V2))
        except OSError as exc:
            raise TraceFileError(f"{path}: unreadable: {exc}") from exc
        if prefix == MAGIC_V3:
            if path.suffix == ".gz":
                raise TraceFileError(
                    f"{path}: gzip-wrapped v3 traces are not seekable; "
                    "store v3 files uncompressed"
                )
            from repro.vm.tracev3 import TraceReader

            with TraceReader(path) as reader:
                return reader.materialize()
        if prefix == MAGIC_V2:
            try:
                trace = pickle.load(bfh)
            except EXPECTED_V2_ERRORS as exc:
                _log.warning("unreadable v2 trace file %s: %s", path, exc)
                raise TraceFileError(f"{path}: bad v2 payload: {exc}") from exc
            if not isinstance(trace, ColumnarTrace):
                raise TraceFileError(f"{path}: v2 payload is not a trace")
            return trace
    with _open(path, "r") as fh:
        try:
            header_line = fh.readline()
        except (UnicodeDecodeError, OSError) as exc:
            # binary garbage (e.g. a bit-flipped v2/v3 magic) is not a
            # JSON-lines trace; surface the typed error
            raise TraceFileError(f"{path}: not a trace file: {exc}") from exc
        if not header_line:
            raise TraceFileError(f"{path}: empty trace file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceFileError(f"{path}: bad header: {exc}") from exc
        if not isinstance(header, dict) or header.get("format") != FORMAT_TAG:
            raise TraceFileError(f"{path}: not a {FORMAT_TAG} file")
        instructions = []
        records = enumerate(fh, start=2)
        while True:
            try:
                lineno, line = next(records)
            except StopIteration:
                break
            except (UnicodeDecodeError, OSError) as exc:
                raise TraceFileError(
                    f"{path}: undecodable record data: {exc}") from exc
            if not line.strip():
                continue
            try:
                pc, op, reads, writes, latency, next_pc = json.loads(line)
            except (json.JSONDecodeError, ValueError) as exc:
                raise TraceFileError(f"{path}:{lineno}: bad record: {exc}") from exc
            instructions.append(
                DynInst(
                    pc=pc,
                    op=Opcode(op),
                    reads=_unflatten(reads),
                    writes=_unflatten(writes),
                    latency=latency,
                    next_pc=next_pc,
                )
            )
    if header.get("count") is not None and header["count"] != len(instructions):
        raise TraceFileError(
            f"{path}: header declares {header['count']} records, "
            f"found {len(instructions)}"
        )
    return Trace(
        instructions=instructions,
        program_name=header.get("program", "<unknown>"),
        halted=bool(header.get("halted", False)),
        truncated=bool(header.get("truncated", False)),
    )


def trace_file_info(path: str | pathlib.Path, *, columns: bool = False,
                    per_chunk: bool = False) -> dict:
    """Structural stats of any trace file (``repro trace info``).

    v3 files report chunk/encoding stats from the footer alone —
    ``columns``/``per_chunk`` additionally decode the file for
    per-column and per-chunk size/time breakdowns; v1/v2 files are
    loaded to count instructions (they are materialized formats, so
    reading them costs what using them costs).
    """
    path = pathlib.Path(path)
    file_bytes = path.stat().st_size
    with _open_binary(path, "rb") as bfh:
        try:
            prefix = bfh.read(len(MAGIC_V2))
        except OSError as exc:
            raise TraceFileError(f"{path}: unreadable: {exc}") from exc
    if prefix == MAGIC_V3:
        from repro.vm.tracev3 import trace_v3_info

        return trace_v3_info(path, columns=columns, per_chunk=per_chunk)
    trace = load_trace(path)
    version = "v2" if prefix == MAGIC_V2 else "v1"
    count = len(trace)
    return {
        "format": version,
        "path": str(path),
        "program": trace.program_name,
        "halted": trace.halted,
        "truncated": trace.truncated,
        "instructions": count,
        "chunk_count": None,
        "chunk_size": None,
        "file_bytes": file_bytes,
        "encoded_bytes": None,
        "compressed_bytes": None,
        "compression_ratio": None,
        "bytes_per_instruction": file_bytes / count if count else 0.0,
    }
