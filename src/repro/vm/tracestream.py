"""Chunked trace streams — the interface every analysis consumes.

The streaming pipeline decouples *where a trace lives* (a live
machine, a v3 file, a materialized ``ColumnarTrace``) from *how it is
consumed*.  A **trace stream** is any object with:

- ``chunks()`` — a method returning a fresh iterator of
  :class:`~repro.vm.trace.ColumnarTrace` segments, in stream order,
  jointly covering the whole trace.  Streams are *re-iterable*:
  calling ``chunks()`` again replays the trace from the start
  (re-reading the file, or re-executing the program).
- ``program_name`` / ``halted`` / ``truncated`` — stream metadata.
  For execution-backed streams the flags are only meaningful after a
  full ``chunks()`` drain.
- ``count`` — total instructions, or ``None`` when unknown upfront
  (execution-backed streams learn it as they run).

Consumers hold O(chunk) memory: one segment at a time, never the
whole trace.  ``as_columnar(stream)`` remains the thin materializing
adapter for whole-trace consumers.

Three concrete streams cover the pipeline:

``ColumnarChunkStream``
    re-slices a materialized trace (the compatibility path — lets
    every streaming consumer also accept plain traces).
``FileTraceStream``
    wraps a v3 file via :class:`repro.vm.tracev3.TraceReader`;
    chunks are decoded on demand with O(chunk) memory.
``ExecutionChunkStream``
    wraps a machine *factory*; each ``chunks()`` call builds a fresh
    machine and yields segments as it executes (the no-cache path for
    traces too large to hold).
"""

from __future__ import annotations

import os
import pathlib
from collections.abc import Callable, Iterator

from repro.vm.trace import (
    AnyTrace,
    ColumnarTrace,
    DynInst,
    Trace,
    as_columnar,
    slice_columnar,
)

#: Default instructions per chunk when re-slicing or executing.
DEFAULT_CHUNK_SIZE = 65536

#: Opt-out switch for the tee'd execute→analyze cold path
#: (``REPRO_DIRECT_STREAM=0`` forces the write-then-reread path).
DIRECT_STREAM_ENV = "REPRO_DIRECT_STREAM"


def direct_stream_enabled(explicit: bool | None = None) -> bool:
    """Resolve the direct-stream knob: explicit argument, then the
    ``REPRO_DIRECT_STREAM`` environment variable, then on by default
    (both paths are bit-identical; direct is strictly less work)."""
    if explicit is not None:
        return explicit
    raw = os.environ.get(DIRECT_STREAM_ENV)
    if raw is None:
        return True
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


def run_chunks(machine, max_instructions: int | None = None, *,
               chunk_size: int = DEFAULT_CHUNK_SIZE,
               ) -> Iterator[ColumnarTrace]:
    """Execute a machine incrementally, yielding one columnar segment
    per ``chunk_size`` instructions.

    Works with any backend whose ``run(max_instructions)`` treats the
    budget as *absolute* against ``instruction_count`` (both
    ``Machine`` and ``FastMachine`` do — repeated calls with growing
    budgets resume execution exactly).  Concatenating the yielded
    segments is bit-identical to a single ``run`` call with the same
    budget, which the differential tests assert.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    done = machine.instruction_count
    while not machine.halted and (max_instructions is None
                                  or done < max_instructions):
        target = done + chunk_size
        if max_instructions is not None:
            target = min(max_instructions, target)
        segment = machine.run(target)
        done = machine.instruction_count
        if not len(segment):
            break
        yield segment


class ColumnarChunkStream:
    """A materialized trace presented as a chunk stream."""

    def __init__(self, trace: AnyTrace, *,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._trace = as_columnar(trace)
        self.chunk_size = chunk_size
        self.program_name = self._trace.program_name
        self.halted = self._trace.halted
        self.truncated = self._trace.truncated
        self.count: int | None = len(self._trace)

    def chunks(self) -> Iterator[ColumnarTrace]:
        ct = self._trace
        n = len(ct)
        cs = self.chunk_size
        if n <= cs:
            # whole trace in one chunk: avoid a full-copy slice
            if n:
                yield ct
            return
        for start in range(0, n, cs):
            yield slice_columnar(ct, start, min(start + cs, n))


class FileTraceStream:
    """A v3 trace file presented as a chunk stream (O(chunk) memory)."""

    def __init__(self, path: str | pathlib.Path) -> None:
        from repro.vm.tracev3 import TraceReader

        self._reader = TraceReader(path)
        self.path = pathlib.Path(path)
        self.program_name = self._reader.program_name
        self.halted = self._reader.halted
        self.truncated = self._reader.truncated
        self.count: int | None = self._reader.count
        self.chunk_size = self._reader.chunk_size

    @property
    def reader(self):
        """The underlying :class:`~repro.vm.tracev3.TraceReader`."""
        return self._reader

    def chunks(self) -> Iterator[ColumnarTrace]:
        return self._reader.chunks()

    def close(self) -> None:
        self._reader.close()

    def __enter__(self) -> "FileTraceStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ExecutionChunkStream:
    """A chunk stream that *executes* a program on demand.

    ``machine_factory`` must build a fresh machine per call; every
    ``chunks()`` iteration re-runs the (deterministic) program, so the
    stream is re-iterable without ever holding the whole trace.
    Metadata (``halted`` / ``truncated`` / ``count``) reflects the
    most recent complete drain.
    """

    def __init__(self, machine_factory: Callable[[], object], *,
                 program_name: str = "<anonymous>",
                 max_instructions: int | None = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self._factory = machine_factory
        self.program_name = program_name
        self.max_instructions = max_instructions
        self.chunk_size = chunk_size
        self.halted = False
        self.truncated = False
        self.count: int | None = None

    def chunks(self) -> Iterator[ColumnarTrace]:
        machine = self._factory()
        total = 0
        for segment in run_chunks(machine, self.max_instructions,
                                  chunk_size=self.chunk_size):
            total += len(segment)
            yield segment
        self.halted = machine.halted
        self.truncated = not machine.halted
        self.count = total


class TeeChunkStream:
    """A chunk stream whose first drain is *tee'd* into a trace writer.

    Wraps a source stream (typically an :class:`ExecutionChunkStream`)
    so that the first ``chunks()`` drain yields every segment to the
    consumer *and* feeds the same segment to a
    :class:`~repro.vm.tracev3.TraceWriter` as it streams past — the
    direct execute→analyze path: one execution produces both the
    analysis input and the persisted trace, with no
    serialize-then-reread round trip.

    The writer lifecycle is delegated to three callbacks so the cache
    layer owns its own locking/atomic-publish rules:

    - ``open_writer()`` → ``(writer, token)`` — create the writer
      (e.g. on a pid-tagged temp path); may return ``None`` to
      disable teeing for this drain.
    - ``commit(writer, token, source)`` — called after a complete
      drain; closes the writer, publishes the file, and may return a
      replacement stream (e.g. a ``FileTraceStream`` over the
      published entry) that serves every later ``chunks()`` call.
    - ``abort(writer, token)`` — called when the drain dies or the
      consumer abandons the iterator; must discard the partial file.

    An incomplete drain publishes nothing; the next ``chunks()`` call
    simply re-runs the source.  Segments are handed to the writer
    *by reference* — the no-copy invariant means neither the consumer
    nor the source may mutate a yielded segment.
    """

    def __init__(self, source, *, open_writer, commit, abort) -> None:
        self._source = source
        self._open_writer = open_writer
        self._commit = commit
        self._abort = abort
        self._replay = None
        self.program_name = source.program_name
        self.halted = source.halted
        self.truncated = source.truncated
        self.count: int | None = source.count

    @property
    def persisted(self) -> bool:
        """True once a complete drain has published the trace."""
        return self._replay is not None

    def chunks(self) -> Iterator[ColumnarTrace]:
        if self._replay is not None:
            yield from self._replay.chunks()
            return
        opened = self._open_writer()
        if opened is None:
            yield from self._source.chunks()
            self._sync_meta(self._source)
            return
        writer, token = opened
        done = False
        try:
            for segment in self._source.chunks():
                writer.write_segment(segment)
                yield segment
            done = True
        finally:
            if not done:
                self._abort(writer, token)
        self._sync_meta(self._source)
        self._replay = self._commit(writer, token, self._source)

    def _sync_meta(self, stream) -> None:
        self.program_name = stream.program_name
        self.halted = stream.halted
        self.truncated = stream.truncated
        self.count = stream.count


def is_chunk_stream(obj) -> bool:
    """True when ``obj`` follows the chunk-stream protocol."""
    return callable(getattr(obj, "chunks", None))


def as_chunk_stream(traceish, *, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Coerce any trace-like argument into a chunk stream.

    Streams pass through untouched; materialized traces (either
    layout) and plain ``DynInst`` sequences are wrapped in a
    :class:`ColumnarChunkStream`.  This is the entry point every
    stream-consuming analysis uses, so they all keep accepting plain
    traces unchanged.
    """
    if is_chunk_stream(traceish):
        return traceish
    return ColumnarChunkStream(traceish, chunk_size=chunk_size)


def iter_insts(traceish) -> Iterator[DynInst]:
    """Iterate ``DynInst`` records over any trace-like argument.

    Row materialization happens one chunk at a time for streams; for
    plain traces it is a direct iteration.  The uniform lazy entry
    point for row-oriented consumers (RTM, predictors, span scans).
    """
    if isinstance(traceish, (Trace, ColumnarTrace)):
        yield from traceish.instructions
        return
    if is_chunk_stream(traceish):
        for segment in traceish.chunks():
            yield from segment.instructions
        return
    yield from traceish


def stream_length(traceish) -> int | None:
    """The instruction count of a trace-like argument, if cheaply known."""
    if isinstance(traceish, (Trace, ColumnarTrace)):
        return len(traceish)
    if is_chunk_stream(traceish):
        return getattr(traceish, "count", None)
    try:
        return len(traceish)
    except TypeError:
        return None


def write_stream(stream, path: str | pathlib.Path, *,
                 chunk_size: int | None = None,
                 compresslevel: int | None = None,
                 threads: int | None = None) -> int:
    """Drain a chunk stream into a v3 file; returns instructions written.

    The writer re-chunks to its own ``chunk_size``, so the output
    layout is independent of the source segmentation.
    """
    from repro.vm.tracev3 import (
        DEFAULT_CHUNK_SIZE as V3_CHUNK,
        DEFAULT_COMPRESSLEVEL,
        TraceWriter,
    )

    stream = as_chunk_stream(stream)
    writer = TraceWriter(
        path,
        program_name=getattr(stream, "program_name", "<anonymous>"),
        chunk_size=chunk_size if chunk_size is not None else V3_CHUNK,
        compresslevel=(compresslevel if compresslevel is not None
                       else DEFAULT_COMPRESSLEVEL),
        threads=threads,
    )
    try:
        for segment in stream.chunks():
            writer.write_segment(segment)
    except BaseException:
        writer.abort()
        raise
    writer.program_name = getattr(stream, "program_name", writer.program_name)
    writer.close(
        halted=getattr(stream, "halted", False),
        truncated=getattr(stream, "truncated", False),
    )
    return writer.count
