"""Assembled program container.

A :class:`Program` owns the decoded instruction list, the label maps
produced by the assembler and the initial data-segment image.  PCs
are instruction indices (every instruction occupies one slot), and
memory is word-addressed, so ``.word`` directives advance the data
cursor by one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction

#: Default base address of the data segment (word address).  Chosen
#: away from 0 so stray null-pointer loads are distinguishable in
#: traces and tests.
DATA_BASE = 0x1000


@dataclass(slots=True)
class Program:
    """A fully assembled program ready for execution.

    Attributes
    ----------
    instructions:
        Decoded static instructions; the PC indexes this list.
    text_labels:
        Code label -> instruction index.
    data_labels:
        Data label -> word address in the data segment.
    data:
        Initial memory image (word address -> int or float value).
    name:
        Optional human-readable program name (used in reports).
    """

    instructions: list[Instruction] = field(default_factory=list)
    text_labels: dict[str, int] = field(default_factory=dict)
    data_labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, int | float] = field(default_factory=dict)
    name: str = "<anonymous>"

    def __len__(self) -> int:
        return len(self.instructions)

    def label_pc(self, label: str) -> int:
        """PC of a code label; raises ``KeyError`` if undefined."""
        return self.text_labels[label]

    def data_address(self, label: str) -> int:
        """Word address of a data label; raises ``KeyError`` if undefined."""
        return self.data_labels[label]

    def static_instruction_count(self) -> int:
        """Number of static instructions (the ``len`` of the text segment)."""
        return len(self.instructions)
