"""The interpreting virtual machine.

``Machine`` executes an assembled :class:`~repro.vm.program.Program`
and captures the dynamic instruction stream.  The implementation
follows the hot-loop idioms from the HPC guides: instructions are
pre-decoded, dispatch is a single dict lookup to a bound method, and
per-step allocations are limited to the trace record itself.

Architectural model:

- 32 integer registers (``r0`` hardwired to zero) and 32 FP registers;
- word-addressed flat memory (a dict; unwritten words read as 0);
- 64-bit two's-complement integer arithmetic;
- IEEE double floating point (Python floats).
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import LATENCY, Opcode
from repro.isa.registers import FP_REG_BASE, MEM_LOC_BASE
from repro.vm.errors import VMError
from repro.vm.program import Program
from repro.vm.trace import DynInst, Trace

#: Initial stack pointer (word address); the stack grows downwards.
DEFAULT_STACK_TOP = 1 << 20

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _wrap64(x: int) -> int:
    """Wrap a Python int to 64-bit two's-complement."""
    x &= _MASK64
    return x - (1 << 64) if x & _SIGN64 else x


class Machine:
    """Interpreter with dynamic-trace capture.

    Parameters
    ----------
    program:
        The assembled program to run.
    stack_top:
        Initial value of the stack pointer register (``sp``).
    """

    def __init__(self, program: Program, *, stack_top: int = DEFAULT_STACK_TOP):
        self.program = program
        self.regs: list[int] = [0] * 32
        self.fregs: list[float] = [0.0] * 32
        self.memory: dict[int, int | float] = dict(program.data)
        self.regs[29] = stack_top  # sp
        self.pc = program.text_labels.get("main", 0)
        self.halted = False
        self.instruction_count = 0
        self._dispatch = self._build_dispatch()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, max_instructions: int | None = None) -> Trace:
        """Execute until HALT or the instruction budget, capturing a trace."""
        records: list[DynInst] = []
        budget = max_instructions if max_instructions is not None else float("inf")
        while not self.halted and self.instruction_count < budget:
            records.append(self.step())
        return Trace(
            instructions=records,
            program_name=self.program.name,
            halted=self.halted,
            truncated=not self.halted,
        )

    def step(self) -> DynInst:
        """Execute one instruction and return its trace record."""
        if self.halted:
            raise VMError("machine is halted", pc=self.pc)
        instrs = self.program.instructions
        if not 0 <= self.pc < len(instrs):
            raise VMError(f"pc {self.pc} outside program", pc=self.pc)
        inst = instrs[self.pc]
        handler = self._dispatch.get(inst.op)
        if handler is None:  # pragma: no cover - all opcodes are wired up
            raise VMError(f"unimplemented opcode {inst.op.name}", pc=self.pc,
                          line=inst.line)
        reads, writes, next_pc = handler(inst)
        record = DynInst(self.pc, inst.op, reads, writes, LATENCY[inst.op], next_pc)
        self.pc = next_pc
        self.instruction_count += 1
        return record

    def read_memory(self, addr: int) -> int | float:
        """Architectural memory read (unwritten words read as zero)."""
        return self.memory.get(addr, 0)

    def register(self, index: int) -> int:
        """Architectural integer-register read."""
        return self.regs[index]

    def fp_register(self, index: int) -> float:
        """Architectural FP-register read."""
        return self.fregs[index]

    # ------------------------------------------------------------------
    # helpers used by handlers
    # ------------------------------------------------------------------
    def _write_reg(self, idx: int, value: int):
        """Write an int register; returns the trace-write tuple or ()."""
        if idx == 0:
            return ()  # r0 is hardwired zero; the write is discarded
        self.regs[idx] = value
        return ((idx, value),)

    def _mem_addr(self, inst: Instruction) -> int:
        addr = self.regs[inst.rs1] + inst.imm
        if addr < 0:
            raise VMError(f"negative memory address {addr}", pc=self.pc,
                          line=inst.line)
        return addr

    # ------------------------------------------------------------------
    # opcode handlers: return (reads, writes, next_pc)
    # ------------------------------------------------------------------
    def _alu_rr(self, inst: Instruction, fn):
        a = self.regs[inst.rs1]
        b = self.regs[inst.rs2]
        result = fn(a, b)
        reads = ((inst.rs1, a), (inst.rs2, b))
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    def _alu_ri(self, inst: Instruction, fn):
        a = self.regs[inst.rs1]
        result = fn(a, inst.imm)
        reads = ((inst.rs1, a),)
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    def _build_dispatch(self):
        wrap = _wrap64

        def shift_amount(b: int) -> int:
            return b & 63

        def srl(a: int, b: int) -> int:
            return wrap((a & _MASK64) >> shift_amount(b))

        int_rr = {
            Opcode.ADD: lambda a, b: wrap(a + b),
            Opcode.SUB: lambda a, b: wrap(a - b),
            Opcode.AND: lambda a, b: a & b,
            Opcode.OR: lambda a, b: a | b,
            Opcode.XOR: lambda a, b: a ^ b,
            Opcode.SLL: lambda a, b: wrap(a << shift_amount(b)),
            Opcode.SRL: srl,
            Opcode.SRA: lambda a, b: a >> shift_amount(b),
            Opcode.SLT: lambda a, b: 1 if a < b else 0,
            Opcode.SEQ: lambda a, b: 1 if a == b else 0,
            Opcode.MUL: lambda a, b: wrap(a * b),
        }
        int_ri = {
            Opcode.ADDI: lambda a, b: wrap(a + b),
            Opcode.ANDI: lambda a, b: a & b,
            Opcode.ORI: lambda a, b: a | b,
            Opcode.XORI: lambda a, b: a ^ b,
            Opcode.SLLI: lambda a, b: wrap(a << shift_amount(b)),
            Opcode.SRLI: srl,
            Opcode.SRAI: lambda a, b: a >> shift_amount(b),
            Opcode.SLTI: lambda a, b: 1 if a < b else 0,
            Opcode.MULI: lambda a, b: wrap(a * b),
        }
        branches = {
            Opcode.BEQ: lambda a, b: a == b,
            Opcode.BNE: lambda a, b: a != b,
            Opcode.BLT: lambda a, b: a < b,
            Opcode.BGE: lambda a, b: a >= b,
            Opcode.BLE: lambda a, b: a <= b,
            Opcode.BGT: lambda a, b: a > b,
        }
        fp_rr = {
            Opcode.FADD: lambda a, b: a + b,
            Opcode.FSUB: lambda a, b: a - b,
            Opcode.FMUL: lambda a, b: a * b,
        }
        fp_cmp = {
            Opcode.FEQ: lambda a, b: 1 if a == b else 0,
            Opcode.FLT: lambda a, b: 1 if a < b else 0,
            Opcode.FLE: lambda a, b: 1 if a <= b else 0,
        }

        table = {}
        for op, fn in int_rr.items():
            table[op] = (lambda inst, f=fn: self._alu_rr(inst, f))
        for op, fn in int_ri.items():
            table[op] = (lambda inst, f=fn: self._alu_ri(inst, f))
        for op, fn in branches.items():
            table[op] = (lambda inst, f=fn: self._branch(inst, f))
        for op, fn in fp_rr.items():
            table[op] = (lambda inst, f=fn: self._fp_rr(inst, f))
        for op, fn in fp_cmp.items():
            table[op] = (lambda inst, f=fn: self._fp_cmp(inst, f))
        table[Opcode.DIV] = self._op_div
        table[Opcode.REM] = self._op_rem
        table[Opcode.LI] = self._op_li
        table[Opcode.MOV] = self._op_mov
        table[Opcode.LW] = self._op_lw
        table[Opcode.SW] = self._op_sw
        table[Opcode.FLW] = self._op_flw
        table[Opcode.FSW] = self._op_fsw
        table[Opcode.J] = self._op_j
        table[Opcode.JAL] = self._op_jal
        table[Opcode.JR] = self._op_jr
        table[Opcode.FDIV] = self._op_fdiv
        table[Opcode.FSQRT] = self._op_fsqrt
        table[Opcode.FNEG] = self._op_fneg
        table[Opcode.FABS] = self._op_fabs
        table[Opcode.FMOV] = self._op_fmov
        table[Opcode.FLI] = self._op_fli
        table[Opcode.CVTIF] = self._op_cvtif
        table[Opcode.CVTFI] = self._op_cvtfi
        table[Opcode.NOP] = self._op_nop
        table[Opcode.HALT] = self._op_halt
        return table

    def _branch(self, inst: Instruction, cond):
        a = self.regs[inst.rs1]
        b = self.regs[inst.rs2]
        taken = cond(a, b)
        next_pc = inst.imm if taken else self.pc + 1
        return ((inst.rs1, a), (inst.rs2, b)), (), next_pc

    def _fp_rr(self, inst: Instruction, fn):
        a = self.fregs[inst.rs1]
        b = self.fregs[inst.rs2]
        result = fn(a, b)
        self.fregs[inst.rd] = result
        reads = ((FP_REG_BASE + inst.rs1, a), (FP_REG_BASE + inst.rs2, b))
        return reads, ((FP_REG_BASE + inst.rd, result),), self.pc + 1

    def _fp_cmp(self, inst: Instruction, fn):
        a = self.fregs[inst.rs1]
        b = self.fregs[inst.rs2]
        result = fn(a, b)
        reads = ((FP_REG_BASE + inst.rs1, a), (FP_REG_BASE + inst.rs2, b))
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    @staticmethod
    def _trunc_div(a: int, b: int) -> int:
        """Exact integer division truncating toward zero."""
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q

    def _op_div(self, inst: Instruction):
        a = self.regs[inst.rs1]
        b = self.regs[inst.rs2]
        if b == 0:
            raise VMError("integer division by zero", pc=self.pc, line=inst.line)
        result = _wrap64(self._trunc_div(a, b))
        reads = ((inst.rs1, a), (inst.rs2, b))
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    def _op_rem(self, inst: Instruction):
        a = self.regs[inst.rs1]
        b = self.regs[inst.rs2]
        if b == 0:
            raise VMError("integer remainder by zero", pc=self.pc, line=inst.line)
        result = _wrap64(a - self._trunc_div(a, b) * b)
        reads = ((inst.rs1, a), (inst.rs2, b))
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    def _op_li(self, inst: Instruction):
        return (), self._write_reg(inst.rd, int(inst.imm)), self.pc + 1

    def _op_mov(self, inst: Instruction):
        a = self.regs[inst.rs1]
        return ((inst.rs1, a),), self._write_reg(inst.rd, a), self.pc + 1

    def _op_lw(self, inst: Instruction):
        base = self.regs[inst.rs1]
        addr = self._mem_addr(inst)
        value = self.memory.get(addr, 0)
        if isinstance(value, float):
            value = int(value)
        reads = ((inst.rs1, base), (MEM_LOC_BASE + addr, value))
        return reads, self._write_reg(inst.rd, value), self.pc + 1

    def _op_sw(self, inst: Instruction):
        base = self.regs[inst.rs1]
        value = self.regs[inst.rs2]
        addr = self._mem_addr(inst)
        self.memory[addr] = value
        reads = ((inst.rs1, base), (inst.rs2, value))
        return reads, ((MEM_LOC_BASE + addr, value),), self.pc + 1

    def _op_flw(self, inst: Instruction):
        base = self.regs[inst.rs1]
        addr = self._mem_addr(inst)
        value = float(self.memory.get(addr, 0))
        self.fregs[inst.rd] = value
        reads = ((inst.rs1, base), (MEM_LOC_BASE + addr, value))
        return reads, ((FP_REG_BASE + inst.rd, value),), self.pc + 1

    def _op_fsw(self, inst: Instruction):
        base = self.regs[inst.rs1]
        value = self.fregs[inst.rs2]
        addr = self._mem_addr(inst)
        self.memory[addr] = value
        reads = ((inst.rs1, base), (FP_REG_BASE + inst.rs2, value))
        return reads, ((MEM_LOC_BASE + addr, value),), self.pc + 1

    def _op_j(self, inst: Instruction):
        return (), (), int(inst.imm)

    def _op_jal(self, inst: Instruction):
        link = self.pc + 1
        return (), self._write_reg(inst.rd, link), int(inst.imm)

    def _op_jr(self, inst: Instruction):
        a = self.regs[inst.rs1]
        return ((inst.rs1, a),), (), a

    def _op_fdiv(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        b = self.fregs[inst.rs2]
        if b == 0.0:
            raise VMError("floating division by zero", pc=self.pc, line=inst.line)
        result = a / b
        self.fregs[inst.rd] = result
        reads = ((FP_REG_BASE + inst.rs1, a), (FP_REG_BASE + inst.rs2, b))
        return reads, ((FP_REG_BASE + inst.rd, result),), self.pc + 1

    def _op_fsqrt(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        if a < 0.0:
            raise VMError("square root of a negative value", pc=self.pc,
                          line=inst.line)
        result = a ** 0.5
        self.fregs[inst.rd] = result
        reads = ((FP_REG_BASE + inst.rs1, a),)
        return reads, ((FP_REG_BASE + inst.rd, result),), self.pc + 1

    def _op_fneg(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        result = -a
        self.fregs[inst.rd] = result
        return (((FP_REG_BASE + inst.rs1, a),),
                ((FP_REG_BASE + inst.rd, result),), self.pc + 1)

    def _op_fabs(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        result = abs(a)
        self.fregs[inst.rd] = result
        return (((FP_REG_BASE + inst.rs1, a),),
                ((FP_REG_BASE + inst.rd, result),), self.pc + 1)

    def _op_fmov(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        self.fregs[inst.rd] = a
        return (((FP_REG_BASE + inst.rs1, a),),
                ((FP_REG_BASE + inst.rd, a),), self.pc + 1)

    def _op_fli(self, inst: Instruction):
        value = float(inst.imm)
        self.fregs[inst.rd] = value
        return (), ((FP_REG_BASE + inst.rd, value),), self.pc + 1

    def _op_cvtif(self, inst: Instruction):
        a = self.regs[inst.rs1]
        result = float(a)
        self.fregs[inst.rd] = result
        return (((inst.rs1, a),),
                ((FP_REG_BASE + inst.rd, result),), self.pc + 1)

    def _op_cvtfi(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        result = _wrap64(int(a))
        reads = ((FP_REG_BASE + inst.rs1, a),)
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    def _op_nop(self, inst: Instruction):
        return (), (), self.pc + 1

    def _op_halt(self, inst: Instruction):
        self.halted = True
        return (), (), self.pc


def run_source(source: str, *, name: str = "<anonymous>",
               max_instructions: int | None = None) -> Trace:
    """Assemble and run source text in one call (convenience for tests)."""
    from repro.vm.assembler import assemble

    machine = Machine(assemble(source, name=name))
    return machine.run(max_instructions=max_instructions)
