"""The interpreting virtual machine.

``Machine`` executes an assembled :class:`~repro.vm.program.Program`
and captures the dynamic instruction stream.  The implementation
follows the hot-loop idioms from the HPC guides: instructions are
pre-decoded, dispatch is a single dict lookup to a bound method, and
per-step allocations are limited to the trace record itself.

Architectural model:

- 32 integer registers (``r0`` hardwired to zero) and 32 FP registers;
- word-addressed flat memory (a dict; unwritten words read as 0);
- 64-bit two's-complement integer arithmetic;
- IEEE double floating point (Python floats).
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import FP_REG_BASE, MEM_LOC_BASE
from repro.vm.errors import VMError
from repro.vm.program import Program
from repro.vm.trace import ColumnarTrace, DynInst, Trace

#: Initial stack pointer (word address); the stack grows downwards.
DEFAULT_STACK_TOP = 1 << 20

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _wrap64(x: int) -> int:
    """Wrap a Python int to 64-bit two's-complement."""
    x &= _MASK64
    return x - (1 << 64) if x & _SIGN64 else x


def _shift_amount(b: int) -> int:
    return b & 63


def _srl(a: int, b: int) -> int:
    return _wrap64((a & _MASK64) >> _shift_amount(b))


#: Semantics of the table-driven opcode groups, shared by the
#: interactive dispatch (:meth:`Machine.step`) and the trace compiler
#: (:meth:`Machine.run`).
_INT_RR_FN = {
    Opcode.ADD: lambda a, b: _wrap64(a + b),
    Opcode.SUB: lambda a, b: _wrap64(a - b),
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: _wrap64(a << _shift_amount(b)),
    Opcode.SRL: _srl,
    Opcode.SRA: lambda a, b: a >> _shift_amount(b),
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.SEQ: lambda a, b: 1 if a == b else 0,
    Opcode.MUL: lambda a, b: _wrap64(a * b),
}
_INT_RI_FN = {
    Opcode.ADDI: lambda a, b: _wrap64(a + b),
    Opcode.ANDI: lambda a, b: a & b,
    Opcode.ORI: lambda a, b: a | b,
    Opcode.XORI: lambda a, b: a ^ b,
    Opcode.SLLI: lambda a, b: _wrap64(a << _shift_amount(b)),
    Opcode.SRLI: _srl,
    Opcode.SRAI: lambda a, b: a >> _shift_amount(b),
    Opcode.SLTI: lambda a, b: 1 if a < b else 0,
    Opcode.MULI: lambda a, b: _wrap64(a * b),
}
_BRANCH_FN = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
    Opcode.BLE: lambda a, b: a <= b,
    Opcode.BGT: lambda a, b: a > b,
}
_FP_RR_FN = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
}
_FP_CMP_FN = {
    Opcode.FEQ: lambda a, b: 1 if a == b else 0,
    Opcode.FLT: lambda a, b: 1 if a < b else 0,
    Opcode.FLE: lambda a, b: 1 if a <= b else 0,
}


class _HaltSignal(Exception):
    """Internal: unwinds the compiled run loop when HALT executes."""


class Machine:
    """Interpreter with dynamic-trace capture.

    Parameters
    ----------
    program:
        The assembled program to run.
    stack_top:
        Initial value of the stack pointer register (``sp``).
    """

    def __init__(self, program: Program, *, stack_top: int = DEFAULT_STACK_TOP):
        self.program = program
        self.regs: list[int] = [0] * 32
        self.fregs: list[float] = [0.0] * 32
        self.memory: dict[int, int | float] = dict(program.data)
        self.regs[29] = stack_top  # sp
        self.pc = program.text_labels.get("main", 0)
        self.halted = False
        self.instruction_count = 0
        self._dispatch = self._build_dispatch()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, max_instructions: int | None = None) -> ColumnarTrace:
        """Execute until HALT or the instruction budget, capturing a trace.

        The program is first *compiled*: every static instruction
        becomes a closure with its operands, latency and column sinks
        bound as locals, so the hot loop is just ``pc = execs[pc]()``
        — no dispatch lookups, no per-step record objects, no
        attribute traffic.  :meth:`step` remains the one-at-a-time
        interpreted API (and :meth:`run_rows` the row-trace one).
        """
        from array import array

        pcs: list[int] = []
        ops: list[int] = []
        lats: list[int] = []
        next_pcs: list[int] = []
        read_bounds: list[int] = [0]
        read_locs: list[int] = []
        read_vals: list = []
        write_bounds: list[int] = [0]
        write_locs: list[int] = []
        write_vals: list = []
        cols = (
            pcs.append, ops.append, lats.append, next_pcs.append,
            read_bounds.append, read_locs.append, read_vals.append,
            write_bounds.append, write_locs.append, write_vals.append,
            read_locs, write_locs,
        )

        instrs = self.program.instructions
        builders = _EXEC_BUILDERS
        execs = []
        for spc, inst in enumerate(instrs):
            build = builders.get(inst.op)
            if build is None:  # pragma: no cover - all opcodes are wired up
                raise VMError(f"unimplemented opcode {inst.op.name}", pc=spc,
                              line=inst.line)
            execs.append(build(self, inst, spc, cols))

        n_static = len(instrs)
        budget = max_instructions if max_instructions is not None else float("inf")
        count = self.instruction_count
        pc = self.pc
        if not self.halted:
            try:
                while count < budget:
                    if 0 <= pc < n_static:
                        pc = execs[pc]()
                        count += 1
                    else:
                        self.pc = pc
                        raise VMError(f"pc {pc} outside program", pc=pc)
            except _HaltSignal:
                count += 1
                pc = self.pc
            except VMError:
                self.instruction_count = count
                raise
        self.pc = pc
        self.instruction_count = count

        trace = ColumnarTrace(
            program_name=self.program.name,
            halted=self.halted,
            truncated=not self.halted,
        )
        trace.pcs = array("i", pcs)
        trace.ops = array("h", ops)
        trace.lats = array("h", lats)
        trace.next_pcs = array("i", next_pcs)
        trace.read_bounds = array("I", read_bounds)
        trace.read_locs = array("q", read_locs)
        trace.read_vals = read_vals
        trace.write_bounds = array("I", write_bounds)
        trace.write_locs = array("q", write_locs)
        trace.write_vals = write_vals
        return trace

    def run_chunks(self, max_instructions: int | None = None, *,
                   chunk_size: int | None = None):
        """Execute incrementally, yielding one columnar segment per
        ``chunk_size`` instructions (see
        :func:`repro.vm.tracestream.run_chunks`).

        Both backends resume exactly across :meth:`run` calls (the
        budget is absolute against ``instruction_count``), so the
        concatenated segments are bit-identical to a single ``run``
        with the same budget.
        """
        from repro.vm import tracestream

        return tracestream.run_chunks(
            self, max_instructions,
            chunk_size=(chunk_size if chunk_size is not None
                        else tracestream.DEFAULT_CHUNK_SIZE),
        )

    def run_to_writer(self, writer, max_instructions: int | None = None, *,
                      chunk_size: int | None = None) -> int:
        """Execute incrementally, emitting into a
        :class:`repro.vm.tracev3.TraceWriter` as chunks retire.

        Returns the number of instructions executed.  The writer's
        ``halted``/``truncated`` flags are updated from the final
        machine state; closing (footer emission) is left to the
        caller, so several segments or machines can share one file.
        """
        executed = 0
        for segment in self.run_chunks(max_instructions,
                                       chunk_size=chunk_size):
            writer.write_segment(segment)
            executed += len(segment)
        writer.halted = self.halted
        writer.truncated = not self.halted
        return executed

    def run_rows(self, max_instructions: int | None = None) -> Trace:
        """Execute via the one-at-a-time interpreter, returning the
        row-layout :class:`Trace`.

        This is the pre-compiler execution path (``step`` in a loop);
        it is kept as the differential-testing oracle for :meth:`run`
        and as the measured baseline in the engine benchmarks.
        """
        records: list[DynInst] = []
        budget = max_instructions if max_instructions is not None else float("inf")
        while not self.halted and self.instruction_count < budget:
            records.append(self.step())
        return Trace(
            instructions=records,
            program_name=self.program.name,
            halted=self.halted,
            truncated=not self.halted,
        )

    def step(self) -> DynInst:
        """Execute one instruction and return its trace record."""
        if self.halted:
            raise VMError("machine is halted", pc=self.pc)
        instrs = self.program.instructions
        if not 0 <= self.pc < len(instrs):
            raise VMError(f"pc {self.pc} outside program", pc=self.pc)
        inst = instrs[self.pc]
        handler = self._dispatch.get(inst.op)
        if handler is None:  # pragma: no cover - all opcodes are wired up
            raise VMError(f"unimplemented opcode {inst.op.name}", pc=self.pc,
                          line=inst.line)
        reads, writes, next_pc = handler(inst)
        record = DynInst(self.pc, inst.op, reads, writes, inst.latency, next_pc)
        self.pc = next_pc
        self.instruction_count += 1
        return record

    def read_memory(self, addr: int) -> int | float:
        """Architectural memory read (unwritten words read as zero)."""
        return self.memory.get(addr, 0)

    def register(self, index: int) -> int:
        """Architectural integer-register read."""
        return self.regs[index]

    def fp_register(self, index: int) -> float:
        """Architectural FP-register read."""
        return self.fregs[index]

    # ------------------------------------------------------------------
    # helpers used by handlers
    # ------------------------------------------------------------------
    def _write_reg(self, idx: int, value: int):
        """Write an int register; returns the trace-write tuple or ()."""
        if idx == 0:
            return ()  # r0 is hardwired zero; the write is discarded
        self.regs[idx] = value
        return ((idx, value),)

    def _mem_addr(self, inst: Instruction) -> int:
        addr = self.regs[inst.rs1] + inst.imm
        if addr < 0:
            raise VMError(f"negative memory address {addr}", pc=self.pc,
                          line=inst.line)
        return addr

    # ------------------------------------------------------------------
    # opcode handlers: return (reads, writes, next_pc)
    # ------------------------------------------------------------------
    def _alu_rr(self, inst: Instruction, fn):
        a = self.regs[inst.rs1]
        b = self.regs[inst.rs2]
        result = fn(a, b)
        reads = ((inst.rs1, a), (inst.rs2, b))
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    def _alu_ri(self, inst: Instruction, fn):
        a = self.regs[inst.rs1]
        result = fn(a, inst.imm)
        reads = ((inst.rs1, a),)
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    def _build_dispatch(self):
        table = {}
        for op, fn in _INT_RR_FN.items():
            table[op] = (lambda inst, f=fn: self._alu_rr(inst, f))
        for op, fn in _INT_RI_FN.items():
            table[op] = (lambda inst, f=fn: self._alu_ri(inst, f))
        for op, fn in _BRANCH_FN.items():
            table[op] = (lambda inst, f=fn: self._branch(inst, f))
        for op, fn in _FP_RR_FN.items():
            table[op] = (lambda inst, f=fn: self._fp_rr(inst, f))
        for op, fn in _FP_CMP_FN.items():
            table[op] = (lambda inst, f=fn: self._fp_cmp(inst, f))
        table[Opcode.DIV] = self._op_div
        table[Opcode.REM] = self._op_rem
        table[Opcode.LI] = self._op_li
        table[Opcode.MOV] = self._op_mov
        table[Opcode.LW] = self._op_lw
        table[Opcode.SW] = self._op_sw
        table[Opcode.FLW] = self._op_flw
        table[Opcode.FSW] = self._op_fsw
        table[Opcode.J] = self._op_j
        table[Opcode.JAL] = self._op_jal
        table[Opcode.JR] = self._op_jr
        table[Opcode.FDIV] = self._op_fdiv
        table[Opcode.FSQRT] = self._op_fsqrt
        table[Opcode.FNEG] = self._op_fneg
        table[Opcode.FABS] = self._op_fabs
        table[Opcode.FMOV] = self._op_fmov
        table[Opcode.FLI] = self._op_fli
        table[Opcode.CVTIF] = self._op_cvtif
        table[Opcode.CVTFI] = self._op_cvtfi
        table[Opcode.NOP] = self._op_nop
        table[Opcode.HALT] = self._op_halt
        return table

    def _branch(self, inst: Instruction, cond):
        a = self.regs[inst.rs1]
        b = self.regs[inst.rs2]
        taken = cond(a, b)
        next_pc = inst.imm if taken else self.pc + 1
        return ((inst.rs1, a), (inst.rs2, b)), (), next_pc

    def _fp_rr(self, inst: Instruction, fn):
        a = self.fregs[inst.rs1]
        b = self.fregs[inst.rs2]
        result = fn(a, b)
        self.fregs[inst.rd] = result
        reads = ((FP_REG_BASE + inst.rs1, a), (FP_REG_BASE + inst.rs2, b))
        return reads, ((FP_REG_BASE + inst.rd, result),), self.pc + 1

    def _fp_cmp(self, inst: Instruction, fn):
        a = self.fregs[inst.rs1]
        b = self.fregs[inst.rs2]
        result = fn(a, b)
        reads = ((FP_REG_BASE + inst.rs1, a), (FP_REG_BASE + inst.rs2, b))
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    @staticmethod
    def _trunc_div(a: int, b: int) -> int:
        """Exact integer division truncating toward zero."""
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q

    def _op_div(self, inst: Instruction):
        a = self.regs[inst.rs1]
        b = self.regs[inst.rs2]
        if b == 0:
            raise VMError("integer division by zero", pc=self.pc, line=inst.line)
        result = _wrap64(self._trunc_div(a, b))
        reads = ((inst.rs1, a), (inst.rs2, b))
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    def _op_rem(self, inst: Instruction):
        a = self.regs[inst.rs1]
        b = self.regs[inst.rs2]
        if b == 0:
            raise VMError("integer remainder by zero", pc=self.pc, line=inst.line)
        result = _wrap64(a - self._trunc_div(a, b) * b)
        reads = ((inst.rs1, a), (inst.rs2, b))
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    def _op_li(self, inst: Instruction):
        return (), self._write_reg(inst.rd, int(inst.imm)), self.pc + 1

    def _op_mov(self, inst: Instruction):
        a = self.regs[inst.rs1]
        return ((inst.rs1, a),), self._write_reg(inst.rd, a), self.pc + 1

    def _op_lw(self, inst: Instruction):
        base = self.regs[inst.rs1]
        addr = self._mem_addr(inst)
        value = self.memory.get(addr, 0)
        if isinstance(value, float):
            value = int(value)
        reads = ((inst.rs1, base), (MEM_LOC_BASE + addr, value))
        return reads, self._write_reg(inst.rd, value), self.pc + 1

    def _op_sw(self, inst: Instruction):
        base = self.regs[inst.rs1]
        value = self.regs[inst.rs2]
        addr = self._mem_addr(inst)
        self.memory[addr] = value
        reads = ((inst.rs1, base), (inst.rs2, value))
        return reads, ((MEM_LOC_BASE + addr, value),), self.pc + 1

    def _op_flw(self, inst: Instruction):
        base = self.regs[inst.rs1]
        addr = self._mem_addr(inst)
        value = float(self.memory.get(addr, 0))
        self.fregs[inst.rd] = value
        reads = ((inst.rs1, base), (MEM_LOC_BASE + addr, value))
        return reads, ((FP_REG_BASE + inst.rd, value),), self.pc + 1

    def _op_fsw(self, inst: Instruction):
        base = self.regs[inst.rs1]
        value = self.fregs[inst.rs2]
        addr = self._mem_addr(inst)
        self.memory[addr] = value
        reads = ((inst.rs1, base), (FP_REG_BASE + inst.rs2, value))
        return reads, ((MEM_LOC_BASE + addr, value),), self.pc + 1

    def _op_j(self, inst: Instruction):
        return (), (), int(inst.imm)

    def _op_jal(self, inst: Instruction):
        link = self.pc + 1
        return (), self._write_reg(inst.rd, link), int(inst.imm)

    def _op_jr(self, inst: Instruction):
        a = self.regs[inst.rs1]
        return ((inst.rs1, a),), (), a

    def _op_fdiv(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        b = self.fregs[inst.rs2]
        if b == 0.0:
            raise VMError("floating division by zero", pc=self.pc, line=inst.line)
        result = a / b
        self.fregs[inst.rd] = result
        reads = ((FP_REG_BASE + inst.rs1, a), (FP_REG_BASE + inst.rs2, b))
        return reads, ((FP_REG_BASE + inst.rd, result),), self.pc + 1

    def _op_fsqrt(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        if a < 0.0:
            raise VMError("square root of a negative value", pc=self.pc,
                          line=inst.line)
        result = a ** 0.5
        self.fregs[inst.rd] = result
        reads = ((FP_REG_BASE + inst.rs1, a),)
        return reads, ((FP_REG_BASE + inst.rd, result),), self.pc + 1

    def _op_fneg(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        result = -a
        self.fregs[inst.rd] = result
        return (((FP_REG_BASE + inst.rs1, a),),
                ((FP_REG_BASE + inst.rd, result),), self.pc + 1)

    def _op_fabs(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        result = abs(a)
        self.fregs[inst.rd] = result
        return (((FP_REG_BASE + inst.rs1, a),),
                ((FP_REG_BASE + inst.rd, result),), self.pc + 1)

    def _op_fmov(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        self.fregs[inst.rd] = a
        return (((FP_REG_BASE + inst.rs1, a),),
                ((FP_REG_BASE + inst.rd, a),), self.pc + 1)

    def _op_fli(self, inst: Instruction):
        value = float(inst.imm)
        self.fregs[inst.rd] = value
        return (), ((FP_REG_BASE + inst.rd, value),), self.pc + 1

    def _op_cvtif(self, inst: Instruction):
        a = self.regs[inst.rs1]
        result = float(a)
        self.fregs[inst.rd] = result
        return (((inst.rs1, a),),
                ((FP_REG_BASE + inst.rd, result),), self.pc + 1)

    def _op_cvtfi(self, inst: Instruction):
        a = self.fregs[inst.rs1]
        result = _wrap64(int(a))
        reads = ((FP_REG_BASE + inst.rs1, a),)
        return reads, self._write_reg(inst.rd, result), self.pc + 1

    def _op_nop(self, inst: Instruction):
        return (), (), self.pc + 1

    def _op_halt(self, inst: Instruction):
        self.halted = True
        return (), (), self.pc


# ----------------------------------------------------------------------
# the trace compiler: one closure per static instruction
# ----------------------------------------------------------------------
#
# Each builder receives ``(machine, inst, pc, cols)`` and returns a
# zero-argument closure that executes the instruction once: it reads
# and mutates the machine state bound into its cells, appends the trace
# record directly to the column lists, and returns the next pc.  The
# ``cols`` tuple is ``(pcs.append, ops.append, lats.append,
# next_pcs.append, read_bounds.append, read_locs.append,
# read_vals.append, write_bounds.append, write_locs.append,
# write_vals.append, read_locs, write_locs)``.
#
# The closures must stay observationally identical to the ``step()``
# handlers — same records, same state mutations, same errors — which
# the differential tests assert over every workload.

def _mk_int_rr(fn):
    def build(m, inst, pc, cols):
        P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
        regs = m.regs
        rd = inst.rd
        rs1 = inst.rs1
        rs2 = inst.rs2
        opi = int(inst.op)
        lat = inst.latency
        npc = pc + 1
        if rd:
            def ex():
                a = regs[rs1]
                b = regs[rs2]
                r = fn(a, b)
                regs[rd] = r
                P(pc)
                O(opi)
                L(lat)
                N(npc)
                RL(rs1)
                RV(a)
                RL(rs2)
                RV(b)
                RB(len(rlocs))
                WL(rd)
                WV(r)
                WB(len(wlocs))
                return npc
        else:
            def ex():  # r0 destination: the write is discarded
                a = regs[rs1]
                b = regs[rs2]
                fn(a, b)
                P(pc)
                O(opi)
                L(lat)
                N(npc)
                RL(rs1)
                RV(a)
                RL(rs2)
                RV(b)
                RB(len(rlocs))
                WB(len(wlocs))
                return npc
        return ex
    return build


def _mk_int_ri(fn):
    def build(m, inst, pc, cols):
        P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
        regs = m.regs
        rd = inst.rd
        rs1 = inst.rs1
        imm = inst.imm
        opi = int(inst.op)
        lat = inst.latency
        npc = pc + 1
        if rd:
            def ex():
                a = regs[rs1]
                r = fn(a, imm)
                regs[rd] = r
                P(pc)
                O(opi)
                L(lat)
                N(npc)
                RL(rs1)
                RV(a)
                RB(len(rlocs))
                WL(rd)
                WV(r)
                WB(len(wlocs))
                return npc
        else:
            def ex():
                a = regs[rs1]
                fn(a, imm)
                P(pc)
                O(opi)
                L(lat)
                N(npc)
                RL(rs1)
                RV(a)
                RB(len(rlocs))
                WB(len(wlocs))
                return npc
        return ex
    return build


def _mk_branch(fn):
    def build(m, inst, pc, cols):
        P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
        regs = m.regs
        rs1 = inst.rs1
        rs2 = inst.rs2
        target = inst.imm
        opi = int(inst.op)
        lat = inst.latency
        npc = pc + 1

        def ex():
            a = regs[rs1]
            b = regs[rs2]
            n2 = target if fn(a, b) else npc
            P(pc)
            O(opi)
            L(lat)
            N(n2)
            RL(rs1)
            RV(a)
            RL(rs2)
            RV(b)
            RB(len(rlocs))
            WB(len(wlocs))
            return n2
        return ex
    return build


def _mk_fp_rr(fn):
    def build(m, inst, pc, cols):
        P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
        fregs = m.fregs
        rd = inst.rd
        rs1 = inst.rs1
        rs2 = inst.rs2
        frd = FP_REG_BASE + rd
        frs1 = FP_REG_BASE + rs1
        frs2 = FP_REG_BASE + rs2
        opi = int(inst.op)
        lat = inst.latency
        npc = pc + 1

        def ex():
            a = fregs[rs1]
            b = fregs[rs2]
            r = fn(a, b)
            fregs[rd] = r
            P(pc)
            O(opi)
            L(lat)
            N(npc)
            RL(frs1)
            RV(a)
            RL(frs2)
            RV(b)
            RB(len(rlocs))
            WL(frd)
            WV(r)
            WB(len(wlocs))
            return npc
        return ex
    return build


def _mk_fp_cmp(fn):
    def build(m, inst, pc, cols):
        P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
        regs = m.regs
        fregs = m.fregs
        rd = inst.rd
        rs1 = inst.rs1
        rs2 = inst.rs2
        frs1 = FP_REG_BASE + rs1
        frs2 = FP_REG_BASE + rs2
        opi = int(inst.op)
        lat = inst.latency
        npc = pc + 1

        def ex():
            a = fregs[rs1]
            b = fregs[rs2]
            r = fn(a, b)
            P(pc)
            O(opi)
            L(lat)
            N(npc)
            RL(frs1)
            RV(a)
            RL(frs2)
            RV(b)
            RB(len(rlocs))
            if rd:
                regs[rd] = r
                WL(rd)
                WV(r)
            WB(len(wlocs))
            return npc
        return ex
    return build


def _build_div(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    rd = inst.rd
    rs1 = inst.rs1
    rs2 = inst.rs2
    line = inst.line
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1
    trunc = Machine._trunc_div
    rem = inst.op is Opcode.REM

    def ex():
        a = regs[rs1]
        b = regs[rs2]
        if b == 0:
            m.pc = pc
            kind = "remainder" if rem else "division"
            raise VMError(f"integer {kind} by zero", pc=pc, line=line)
        q = trunc(a, b)
        r = _wrap64(a - q * b) if rem else _wrap64(q)
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RL(rs1)
        RV(a)
        RL(rs2)
        RV(b)
        RB(len(rlocs))
        if rd:
            regs[rd] = r
            WL(rd)
            WV(r)
        WB(len(wlocs))
        return npc
    return ex


def _build_li(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    rd = inst.rd
    value = int(inst.imm)
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RB(len(rlocs))
        if rd:
            regs[rd] = value
            WL(rd)
            WV(value)
        WB(len(wlocs))
        return npc
    return ex


def _build_mov(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    rd = inst.rd
    rs1 = inst.rs1
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        a = regs[rs1]
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RL(rs1)
        RV(a)
        RB(len(rlocs))
        if rd:
            regs[rd] = a
            WL(rd)
            WV(a)
        WB(len(wlocs))
        return npc
    return ex


def _build_lw(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    mem_get = m.memory.get
    rd = inst.rd
    rs1 = inst.rs1
    imm = inst.imm
    line = inst.line
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        base = regs[rs1]
        addr = base + imm
        if addr < 0:
            m.pc = pc
            raise VMError(f"negative memory address {addr}", pc=pc, line=line)
        v = mem_get(addr, 0)
        if isinstance(v, float):
            v = int(v)
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RL(rs1)
        RV(base)
        RL(MEM_LOC_BASE + addr)
        RV(v)
        RB(len(rlocs))
        if rd:
            regs[rd] = v
            WL(rd)
            WV(v)
        WB(len(wlocs))
        return npc
    return ex


def _build_sw(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    memory = m.memory
    rs1 = inst.rs1
    rs2 = inst.rs2
    imm = inst.imm
    line = inst.line
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        base = regs[rs1]
        addr = base + imm
        if addr < 0:
            m.pc = pc
            raise VMError(f"negative memory address {addr}", pc=pc, line=line)
        v = regs[rs2]
        memory[addr] = v
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RL(rs1)
        RV(base)
        RL(rs2)
        RV(v)
        RB(len(rlocs))
        WL(MEM_LOC_BASE + addr)
        WV(v)
        WB(len(wlocs))
        return npc
    return ex


def _build_flw(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    fregs = m.fregs
    mem_get = m.memory.get
    rd = inst.rd
    frd = FP_REG_BASE + rd
    rs1 = inst.rs1
    imm = inst.imm
    line = inst.line
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        base = regs[rs1]
        addr = base + imm
        if addr < 0:
            m.pc = pc
            raise VMError(f"negative memory address {addr}", pc=pc, line=line)
        v = float(mem_get(addr, 0))
        fregs[rd] = v
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RL(rs1)
        RV(base)
        RL(MEM_LOC_BASE + addr)
        RV(v)
        RB(len(rlocs))
        WL(frd)
        WV(v)
        WB(len(wlocs))
        return npc
    return ex


def _build_fsw(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    fregs = m.fregs
    memory = m.memory
    rs1 = inst.rs1
    rs2 = inst.rs2
    frs2 = FP_REG_BASE + rs2
    imm = inst.imm
    line = inst.line
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        base = regs[rs1]
        addr = base + imm
        if addr < 0:
            m.pc = pc
            raise VMError(f"negative memory address {addr}", pc=pc, line=line)
        v = fregs[rs2]
        memory[addr] = v
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RL(rs1)
        RV(base)
        RL(frs2)
        RV(v)
        RB(len(rlocs))
        WL(MEM_LOC_BASE + addr)
        WV(v)
        WB(len(wlocs))
        return npc
    return ex


def _build_j(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    target = int(inst.imm)
    opi = int(inst.op)
    lat = inst.latency

    def ex():
        P(pc)
        O(opi)
        L(lat)
        N(target)
        RB(len(rlocs))
        WB(len(wlocs))
        return target
    return ex


def _build_jal(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    rd = inst.rd
    target = int(inst.imm)
    link = pc + 1
    opi = int(inst.op)
    lat = inst.latency

    def ex():
        P(pc)
        O(opi)
        L(lat)
        N(target)
        RB(len(rlocs))
        if rd:
            regs[rd] = link
            WL(rd)
            WV(link)
        WB(len(wlocs))
        return target
    return ex


def _build_jr(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    rs1 = inst.rs1
    opi = int(inst.op)
    lat = inst.latency

    def ex():
        a = regs[rs1]
        P(pc)
        O(opi)
        L(lat)
        N(a)
        RL(rs1)
        RV(a)
        RB(len(rlocs))
        WB(len(wlocs))
        return a
    return ex


def _build_fdiv(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    fregs = m.fregs
    rd = inst.rd
    rs1 = inst.rs1
    rs2 = inst.rs2
    frd = FP_REG_BASE + rd
    frs1 = FP_REG_BASE + rs1
    frs2 = FP_REG_BASE + rs2
    line = inst.line
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        a = fregs[rs1]
        b = fregs[rs2]
        if b == 0.0:
            m.pc = pc
            raise VMError("floating division by zero", pc=pc, line=line)
        r = a / b
        fregs[rd] = r
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RL(frs1)
        RV(a)
        RL(frs2)
        RV(b)
        RB(len(rlocs))
        WL(frd)
        WV(r)
        WB(len(wlocs))
        return npc
    return ex


def _build_fsqrt(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    fregs = m.fregs
    rd = inst.rd
    rs1 = inst.rs1
    frd = FP_REG_BASE + rd
    frs1 = FP_REG_BASE + rs1
    line = inst.line
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        a = fregs[rs1]
        if a < 0.0:
            m.pc = pc
            raise VMError("square root of a negative value", pc=pc, line=line)
        r = a ** 0.5
        fregs[rd] = r
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RL(frs1)
        RV(a)
        RB(len(rlocs))
        WL(frd)
        WV(r)
        WB(len(wlocs))
        return npc
    return ex


def _mk_fp_unary(fn):
    def build(m, inst, pc, cols):
        P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
        fregs = m.fregs
        rd = inst.rd
        rs1 = inst.rs1
        frd = FP_REG_BASE + rd
        frs1 = FP_REG_BASE + rs1
        opi = int(inst.op)
        lat = inst.latency
        npc = pc + 1

        def ex():
            a = fregs[rs1]
            r = fn(a)
            fregs[rd] = r
            P(pc)
            O(opi)
            L(lat)
            N(npc)
            RL(frs1)
            RV(a)
            RB(len(rlocs))
            WL(frd)
            WV(r)
            WB(len(wlocs))
            return npc
        return ex
    return build


def _build_fli(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    fregs = m.fregs
    rd = inst.rd
    frd = FP_REG_BASE + rd
    value = float(inst.imm)
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        fregs[rd] = value
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RB(len(rlocs))
        WL(frd)
        WV(value)
        WB(len(wlocs))
        return npc
    return ex


def _build_cvtif(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    fregs = m.fregs
    rd = inst.rd
    rs1 = inst.rs1
    frd = FP_REG_BASE + rd
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        a = regs[rs1]
        r = float(a)
        fregs[rd] = r
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RL(rs1)
        RV(a)
        RB(len(rlocs))
        WL(frd)
        WV(r)
        WB(len(wlocs))
        return npc
    return ex


def _build_cvtfi(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    regs = m.regs
    fregs = m.fregs
    rd = inst.rd
    rs1 = inst.rs1
    frs1 = FP_REG_BASE + rs1
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        a = fregs[rs1]
        r = _wrap64(int(a))
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RL(frs1)
        RV(a)
        RB(len(rlocs))
        if rd:
            regs[rd] = r
            WL(rd)
            WV(r)
        WB(len(wlocs))
        return npc
    return ex


def _build_nop(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    opi = int(inst.op)
    lat = inst.latency
    npc = pc + 1

    def ex():
        P(pc)
        O(opi)
        L(lat)
        N(npc)
        RB(len(rlocs))
        WB(len(wlocs))
        return npc
    return ex


def _build_halt(m, inst, pc, cols):
    P, O, L, N, RB, RL, RV, WB, WL, WV, rlocs, wlocs = cols
    opi = int(inst.op)
    lat = inst.latency

    def ex():
        m.halted = True
        m.pc = pc
        P(pc)
        O(opi)
        L(lat)
        N(pc)
        RB(len(rlocs))
        WB(len(wlocs))
        raise _HaltSignal
    return ex


_EXEC_BUILDERS: dict[Opcode, object] = {}
for _op, _fn in _INT_RR_FN.items():
    _EXEC_BUILDERS[_op] = _mk_int_rr(_fn)
for _op, _fn in _INT_RI_FN.items():
    _EXEC_BUILDERS[_op] = _mk_int_ri(_fn)
for _op, _fn in _BRANCH_FN.items():
    _EXEC_BUILDERS[_op] = _mk_branch(_fn)
for _op, _fn in _FP_RR_FN.items():
    _EXEC_BUILDERS[_op] = _mk_fp_rr(_fn)
for _op, _fn in _FP_CMP_FN.items():
    _EXEC_BUILDERS[_op] = _mk_fp_cmp(_fn)
_EXEC_BUILDERS[Opcode.DIV] = _build_div
_EXEC_BUILDERS[Opcode.REM] = _build_div
_EXEC_BUILDERS[Opcode.LI] = _build_li
_EXEC_BUILDERS[Opcode.MOV] = _build_mov
_EXEC_BUILDERS[Opcode.LW] = _build_lw
_EXEC_BUILDERS[Opcode.SW] = _build_sw
_EXEC_BUILDERS[Opcode.FLW] = _build_flw
_EXEC_BUILDERS[Opcode.FSW] = _build_fsw
_EXEC_BUILDERS[Opcode.J] = _build_j
_EXEC_BUILDERS[Opcode.JAL] = _build_jal
_EXEC_BUILDERS[Opcode.JR] = _build_jr
_EXEC_BUILDERS[Opcode.FDIV] = _build_fdiv
_EXEC_BUILDERS[Opcode.FSQRT] = _build_fsqrt
_EXEC_BUILDERS[Opcode.FNEG] = _mk_fp_unary(lambda a: -a)
_EXEC_BUILDERS[Opcode.FABS] = _mk_fp_unary(abs)
_EXEC_BUILDERS[Opcode.FMOV] = _mk_fp_unary(lambda a: a)
_EXEC_BUILDERS[Opcode.FLI] = _build_fli
_EXEC_BUILDERS[Opcode.CVTIF] = _build_cvtif
_EXEC_BUILDERS[Opcode.CVTFI] = _build_cvtfi
_EXEC_BUILDERS[Opcode.NOP] = _build_nop
_EXEC_BUILDERS[Opcode.HALT] = _build_halt


def run_source(source: str, *, name: str = "<anonymous>",
               max_instructions: int | None = None) -> ColumnarTrace:
    """Assemble and run source text in one call (convenience for tests)."""
    from repro.vm.assembler import assemble

    machine = Machine(assemble(source, name=name))
    return machine.run(max_instructions=max_instructions)
