"""Persistent on-disk cache for dynamic traces and benchmark profiles.

Every pytest session and every figure regeneration used to re-execute
all 14 VM kernels from scratch, although the kernels are deterministic:
the trace is a pure function of the assembly source, the VM semantics
and the instruction budget.  This module memoises that function on
disk, plus one level up — the fully analysed
:class:`~repro.exp.runner.BenchmarkProfile` — so a warm run of
``collect_profiles`` skips both VM execution *and* the dataflow
analysis.

Layout (under :func:`cache_dir`, default ``.repro-cache/``)::

    .repro-cache/
        traces/<workload>-s<scale>-n<budget>-<key>.trace   (tracefile v2)
        profiles/<workload>-n<budget>-<key>.pkl            (pickled profile)

Keys are sha256 digests over everything the cached value depends on:
the workload's *generated assembly source* (which folds in the
workload name, scale and generator code) plus the source text of the
modules that define the semantics — the ISA and VM for traces, and
additionally the analysis stack for profiles.  Any edit to those
modules changes the digest and silently invalidates old entries; stale
files are only reclaimed by ``repro cache clear``.

Knobs
-----

``REPRO_CACHE_DIR``
    Overrides the cache directory (default: ``.repro-cache`` under the
    current working directory).
``REPRO_TRACE_CACHE=0``
    Kill switch: disables both lookups and stores.

Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent run can never leave a truncated entry behind; unreadable or
corrupt entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import os
import pathlib
import pickle
import tempfile
from functools import lru_cache
from typing import Any

from repro.obs import get_logger, incr
from repro.vm.trace import ColumnarTrace
from repro.vm.tracefile import (
    MAGIC_V2,
    TraceFileError,
    load_trace,
    save_trace,
)
from repro.vm.tracev3 import MAGIC_V3, trace_v3_info

_log = get_logger("tracecache")

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Modules whose source defines what a trace *is*: editing any of them
#: invalidates every cached trace.
TRACE_MODULES = (
    "repro.isa.opcodes",
    "repro.isa.registers",
    "repro.vm.program",
    "repro.vm.assembler",
    "repro.vm.machine",
    "repro.vm.trace",
    "repro.vm.tracev3",
)

#: Extra trace-defining modules per non-default execution backend.
#: Backends are bit-identical by contract, but cache entries stay
#: segregated per backend: a backend bug must never poison entries
#: attributed to the reference interpreter, and editing the fast
#: backend must invalidate exactly the entries it produced.
BACKEND_TRACE_MODULES: dict[str, tuple[str, ...]] = {
    "fast": ("repro.vm.fastmachine", "repro.vm.backends"),
}


def _trace_modules(backend: str) -> tuple[str, ...]:
    return TRACE_MODULES + BACKEND_TRACE_MODULES.get(backend, ())

#: Modules that additionally define what a profile is (the analysis
#: stack on top of the trace).
ANALYSIS_MODULES = TRACE_MODULES + (
    "repro.baselines.ilr",
    "repro.core.traces",
    "repro.core.stats",
    "repro.core.reuse_tlr",
    "repro.dataflow.model",
    "repro.dataflow.streaming",
    "repro.exp.runner",
)


def cache_enabled() -> bool:
    """False when the ``REPRO_TRACE_CACHE=0`` kill switch is set."""
    return os.environ.get("REPRO_TRACE_CACHE", "1") != "0"


def cache_dir() -> pathlib.Path:
    """The cache root (``REPRO_CACHE_DIR`` or ``.repro-cache``)."""
    return pathlib.Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


@lru_cache(maxsize=None)
def _modules_digest(module_names: tuple[str, ...]) -> str:
    """sha256 over the concatenated source text of the named modules.

    Acts as the code fingerprint in cache keys: any semantic change to
    the VM or the analysis stack shows up in the source and therefore
    in the digest.
    """
    h = hashlib.sha256()
    for name in module_names:
        module = importlib.import_module(name)
        h.update(name.encode())
        h.update(inspect.getsource(module).encode())
    return h.hexdigest()


def _entry_key(digest: str, *parts: Any) -> str:
    h = hashlib.sha256(digest.encode())
    for part in parts:
        h.update(repr(part).encode())
    return h.hexdigest()[:20]


def _budget_tag(max_instructions: int | None) -> str:
    return "all" if max_instructions is None else str(max_instructions)


def _atomic_write(path: pathlib.Path, write_fn) -> None:
    """Write via ``write_fn(tmp_path)`` then atomically rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    os.close(fd)
    tmp = pathlib.Path(tmp_name)
    try:
        write_fn(tmp)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


# ----------------------------------------------------------------------
# trace layer
# ----------------------------------------------------------------------

def trace_path(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    backend: str = "interp",
) -> pathlib.Path:
    """Cache file path for one (workload, scale, budget, backend) trace.

    ``source_text`` is the workload's generated assembly (passed in by
    the caller so this module needs no workload-registry import).
    ``backend`` is the execution backend that produced (or would
    produce) the trace; entries are keyed per backend even though
    backends are bit-identical by contract.
    """
    key = _entry_key(
        _modules_digest(_trace_modules(backend)), name, scale,
        max_instructions, source_text, backend,
    )
    tag = "" if backend == "interp" else f"-b{backend}"
    fname = (f"{name}-s{scale}-n{_budget_tag(max_instructions)}{tag}"
             f"-{key}.trace")
    return cache_dir() / "traces" / fname


def load_cached_trace(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    backend: str = "interp",
) -> ColumnarTrace | None:
    """The cached trace, or None on a miss (including corrupt files)."""
    if not cache_enabled():
        return None
    path = trace_path(name, scale, max_instructions, source_text, backend)
    if not path.is_file():
        incr("trace_cache.miss")
        return None
    try:
        trace = load_trace(path)
    except (TraceFileError, OSError) as exc:
        _log.warning("corrupt trace cache entry %s (%s); treating as a miss",
                     path, exc)
        incr("trace_cache.corrupt")
        incr("trace_cache.miss")
        return None
    if not isinstance(trace, ColumnarTrace):
        incr("trace_cache.miss")
        return None
    incr("trace_cache.hit")
    return trace


def store_cached_trace(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    trace: ColumnarTrace,
    backend: str = "interp",
) -> None:
    """Persist a trace (no-op when the cache is disabled)."""
    if not cache_enabled():
        return
    path = trace_path(name, scale, max_instructions, source_text, backend)
    _atomic_write(path, lambda tmp: save_trace(trace, tmp, format="v3"))
    incr("trace_cache.store")


def load_cached_trace_stream(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    backend: str = "interp",
):
    """The cached trace as a chunk stream, or None on a miss.

    v3 entries come back as a :class:`~repro.vm.tracestream.
    FileTraceStream` — chunks decode on demand with O(chunk) memory,
    the "zero-copy" cache-hit path.  Legacy v2 entries are loaded and
    wrapped (they were materialized on disk anyway).  Corrupt entries
    of either format are a miss, after which the caller re-executes
    and the store path atomically rewrites the entry.
    """
    if not cache_enabled():
        return None
    path = trace_path(name, scale, max_instructions, source_text, backend)
    if not path.is_file():
        incr("trace_cache.miss")
        return None
    from repro.vm.tracestream import ColumnarChunkStream, FileTraceStream

    try:
        with open(path, "rb") as fh:
            prefix = fh.read(len(MAGIC_V3))
        if prefix == MAGIC_V3:
            stream = FileTraceStream(path)
        else:
            trace = load_trace(path)
            if not isinstance(trace, ColumnarTrace):
                incr("trace_cache.miss")
                return None
            stream = ColumnarChunkStream(trace)
    except (TraceFileError, OSError) as exc:
        _log.warning("corrupt trace cache entry %s (%s); treating as a miss",
                     path, exc)
        incr("trace_cache.corrupt")
        incr("trace_cache.miss")
        return None
    incr("trace_cache.hit")
    return stream


def store_cached_trace_stream(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    stream,
    backend: str = "interp",
) -> int:
    """Drain a chunk stream into an atomically-written v3 cache entry.

    Returns the number of instructions written (0 with the cache
    disabled, in which case the stream is left undrained).
    """
    if not cache_enabled():
        return 0
    from repro.vm.tracestream import write_stream

    path = trace_path(name, scale, max_instructions, source_text, backend)
    written = 0

    def write(tmp: pathlib.Path) -> None:
        nonlocal written
        written = write_stream(stream, tmp)

    _atomic_write(path, write)
    incr("trace_cache.store")
    return written


# ----------------------------------------------------------------------
# profile layer
# ----------------------------------------------------------------------

def profile_path(name: str, config_key: tuple) -> pathlib.Path:
    """Cache file path for one analysed benchmark profile.

    ``config_key`` is :meth:`ExperimentConfig.cache_key`'s tuple of
    ``(field_name, value)`` pairs covering every analysis-relevant
    config field — the full config minus execution knobs like worker
    counts, so two runs that differ in any semantic setting (budget,
    window, latency sweeps, ...) can never alias to one entry.
    """
    key = _entry_key(_modules_digest(ANALYSIS_MODULES), name, config_key)
    budget = dict(config_key).get("max_instructions")
    fname = f"{name}-n{_budget_tag(budget)}-{key}.pkl"
    return cache_dir() / "profiles" / fname


def load_cached_profile(name: str, config_key: tuple) -> Any | None:
    """The cached profile object, or None on a miss."""
    if not cache_enabled():
        return None
    path = profile_path(name, config_key)
    if not path.is_file():
        incr("profile_cache.miss")
        return None
    try:
        with open(path, "rb") as fh:
            profile = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError) as exc:
        _log.warning("corrupt profile cache entry %s (%s); treating as a "
                     "miss", path, exc)
        incr("profile_cache.corrupt")
        incr("profile_cache.miss")
        return None
    incr("profile_cache.hit")
    return profile


def store_cached_profile(name: str, config_key: tuple, profile: Any) -> None:
    """Persist a profile (no-op when the cache is disabled)."""
    if not cache_enabled():
        return
    path = profile_path(name, config_key)

    def write(tmp: pathlib.Path) -> None:
        with open(tmp, "wb") as fh:
            pickle.dump(profile, fh, protocol=pickle.HIGHEST_PROTOCOL)

    _atomic_write(path, write)
    incr("profile_cache.store")


# ----------------------------------------------------------------------
# maintenance
# ----------------------------------------------------------------------

def _trace_entry_info(path: pathlib.Path) -> dict[str, Any]:
    """Per-entry stats for one cached trace file.

    Format version is sniffed from the leading bytes; v3 entries add
    instruction counts and compression stats read from the footer
    alone (no chunk decoding).  Unreadable entries report
    ``format="corrupt"`` rather than raising — info is a diagnostic
    command and must work on a damaged cache.
    """
    entry: dict[str, Any] = {
        "file": path.name,
        "bytes": path.stat().st_size,
        "format": "unknown",
        "instructions": None,
        "compression_ratio": None,
    }
    try:
        with open(path, "rb") as fh:
            prefix = fh.read(len(MAGIC_V3))
        if prefix == MAGIC_V3:
            info = trace_v3_info(path)
            entry["format"] = "v3"
            entry["instructions"] = info["instructions"]
            entry["compression_ratio"] = info["compression_ratio"]
        elif prefix == MAGIC_V2:
            entry["format"] = "v2"
    except (TraceFileError, OSError):
        entry["format"] = "corrupt"
    return entry


def cache_info(*, per_entry: bool = False) -> dict[str, Any]:
    """Entry counts and byte totals per layer, for ``repro cache info``.

    With ``per_entry=True``, adds a ``trace_entries`` list describing
    every cached trace: format version (v2/v3), on-disk size, and —
    for v3 — instruction count and compression ratio.
    """
    root = cache_dir()
    info: dict[str, Any] = {
        "dir": str(root),
        "enabled": cache_enabled(),
        "traces": 0,
        "trace_bytes": 0,
        "profiles": 0,
        "profile_bytes": 0,
        "runs": 0,
        "run_bytes": 0,
    }
    for sub, count_key, bytes_key in (
        ("traces", "traces", "trace_bytes"),
        ("profiles", "profiles", "profile_bytes"),
        ("runs", "runs", "run_bytes"),
    ):
        directory = root / sub
        if not directory.is_dir():
            continue
        for entry in directory.iterdir():
            if entry.is_file() and not entry.name.endswith(".tmp"):
                info[count_key] += 1
                info[bytes_key] += entry.stat().st_size
    if per_entry:
        trace_dir = root / "traces"
        entries = []
        if trace_dir.is_dir():
            for entry in sorted(trace_dir.iterdir()):
                if entry.is_file() and not entry.name.endswith(".tmp"):
                    entries.append(_trace_entry_info(entry))
        info["trace_entries"] = entries
    return info


def clear_cache() -> int:
    """Delete every cached trace/profile; returns the removal count.

    Run manifests under ``runs/`` are deliberately kept: they are the
    observability record of *past* runs, not derived data, and wiping
    the cache is exactly when you want to be able to read them.
    """
    root = cache_dir()
    removed = 0
    for sub in ("traces", "profiles"):
        directory = root / sub
        if not directory.is_dir():
            continue
        for entry in directory.iterdir():
            if entry.is_file():
                entry.unlink()
                removed += 1
        try:
            directory.rmdir()
        except OSError:
            pass
    return removed
