"""Persistent on-disk cache for dynamic traces and benchmark profiles.

Every pytest session and every figure regeneration used to re-execute
all 14 VM kernels from scratch, although the kernels are deterministic:
the trace is a pure function of the assembly source, the VM semantics
and the instruction budget.  This module memoises that function on
disk, plus one level up — the fully analysed
:class:`~repro.exp.runner.BenchmarkProfile` — so a warm run of
``collect_profiles`` skips both VM execution *and* the dataflow
analysis.

Layout (under :func:`cache_dir`, default ``.repro-cache/``)::

    .repro-cache/
        traces/<workload>-s<scale>-n<budget>-<key>.trace   (tracefile v2)
        profiles/<workload>-n<budget>-<key>.pkl            (pickled profile)

Keys are sha256 digests over everything the cached value depends on:
the workload's *generated assembly source* (which folds in the
workload name, scale and generator code) plus the source text of the
modules that define the semantics — the ISA and VM for traces, and
additionally the analysis stack for profiles.  Any edit to those
modules changes the digest and silently invalidates old entries; stale
files are only reclaimed by ``repro cache clear``.

Knobs
-----

``REPRO_CACHE_DIR``
    Overrides the cache directory (default: ``.repro-cache`` under the
    current working directory).
``REPRO_TRACE_CACHE=0``
    Kill switch: disables both lookups and stores.

Concurrency
-----------

The cache is a *shared artifact store*: N sweep workers (and the
``repro serve`` front end) read and write one ``.repro-cache/`` at
once, across processes.  The discipline, in lock order:

1. Entry writes are atomic (pid-tagged temp file + ``os.replace``) so
   readers only ever observe a complete old or complete new entry;
   unreadable or corrupt entries are treated as misses and atomically
   rewritten by the recompute.
2. Read-modify-write paths take a per-entry advisory ``flock`` (a
   zero-byte sibling under ``locks/``), so two writers of the same key
   serialize instead of double-writing; writers of different keys
   never contend.
3. The profile index (``index/profiles.json``) is updated under its
   own lock with a compare-and-swap discipline: the current index is
   re-read *inside* the lock, merged, and atomically replaced — a
   pre-lock read is never trusted, so concurrent writers can not drop
   each other's updates (the classic last-writer-wins race).
   Lock order is entry lock → index lock, never the reverse.
4. A writer killed between ``mkstemp`` and ``os.replace`` leaves an
   orphan temp file; opening the cache reaps temp files whose creator
   pid is dead (immediately) or unknown and old (after an hour) —
   see :func:`repro.util.fslock.reap_stale_tmps`.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
import os
import pathlib
import pickle
from functools import lru_cache
from typing import Any

from repro.obs import get_logger, incr
from repro.util import fslock
from repro.vm.trace import ColumnarTrace
from repro.vm.tracefile import (
    MAGIC_V2,
    TraceFileError,
    load_trace,
    save_trace,
)
from repro.vm.tracev3 import MAGIC_V3, trace_v3_info

_log = get_logger("tracecache")

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Modules whose source defines what a trace *is*: editing any of them
#: invalidates every cached trace.
TRACE_MODULES = (
    "repro.isa.opcodes",
    "repro.isa.registers",
    "repro.vm.program",
    "repro.vm.assembler",
    "repro.vm.machine",
    "repro.vm.trace",
    "repro.vm.tracev3",
)

#: Extra trace-defining modules per non-default execution backend.
#: Backends are bit-identical by contract, but cache entries stay
#: segregated per backend: a backend bug must never poison entries
#: attributed to the reference interpreter, and editing the fast
#: backend must invalidate exactly the entries it produced.
BACKEND_TRACE_MODULES: dict[str, tuple[str, ...]] = {
    "fast": ("repro.vm.fastmachine", "repro.vm.backends"),
}


def _trace_modules(backend: str) -> tuple[str, ...]:
    return TRACE_MODULES + BACKEND_TRACE_MODULES.get(backend, ())

#: Modules that additionally define what a profile is (the analysis
#: stack on top of the trace).
ANALYSIS_MODULES = TRACE_MODULES + (
    "repro.baselines.ilr",
    "repro.core.traces",
    "repro.core.stats",
    "repro.core.reuse_tlr",
    "repro.dataflow.model",
    "repro.dataflow.streaming",
    "repro.exp.runner",
)


def cache_enabled() -> bool:
    """False when the ``REPRO_TRACE_CACHE=0`` kill switch is set."""
    return os.environ.get("REPRO_TRACE_CACHE", "1") != "0"


def cache_dir() -> pathlib.Path:
    """The cache root (``REPRO_CACHE_DIR`` or ``.repro-cache``)."""
    return pathlib.Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


@lru_cache(maxsize=None)
def _modules_digest(module_names: tuple[str, ...]) -> str:
    """sha256 over the concatenated source text of the named modules.

    Acts as the code fingerprint in cache keys: any semantic change to
    the VM or the analysis stack shows up in the source and therefore
    in the digest.
    """
    h = hashlib.sha256()
    for name in module_names:
        module = importlib.import_module(name)
        h.update(name.encode())
        h.update(inspect.getsource(module).encode())
    return h.hexdigest()


def _entry_key(digest: str, *parts: Any) -> str:
    h = hashlib.sha256(digest.encode())
    for part in parts:
        h.update(repr(part).encode())
    return h.hexdigest()[:20]


def _budget_tag(max_instructions: int | None) -> str:
    return "all" if max_instructions is None else str(max_instructions)


def _atomic_write(path: pathlib.Path, write_fn) -> None:
    """Write via ``write_fn(tmp_path)`` then atomically rename.

    The temp file is pid-tagged (see :func:`repro.util.fslock.
    make_tmp`) so a writer killed between the two steps leaves an
    orphan that :func:`reap_orphans` can attribute to a dead process.
    """
    tmp = fslock.make_tmp(path.parent, path.name)
    try:
        write_fn(tmp)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def entry_lock_path(path: pathlib.Path) -> pathlib.Path:
    """The advisory lock file guarding one cache entry's writes."""
    return cache_dir() / "locks" / f"{path.name}.lock"


def _entry_lock(path: pathlib.Path):
    """Per-entry exclusive lock context (cheap: keyed by file name)."""
    return fslock.file_lock(entry_lock_path(path))


#: Cache roots already reaped by this process (reap once per root).
_reaped_roots: set[str] = set()


def reap_orphans(*, max_age: float = fslock.DEFAULT_TMP_MAX_AGE) -> int:
    """Reap orphaned ``*.tmp`` files across every cache layer.

    A worker killed between ``mkstemp`` and ``os.replace`` would
    otherwise leak its temp file forever.  Temp files whose embedded
    creator pid is dead go immediately; untagged ones only after
    ``max_age`` seconds.  Returns the number of files removed.
    """
    root = cache_dir()
    removed = 0
    for sub in ("traces", "profiles", "index"):
        removed += fslock.reap_stale_tmps(root / sub, max_age=max_age)
    if removed:
        incr("cache.orphans_reaped", removed)
    return removed


def _open_store() -> None:
    """Once per process and cache root: crash-orphan cleanup."""
    root = str(cache_dir())
    if root in _reaped_roots:
        return
    _reaped_roots.add(root)
    reap_orphans()


# ----------------------------------------------------------------------
# profile index
# ----------------------------------------------------------------------

def _index_path() -> pathlib.Path:
    return cache_dir() / "index" / "profiles.json"


def _index_lock():
    return fslock.file_lock(cache_dir() / "locks" / "profile-index.lock")


def _read_index(path: pathlib.Path) -> dict[str, Any]:
    """The index mapping (entry file name -> metadata); {} on damage."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    profiles = data.get("profiles") if isinstance(data, dict) else None
    return profiles if isinstance(profiles, dict) else {}


def load_profile_index() -> dict[str, Any]:
    """A point-in-time snapshot of the profile index (read-only)."""
    return _read_index(_index_path())


def _index_record(fname: str, meta: dict[str, Any]) -> None:
    """Merge one entry into the index, safely against racing writers.

    The compare-and-swap discipline: the current index is re-read
    *under the index lock* (never reused from before the lock), the
    entry is merged in, and the result replaces the file atomically.
    Two processes storing different keys concurrently therefore both
    land in the index — an unlocked read-modify-write here was the
    last-writer-wins race that silently dropped one of them.
    """
    path = _index_path()
    with _index_lock():
        profiles = _read_index(path)
        profiles[fname] = meta
        _atomic_write(path, lambda tmp: tmp.write_text(
            json.dumps({"schema": 1, "profiles": profiles},
                       sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        ))


def _index_clear() -> None:
    with _index_lock():
        _index_path().unlink(missing_ok=True)


# ----------------------------------------------------------------------
# trace layer
# ----------------------------------------------------------------------

def trace_path(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    backend: str = "interp",
) -> pathlib.Path:
    """Cache file path for one (workload, scale, budget, backend) trace.

    ``source_text`` is the workload's generated assembly (passed in by
    the caller so this module needs no workload-registry import).
    ``backend`` is the execution backend that produced (or would
    produce) the trace; entries are keyed per backend even though
    backends are bit-identical by contract.
    """
    key = _entry_key(
        _modules_digest(_trace_modules(backend)), name, scale,
        max_instructions, source_text, backend,
    )
    tag = "" if backend == "interp" else f"-b{backend}"
    fname = (f"{name}-s{scale}-n{_budget_tag(max_instructions)}{tag}"
             f"-{key}.trace")
    return cache_dir() / "traces" / fname


def load_cached_trace(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    backend: str = "interp",
) -> ColumnarTrace | None:
    """The cached trace, or None on a miss (including corrupt files)."""
    if not cache_enabled():
        return None
    _open_store()
    path = trace_path(name, scale, max_instructions, source_text, backend)
    if not path.is_file():
        incr("trace_cache.miss")
        return None
    try:
        trace = load_trace(path)
    except (TraceFileError, OSError) as exc:
        _log.warning("corrupt trace cache entry %s (%s); treating as a miss",
                     path, exc)
        incr("trace_cache.corrupt")
        incr("trace_cache.miss")
        return None
    if not isinstance(trace, ColumnarTrace):
        incr("trace_cache.miss")
        return None
    incr("trace_cache.hit")
    return trace


def store_cached_trace(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    trace: ColumnarTrace,
    backend: str = "interp",
) -> None:
    """Persist a trace (no-op when the cache is disabled).

    The per-entry lock serializes concurrent writers of the same key
    (the content is identical by construction, so the second writer
    merely rewrites the same bytes) without slowing unrelated keys.
    """
    if not cache_enabled():
        return
    _open_store()
    path = trace_path(name, scale, max_instructions, source_text, backend)
    with _entry_lock(path):
        _atomic_write(path, lambda tmp: save_trace(trace, tmp, format="v3"))
    incr("trace_cache.store")


def load_cached_trace_stream(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    backend: str = "interp",
):
    """The cached trace as a chunk stream, or None on a miss.

    v3 entries come back as a :class:`~repro.vm.tracestream.
    FileTraceStream` — chunks decode on demand with O(chunk) memory,
    the "zero-copy" cache-hit path.  Legacy v2 entries are loaded and
    wrapped (they were materialized on disk anyway).  Corrupt entries
    of either format are a miss, after which the caller re-executes
    and the store path atomically rewrites the entry.
    """
    if not cache_enabled():
        return None
    _open_store()
    path = trace_path(name, scale, max_instructions, source_text, backend)
    if not path.is_file():
        incr("trace_cache.miss")
        return None
    from repro.vm.tracestream import ColumnarChunkStream, FileTraceStream

    try:
        with open(path, "rb") as fh:
            prefix = fh.read(len(MAGIC_V3))
        if prefix == MAGIC_V3:
            stream = FileTraceStream(path)
        else:
            trace = load_trace(path)
            if not isinstance(trace, ColumnarTrace):
                incr("trace_cache.miss")
                return None
            stream = ColumnarChunkStream(trace)
    except (TraceFileError, OSError) as exc:
        _log.warning("corrupt trace cache entry %s (%s); treating as a miss",
                     path, exc)
        incr("trace_cache.corrupt")
        incr("trace_cache.miss")
        return None
    incr("trace_cache.hit")
    return stream


def store_cached_trace_stream(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    stream,
    backend: str = "interp",
) -> int:
    """Drain a chunk stream into an atomically-written v3 cache entry.

    Returns the number of instructions written (0 with the cache
    disabled, in which case the stream is left undrained).
    """
    if not cache_enabled():
        return 0
    from repro.vm.tracestream import write_stream

    _open_store()
    path = trace_path(name, scale, max_instructions, source_text, backend)
    written = 0

    def write(tmp: pathlib.Path) -> None:
        nonlocal written
        written = write_stream(stream, tmp)

    with _entry_lock(path):
        _atomic_write(path, write)
    incr("trace_cache.store")
    return written


def tee_cached_trace_stream(
    name: str,
    scale: int,
    max_instructions: int | None,
    source_text: str,
    stream,
    backend: str = "interp",
):
    """Wrap an execution stream so its first drain *also* persists the
    trace into the cache — the direct execute→analyze cold path.

    The consumer analyzes segments as the machine produces them while
    a :class:`~repro.vm.tracev3.TraceWriter` (threaded when
    ``REPRO_CODEC_THREADS`` allows) writes the same segments to a
    pid-tagged temp file; a complete drain publishes it under the
    per-entry lock with the same atomic ``os.replace`` as
    :func:`store_cached_trace_stream`, and later drains replay from
    the published entry.  An abandoned or failed drain discards the
    temp file and publishes nothing.  Racing writers of the same key
    are safe: contents are identical by construction, and a live
    writer's pid-tagged temp is never reaped.

    With the cache disabled the stream is returned unchanged.
    """
    if not cache_enabled():
        return stream
    from repro.vm.tracestream import FileTraceStream, TeeChunkStream
    from repro.vm.tracev3 import TraceWriter

    _open_store()
    path = trace_path(name, scale, max_instructions, source_text, backend)

    def open_writer():
        try:
            tmp = fslock.make_tmp(path.parent, path.name)
            return TraceWriter(tmp, program_name=stream.program_name), tmp
        except OSError as exc:
            _log.warning("trace cache tee disabled (%s); analyzing "
                         "without persisting", exc)
            return None

    def commit(writer, tmp, source):
        try:
            writer.close(halted=source.halted, truncated=source.truncated)
            with _entry_lock(path):
                os.replace(tmp, path)
        except (OSError, TraceFileError) as exc:
            _log.warning("trace cache tee publish failed for %s (%s)",
                         path, exc)
            writer.abort()
            tmp.unlink(missing_ok=True)
            return None
        incr("trace_cache.store")
        try:
            return FileTraceStream(path)
        except (TraceFileError, OSError):  # entry raced away / damaged
            return None

    def abort(writer, tmp):
        writer.abort()
        tmp.unlink(missing_ok=True)

    return TeeChunkStream(stream, open_writer=open_writer, commit=commit,
                          abort=abort)


# ----------------------------------------------------------------------
# profile layer
# ----------------------------------------------------------------------

def profile_path(name: str, config_key: tuple) -> pathlib.Path:
    """Cache file path for one analysed benchmark profile.

    ``config_key`` is :meth:`ExperimentConfig.cache_key`'s tuple of
    ``(field_name, value)`` pairs covering every analysis-relevant
    config field — the full config minus execution knobs like worker
    counts, so two runs that differ in any semantic setting (budget,
    window, latency sweeps, ...) can never alias to one entry.
    """
    key = _entry_key(_modules_digest(ANALYSIS_MODULES), name, config_key)
    budget = dict(config_key).get("max_instructions")
    fname = f"{name}-n{_budget_tag(budget)}-{key}.pkl"
    return cache_dir() / "profiles" / fname


def load_cached_profile(name: str, config_key: tuple) -> Any | None:
    """The cached profile object, or None on a miss."""
    if not cache_enabled():
        return None
    _open_store()
    path = profile_path(name, config_key)
    if not path.is_file():
        incr("profile_cache.miss")
        return None
    try:
        with open(path, "rb") as fh:
            profile = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError) as exc:
        _log.warning("corrupt profile cache entry %s (%s); treating as a "
                     "miss", path, exc)
        incr("profile_cache.corrupt")
        incr("profile_cache.miss")
        return None
    incr("profile_cache.hit")
    return profile


def store_cached_profile(name: str, config_key: tuple, profile: Any) -> None:
    """Persist a profile (no-op when the cache is disabled).

    Entry bytes and the index record are written as one per-entry
    locked transaction (lock order: entry lock, then index lock inside
    :func:`_index_record`), so a reader of the index never sees an
    entry the store lost, and two same-key writers serialize.
    """
    if not cache_enabled():
        return
    _open_store()
    path = profile_path(name, config_key)

    def write(tmp: pathlib.Path) -> None:
        with open(tmp, "wb") as fh:
            pickle.dump(profile, fh, protocol=pickle.HIGHEST_PROTOCOL)

    with _entry_lock(path):
        _atomic_write(path, write)
        _index_record(path.name, {
            "workload": name,
            "bytes": path.stat().st_size,
            "pid": os.getpid(),
        })
    incr("profile_cache.store")


# ----------------------------------------------------------------------
# maintenance
# ----------------------------------------------------------------------

def _trace_entry_info(path: pathlib.Path) -> dict[str, Any]:
    """Per-entry stats for one cached trace file.

    Format version is sniffed from the leading bytes; v3 entries add
    instruction counts and compression stats read from the footer
    alone (no chunk decoding).  Unreadable entries report
    ``format="corrupt"`` rather than raising — info is a diagnostic
    command and must work on a damaged cache.
    """
    entry: dict[str, Any] = {
        "file": path.name,
        "bytes": path.stat().st_size,
        "format": "unknown",
        "instructions": None,
        "compression_ratio": None,
    }
    try:
        with open(path, "rb") as fh:
            prefix = fh.read(len(MAGIC_V3))
        if prefix == MAGIC_V3:
            info = trace_v3_info(path)
            entry["format"] = "v3"
            entry["instructions"] = info["instructions"]
            entry["compression_ratio"] = info["compression_ratio"]
        elif prefix == MAGIC_V2:
            entry["format"] = "v2"
    except (TraceFileError, OSError):
        entry["format"] = "corrupt"
    return entry


def cache_info(*, per_entry: bool = False) -> dict[str, Any]:
    """Entry counts and byte totals per layer, for ``repro cache info``.

    With ``per_entry=True``, adds a ``trace_entries`` list describing
    every cached trace: format version (v2/v3), on-disk size, and —
    for v3 — instruction count and compression ratio.
    """
    _open_store()
    root = cache_dir()
    info: dict[str, Any] = {
        "dir": str(root),
        "enabled": cache_enabled(),
        "profile_index": len(load_profile_index()),
        "traces": 0,
        "trace_bytes": 0,
        "profiles": 0,
        "profile_bytes": 0,
        "runs": 0,
        "run_bytes": 0,
    }
    for sub, count_key, bytes_key in (
        ("traces", "traces", "trace_bytes"),
        ("profiles", "profiles", "profile_bytes"),
        ("runs", "runs", "run_bytes"),
    ):
        directory = root / sub
        if not directory.is_dir():
            continue
        for entry in directory.iterdir():
            if entry.is_file() and not entry.name.endswith(".tmp"):
                info[count_key] += 1
                info[bytes_key] += entry.stat().st_size
    if per_entry:
        trace_dir = root / "traces"
        entries = []
        if trace_dir.is_dir():
            for entry in sorted(trace_dir.iterdir()):
                if entry.is_file() and not entry.name.endswith(".tmp"):
                    entries.append(_trace_entry_info(entry))
        info["trace_entries"] = entries
    return info


def clear_cache() -> int:
    """Delete every cached trace/profile; returns the removal count.

    Run manifests under ``runs/`` are deliberately kept: they are the
    observability record of *past* runs, not derived data, and wiping
    the cache is exactly when you want to be able to read them.
    """
    root = cache_dir()
    removed = 0
    for sub in ("traces", "profiles"):
        directory = root / sub
        if not directory.is_dir():
            continue
        for entry in directory.iterdir():
            if entry.is_file():
                entry.unlink()
                removed += 1
        try:
            directory.rmdir()
        except OSError:
            pass
    # lock files and the profile index are bookkeeping, not entries:
    # wipe them without adding to the removal count
    _index_clear()
    locks = root / "locks"
    if locks.is_dir():
        for entry in locks.iterdir():
            if entry.is_file():
                entry.unlink(missing_ok=True)
        try:
            locks.rmdir()
        except OSError:
            pass
    try:
        (root / "index").rmdir()
    except OSError:
        pass
    return removed
