"""Pluggable execution backends for the VM.

Two backends execute assembled programs, with one contract between
them: **bit-identical traces**.  For any program, budget and machine
state, both must produce exactly the same
:class:`~repro.vm.trace.ColumnarTrace`, final architectural state and
faults.

``interp``
    :class:`~repro.vm.machine.Machine` — the reference interpreter,
    one closure call per dynamic instruction.  Simple, transparently
    correct, and the differential oracle for everything else.
``fast``
    :class:`~repro.vm.fastmachine.FastMachine` — compiles hot
    superblock traces into specialised straight-line functions and
    falls back to the interpreter for cold or irregular code.  About
    an order of magnitude faster at paper-scale budgets.

Selection precedence: an explicit ``backend=`` argument (e.g. the
``--backend`` CLI flag) > the ``REPRO_BACKEND`` environment variable >
:data:`DEFAULT_BACKEND`.  The default stays ``interp`` so that
nothing changes behaviour unless a caller opts in; batch entry points
(``collect_profiles``, ``repro run``) pass the resolved name down.
"""

from __future__ import annotations

import os

from repro.vm.fastmachine import FastMachine
from repro.vm.machine import Machine
from repro.vm.program import Program

#: Registry of backend name -> machine class.  Every class accepts
#: ``(program)`` and exposes ``run(max_instructions=...)``.
BACKENDS: dict[str, type[Machine]] = {
    "interp": Machine,
    "fast": FastMachine,
}

#: Environment knob consulted when no explicit backend is given.
BACKEND_ENV = "REPRO_BACKEND"

#: Used when neither an argument nor the environment selects one.
DEFAULT_BACKEND = "interp"


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend name: argument > ``REPRO_BACKEND`` > default.

    Raises ``ValueError`` for names outside :data:`BACKENDS`, naming
    the valid choices (covers typos in the env var as well).
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    if name not in BACKENDS:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown backend {name!r}; known: {known}")
    return name


def backend_class(name: str | None = None) -> type[Machine]:
    """The machine class for a backend name (resolved as above)."""
    return BACKENDS[resolve_backend(name)]


def create_machine(program: Program, backend: str | None = None) -> Machine:
    """Instantiate the selected backend over ``program``."""
    return backend_class(backend)(program)
