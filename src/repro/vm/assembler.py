"""Two-pass assembler for the reproduction ISA.

Syntax overview (MIPS-flavoured)::

    .data
    table:  .word 1 2 3 4        # four consecutive words
    grid:   .space 64            # 64 zero-initialised words
    pi:     .float 3.14159
    .text
    main:   li   t0, 10
            la   t1, table       # address of a data label
    loop:   lw   t2, 0(t1)
            addi t1, t1, 1
            subi t0, t0, 1
            bgtz t0, loop
            halt

Comments start with ``#`` or ``;``.  Labels may share a line with a
statement.  Memory is word-addressed: offsets and ``.space`` counts
are in words.  The first pass expands pseudo-instructions and assigns
PCs; the second resolves label references and emits decoded
:class:`~repro.isa.instruction.Instruction` records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import parse_register
from repro.vm.program import DATA_BASE, Program


class AssemblyError(ValueError):
    """A syntax or semantic error in assembly source."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


# ---------------------------------------------------------------------------
# mnemonic tables
# ---------------------------------------------------------------------------

_R3 = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "and": Opcode.AND, "or": Opcode.OR,
    "xor": Opcode.XOR, "sll": Opcode.SLL, "srl": Opcode.SRL, "sra": Opcode.SRA,
    "slt": Opcode.SLT, "seq": Opcode.SEQ, "mul": Opcode.MUL, "div": Opcode.DIV,
    "rem": Opcode.REM,
}
_R2I = {
    "addi": Opcode.ADDI, "andi": Opcode.ANDI, "ori": Opcode.ORI,
    "xori": Opcode.XORI, "slli": Opcode.SLLI, "srli": Opcode.SRLI,
    "srai": Opcode.SRAI, "slti": Opcode.SLTI, "muli": Opcode.MULI,
}
_MEM = {"lw": Opcode.LW, "sw": Opcode.SW, "flw": Opcode.FLW, "fsw": Opcode.FSW}
_BR = {
    "beq": Opcode.BEQ, "bne": Opcode.BNE, "blt": Opcode.BLT,
    "bge": Opcode.BGE, "ble": Opcode.BLE, "bgt": Opcode.BGT,
}
_F3 = {"fadd": Opcode.FADD, "fsub": Opcode.FSUB, "fmul": Opcode.FMUL,
       "fdiv": Opcode.FDIV}
_F2 = {"fsqrt": Opcode.FSQRT, "fneg": Opcode.FNEG, "fabs": Opcode.FABS,
       "fmov": Opcode.FMOV}
_FCMP = {"feq": Opcode.FEQ, "flt": Opcode.FLT, "fle": Opcode.FLE}

#: branch-against-zero pseudo-mnemonic -> real branch mnemonic
_BZ = {"beqz": "beq", "bnez": "bne", "bltz": "blt", "bgez": "bge",
       "blez": "ble", "bgtz": "bgt"}


@dataclass(slots=True)
class _Proto:
    """A pre-decoded statement awaiting label resolution."""

    mnemonic: str
    operands: list[str]
    line: int


def _split_operands(text: str) -> list[str]:
    """Split an operand string on commas that sit outside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in parts if p]


def _parse_int(token: str, line: int) -> int:
    tok = token.strip()
    try:
        if tok.startswith("'") and tok.endswith("'") and len(tok) >= 3:
            body = tok[1:-1]
            if body.startswith("\\"):
                escapes = {"\\n": "\n", "\\t": "\t", "\\0": "\0", "\\\\": "\\",
                           "\\'": "'"}
                if body not in escapes:
                    raise ValueError(body)
                return ord(escapes[body])
            if len(body) != 1:
                raise ValueError(body)
            return ord(body)
        return int(tok, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad integer literal {token!r}", line) from exc


def _parse_float(token: str, line: int) -> float:
    try:
        return float(token)
    except ValueError as exc:
        raise AssemblyError(f"bad float literal {token!r}", line) from exc


def _is_int_literal(token: str) -> bool:
    tok = token.strip()
    if tok.startswith("'"):
        return True
    if tok and tok[0] in "+-":
        tok = tok[1:]
    if tok.isdigit():
        return True
    lower = tok.lower()
    return lower.startswith(("0x", "0b", "0o")) and len(lower) > 2


def _expand_pseudo(mnemonic: str, ops: list[str], line: int) -> list[_Proto]:
    """Expand pseudo-instructions into base-ISA protos."""
    m = mnemonic
    if m == "la":
        return [_Proto("li", ops, line)]
    if m == "subi":
        if len(ops) != 3:
            raise AssemblyError("subi needs 3 operands", line)
        neg = _parse_int(ops[2], line)
        return [_Proto("addi", [ops[0], ops[1], str(-neg)], line)]
    if m in _BZ:
        if len(ops) != 2:
            raise AssemblyError(f"{m} needs 2 operands", line)
        return [_Proto(_BZ[m], [ops[0], "r0", ops[1]], line)]
    if m == "call":
        if len(ops) != 1:
            raise AssemblyError("call needs 1 operand", line)
        return [_Proto("jal", ["ra", ops[0]], line)]
    if m == "ret":
        if ops:
            raise AssemblyError("ret takes no operands", line)
        return [_Proto("jr", ["ra"], line)]
    if m == "push":
        if len(ops) != 1:
            raise AssemblyError("push needs 1 operand", line)
        return [
            _Proto("addi", ["sp", "sp", "-1"], line),
            _Proto("sw", [ops[0], "0(sp)"], line),
        ]
    if m == "pop":
        if len(ops) != 1:
            raise AssemblyError("pop needs 1 operand", line)
        return [
            _Proto("lw", [ops[0], "0(sp)"], line),
            _Proto("addi", ["sp", "sp", "1"], line),
        ]
    if m == "not":
        if len(ops) != 2:
            raise AssemblyError("not needs 2 operands", line)
        return [_Proto("xori", [ops[0], ops[1], "-1"], line)]
    if m == "neg":
        if len(ops) != 2:
            raise AssemblyError("neg needs 2 operands", line)
        return [_Proto("sub", [ops[0], "r0", ops[1]], line)]
    return [_Proto(m, ops, line)]


class _Assembler:
    def __init__(self, source: str, name: str):
        self.source = source
        self.name = name
        self.protos: list[_Proto] = []
        self.text_labels: dict[str, int] = {}
        self.data_labels: dict[str, int] = {}
        self.data: dict[int, int | float] = {}
        self._data_cursor = DATA_BASE
        self._section = "text"

    # -- pass 1 -------------------------------------------------------
    def first_pass(self) -> None:
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if not line:
                continue
            # peel off leading labels (there may be several)
            while True:
                head, sep, rest = line.partition(":")
                if sep and " " not in head and "\t" not in head and head:
                    self._bind_label(head, lineno)
                    line = rest.strip()
                    if not line:
                        break
                else:
                    break
            if not line:
                continue
            if line.startswith("."):
                self._directive(line, lineno)
                continue
            if self._section != "text":
                raise AssemblyError("instruction outside .text section", lineno)
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []
            self.protos.extend(_expand_pseudo(mnemonic, operands, lineno))

    def _bind_label(self, label: str, lineno: int) -> None:
        if label in self.text_labels or label in self.data_labels:
            raise AssemblyError(f"duplicate label {label!r}", lineno)
        if self._section == "text":
            self.text_labels[label] = len(self.protos)
        else:
            self.data_labels[label] = self._data_cursor

    def _directive(self, line: str, lineno: int) -> None:
        parts = line.split()
        name = parts[0].lower()
        args = parts[1:]
        if name == ".text":
            self._section = "text"
        elif name == ".data":
            self._section = "data"
        elif name == ".word":
            if self._section != "data":
                raise AssemblyError(".word outside .data section", lineno)
            for tok in args:
                self.data[self._data_cursor] = _parse_int(tok, lineno)
                self._data_cursor += 1
        elif name == ".float":
            if self._section != "data":
                raise AssemblyError(".float outside .data section", lineno)
            for tok in args:
                self.data[self._data_cursor] = _parse_float(tok, lineno)
                self._data_cursor += 1
        elif name == ".space":
            if self._section != "data":
                raise AssemblyError(".space outside .data section", lineno)
            if len(args) != 1:
                raise AssemblyError(".space needs a word count", lineno)
            count = _parse_int(args[0], lineno)
            if count < 0:
                raise AssemblyError(".space count must be non-negative", lineno)
            for _ in range(count):
                self.data[self._data_cursor] = 0
                self._data_cursor += 1
        elif name == ".asciiz" or name == ".ascii":
            if self._section != "data":
                raise AssemblyError(f"{name} outside .data section", lineno)
            text = line.split(None, 1)[1].strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise AssemblyError(f"{name} needs a quoted string", lineno)
            body = text[1:-1].encode().decode("unicode_escape")
            for ch in body:
                self.data[self._data_cursor] = ord(ch)
                self._data_cursor += 1
            if name == ".asciiz":
                self.data[self._data_cursor] = 0
                self._data_cursor += 1
        else:
            raise AssemblyError(f"unknown directive {name!r}", lineno)

    # -- pass 2 -------------------------------------------------------
    def _reg(self, token: str, line: int, *, fp: bool) -> int:
        try:
            is_fp, idx = parse_register(token)
        except ValueError as exc:
            raise AssemblyError(str(exc), line) from exc
        if is_fp != fp:
            kind = "floating-point" if fp else "integer"
            raise AssemblyError(f"expected {kind} register, got {token!r}", line)
        return idx

    def _imm_or_label(self, token: str, line: int) -> int:
        if _is_int_literal(token):
            return _parse_int(token, line)
        if token in self.data_labels:
            return self.data_labels[token]
        if token in self.text_labels:
            return self.text_labels[token]
        raise AssemblyError(f"undefined label or bad immediate {token!r}", line)

    def _branch_target(self, token: str, line: int) -> int:
        if token in self.text_labels:
            return self.text_labels[token]
        if _is_int_literal(token):
            return _parse_int(token, line)
        raise AssemblyError(f"undefined code label {token!r}", line)

    def _mem_operand(self, token: str, line: int) -> tuple[int, int]:
        """Parse ``off(base)`` / ``(base)`` / ``label`` into (imm, base)."""
        tok = token.strip()
        if tok.endswith(")") and "(" in tok:
            off_text, _, base_text = tok.partition("(")
            base = self._reg(base_text[:-1], line, fp=False)
            off_text = off_text.strip()
            if not off_text:
                return 0, base
            if _is_int_literal(off_text):
                return _parse_int(off_text, line), base
            if off_text in self.data_labels:
                return self.data_labels[off_text], base
            raise AssemblyError(f"bad offset {off_text!r}", line)
        if tok in self.data_labels:
            return self.data_labels[tok], 0
        if _is_int_literal(tok):
            return _parse_int(tok, line), 0
        raise AssemblyError(f"bad memory operand {token!r}", line)

    def _need(self, ops: list[str], n: int, mnem: str, line: int) -> None:
        if len(ops) != n:
            raise AssemblyError(f"{mnem} needs {n} operands, got {len(ops)}", line)

    def encode(self, proto: _Proto) -> Instruction:
        m, ops, line = proto.mnemonic, proto.operands, proto.line
        if m in _R3:
            self._need(ops, 3, m, line)
            return Instruction(_R3[m], rd=self._reg(ops[0], line, fp=False),
                               rs1=self._reg(ops[1], line, fp=False),
                               rs2=self._reg(ops[2], line, fp=False), line=line)
        if m in _R2I:
            self._need(ops, 3, m, line)
            return Instruction(_R2I[m], rd=self._reg(ops[0], line, fp=False),
                               rs1=self._reg(ops[1], line, fp=False),
                               imm=self._imm_or_label(ops[2], line), line=line)
        if m == "li":
            self._need(ops, 2, m, line)
            return Instruction(Opcode.LI, rd=self._reg(ops[0], line, fp=False),
                               imm=self._imm_or_label(ops[1], line), line=line)
        if m == "mov":
            self._need(ops, 2, m, line)
            return Instruction(Opcode.MOV, rd=self._reg(ops[0], line, fp=False),
                               rs1=self._reg(ops[1], line, fp=False), line=line)
        if m in _MEM:
            self._need(ops, 2, m, line)
            fp = m in ("flw", "fsw")
            reg = self._reg(ops[0], line, fp=fp)
            imm, base = self._mem_operand(ops[1], line)
            op = _MEM[m]
            if m in ("lw", "flw"):
                return Instruction(op, rd=reg, rs1=base, imm=imm, line=line)
            return Instruction(op, rs2=reg, rs1=base, imm=imm, line=line)
        if m in _BR:
            self._need(ops, 3, m, line)
            return Instruction(_BR[m], rs1=self._reg(ops[0], line, fp=False),
                               rs2=self._reg(ops[1], line, fp=False),
                               imm=self._branch_target(ops[2], line), line=line)
        if m == "j":
            self._need(ops, 1, m, line)
            return Instruction(Opcode.J, imm=self._branch_target(ops[0], line),
                               line=line)
        if m == "jal":
            if len(ops) == 1:
                ops = ["ra", ops[0]]
            self._need(ops, 2, m, line)
            return Instruction(Opcode.JAL, rd=self._reg(ops[0], line, fp=False),
                               imm=self._branch_target(ops[1], line), line=line)
        if m == "jr":
            self._need(ops, 1, m, line)
            return Instruction(Opcode.JR, rs1=self._reg(ops[0], line, fp=False),
                               line=line)
        if m in _F3:
            self._need(ops, 3, m, line)
            return Instruction(_F3[m], rd=self._reg(ops[0], line, fp=True),
                               rs1=self._reg(ops[1], line, fp=True),
                               rs2=self._reg(ops[2], line, fp=True), line=line)
        if m in _F2:
            self._need(ops, 2, m, line)
            return Instruction(_F2[m], rd=self._reg(ops[0], line, fp=True),
                               rs1=self._reg(ops[1], line, fp=True), line=line)
        if m == "fli":
            self._need(ops, 2, m, line)
            return Instruction(Opcode.FLI, rd=self._reg(ops[0], line, fp=True),
                               imm=_parse_float(ops[1], line), line=line)
        if m == "cvtif":
            self._need(ops, 2, m, line)
            return Instruction(Opcode.CVTIF, rd=self._reg(ops[0], line, fp=True),
                               rs1=self._reg(ops[1], line, fp=False), line=line)
        if m == "cvtfi":
            self._need(ops, 2, m, line)
            return Instruction(Opcode.CVTFI, rd=self._reg(ops[0], line, fp=False),
                               rs1=self._reg(ops[1], line, fp=True), line=line)
        if m in _FCMP:
            self._need(ops, 3, m, line)
            return Instruction(_FCMP[m], rd=self._reg(ops[0], line, fp=False),
                               rs1=self._reg(ops[1], line, fp=True),
                               rs2=self._reg(ops[2], line, fp=True), line=line)
        if m == "nop":
            self._need(ops, 0, m, line)
            return Instruction(Opcode.NOP, line=line)
        if m == "halt":
            self._need(ops, 0, m, line)
            return Instruction(Opcode.HALT, line=line)
        raise AssemblyError(f"unknown mnemonic {m!r}", line)

    def assemble(self) -> Program:
        self.first_pass()
        instructions = [self.encode(proto) for proto in self.protos]
        return Program(
            instructions=instructions,
            text_labels=self.text_labels,
            data_labels=self.data_labels,
            data=self.data,
            name=self.name,
        )


def assemble(source: str, name: str = "<anonymous>") -> Program:
    """Assemble source text into a :class:`~repro.vm.program.Program`."""
    return _Assembler(source, name).assemble()
