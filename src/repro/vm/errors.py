"""Runtime errors raised by the interpreter."""

from __future__ import annotations


class VMError(RuntimeError):
    """A dynamic execution fault (bad PC, division by zero, ...).

    Carries the faulting PC and source line when available so workload
    authors can locate the offending assembly statement.
    """

    def __init__(self, message: str, *, pc: int | None = None, line: int | None = None):
        detail = message
        if pc is not None:
            detail += f" (pc={pc}"
            if line is not None:
                detail += f", source line {line}"
            detail += ")"
        super().__init__(detail)
        self.pc = pc
        self.line = line
