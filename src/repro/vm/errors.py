"""Runtime errors raised by the interpreter."""

from __future__ import annotations


class TraceFileError(ValueError):
    """Malformed, truncated or incompatible trace file.

    Defined here (rather than in :mod:`repro.vm.tracefile`) so the
    chunked v3 codec (:mod:`repro.vm.tracev3`) and the classic
    tracefile front-end can both raise it without importing each
    other; :mod:`repro.vm.tracefile` re-exports it for compatibility.
    """


class VMError(RuntimeError):
    """A dynamic execution fault (bad PC, division by zero, ...).

    Carries the faulting PC and source line when available so workload
    authors can locate the offending assembly statement.
    """

    def __init__(self, message: str, *, pc: int | None = None, line: int | None = None):
        detail = message
        if pc is not None:
            detail += f" (pc={pc}"
            if line is not None:
                detail += f", source line {line}"
            detail += ")"
        super().__init__(detail)
        self.pc = pc
        self.line = line
