"""Execution substrate: assembler, program container and interpreter.

This package replaces the paper's Alpha-21164 + ATOM toolchain: the
``Machine`` interpreter executes assembled programs and emits one
:class:`~repro.vm.trace.DynInst` record per dynamic instruction,
carrying exactly the information ATOM instrumentation provided the
authors (PC, opcode, read locations+values, written locations+values,
latency, next PC).
"""

from repro.vm.assembler import AssemblyError, assemble
from repro.vm.backends import (
    BACKEND_ENV,
    BACKENDS,
    DEFAULT_BACKEND,
    create_machine,
    resolve_backend,
)
from repro.vm.errors import VMError
from repro.vm.fastmachine import FastMachine
from repro.vm.machine import DEFAULT_STACK_TOP, Machine
from repro.vm.program import DATA_BASE, Program
from repro.vm.trace import DynInst, Trace

__all__ = [
    "assemble",
    "AssemblyError",
    "Machine",
    "FastMachine",
    "BACKENDS",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "create_machine",
    "resolve_backend",
    "Program",
    "Trace",
    "DynInst",
    "VMError",
    "DATA_BASE",
    "DEFAULT_STACK_TOP",
]
