"""Dataflow timing model (Austin & Sohi dynamic dependence analysis).

Computes the execution time of a dynamic instruction stream limited
only by true data dependences (through registers *and* memory) plus an
optional finite instruction window, exactly as section 4 of the paper
describes.  Reuse techniques plug in as *reuse plans* that override
the completion-time rule for selected instructions.
"""

from repro.dataflow.model import (
    DataflowModel,
    ReusePoint,
    TimingResult,
)

__all__ = ["DataflowModel", "ReusePoint", "TimingResult"]
