"""Completion-time analysis of dynamic instruction streams.

The model is the paper's extension of Austin & Sohi's dynamic
dependence analysis (section 4):

- **Infinite window.**  ``completion(i) = max(ready[l] for every
  location l read by i) + latency(i)``, where ``ready[l]`` is the
  completion time of the last writer of ``l`` (registers, FP registers
  and memory words all live in one table).  ``IPC = N / max
  completion``.

- **W-entry window.**  Graduation times are tracked in program order:
  ``grad(i) = max(grad(i-1), completion(i))``.  A *fetched*
  instruction additionally waits for the graduation of the fetched
  instruction W slots above it: ``completion(i) = max(producers...,
  grad(fetched i-W)) + latency(i)``.

- **Reuse plans.**  A :class:`ReusePoint` attached to instruction ``i``
  says: this instruction may instead complete at ``max(ready[l] for l
  in inputs) + reuse_latency``; the model takes the better of the two
  (the paper's oracle).  ``fetch_free`` reuse points (trace-level
  reuse) are not fetched, so they neither consume a window slot nor
  suffer the window constraint.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.obs import profiling_enabled
from repro.obs.telemetry import current as _telemetry
from repro.vm.trace import AnyTrace, DynInst


@dataclass(frozen=True, slots=True)
class ReusePoint:
    """Reuse opportunity for one dynamic instruction.

    Attributes
    ----------
    inputs:
        Location ids whose producers gate the reuse (for instruction-
        level reuse these are the instruction's own read locations;
        for trace-level reuse the *trace's* live-in locations).
    latency:
        The reuse latency in cycles (table lookup + comparisons).
    fetch_free:
        True when the instruction is skipped by the fetch unit
        entirely (trace-level reuse): it occupies no window slot and
        ignores the window constraint.
    """

    inputs: tuple[int, ...]
    latency: float
    fetch_free: bool = False


@dataclass(slots=True)
class TimingResult:
    """Outcome of a timing analysis over one stream."""

    instruction_count: int
    total_cycles: float
    window_size: int | None
    #: number of instructions that actually used their reuse point
    reused_count: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (the paper's headline metric)."""
        if self.instruction_count == 0:
            return 0.0
        return self.instruction_count / self.total_cycles

    def speedup_over(self, baseline: "TimingResult") -> float:
        """Speed-up of this result relative to a baseline run."""
        if self.total_cycles <= 0:
            raise ValueError("degenerate timing result")
        return baseline.total_cycles / self.total_cycles


class DataflowModel:
    """Reusable analyzer configured with a window size.

    Parameters
    ----------
    window_size:
        ``None`` for the infinite-window scenario, otherwise the
        number of instruction-window entries W (the paper uses 256).
    """

    def __init__(self, window_size: int | None = None):
        if window_size is not None and window_size <= 0:
            raise ValueError("window_size must be positive or None")
        self.window_size = window_size

    def analyze(
        self,
        trace: AnyTrace | Sequence[DynInst],
        reuse_plan: Sequence[ReusePoint | None] | None = None,
    ) -> TimingResult:
        """Compute the stream's execution time under this model.

        ``reuse_plan``, when given, must align 1:1 with the stream;
        ``None`` entries mean "no reuse opportunity here".

        ``trace`` may also be a chunk stream
        (:mod:`repro.vm.tracestream`): the scan folds dependence state
        chunk by chunk and never materialises the stream — the
        ``ready`` table and the window ring are O(state), not O(n).
        """
        from repro.vm.tracestream import iter_insts, stream_length

        instructions = iter_insts(trace)
        known = stream_length(trace)
        if reuse_plan is not None and known is not None \
                and len(reuse_plan) != known:
            raise ValueError(
                f"reuse plan length {len(reuse_plan)} != stream length {known}"
            )

        ready: dict[int, float] = {}
        window = self.window_size
        # graduation times of the last `window` *fetched* instructions,
        # used as a ring buffer
        ring: list[float] = [0.0] * window if window else []
        fetched = 0
        grad_running = 0.0
        max_completion = 0.0
        reused_count = 0
        # A trace-level reuse point is shared by every instruction of its
        # span; its gate (max over live-in producers) must be evaluated
        # once, at trace entry, *before* intra-trace writes update the
        # ready table — that is what lets a dependent chain collapse.
        last_point: ReusePoint | None = None
        cached_reuse_start = 0.0
        plan_len = len(reuse_plan) if reuse_plan is not None else 0

        n = 0
        for i, inst in enumerate(instructions):
            n = i + 1
            if reuse_plan is None:
                point = None
            else:
                if i >= plan_len:
                    raise ValueError(
                        f"reuse plan length {plan_len} < stream length"
                    )
                point = reuse_plan[i]
            fetchable = point is None or not point.fetch_free

            # normal execution time (only meaningful if fetched)
            start = 0.0
            for loc, _value in inst.reads:
                t = ready.get(loc)
                if t is not None and t > start:
                    start = t
            if window and fetchable and fetched >= window:
                gate = ring[(fetched - window) % window]
                if gate > start:
                    start = gate
            normal = start + inst.latency

            if point is None:
                completion = normal
                last_point = None
            else:
                if point is last_point:
                    reuse_start = cached_reuse_start
                else:
                    reuse_start = 0.0
                    for loc in point.inputs:
                        t = ready.get(loc)
                        if t is not None and t > reuse_start:
                            reuse_start = t
                    last_point = point
                    cached_reuse_start = reuse_start
                reused = reuse_start + point.latency
                if point.fetch_free:
                    # the trace is reused (no fetch, no window slot); the
                    # paper's oracle still caps each instruction by its
                    # pure-dataflow normal time
                    completion = reused if reused < normal else normal
                    reused_count += 1
                elif reused < normal:
                    completion = reused
                    reused_count += 1
                else:
                    completion = normal

            for loc, _value in inst.writes:
                ready[loc] = completion

            if completion > max_completion:
                max_completion = completion
            if completion > grad_running:
                grad_running = completion
            if window and fetchable:
                ring[fetched % window] = grad_running
                fetched += 1

        if reuse_plan is not None and plan_len != n:
            raise ValueError(
                f"reuse plan length {plan_len} != stream length {n}"
            )
        return TimingResult(
            instruction_count=n,
            total_cycles=max(max_completion, 1.0) if n else 0.0,
            window_size=window,
            reused_count=reused_count,
        )


# ----------------------------------------------------------------------
# fused multi-scenario engine
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Scenario:
    """One timing scenario for the fused engine.

    ``kind`` selects the reuse plan family:

    - ``"base"`` — no reuse (plain dataflow limit);
    - ``"ilr"`` — instruction-level reuse: every flagged instruction
      may complete at ``max(own producers) + latency``;
    - ``"tlr"`` — trace-level reuse: every span instruction may
      complete at ``max(span live-in producers) + span latency``.

    ``latency`` is the constant reuse latency for ``"ilr"``/``"tlr"``;
    ``k`` (exclusive with ``latency``) selects the proportional model
    ``K * (live-ins + live-outs)`` for ``"tlr"``.
    """

    kind: str
    window_size: int | None = None
    latency: float = 1.0
    k: float | None = None
    fetch_free: bool = True

    def __post_init__(self):
        if self.kind not in ("base", "ilr", "tlr"):
            raise ValueError(f"unknown scenario kind {self.kind!r}")
        if self.window_size is not None and self.window_size <= 0:
            raise ValueError("window_size must be positive or None")
        if self.k is not None and self.kind != "tlr":
            raise ValueError("proportional latency only applies to tlr")


class FusedDataflowEngine:
    """Evaluates many reuse scenarios over one stream without re-deriving
    its dependence structure per scenario.

    A single precompute scan resolves every read to the *index* of its
    producing instruction (the last earlier writer of that location)
    and every trace span to the producer indices of its live-ins as of
    span entry.  Each scenario then reduces to a tight loop over a
    per-scenario completion-time list ``comp`` — ``ready[loc]`` dict
    probes become list indexing, and reuse plans never materialise as
    per-instruction ``ReusePoint`` lists.

    Results are exactly (bit-for-bit) equal to running
    :meth:`DataflowModel.analyze` once per scenario with the plans
    from :func:`repro.baselines.ilr.ilr_reuse_plan` /
    :func:`repro.core.reuse_tlr.tlr_reuse_plan`: the same max/add/min
    float operations run in the same order.

    Parameters
    ----------
    trace:
        The dynamic stream (either trace layout or a record sequence).
    flags:
        Per-instruction reusability flags (needed for ``"ilr"``
        scenarios).
    spans:
        Non-overlapping reusable spans (needed for ``"tlr"``
        scenarios).
    """

    def __init__(self, trace, *, flags=None, spans=None):
        from repro.vm.trace import as_columnar

        #: per-scenario profiling records when ``REPRO_PROFILE=1``
        #: (:func:`repro.obs.profiling_enabled` is sampled at engine
        #: construction); ``None`` keeps the hot path branch-free-ish.
        self.profile_records: list[dict] | None = (
            [] if profiling_enabled() else None
        )
        ct = as_columnar(trace)
        n = len(ct)
        self.n = n
        self.lats = ct.lats
        self.flags = flags
        if flags is not None and len(flags) != n:
            raise ValueError("flags must align with the instruction stream")

        # producer indices: prods[j] resolves j's read locations to the
        # indices of their last writers (never-written reads drop out —
        # they contribute 0.0 to every max, as ready.get() misses do).
        # The representation is shaped for the hot passes: a bare int
        # for one producer, a pair tuple for exactly two (unrolled at
        # use sites), None for none, and a deduplicated list for the
        # rare three-plus case.
        writer: dict[int, int] = {}
        prods: list[int | tuple[int, int] | list[int] | None] = []
        rb, rl = ct.read_bounds, ct.read_locs
        wb, wl = ct.write_bounds, ct.write_locs
        writer_get = writer.get

        # span bookkeeping: ordinal per covered instruction, and the
        # producers of each span's live-ins *as of span entry* (before
        # any intra-span write), which is when DataflowModel.analyze
        # evaluates the shared gate
        spans_sorted = sorted(spans, key=lambda s: s.start) if spans else []
        self.spans = spans_sorted
        span_ids = [-1] * n
        last_stop = 0
        for s_idx, span in enumerate(spans_sorted):
            if span.start < last_stop:
                raise ValueError("spans overlap")
            if span.stop > n:
                raise ValueError("span extends past the end of the stream")
            last_stop = span.stop
            span_ids[span.start : span.stop] = [s_idx] * (span.stop - span.start)
        self.span_ids = span_ids
        #: total instructions covered by spans (== reused count of any
        #: fetch-free TLR scenario, which reuses every span instruction)
        self.span_covered = sum(s.stop - s.start for s in spans_sorted)
        span_gate_prods: list[tuple[int, ...]] = [()] * len(spans_sorted)

        prods_append = prods.append
        next_sid = 0
        next_start = spans_sorted[0].start if spans_sorted else -1
        a = rb[0]
        wa = wb[0]
        for j in range(n):
            if j == next_start:
                gp: list[int] = []
                for loc in spans_sorted[next_sid].input_locations():
                    p = writer_get(loc)
                    if p is not None and p not in gp:
                        gp.append(p)
                span_gate_prods[next_sid] = tuple(gp)
                next_sid += 1
                next_start = (
                    spans_sorted[next_sid].start
                    if next_sid < len(spans_sorted)
                    else -1
                )
            b = rb[j + 1]
            if b - a == 1:
                prods_append(writer_get(rl[a]))
            elif b - a == 2:
                p1 = writer_get(rl[a])
                p2 = writer_get(rl[a + 1])
                if p1 is None:
                    prods_append(p2)
                elif p2 is None or p2 == p1:
                    prods_append(p1)
                else:
                    prods_append((p1, p2))
            elif a == b:
                prods_append(None)
            else:
                ps: list[int] = []
                for idx in range(a, b):
                    p = writer_get(rl[idx])
                    if p is not None and p not in ps:
                        ps.append(p)
                if len(ps) == 1:
                    prods_append(ps[0])
                elif len(ps) == 2:
                    prods_append((ps[0], ps[1]))
                elif ps:
                    prods_append(ps)
                else:
                    prods_append(None)
            a = b
            wb1 = wb[j + 1]
            while wa < wb1:
                writer[wl[wa]] = j
                wa += 1
        self.prods = prods
        self.span_gate_prods = span_gate_prods

    # ------------------------------------------------------------------
    def _span_latencies(self, scenario: Scenario) -> list[float]:
        if scenario.k is not None:
            k = scenario.k
            return [k * (s.input_count + s.output_count) for s in self.spans]
        return [scenario.latency] * len(self.spans)

    def analyze(self, scenario: Scenario) -> TimingResult:
        """Evaluate one scenario (see :meth:`analyze_all` for many).

        With ``REPRO_PROFILE=1`` (checked at engine construction) each
        call appends a record to :attr:`profile_records` — scenario
        descriptor, wall seconds, and instruction throughput — and
        folds the timing into the current telemetry registry under
        ``engine.<kind>``.
        """
        if self.profile_records is None:
            return self._dispatch(scenario)
        t0 = time.perf_counter()
        result = self._dispatch(scenario)
        seconds = time.perf_counter() - t0
        self.profile_records.append({
            "kind": scenario.kind,
            "window_size": scenario.window_size,
            "latency": scenario.latency if scenario.k is None else None,
            "k": scenario.k,
            "seconds": seconds,
            "instructions": self.n,
            "instructions_per_second": self.n / seconds if seconds > 0 else 0.0,
        })
        registry = _telemetry()
        registry.add_time(f"engine.{scenario.kind}", seconds)
        registry.incr("engine.instructions_analyzed", self.n)
        return result

    def _dispatch(self, scenario: Scenario) -> TimingResult:
        if scenario.kind == "base":
            return self._pass_base(scenario.window_size)
        if scenario.kind == "ilr":
            if self.flags is None:
                raise ValueError("ilr scenarios need reusability flags")
            return self._pass_ilr(scenario.window_size, scenario.latency)
        return self._pass_tlr(
            scenario.window_size,
            self._span_latencies(scenario),
            scenario.fetch_free,
        )

    def analyze_all(self, scenarios: Sequence[Scenario]) -> list[TimingResult]:
        """Evaluate every scenario; order matches the input."""
        return [self.analyze(s) for s in scenarios]

    # ------------------------------------------------------------------
    # scenario passes (each a tight loop over producer indices)
    # ------------------------------------------------------------------
    # The passes below trade a little repetition for speed: completions
    # append to a growing list (producers always point backwards), the
    # stream maximum is taken once at the end with the C-level max(),
    # and the window gate exploits the ring identity
    # ``(fetched - W) % W == fetched % W`` — the gate entry is exactly
    # the slot the current graduation time is about to overwrite.

    def _pass_base(self, window: int | None) -> TimingResult:
        n = self.n
        prods = self.prods
        lats = self.lats
        comp: list[float] = []
        append = comp.append
        if not window or n <= window:
            # a never-filled window gates nothing: identical to infinite
            for p, lat in zip(prods, lats):
                if type(p) is int:
                    append(comp[p] + lat)
                elif type(p) is tuple:
                    s = comp[p[0]]
                    t = comp[p[1]]
                    if t > s:
                        s = t
                    append(s + lat)
                elif p is None:
                    append(0.0 + lat)
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q]
                        if t > s:
                            s = t
                    append(s + lat)
        else:
            # fill phase (no gate yet), then steady state with the ring
            # index carried incrementally instead of j % window
            ring: list[float] = []
            rappend = ring.append
            grad = 0.0
            for p, lat in zip(prods[:window], lats[:window]):
                if type(p) is int:
                    s = comp[p]
                elif type(p) is tuple:
                    s = comp[p[0]]
                    t = comp[p[1]]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q]
                        if t > s:
                            s = t
                c = s + lat
                if c > grad:
                    grad = c
                rappend(grad)
                append(c)
            idx = 0
            for p, lat in zip(prods[window:], lats[window:]):
                if type(p) is int:
                    s = comp[p]
                elif type(p) is tuple:
                    s = comp[p[0]]
                    t = comp[p[1]]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q]
                        if t > s:
                            s = t
                gate = ring[idx]
                if gate > s:
                    s = gate
                c = s + lat
                if c > grad:
                    grad = c
                ring[idx] = grad
                idx += 1
                if idx == window:
                    idx = 0
                append(c)
        return TimingResult(
            instruction_count=n,
            total_cycles=max(max(comp), 1.0) if n else 0.0,
            window_size=window,
        )

    def _pass_ilr(self, window: int | None, latency: float) -> TimingResult:
        n = self.n
        comp: list[float] = []
        append = comp.append
        reused = 0
        prods = self.prods
        lats = self.lats
        flags = self.flags
        if not window or n <= window:
            # infinite window (or one that never fills): reuse start ==
            # normal start, so a flagged instruction completes at
            # start + min(latency, own latency)
            for p, lat, flag in zip(prods, lats, flags):
                if type(p) is int:
                    s = comp[p]
                elif type(p) is tuple:
                    s = comp[p[0]]
                    t = comp[p[1]]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q]
                        if t > s:
                            s = t
                c = s + lat
                if flag:
                    rc = s + latency
                    if rc < c:
                        c = rc
                        reused += 1
                append(c)
        else:
            # fill phase (no gate), then steady state; the reuse start
            # is taken *before* the window gate in both
            ring: list[float] = []
            rappend = ring.append
            grad = 0.0
            for p, lat, flag in zip(prods[:window], lats[:window], flags[:window]):
                if type(p) is int:
                    s = comp[p]
                elif type(p) is tuple:
                    s = comp[p[0]]
                    t = comp[p[1]]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q]
                        if t > s:
                            s = t
                c = s + lat
                if flag:
                    rc = s + latency
                    if rc < c:
                        c = rc
                        reused += 1
                if c > grad:
                    grad = c
                rappend(grad)
                append(c)
            idx = 0
            for p, lat, flag in zip(prods[window:], lats[window:], flags[window:]):
                if type(p) is int:
                    s = comp[p]
                elif type(p) is tuple:
                    s = comp[p[0]]
                    t = comp[p[1]]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q]
                        if t > s:
                            s = t
                if flag:
                    rc = s + latency
                    gate = ring[idx]
                    if gate > s:
                        s = gate
                    c = s + lat
                    if rc < c:
                        c = rc
                        reused += 1
                else:
                    gate = ring[idx]
                    if gate > s:
                        s = gate
                    c = s + lat
                if c > grad:
                    grad = c
                ring[idx] = grad
                idx += 1
                if idx == window:
                    idx = 0
                append(c)
        return TimingResult(
            instruction_count=n,
            total_cycles=max(max(comp), 1.0) if n else 0.0,
            window_size=window,
            reused_count=reused,
        )

    def _pass_tlr(
        self,
        window: int | None,
        span_lats: list[float],
        fetch_free: bool,
    ) -> TimingResult:
        n = self.n
        comp: list[float] = []
        append = comp.append
        gate_prods = self.span_gate_prods
        prods = self.prods
        lats = self.lats
        span_ids = self.span_ids
        reused = 0
        cur_sid = -1
        cur_reused = 0.0
        if not window:
            # infinite window: no ring, no graduation tracking needed
            if fetch_free:
                # every span instruction is reused by definition; the
                # count is the precomputed span coverage
                reused = self.span_covered
                for p, lat, sid in zip(prods, lats, span_ids):
                    if type(p) is int:
                        s = comp[p]
                    elif type(p) is tuple:
                        s = comp[p[0]]
                        t = comp[p[1]]
                        if t > s:
                            s = t
                    elif p is None:
                        s = 0.0
                    else:
                        s = 0.0
                        for q in p:
                            t = comp[q]
                            if t > s:
                                s = t
                    c = s + lat
                    if sid >= 0:
                        if sid != cur_sid:
                            g = 0.0
                            for q in gate_prods[sid]:
                                t = comp[q]
                                if t > g:
                                    g = t
                            cur_sid = sid
                            cur_reused = g + span_lats[sid]
                        if cur_reused < c:
                            c = cur_reused
                    append(c)
            else:
                for p, lat, sid in zip(prods, lats, span_ids):
                    if type(p) is int:
                        s = comp[p]
                    elif type(p) is tuple:
                        s = comp[p[0]]
                        t = comp[p[1]]
                        if t > s:
                            s = t
                    elif p is None:
                        s = 0.0
                    else:
                        s = 0.0
                        for q in p:
                            t = comp[q]
                            if t > s:
                                s = t
                    c = s + lat
                    if sid >= 0:
                        if sid != cur_sid:
                            g = 0.0
                            for q in gate_prods[sid]:
                                t = comp[q]
                                if t > g:
                                    g = t
                            cur_sid = sid
                            cur_reused = g + span_lats[sid]
                        if cur_reused < c:
                            c = cur_reused
                            reused += 1
                    append(c)
        elif fetch_free:
            # the ring fills by append; ``room`` counts empty slots and
            # ``idx`` is the gate/overwrite slot, carried incrementally.
            # Fetch-free span instructions consume no slot (the fetch
            # ordinal is decoupled from the stream index) and are all
            # reused by definition.
            reused = self.span_covered
            grad = 0.0
            ring = []
            rappend = ring.append
            room = window
            idx = 0
            for p, lat, sid in zip(prods, lats, span_ids):
                if type(p) is int:
                    s = comp[p]
                elif type(p) is tuple:
                    s = comp[p[0]]
                    t = comp[p[1]]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q]
                        if t > s:
                            s = t
                if sid < 0:
                    if room:
                        c = s + lat
                        if c > grad:
                            grad = c
                        rappend(grad)
                        room -= 1
                    else:
                        gate = ring[idx]
                        if gate > s:
                            s = gate
                        c = s + lat
                        if c > grad:
                            grad = c
                        ring[idx] = grad
                        idx += 1
                        if idx == window:
                            idx = 0
                else:
                    if sid != cur_sid:
                        g = 0.0
                        for q in gate_prods[sid]:
                            t = comp[q]
                            if t > g:
                                g = t
                        cur_sid = sid
                        cur_reused = g + span_lats[sid]
                    # no window gate, no ring slot
                    c = s + lat
                    if cur_reused < c:
                        c = cur_reused
                    if c > grad:
                        grad = c
                append(c)
        else:
            grad = 0.0
            ring = []
            rappend = ring.append
            room = window
            idx = 0
            for p, lat, sid in zip(prods, lats, span_ids):
                if type(p) is int:
                    s = comp[p]
                elif type(p) is tuple:
                    s = comp[p[0]]
                    t = comp[p[1]]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q]
                        if t > s:
                            s = t
                if sid >= 0:
                    if sid != cur_sid:
                        g = 0.0
                        for q in gate_prods[sid]:
                            t = comp[q]
                            if t > g:
                                g = t
                        cur_sid = sid
                        cur_reused = g + span_lats[sid]
                    if room:
                        c = s + lat
                        if cur_reused < c:
                            c = cur_reused
                            reused += 1
                        if c > grad:
                            grad = c
                        rappend(grad)
                        room -= 1
                    else:
                        gate = ring[idx]
                        if gate > s:
                            s = gate
                        c = s + lat
                        if cur_reused < c:
                            c = cur_reused
                            reused += 1
                        if c > grad:
                            grad = c
                        ring[idx] = grad
                        idx += 1
                        if idx == window:
                            idx = 0
                else:
                    if room:
                        c = s + lat
                        if c > grad:
                            grad = c
                        rappend(grad)
                        room -= 1
                    else:
                        gate = ring[idx]
                        if gate > s:
                            s = gate
                        c = s + lat
                        if c > grad:
                            grad = c
                        ring[idx] = grad
                        idx += 1
                        if idx == window:
                            idx = 0
                append(c)
        return TimingResult(
            instruction_count=n,
            total_cycles=max(max(comp), 1.0) if n else 0.0,
            window_size=window,
            reused_count=reused,
        )
