"""Completion-time analysis of dynamic instruction streams.

The model is the paper's extension of Austin & Sohi's dynamic
dependence analysis (section 4):

- **Infinite window.**  ``completion(i) = max(ready[l] for every
  location l read by i) + latency(i)``, where ``ready[l]`` is the
  completion time of the last writer of ``l`` (registers, FP registers
  and memory words all live in one table).  ``IPC = N / max
  completion``.

- **W-entry window.**  Graduation times are tracked in program order:
  ``grad(i) = max(grad(i-1), completion(i))``.  A *fetched*
  instruction additionally waits for the graduation of the fetched
  instruction W slots above it: ``completion(i) = max(producers...,
  grad(fetched i-W)) + latency(i)``.

- **Reuse plans.**  A :class:`ReusePoint` attached to instruction ``i``
  says: this instruction may instead complete at ``max(ready[l] for l
  in inputs) + reuse_latency``; the model takes the better of the two
  (the paper's oracle).  ``fetch_free`` reuse points (trace-level
  reuse) are not fetched, so they neither consume a window slot nor
  suffer the window constraint.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.vm.trace import DynInst, Trace


@dataclass(frozen=True, slots=True)
class ReusePoint:
    """Reuse opportunity for one dynamic instruction.

    Attributes
    ----------
    inputs:
        Location ids whose producers gate the reuse (for instruction-
        level reuse these are the instruction's own read locations;
        for trace-level reuse the *trace's* live-in locations).
    latency:
        The reuse latency in cycles (table lookup + comparisons).
    fetch_free:
        True when the instruction is skipped by the fetch unit
        entirely (trace-level reuse): it occupies no window slot and
        ignores the window constraint.
    """

    inputs: tuple[int, ...]
    latency: float
    fetch_free: bool = False


@dataclass(slots=True)
class TimingResult:
    """Outcome of a timing analysis over one stream."""

    instruction_count: int
    total_cycles: float
    window_size: int | None
    #: number of instructions that actually used their reuse point
    reused_count: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (the paper's headline metric)."""
        if self.instruction_count == 0:
            return 0.0
        return self.instruction_count / self.total_cycles

    def speedup_over(self, baseline: "TimingResult") -> float:
        """Speed-up of this result relative to a baseline run."""
        if self.total_cycles <= 0:
            raise ValueError("degenerate timing result")
        return baseline.total_cycles / self.total_cycles


class DataflowModel:
    """Reusable analyzer configured with a window size.

    Parameters
    ----------
    window_size:
        ``None`` for the infinite-window scenario, otherwise the
        number of instruction-window entries W (the paper uses 256).
    """

    def __init__(self, window_size: int | None = None):
        if window_size is not None and window_size <= 0:
            raise ValueError("window_size must be positive or None")
        self.window_size = window_size

    def analyze(
        self,
        trace: Trace | Sequence[DynInst],
        reuse_plan: Sequence[ReusePoint | None] | None = None,
    ) -> TimingResult:
        """Compute the stream's execution time under this model.

        ``reuse_plan``, when given, must align 1:1 with the stream;
        ``None`` entries mean "no reuse opportunity here".
        """
        instructions = trace.instructions if isinstance(trace, Trace) else list(trace)
        n = len(instructions)
        if reuse_plan is not None and len(reuse_plan) != n:
            raise ValueError(
                f"reuse plan length {len(reuse_plan)} != stream length {n}"
            )

        ready: dict[int, float] = {}
        window = self.window_size
        # graduation times of the last `window` *fetched* instructions,
        # used as a ring buffer
        ring: list[float] = [0.0] * window if window else []
        fetched = 0
        grad_running = 0.0
        max_completion = 0.0
        reused_count = 0
        # A trace-level reuse point is shared by every instruction of its
        # span; its gate (max over live-in producers) must be evaluated
        # once, at trace entry, *before* intra-trace writes update the
        # ready table — that is what lets a dependent chain collapse.
        last_point: ReusePoint | None = None
        cached_reuse_start = 0.0

        for i, inst in enumerate(instructions):
            point = reuse_plan[i] if reuse_plan is not None else None
            fetchable = point is None or not point.fetch_free

            # normal execution time (only meaningful if fetched)
            start = 0.0
            for loc, _value in inst.reads:
                t = ready.get(loc)
                if t is not None and t > start:
                    start = t
            if window and fetchable and fetched >= window:
                gate = ring[(fetched - window) % window]
                if gate > start:
                    start = gate
            normal = start + inst.latency

            if point is None:
                completion = normal
                last_point = None
            else:
                if point is last_point:
                    reuse_start = cached_reuse_start
                else:
                    reuse_start = 0.0
                    for loc in point.inputs:
                        t = ready.get(loc)
                        if t is not None and t > reuse_start:
                            reuse_start = t
                    last_point = point
                    cached_reuse_start = reuse_start
                reused = reuse_start + point.latency
                if point.fetch_free:
                    # the trace is reused (no fetch, no window slot); the
                    # paper's oracle still caps each instruction by its
                    # pure-dataflow normal time
                    completion = reused if reused < normal else normal
                    reused_count += 1
                elif reused < normal:
                    completion = reused
                    reused_count += 1
                else:
                    completion = normal

            for loc, _value in inst.writes:
                ready[loc] = completion

            if completion > max_completion:
                max_completion = completion
            if completion > grad_running:
                grad_running = completion
            if window and fetchable:
                ring[fetched % window] = grad_running
                fetched += 1

        return TimingResult(
            instruction_count=n,
            total_cycles=max(max_completion, 1.0) if n else 0.0,
            window_size=window,
            reused_count=reused_count,
        )
