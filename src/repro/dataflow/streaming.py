"""One-pass streaming dataflow analysis over chunked trace streams.

:class:`StreamingDataflowEngine` is the stream-consuming counterpart
of :class:`repro.dataflow.model.FusedDataflowEngine`.  It drains a
chunk stream (see :mod:`repro.vm.tracestream`) exactly once and
evaluates every timing scenario *plus* the reusability summary, the
maximal-span statistics and the section-4.5 I/O stats — everything
:func:`repro.exp.runner.run_profile` needs — while holding O(block)
memory instead of the whole trace.

Bit-identity with the materialized pipeline
-------------------------------------------
The fused engine resolves every read to the index of its last writer
and evaluates each scenario as a fold over a completion-time list.
The streaming engine reproduces the same float operations in the same
order by cutting the stream into **blocks** and carrying three pieces
of state across block boundaries:

- the completion time of the last writer of each location as of
  block start.  In-block producer references stay list indices; a
  read whose producer lies in an earlier block is encoded as
  ``~slot``, where the engine-wide slot table interns each location
  the first time it crosses a block boundary, and resolved as a flat
  ``vals[slot]`` list index per scenario (a never-written slot holds
  ``0.0``, exactly as a never-written location does in the fused
  engine).  The slot indirection makes the cross-block resolution a
  list index instead of a dict probe, and lets the block-end state
  update — shared ``(slot, producer)`` pairs computed once — replace
  the per-scenario dict stores of a naive carry table.
- the window ring (``ring``/``room``/``idx``/``grad``) of each
  windowed scenario, carried verbatim.
- the instruction-level reuse history (``pc -> input signatures``),
  so per-chunk reusability flags equal the whole-trace flags.

Blocks are cut *after the last non-reusable instruction* of each
chunk, so every maximal reusable span — a trace candidate — lies
wholly inside one block.  That is load-bearing twice over: the span's
live-in gate must be evaluated at span entry over the span's *full*
live-in set (which is only known once the span is complete), and the
per-span latency depends on its total I/O counts.  Memory is therefore
O(max(chunk, longest reusable span)); a pathological fully-reusable
stream degrades to one block (the same stream would also defeat the
paper's trace-collection limits).

The fill-phase shortcut of the fused engine (``n <= window`` skips
gating) needs no counterpart here: the generic ``room`` counter path
computes identical values, because the gate only engages once more
than ``window`` fetchable instructions have been seen.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.stats import TraceIOStats
from repro.core.traces import _span_from_columnar
from repro.dataflow.model import Scenario, TimingResult
from repro.isa.registers import MEM_LOC_BASE
from repro.vm.trace import ColumnarTrace, extend_columnar, slice_columnar
from repro.vm.tracestream import DEFAULT_CHUNK_SIZE, as_chunk_stream


@dataclass(frozen=True, slots=True)
class StreamReusability:
    """Instruction-level reusability summary of a drained stream.

    The streaming engine never materialises the per-instruction flag
    list, so this carries the counts only; the rates are computed with
    the same integer operands as
    :class:`repro.baselines.ilr.ReusabilityResult`, hence bit-equal.
    """

    reusable_count: int
    total_count: int
    static_count: int
    signature_count: int

    @property
    def percent_reusable(self) -> float:
        """Percentage of dynamic instructions that were reusable."""
        if self.total_count == 0:
            return 0.0
        return 100.0 * self.reusable_count / self.total_count


class _ScenarioState:
    """Per-scenario fold state carried across blocks."""

    __slots__ = (
        "scenario", "window", "vals", "ring", "room", "idx", "grad",
        "best", "reused",
    )

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self.window = scenario.window_size
        #: completion time per engine slot (grown lazily; slot order is
        #: engine-wide, so every scenario's list lines up)
        self.vals: list[float] = []
        self.ring: list[float] = []
        self.room = self.window or 0
        self.idx = 0
        self.grad = 0.0
        self.best = 0.0
        self.reused = 0


class _Block:
    """Shared (scenario-independent) precompute over one block."""

    __slots__ = (
        "n", "lats", "flags", "prods", "span_ids", "gate_refs",
        "span_io",
    )


class StreamingDataflowEngine:
    """Evaluates many reuse scenarios over a chunk stream in one drain.

    Parameters
    ----------
    traceish:
        Anything :func:`repro.vm.tracestream.as_chunk_stream` accepts —
        a chunk stream (file-, execution- or slice-backed) or a
        materialized trace.
    chunk_size:
        Segmentation used when ``traceish`` is a materialized trace.

    After :meth:`analyze_all` the summary attributes are populated:
    ``n``, ``reuse`` (:class:`StreamReusability`), ``span_count``,
    ``span_covered``, ``avg_span_length`` and ``io_stats``
    (:class:`repro.core.stats.TraceIOStats`) — each bit-identical to
    its materialized counterpart.
    """

    def __init__(self, traceish, *,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self._stream = as_chunk_stream(traceish, chunk_size=chunk_size)
        #: location -> slot interning table for cross-block producer
        #: references (shared by every scenario's ``vals`` list)
        self._slots: dict[int, int] = {}
        self.n = 0
        self.reuse: StreamReusability | None = None
        self.span_count = 0
        self.span_covered = 0
        self.avg_span_length = 0.0
        self.io_stats: TraceIOStats | None = None
        # span I/O accumulators (totals; divisions happen at the end,
        # mirroring repro.core.stats.trace_io_stats)
        self._span_in = 0
        self._span_reg_in = 0
        self._span_out = 0
        self._span_reg_out = 0

    # ------------------------------------------------------------------
    def analyze_all(self, scenarios: Sequence[Scenario]) -> list[TimingResult]:
        """Evaluate every scenario in one pass; order matches the input."""
        states = [_ScenarioState(s) for s in scenarios]
        # reset accumulators (the stream is re-iterable, so is this)
        self._slots = {}
        self.n = 0
        self.span_count = 0
        self.span_covered = 0
        self._span_in = self._span_reg_in = 0
        self._span_out = self._span_reg_out = 0

        history: dict[int, set] = {}
        history_get = history.get
        reusable = 0
        signature_count = 0

        buf: ColumnarTrace | None = None
        bflags = bytearray()

        for chunk in self._stream.chunks():
            nc = len(chunk)
            if not nc:
                continue
            # incremental instruction-level reusability: same signature
            # construction as _columnar_reusability, history persistent.
            # Deliberately scalar: Python set membership treats 1 and
            # 1.0 as the same signature, which any bit-level batch
            # encoding of the value columns would split.
            cflags = bytearray(nc)
            pcs = chunk.pcs
            rb, rl, rv = chunk.read_bounds, chunk.read_locs, chunk.read_vals
            a = 0
            for i, pc in enumerate(pcs):
                b = rb[i + 1]
                seen = history_get(pc)
                if seen is None:
                    seen = set()
                    history[pc] = seen
                sig = (tuple(rl[a:b]), tuple(rv[a:b]))
                if sig in seen:
                    cflags[i] = 1
                    reusable += 1
                else:
                    seen.add(sig)
                    signature_count += 1
                a = b
            self.n += nc

            if buf is None:
                cur: ColumnarTrace = chunk
                curflags = cflags
            else:
                extend_columnar(buf, chunk)
                bflags += cflags
                cur = buf
                curflags = bflags
            lz = curflags.rfind(0)
            if lz == -1:
                # wholly reusable so far: the open span may continue
                # into the next chunk — keep buffering
                if cur is chunk:
                    buf = ColumnarTrace()
                    extend_columnar(buf, chunk)
                    bflags = bytearray(cflags)
                continue
            cut = lz + 1
            if cut == len(cur):
                block, fblock = cur, curflags
                buf = None
                bflags = bytearray()
            else:
                block = slice_columnar(cur, 0, cut)
                fblock = curflags[:cut]
                # the remainder's arrays are fresh copies: safe to keep
                # extending in place
                buf = slice_columnar(cur, cut, len(cur))
                bflags = bytearray(curflags[cut:])
            self._process_block(block, fblock, states)

        if buf is not None and len(buf):
            self._process_block(buf, bflags, states)

        self.reuse = StreamReusability(
            reusable_count=reusable,
            total_count=self.n,
            static_count=len(history),
            signature_count=signature_count,
        )
        self._finalize_span_stats()
        n = self.n
        results = []
        for st in states:
            sc = st.scenario
            if sc.kind == "tlr" and sc.fetch_free:
                reused = self.span_covered
            else:
                reused = st.reused
            results.append(TimingResult(
                instruction_count=n,
                total_cycles=max(st.best, 1.0) if n else 0.0,
                window_size=sc.window_size,
                reused_count=reused,
            ))
        return results

    # ------------------------------------------------------------------
    def _finalize_span_stats(self) -> None:
        count = self.span_count
        covered = self.span_covered
        self.avg_span_length = covered / count if count else 0.0
        if count == 0:
            self.io_stats = TraceIOStats(
                0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
            return
        total_in, total_reg_in = self._span_in, self._span_reg_in
        total_out, total_reg_out = self._span_out, self._span_reg_out
        total_mem_in = total_in - total_reg_in
        total_mem_out = total_out - total_reg_out
        self.io_stats = TraceIOStats(
            trace_count=count,
            total_instructions=covered,
            avg_trace_size=covered / count,
            avg_inputs=total_in / count,
            avg_reg_inputs=total_reg_in / count,
            avg_mem_inputs=total_mem_in / count,
            avg_outputs=total_out / count,
            avg_reg_outputs=total_reg_out / count,
            avg_mem_outputs=total_mem_out / count,
            reads_per_instruction=total_in / covered if covered else 0.0,
            writes_per_instruction=total_out / covered if covered else 0.0,
        )

    # ------------------------------------------------------------------
    def _process_block(self, block: ColumnarTrace, flags: bytearray,
                       states: list[_ScenarioState]) -> None:
        n = len(block)
        # maximal reusable runs — wholly contained by construction;
        # batch-extracted from the flag bytes (a zero-padded diff turns
        # every 0->1 edge into a start and every 1->0 edge into an end)
        bounded = np.zeros(n + 2, np.int8)
        bounded[1:-1] = np.frombuffer(flags, np.uint8)
        edges = np.diff(bounded)
        runs = list(zip(np.flatnonzero(edges == 1).tolist(),
                        np.flatnonzero(edges == -1).tolist()))

        span_inlocs: list[tuple[int, ...]] = []
        span_io: list[tuple[int, int]] = []
        for a, b in runs:
            span = _span_from_columnar(block, a, b)
            span_inlocs.append(span.input_locations())
            span_io.append((span.input_count, span.output_count))
            self.span_count += 1
            self.span_covered += b - a
            self._span_in += span.input_count
            self._span_out += span.output_count
            for loc, _value in span.live_ins:
                if loc < MEM_LOC_BASE:
                    self._span_reg_in += 1
            for loc, _value in span.live_outs:
                if loc < MEM_LOC_BASE:
                    self._span_reg_out += 1

        # producer references: in-block producers are list indices,
        # earlier-block producers are encoded as ~slot (the engine-wide
        # interning of the location) and resolved as a flat list index
        # per scenario (same shapes as the fused engine: bare ref, pair
        # tuple, None, dedup'd list)
        slots = self._slots
        writer: dict[int, int] = {}
        writer_get = writer.get
        prods: list = []
        prods_append = prods.append
        rb, rl = block.read_bounds, block.read_locs
        wb, wl = block.write_bounds, block.write_locs
        span_ids = [-1] * n
        gate_refs: list[tuple[int, ...]] = []
        next_sid = 0
        next_start = runs[0][0] if runs else -1
        a = rb[0]
        wa = wb[0]
        for j in range(n):
            if j == next_start:
                a2, b2 = runs[next_sid]
                span_ids[a2:b2] = [next_sid] * (b2 - a2)
                gp: list[int] = []
                for loc in span_inlocs[next_sid]:
                    p = writer_get(loc)
                    if p is None:
                        p = ~slots.setdefault(loc, len(slots))
                    if p not in gp:
                        gp.append(p)
                gate_refs.append(tuple(gp))
                next_sid += 1
                next_start = runs[next_sid][0] if next_sid < len(runs) else -1
            b = rb[j + 1]
            if b - a == 1:
                loc1 = rl[a]
                p = writer_get(loc1)
                if p is None:
                    p = ~slots.setdefault(loc1, len(slots))
                prods_append(p)
            elif b - a == 2:
                loc1 = rl[a]
                loc2 = rl[a + 1]
                p1 = writer_get(loc1)
                if p1 is None:
                    p1 = ~slots.setdefault(loc1, len(slots))
                p2 = writer_get(loc2)
                if p2 is None:
                    p2 = ~slots.setdefault(loc2, len(slots))
                if p1 == p2:
                    prods_append(p1)
                else:
                    prods_append((p1, p2))
            elif a == b:
                prods_append(None)
            else:
                ps: list[int] = []
                for idx in range(a, b):
                    loc = rl[idx]
                    p = writer_get(loc)
                    if p is None:
                        p = ~slots.setdefault(loc, len(slots))
                    if p not in ps:
                        ps.append(p)
                if len(ps) == 1:
                    prods_append(ps[0])
                elif len(ps) == 2:
                    prods_append((ps[0], ps[1]))
                else:
                    prods_append(ps)
            a = b
            wb1 = wb[j + 1]
            while wa < wb1:
                writer[wl[wa]] = j
                wa += 1

        pre = _Block()
        pre.n = n
        pre.lats = block.lats
        pre.flags = flags
        pre.prods = prods
        pre.span_ids = span_ids
        pre.gate_refs = gate_refs
        pre.span_io = span_io

        # block-end state update, computed once and shared by every
        # scenario: intern each written location and pair its slot with
        # the in-block index of its last writer
        slot_updates = [
            (slots.setdefault(loc, len(slots)), jj)
            for loc, jj in writer.items()
        ]
        nslots = len(slots)

        for st in states:
            vals = st.vals
            if len(vals) < nslots:
                # new slots start at 0.0 — the never-written default
                vals.extend([0.0] * (nslots - len(vals)))
            kind = st.scenario.kind
            if kind == "base":
                comp = self._fold_base(st, pre)
            elif kind == "ilr":
                comp = self._fold_ilr(st, pre)
            else:
                comp = self._fold_tlr(st, pre)
            for slot, jj in slot_updates:
                vals[slot] = comp[jj]

    # ------------------------------------------------------------------
    # scenario folds — each mirrors the corresponding fused-engine pass
    # branch for branch; ``s`` resolution additionally routes negative
    # refs through the slot-indexed ``vals`` list
    # ------------------------------------------------------------------
    def _fold_base(self, st: _ScenarioState, pre: _Block) -> list[float]:
        comp: list[float] = []
        append = comp.append
        vals = st.vals
        window = st.window
        best = st.best
        if not window:
            for p, lat in zip(pre.prods, pre.lats):
                if type(p) is int:
                    s = comp[p] if p >= 0 else vals[~p]
                elif type(p) is tuple:
                    q = p[0]
                    s = comp[q] if q >= 0 else vals[~q]
                    q = p[1]
                    t = comp[q] if q >= 0 else vals[~q]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q] if q >= 0 else vals[~q]
                        if t > s:
                            s = t
                c = s + lat
                if c > best:
                    best = c
                append(c)
        else:
            ring = st.ring
            rappend = ring.append
            grad = st.grad
            room = st.room
            idx = st.idx
            for p, lat in zip(pre.prods, pre.lats):
                if type(p) is int:
                    s = comp[p] if p >= 0 else vals[~p]
                elif type(p) is tuple:
                    q = p[0]
                    s = comp[q] if q >= 0 else vals[~q]
                    q = p[1]
                    t = comp[q] if q >= 0 else vals[~q]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q] if q >= 0 else vals[~q]
                        if t > s:
                            s = t
                if room:
                    c = s + lat
                    if c > grad:
                        grad = c
                    rappend(grad)
                    room -= 1
                else:
                    gate = ring[idx]
                    if gate > s:
                        s = gate
                    c = s + lat
                    if c > grad:
                        grad = c
                    ring[idx] = grad
                    idx += 1
                    if idx == window:
                        idx = 0
                if c > best:
                    best = c
                append(c)
            st.grad = grad
            st.room = room
            st.idx = idx
        st.best = best
        return comp

    def _fold_ilr(self, st: _ScenarioState, pre: _Block) -> list[float]:
        comp: list[float] = []
        append = comp.append
        vals = st.vals
        window = st.window
        latency = st.scenario.latency
        best = st.best
        reused = st.reused
        if not window:
            for p, lat, flag in zip(pre.prods, pre.lats, pre.flags):
                if type(p) is int:
                    s = comp[p] if p >= 0 else vals[~p]
                elif type(p) is tuple:
                    q = p[0]
                    s = comp[q] if q >= 0 else vals[~q]
                    q = p[1]
                    t = comp[q] if q >= 0 else vals[~q]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q] if q >= 0 else vals[~q]
                        if t > s:
                            s = t
                c = s + lat
                if flag:
                    rc = s + latency
                    if rc < c:
                        c = rc
                        reused += 1
                if c > best:
                    best = c
                append(c)
        else:
            ring = st.ring
            rappend = ring.append
            grad = st.grad
            room = st.room
            idx = st.idx
            for p, lat, flag in zip(pre.prods, pre.lats, pre.flags):
                if type(p) is int:
                    s = comp[p] if p >= 0 else vals[~p]
                elif type(p) is tuple:
                    q = p[0]
                    s = comp[q] if q >= 0 else vals[~q]
                    q = p[1]
                    t = comp[q] if q >= 0 else vals[~q]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q] if q >= 0 else vals[~q]
                        if t > s:
                            s = t
                if room:
                    c = s + lat
                    if flag:
                        rc = s + latency
                        if rc < c:
                            c = rc
                            reused += 1
                    if c > grad:
                        grad = c
                    rappend(grad)
                    room -= 1
                else:
                    # the reuse start is taken *before* the window gate
                    if flag:
                        rc = s + latency
                        gate = ring[idx]
                        if gate > s:
                            s = gate
                        c = s + lat
                        if rc < c:
                            c = rc
                            reused += 1
                    else:
                        gate = ring[idx]
                        if gate > s:
                            s = gate
                        c = s + lat
                    if c > grad:
                        grad = c
                    ring[idx] = grad
                    idx += 1
                    if idx == window:
                        idx = 0
                if c > best:
                    best = c
                append(c)
            st.grad = grad
            st.room = room
            st.idx = idx
        st.best = best
        st.reused = reused
        return comp

    def _fold_tlr(self, st: _ScenarioState, pre: _Block) -> list[float]:
        scenario = st.scenario
        if scenario.k is not None:
            k = scenario.k
            span_lats = [k * (i + o) for i, o in pre.span_io]
        else:
            span_lats = [scenario.latency] * len(pre.span_io)
        comp: list[float] = []
        append = comp.append
        vals = st.vals
        window = st.window
        fetch_free = scenario.fetch_free
        gate_refs = pre.gate_refs
        span_ids = pre.span_ids
        best = st.best
        reused = st.reused
        cur_sid = -1
        cur_reused = 0.0
        if not window:
            for p, lat, sid in zip(pre.prods, pre.lats, span_ids):
                if type(p) is int:
                    s = comp[p] if p >= 0 else vals[~p]
                elif type(p) is tuple:
                    q = p[0]
                    s = comp[q] if q >= 0 else vals[~q]
                    q = p[1]
                    t = comp[q] if q >= 0 else vals[~q]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q] if q >= 0 else vals[~q]
                        if t > s:
                            s = t
                c = s + lat
                if sid >= 0:
                    if sid != cur_sid:
                        g = 0.0
                        for q in gate_refs[sid]:
                            t = comp[q] if q >= 0 else vals[~q]
                            if t > g:
                                g = t
                        cur_sid = sid
                        cur_reused = g + span_lats[sid]
                    if cur_reused < c:
                        c = cur_reused
                        if not fetch_free:
                            reused += 1
                if c > best:
                    best = c
                append(c)
        else:
            ring = st.ring
            rappend = ring.append
            grad = st.grad
            room = st.room
            idx = st.idx
            for p, lat, sid in zip(pre.prods, pre.lats, span_ids):
                if type(p) is int:
                    s = comp[p] if p >= 0 else vals[~p]
                elif type(p) is tuple:
                    q = p[0]
                    s = comp[q] if q >= 0 else vals[~q]
                    q = p[1]
                    t = comp[q] if q >= 0 else vals[~q]
                    if t > s:
                        s = t
                elif p is None:
                    s = 0.0
                else:
                    s = 0.0
                    for q in p:
                        t = comp[q] if q >= 0 else vals[~q]
                        if t > s:
                            s = t
                if sid >= 0:
                    if sid != cur_sid:
                        g = 0.0
                        for q in gate_refs[sid]:
                            t = comp[q] if q >= 0 else vals[~q]
                            if t > g:
                                g = t
                        cur_sid = sid
                        cur_reused = g + span_lats[sid]
                    if fetch_free:
                        # no window gate, no ring slot
                        c = s + lat
                        if cur_reused < c:
                            c = cur_reused
                        if c > grad:
                            grad = c
                    elif room:
                        c = s + lat
                        if cur_reused < c:
                            c = cur_reused
                            reused += 1
                        if c > grad:
                            grad = c
                        rappend(grad)
                        room -= 1
                    else:
                        gate = ring[idx]
                        if gate > s:
                            s = gate
                        c = s + lat
                        if cur_reused < c:
                            c = cur_reused
                            reused += 1
                        if c > grad:
                            grad = c
                        ring[idx] = grad
                        idx += 1
                        if idx == window:
                            idx = 0
                else:
                    if room:
                        c = s + lat
                        if c > grad:
                            grad = c
                        rappend(grad)
                        room -= 1
                    else:
                        gate = ring[idx]
                        if gate > s:
                            s = gate
                        c = s + lat
                        if c > grad:
                            grad = c
                        ring[idx] = grad
                        idx += 1
                        if idx == window:
                            idx = 0
                if c > best:
                    best = c
                append(c)
            st.grad = grad
            st.room = room
            st.idx = idx
        st.best = best
        st.reused = reused
        return comp
