"""repro — a reproduction of "Trace-Level Reuse" (González, Tubella &
Molina, ICPP 1999).

The package provides, bottom-up:

- :mod:`repro.isa` / :mod:`repro.vm` — a RISC-like ISA, assembler and
  tracing interpreter (the Alpha + ATOM stand-in);
- :mod:`repro.workloads` — 14 kernels mirroring the SPEC95 subset;
- :mod:`repro.dataflow` — the Austin-Sohi completion-time limit model;
- :mod:`repro.baselines` — instruction-level reuse and basic-block
  reuse baselines;
- :mod:`repro.core` — trace-level reuse: the trace model, reuse-aware
  timing, and the finite Reuse Trace Memory engine;
- :mod:`repro.exp` — drivers that regenerate every figure of the
  paper's evaluation.

Quickstart::

    from repro import assemble, Machine, instruction_reusability

    program = assemble(SOURCE)
    trace = Machine(program).run(max_instructions=10_000)
    print(instruction_reusability(trace).percent_reusable)
"""

from repro.baselines.ilr import (
    InstructionReuseBuffer,
    ilr_reuse_plan,
    instruction_reusability,
)
from repro.core.reuse_tlr import (
    ConstantReuseLatency,
    ProportionalReuseLatency,
    tlr_reuse_plan,
)
from repro.baselines.prediction import (
    LastValuePredictor,
    StridePredictor,
    value_predictability,
    value_prediction_plan,
)
from repro.core.rtm import (
    FiniteReuseSimulator,
    FixedLengthHeuristic,
    ILRHeuristic,
    InvalidatingRTM,
    ReuseTraceMemory,
    RTM_PRESETS,
    RTMConfig,
)
from repro.core.traces import TraceLimits, maximal_reusable_spans
from repro.dataflow.model import DataflowModel, ReusePoint, TimingResult
from repro.exp.config import ExperimentConfig
from repro.exp.runner import collect_profiles, run_profile
from repro.isa.disasm import disassemble
from repro.pipeline import PipelineConfig, PipelineModel, PipelineResult
from repro.vm.assembler import AssemblyError, assemble
from repro.vm.machine import Machine
from repro.vm.program import Program
from repro.vm.trace import DynInst, Trace
from repro.vm.tracefile import load_trace, save_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "assemble",
    "AssemblyError",
    "Machine",
    "Program",
    "Trace",
    "DynInst",
    "DataflowModel",
    "ReusePoint",
    "TimingResult",
    "instruction_reusability",
    "ilr_reuse_plan",
    "InstructionReuseBuffer",
    "maximal_reusable_spans",
    "TraceLimits",
    "tlr_reuse_plan",
    "ConstantReuseLatency",
    "ProportionalReuseLatency",
    "ReuseTraceMemory",
    "InvalidatingRTM",
    "RTMConfig",
    "RTM_PRESETS",
    "ILRHeuristic",
    "FixedLengthHeuristic",
    "FiniteReuseSimulator",
    "ExperimentConfig",
    "run_profile",
    "collect_profiles",
    "LastValuePredictor",
    "StridePredictor",
    "value_predictability",
    "value_prediction_plan",
    "PipelineModel",
    "PipelineConfig",
    "PipelineResult",
    "disassemble",
    "save_trace",
    "load_trace",
]
