"""The paper's published numbers, encoded as data, plus shape checks.

``PAPER`` records the values reported in the text and (approximately)
readable off the figures of González, Tubella & Molina (ICPP 1999).
``shape_report`` compares a set of measured profiles against the
qualitative claims the reproduction targets, producing a ✓/✗ table —
the same checks the benchmark harness asserts, gathered in one place
for EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exp.figures import FigureResult, figure3, figure4, figure5, figure6, figure7
from repro.exp.runner import BenchmarkProfile
from repro.util.means import harmonic_mean

#: Headline numbers from the paper (section 4 text and figures).
PAPER = {
    "fig3_avg_reusability": 88.0,
    "fig3_min_program": "applu",
    "fig3_min_value": 53.0,
    "fig3_max_program": "hydro2d",
    "fig3_max_value": 99.0,
    "fig4_avg_speedup": 1.50,
    "fig4_best_program": "turb3d",
    "fig4_best_value": 4.00,
    "fig5_avg_speedup": 1.43,
    "fig6_avg_inf": 3.03,
    "fig6_avg_w256": 3.63,
    "fig6_best_inf_program": "ijpeg",
    "fig6_best_inf_value": 11.57,
    "fig7_max_program": "hydro2d",
    "fig7_max_value": 203.0,
    "fig8_k16_speedup": 2.7,
    "sec45_inputs_per_trace": 6.5,
    "sec45_outputs_per_trace": 5.0,
    "sec45_instr_per_trace": 15.0,
    "sec45_reads_per_instr": 0.43,
    "sec45_writes_per_instr": 0.33,
    "fig9_4k_reuse_pct": 25.0,
    "fig9_256k_reuse_pct": 60.0,
}


@dataclass(frozen=True, slots=True)
class ShapeCheck:
    """One qualitative claim and whether the measurement reproduces it."""

    claim: str
    paper_value: str
    measured_value: str
    holds: bool


def _programs(fig: FigureResult) -> dict[str, float]:
    return {
        str(row[0]): float(row[1])
        for row in fig.rows
        if not str(row[0]).startswith(("AVG", "AVERAGE"))
    }


def shape_checks(profiles: Sequence[BenchmarkProfile]) -> list[ShapeCheck]:
    """Evaluate every targeted qualitative claim against ``profiles``."""
    checks: list[ShapeCheck] = []
    fig3 = figure3(profiles)
    fig4 = figure4(profiles)
    fig5 = figure5(profiles)
    fig6 = figure6(profiles)
    fig7 = figure7(profiles)

    rates = _programs(fig3)
    avg3 = float(fig3.value("AVERAGE", "reusable_pct"))
    checks.append(
        ShapeCheck(
            "reusability is high on average (fig 3)",
            f"{PAPER['fig3_avg_reusability']:.0f}%",
            f"{avg3:.1f}%",
            avg3 >= 60.0,
        )
    )
    measured_min = min(rates, key=rates.get)
    checks.append(
        ShapeCheck(
            "applu is the least reusable program (fig 3)",
            PAPER["fig3_min_program"],
            measured_min,
            measured_min == PAPER["fig3_min_program"],
        )
    )

    ilr = _programs(fig4)
    avg4 = float(fig4.value("AVERAGE", "speedup"))
    checks.append(
        ShapeCheck(
            "ILR speed-up is modest despite high reusability (fig 4)",
            f"{PAPER['fig4_avg_speedup']:.2f}",
            f"{avg4:.2f}",
            1.0 <= avg4 <= 2.5,
        )
    )
    top3_ilr = sorted(ilr, key=ilr.get, reverse=True)[:3]
    checks.append(
        ShapeCheck(
            "turb3d is among the top ILR gainers (fig 4)",
            PAPER["fig4_best_program"],
            ", ".join(top3_ilr),
            PAPER["fig4_best_program"] in top3_ilr,
        )
    )

    tlr_inf = {
        str(row[0]): float(row[1])
        for row in fig6.rows
        if not str(row[0]).startswith(("AVG", "AVERAGE"))
    }
    tlr_win = {
        str(row[0]): float(row[2])
        for row in fig6.rows
        if not str(row[0]).startswith(("AVG", "AVERAGE"))
    }
    avg6_inf = harmonic_mean(list(tlr_inf.values()))
    avg6_win = harmonic_mean(list(tlr_win.values()))
    checks.append(
        ShapeCheck(
            "TLR beats ILR on average (figs 4 vs 6)",
            f"{PAPER['fig6_avg_inf']:.2f} vs {PAPER['fig4_avg_speedup']:.2f}",
            f"{avg6_inf:.2f} vs {avg4:.2f}",
            avg6_inf >= avg4 - 1e-9,
        )
    )
    checks.append(
        ShapeCheck(
            "TLR gains more from a finite window than an infinite one (fig 6)",
            f"{PAPER['fig6_avg_w256']:.2f} > {PAPER['fig6_avg_inf']:.2f}",
            f"{avg6_win:.2f} vs {avg6_inf:.2f}",
            avg6_win > avg6_inf,
        )
    )

    avg5 = float(fig5.value("AVERAGE", "speedup"))
    checks.append(
        ShapeCheck(
            "finite-window TLR beats finite-window ILR (figs 5 vs 6)",
            f"{PAPER['fig6_avg_w256']:.2f} vs {PAPER['fig5_avg_speedup']:.2f}",
            f"{avg6_win:.2f} vs {avg5:.2f}",
            avg6_win >= avg5 - 1e-9,
        )
    )

    sizes = _programs(fig7)
    top2_sizes = sorted(sizes, key=sizes.get, reverse=True)[:2]
    checks.append(
        ShapeCheck(
            "hydro2d is among the largest-trace programs (fig 7)",
            PAPER["fig7_max_program"],
            ", ".join(top2_sizes),
            PAPER["fig7_max_program"] in top2_sizes,
        )
    )
    checks.append(
        ShapeCheck(
            "applu/fpppp have short traces (fig 7)",
            "few instructions",
            f"applu={sizes.get('applu', 0):.1f}, fpppp={sizes.get('fpppp', 0):.1f}",
            sizes.get("applu", 99) < 15 and sizes.get("fpppp", 99) < 15,
        )
    )
    return checks


def shape_report(profiles: Sequence[BenchmarkProfile]) -> FigureResult:
    """The shape checks as a renderable table."""
    result = FigureResult(
        figure_id="shape_report",
        title="Qualitative shape checks vs the paper",
        headers=["claim", "paper", "measured", "holds"],
    )
    for check in shape_checks(profiles):
        result.rows.append(
            [check.claim, check.paper_value, check.measured_value,
             "yes" if check.holds else "NO"]
        )
    return result
