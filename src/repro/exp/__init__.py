"""Experiment drivers: one function per paper figure.

``run_profile`` computes everything figures 3-8 need for one
benchmark; ``figures`` assembles the per-figure tables; ``report``
renders them the way the paper reports them (per-program rows plus
AVG_FP / AVG_INT / AVERAGE, harmonic means for speed-ups, arithmetic
means for percentages).
"""

from repro.exp.config import ExperimentConfig
from repro.exp.figures import (
    FigureResult,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    trace_io_summary,
)
from repro.exp.runner import BenchmarkProfile, collect_profiles, run_profile

__all__ = [
    "ExperimentConfig",
    "BenchmarkProfile",
    "run_profile",
    "collect_profiles",
    "FigureResult",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "trace_io_summary",
]
