"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.base import FP_SUITE, INT_SUITE


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Knobs shared by all figure drivers.

    The paper ran 50M instructions per program on an Alpha; the
    pure-Python substrate defaults to 60k, which is past the point
    where the reuse statistics of these loop-dominated kernels
    stabilise.  Crank ``max_instructions`` up for higher-fidelity runs.
    """

    max_instructions: int = 60_000
    scale: int = 1
    window_size: int = 256
    #: constant reuse latencies swept in figures 4b/5b/8a
    reuse_latencies: tuple[int, ...] = (1, 2, 3, 4)
    #: proportionality constants swept in figure 8b (1/bandwidth)
    proportional_ks: tuple[float, ...] = (1 / 32, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0)
    workloads: tuple[str, ...] = tuple(FP_SUITE + INT_SUITE)
    #: worker processes for the benchmark fan-out (None = one per core)
    max_workers: int | None = None
    #: consult the persistent trace/profile cache (.repro-cache/)
    use_cache: bool = True

    def cache_key(self) -> tuple:
        """The config fields a single benchmark profile depends on."""
        return (
            self.max_instructions,
            self.scale,
            self.window_size,
            self.reuse_latencies,
            self.proportional_ks,
        )

    def fp_names(self) -> list[str]:
        """Configured workloads that belong to the FP suite."""
        return [n for n in self.workloads if n in FP_SUITE]

    def int_names(self) -> list[str]:
        """Configured workloads that belong to the INT suite."""
        return [n for n in self.workloads if n in INT_SUITE]
