"""Experiment configuration."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.workloads.base import FP_SUITE, INT_SUITE

#: Config fields that do NOT change what a single benchmark profile
#: *is* — execution/orchestration knobs only.  Everything else is
#: folded into the profile cache key automatically, so adding a new
#: semantic field can never silently alias two different runs onto one
#: cached entry.  (``workloads`` lists which kernels run, not how any
#: one of them is analysed.)
_NON_SEMANTIC_FIELDS = frozenset({
    "workloads",
    "max_workers",
    "use_cache",
    "task_timeout",
    "task_retries",
    "retry_backoff",
    # execution backends are bit-identical by contract, so the choice
    # changes wall-clock time, never the analysed profile
    "backend",
    # the streaming pipeline is bit-identical to the materialized one
    # (differential-tested), so these change memory/wall-clock only
    "streaming",
    "stream_chunk_size",
    # the tee'd execute→analyze path produces the same cache entry and
    # the same profile as write-then-reread (differential-tested)
    "direct_stream",
})


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Knobs shared by all figure drivers.

    The paper ran 50M instructions per program on an Alpha; the
    pure-Python substrate defaults to 60k, which is past the point
    where the reuse statistics of these loop-dominated kernels
    stabilise.  Crank ``max_instructions`` up for higher-fidelity runs.
    """

    max_instructions: int = 60_000
    scale: int = 1
    window_size: int = 256
    #: constant reuse latencies swept in figures 4b/5b/8a
    reuse_latencies: tuple[int, ...] = (1, 2, 3, 4)
    #: proportionality constants swept in figure 8b (1/bandwidth)
    proportional_ks: tuple[float, ...] = (1 / 32, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0)
    workloads: tuple[str, ...] = tuple(FP_SUITE + INT_SUITE)
    #: worker processes for the benchmark fan-out (None = one per core)
    max_workers: int | None = None
    #: consult the persistent trace/profile cache (.repro-cache/)
    use_cache: bool = True
    #: wall-clock seconds allowed per kernel in ``collect_profiles``
    #: (None = no limit); a kernel that exceeds it is recorded as
    #: failed instead of stalling the whole sweep
    task_timeout: float | None = None
    #: extra attempts after a kernel's first failure
    task_retries: int = 1
    #: base seconds slept before attempt n+1 (doubles per retry)
    retry_backoff: float = 0.05
    #: execution backend for kernel runs (see :mod:`repro.vm.backends`);
    #: None defers to ``REPRO_BACKEND`` and then the interpreter
    backend: str | None = None
    #: analyse through the streaming pipeline (O(chunk) memory, same
    #: numbers bit for bit); None defers to ``REPRO_STREAMING``
    streaming: bool | None = None
    #: instructions per chunk for the streaming pipeline (None = the
    #: tracestream default)
    stream_chunk_size: int | None = None
    #: feed execution chunks straight into the streaming analysis while
    #: a background writer persists the cache entry (the tee'd cold
    #: path); None defers to ``REPRO_DIRECT_STREAM`` and then on
    direct_stream: bool | None = None
    #: answer profiles from the simulation-free static estimator
    #: (:mod:`repro.static`) instead of executing — a tier-0 path with
    #: documented per-kernel error bands (``BENCH_static.json``).
    #: Semantic on purpose: a predicted profile is not an executed one,
    #: so the two never share a cache entry.
    tier0_static: bool = False

    def to_dict(self) -> dict:
        """A JSON-round-trippable dict (tuples become lists).

        The wire format for service shard records: a job file stores
        the config this way and :meth:`from_dict` reconstructs an
        equal config (``cache_key()`` included) in the worker.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output (or JSON).

        JSON turns tuples into lists, so sequence fields are coerced
        back; unknown keys are ignored so a newer writer's record
        still loads on an older reader.
        """
        tuple_fields = {
            f.name for f in dataclasses.fields(cls)
            if "tuple" in str(f.type)
        }
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {}
        for name, value in data.items():
            if name not in known:
                continue
            if name in tuple_fields and isinstance(value, (list, tuple)):
                kwargs[name] = tuple(value)
            else:
                kwargs[name] = value
        return cls(**kwargs)

    def cache_key(self) -> tuple:
        """Every analysis-relevant config field, as (name, value) pairs.

        Derived from the dataclass fields minus the explicit
        ``_NON_SEMANTIC_FIELDS`` exclusion list, so a future semantic
        field is part of the key by default: two configs that differ
        in *any* analysed setting (budget, window size, latency
        sweeps, ...) always produce distinct profile cache entries.
        """
        return tuple(
            (f.name, getattr(self, f.name))
            for f in dataclasses.fields(self)
            if f.name not in _NON_SEMANTIC_FIELDS
        )

    def fp_names(self) -> list[str]:
        """Configured workloads that belong to the FP suite."""
        return [n for n in self.workloads if n in FP_SUITE]

    def int_names(self) -> list[str]:
        """Configured workloads that belong to the INT suite."""
        return [n for n in self.workloads if n in INT_SUITE]
