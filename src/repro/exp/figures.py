"""Figure assembly: one function per paper figure.

Each function reduces :class:`~repro.exp.runner.BenchmarkProfile`
records into a :class:`FigureResult` mirroring the paper's reporting
conventions: per-program values plus AVG_FP, AVG_INT and AVERAGE
rows, with harmonic means for speed-ups and arithmetic means for
percentages and trace sizes (section 4.1).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.rtm.memory import RTM_PRESETS
from repro.core.rtm.collector import FixedLengthHeuristic, Heuristic, ILRHeuristic
from repro.core.rtm.simulator import FiniteReuseResult, FiniteReuseSimulator
from repro.exp.config import ExperimentConfig
from repro.exp.runner import BenchmarkProfile
from repro.util.means import arithmetic_mean, harmonic_mean
from repro.util.parallel import parallel_map
from repro.workloads.base import run_workload


@dataclass(slots=True)
class FigureResult:
    """A rendered experiment table."""

    figure_id: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def row_for(self, label: str) -> list[object]:
        """Find a row by its first cell (program name or series label)."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(f"no row labelled {label!r} in {self.figure_id}")

    def value(self, label: str, column: str) -> object:
        """Cell lookup by row label and column header."""
        return self.row_for(label)[self.headers.index(column)]


def _with_suite_averages(
    profiles: Sequence[BenchmarkProfile],
    extract: Callable[[BenchmarkProfile], float],
    mean: Callable,
) -> list[list[object]]:
    """Per-program rows followed by AVG_FP / AVG_INT / AVERAGE."""
    rows: list[list[object]] = []
    fp_vals: list[float] = []
    int_vals: list[float] = []
    ordered = [p for p in profiles if p.suite == "FP"] + [
        p for p in profiles if p.suite == "INT"
    ]
    for profile in ordered:
        value = extract(profile)
        rows.append([profile.name, value])
        (fp_vals if profile.suite == "FP" else int_vals).append(value)
    if fp_vals:
        rows.append(["AVG_FP", mean(fp_vals)])
    if int_vals:
        rows.append(["AVG_INT", mean(int_vals)])
    rows.append(["AVERAGE", mean(fp_vals + int_vals)])
    return rows


def figure3(profiles: Sequence[BenchmarkProfile]) -> FigureResult:
    """Instruction-level reusability for a perfect engine (Figure 3)."""
    return FigureResult(
        figure_id="fig3",
        title="Figure 3: instruction-level reusability (%), perfect engine",
        headers=["program", "reusable_pct"],
        rows=_with_suite_averages(
            profiles, lambda p: p.percent_reusable, arithmetic_mean
        ),
    )


def _speedup_figure(
    profiles: Sequence[BenchmarkProfile],
    figure_id: str,
    title: str,
    per_program: Callable[[BenchmarkProfile], float],
    by_latency: Callable[[BenchmarkProfile, int], float],
    latencies: Sequence[int],
) -> FigureResult:
    """Shared shape of figures 4/5/6: per-program at 1 cycle plus the
    latency sweep averages."""
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        headers=["program", "speedup"],
        rows=_with_suite_averages(profiles, per_program, harmonic_mean),
    )
    for latency in latencies:
        vals = [by_latency(p, latency) for p in profiles]
        result.rows.append([f"AVG@latency={latency}", harmonic_mean(vals)])
    return result


def figure4(
    profiles: Sequence[BenchmarkProfile],
    config: ExperimentConfig | None = None,
) -> FigureResult:
    """ILR speed-up, infinite window (Figure 4a at 1 cycle, 4b sweep)."""
    if config is None:
        config = ExperimentConfig()
    return _speedup_figure(
        profiles,
        "fig4",
        "Figure 4: instruction-level reuse speed-up, infinite window",
        lambda p: p.ilr_speedup_inf[1],
        lambda p, lat: p.ilr_speedup_inf[lat],
        config.reuse_latencies,
    )


def figure5(
    profiles: Sequence[BenchmarkProfile],
    config: ExperimentConfig | None = None,
) -> FigureResult:
    """ILR speed-up, 256-entry window (Figure 5a at 1 cycle, 5b sweep)."""
    if config is None:
        config = ExperimentConfig()
    return _speedup_figure(
        profiles,
        "fig5",
        "Figure 5: instruction-level reuse speed-up, 256-entry window",
        lambda p: p.ilr_speedup_win[1],
        lambda p, lat: p.ilr_speedup_win[lat],
        config.reuse_latencies,
    )


def figure6(profiles: Sequence[BenchmarkProfile]) -> FigureResult:
    """TLR speed-up at 1-cycle reuse latency (Figure 6a/6b)."""
    result = FigureResult(
        figure_id="fig6",
        title="Figure 6: trace-level reuse speed-up, 1-cycle reuse latency",
        headers=["program", "speedup_inf", "speedup_w256"],
    )
    fp_inf, fp_win, int_inf, int_win = [], [], [], []
    ordered = [p for p in profiles if p.suite == "FP"] + [
        p for p in profiles if p.suite == "INT"
    ]
    for p in ordered:
        result.rows.append([p.name, p.tlr_speedup_inf[1], p.tlr_speedup_win[1]])
        if p.suite == "FP":
            fp_inf.append(p.tlr_speedup_inf[1])
            fp_win.append(p.tlr_speedup_win[1])
        else:
            int_inf.append(p.tlr_speedup_inf[1])
            int_win.append(p.tlr_speedup_win[1])
    if fp_inf:
        result.rows.append(["AVG_FP", harmonic_mean(fp_inf), harmonic_mean(fp_win)])
    if int_inf:
        result.rows.append(["AVG_INT", harmonic_mean(int_inf), harmonic_mean(int_win)])
    result.rows.append(
        ["AVERAGE", harmonic_mean(fp_inf + int_inf), harmonic_mean(fp_win + int_win)]
    )
    return result


def figure7(profiles: Sequence[BenchmarkProfile]) -> FigureResult:
    """Average maximal reusable trace size (Figure 7)."""
    return FigureResult(
        figure_id="fig7",
        title="Figure 7: average trace size (instructions)",
        headers=["program", "avg_trace_size"],
        rows=_with_suite_averages(profiles, lambda p: p.avg_trace_size, arithmetic_mean),
    )


def figure8(
    profiles: Sequence[BenchmarkProfile],
    config: ExperimentConfig | None = None,
) -> FigureResult:
    """TLR speed-up vs reuse latency, 256-entry window (Figure 8a/8b)."""
    if config is None:
        config = ExperimentConfig()
    result = FigureResult(
        figure_id="fig8",
        title="Figure 8: trace-level reuse speed-up vs reuse latency, "
        "256-entry window",
        headers=["series", "speedup"],
    )
    for latency in config.reuse_latencies:
        vals = [p.tlr_speedup_win[latency] for p in profiles]
        result.rows.append([f"constant@{latency}cyc", harmonic_mean(vals)])
    for k in config.proportional_ks:
        vals = [p.tlr_speedup_win_prop[k] for p in profiles]
        result.rows.append([f"proportional@K=1/{round(1 / k)}", harmonic_mean(vals)])
    return result


def trace_io_summary(profiles: Sequence[BenchmarkProfile]) -> FigureResult:
    """Section 4.5 trace I/O statistics (paper: 6.5 in / 5.0 out /
    15.0 instructions per trace; 0.43 reads and 0.33 writes per
    reused instruction)."""
    result = FigureResult(
        figure_id="sec4.5",
        title="Section 4.5: per-trace input/output statistics",
        headers=[
            "program",
            "avg_inputs",
            "reg_in",
            "mem_in",
            "avg_outputs",
            "reg_out",
            "mem_out",
            "trace_size",
            "reads_per_instr",
            "writes_per_instr",
        ],
    )
    agg: dict[str, list[float]] = {h: [] for h in result.headers[1:]}
    for p in profiles:
        stats = p.io_stats
        row = [
            p.name,
            stats.avg_inputs,
            stats.avg_reg_inputs,
            stats.avg_mem_inputs,
            stats.avg_outputs,
            stats.avg_reg_outputs,
            stats.avg_mem_outputs,
            stats.avg_trace_size,
            stats.reads_per_instruction,
            stats.writes_per_instruction,
        ]
        result.rows.append(row)
        for header, value in zip(result.headers[1:], row[1:]):
            agg[header].append(value)
    result.rows.append(
        ["AVERAGE"] + [arithmetic_mean(agg[h]) for h in result.headers[1:]]
    )
    return result


# ---------------------------------------------------------------------------
# Figure 9: the finite-table study
# ---------------------------------------------------------------------------

#: The paper's heuristic line-up for figure 9.
FIG9_HEURISTICS: list[Heuristic] = [
    ILRHeuristic(expand=False),
    ILRHeuristic(expand=True),
    *[FixedLengthHeuristic(n) for n in range(1, 9)],
]


def _fig9_task(
    args: tuple[str, Heuristic, tuple[str, ...], int, int, bool]
) -> list[tuple[str, str, str, float, float]]:
    """One worker: one benchmark x one heuristic across all RTM sizes."""
    name, heuristic, rtm_names, max_instructions, scale, use_cache = args
    trace = run_workload(
        name, scale=scale, max_instructions=max_instructions,
        use_cache=use_cache,
    )
    out = []
    for rtm_name in rtm_names:
        sim = FiniteReuseSimulator(RTM_PRESETS[rtm_name], heuristic)
        result: FiniteReuseResult = sim.run(trace)
        out.append(
            (
                name,
                heuristic.name,
                rtm_name,
                result.percent_reused,
                result.avg_reused_trace_size,
            )
        )
    return out


def figure9(
    config: ExperimentConfig | None = None,
    *,
    rtm_names: tuple[str, ...] = ("512", "4K", "32K", "256K"),
    heuristics: Sequence[Heuristic] | None = None,
) -> FigureResult:
    """Finite-RTM reusability and trace size (Figure 9a/9b).

    Rows are ``(heuristic, RTM size)`` pairs with the two metrics
    averaged arithmetically over the benchmark suite, exactly like the
    paper's bar chart.
    """
    if config is None:
        config = ExperimentConfig()
    heuristics = list(heuristics) if heuristics is not None else FIG9_HEURISTICS
    tasks = [
        (name, h, rtm_names, config.max_instructions, config.scale,
         config.use_cache)
        for h in heuristics
        for name in config.workloads
    ]
    per_task = parallel_map(_fig9_task, tasks, max_workers=config.max_workers)
    flat = [item for sub in per_task for item in sub]

    result = FigureResult(
        figure_id="fig9",
        title="Figure 9: finite-RTM reusability (%) and avg reused trace size",
        headers=["heuristic", "rtm", "reused_pct", "avg_trace_size"],
    )
    for h in heuristics:
        for rtm_name in rtm_names:
            cell = [
                (pct, size)
                for (name, hname, rname, pct, size) in flat
                if hname == h.name and rname == rtm_name
            ]
            result.rows.append(
                [
                    h.name,
                    rtm_name,
                    arithmetic_mean([c[0] for c in cell]),
                    arithmetic_mean([c[1] for c in cell]),
                ]
            )
    return result
