"""Rendering of figure results as text and markdown."""

from __future__ import annotations

from repro.exp.figures import FigureResult
from repro.util.tables import format_markdown_table, format_table


def render(result: FigureResult) -> str:
    """Monospace table for terminal / bench output."""
    return format_table(result.headers, result.rows, title=result.title)


def render_markdown(result: FigureResult) -> str:
    """Markdown table (EXPERIMENTS.md fodder) with the title as a heading."""
    return f"### {result.title}\n\n" + format_markdown_table(
        result.headers, result.rows
    )
