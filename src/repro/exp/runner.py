"""Per-benchmark analysis pipeline and the parallel fan-out.

``run_profile`` executes one kernel and derives every number figures
3-8 and the section 4.5 statistics need.  Since the fused-engine
rewrite the ~24 timing scenarios (base, ILR and TLR sweeps, both
window sizes, plus the proportional-K family) are evaluated by one
:class:`~repro.dataflow.model.FusedDataflowEngine` over a single
dependence precompute, instead of ~24 independent
``DataflowModel.analyze`` scans.  ``run_profile_reference`` keeps the
original per-scenario pipeline (row-layout trace, one ``analyze`` per
scenario) as the slow oracle for differential tests and as the honest
pre-optimisation baseline for the engine benchmark.

``collect_profiles`` fans the 14 kernels out over a process pool
(each worker regenerates its own trace — cheaper than shipping
multi-megabyte streams through pickles, per the owner-computes rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.ilr import ilr_reuse_plan, instruction_reusability
from repro.core.reuse_tlr import (
    ConstantReuseLatency,
    ProportionalReuseLatency,
    tlr_reuse_plan,
)
from repro.core.stats import TraceIOStats, trace_io_stats
from repro.core.traces import average_span_length, maximal_reusable_spans
from repro.dataflow.model import DataflowModel, FusedDataflowEngine, Scenario
from repro.exp.config import ExperimentConfig
from repro.util.parallel import parallel_map
from repro.vm import tracecache
from repro.workloads.base import build_program, get_workload, run_workload


@dataclass(slots=True)
class BenchmarkProfile:
    """Everything figures 3-8 need for one benchmark."""

    name: str
    suite: str
    dynamic_count: int
    percent_reusable: float
    avg_trace_size: float
    trace_count: int
    base_ipc_inf: float
    base_ipc_win: float
    #: reuse latency (cycles) -> speed-up, infinite window
    ilr_speedup_inf: dict[int, float] = field(default_factory=dict)
    #: reuse latency (cycles) -> speed-up, finite window
    ilr_speedup_win: dict[int, float] = field(default_factory=dict)
    tlr_speedup_inf: dict[int, float] = field(default_factory=dict)
    tlr_speedup_win: dict[int, float] = field(default_factory=dict)
    #: proportionality constant K -> speed-up, finite window
    tlr_speedup_win_prop: dict[float, float] = field(default_factory=dict)
    io_stats: TraceIOStats | None = None


def run_profile(
    name: str, config: ExperimentConfig | None = None
) -> BenchmarkProfile:
    """Run one kernel and analyse it under every figure-3..8 scenario.

    All scenarios share one :class:`FusedDataflowEngine`, so the
    stream's dependence structure is derived once and each scenario is
    a single tight pass.  The numbers are bit-for-bit identical to
    :func:`run_profile_reference`.

    With ``config.use_cache`` (the default) the finished profile is
    memoised in the persistent cache, keyed by the workload, the
    analysis-relevant config fields and the code fingerprint — a warm
    run skips VM execution *and* analysis.
    """
    if config is None:
        config = ExperimentConfig()
    if config.use_cache:
        cached = tracecache.load_cached_profile(name, config.cache_key())
        if isinstance(cached, BenchmarkProfile):
            return cached
    workload = get_workload(name)
    trace = run_workload(
        name,
        scale=config.scale,
        max_instructions=config.max_instructions,
        use_cache=config.use_cache,
    )
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)

    engine = FusedDataflowEngine(trace, flags=reuse.flags, spans=spans)
    win = config.window_size
    base_inf = engine.analyze(Scenario("base", window_size=None))
    base_win = engine.analyze(Scenario("base", window_size=win))

    profile = BenchmarkProfile(
        name=name,
        suite=workload.suite,
        dynamic_count=len(trace),
        percent_reusable=reuse.percent_reusable,
        avg_trace_size=average_span_length(spans),
        trace_count=len(spans),
        base_ipc_inf=base_inf.ipc,
        base_ipc_win=base_win.ipc,
        io_stats=trace_io_stats(spans),
    )

    for latency in config.reuse_latencies:
        lat = float(latency)
        profile.ilr_speedup_inf[latency] = engine.analyze(
            Scenario("ilr", window_size=None, latency=lat)
        ).speedup_over(base_inf)
        profile.ilr_speedup_win[latency] = engine.analyze(
            Scenario("ilr", window_size=win, latency=lat)
        ).speedup_over(base_win)
        profile.tlr_speedup_inf[latency] = engine.analyze(
            Scenario("tlr", window_size=None, latency=lat)
        ).speedup_over(base_inf)
        profile.tlr_speedup_win[latency] = engine.analyze(
            Scenario("tlr", window_size=win, latency=lat)
        ).speedup_over(base_win)

    for k in config.proportional_ks:
        profile.tlr_speedup_win_prop[k] = engine.analyze(
            Scenario("tlr", window_size=win, k=k)
        ).speedup_over(base_win)

    if config.use_cache:
        tracecache.store_cached_profile(name, config.cache_key(), profile)
    return profile


def run_profile_reference(
    name: str, config: ExperimentConfig | None = None
) -> BenchmarkProfile:
    """The original per-scenario pipeline, kept as the slow oracle.

    Executes the kernel through the step-interpreter
    (:meth:`Machine.run_rows`), builds row-layout reuse plans, and
    runs one :meth:`DataflowModel.analyze` scan per scenario — exactly
    the pre-fused-engine code path.  Differential tests assert
    equality with :func:`run_profile`; the engine benchmark measures
    its wall-clock as the baseline.
    """
    if config is None:
        config = ExperimentConfig()
    from repro.vm.machine import Machine

    workload = get_workload(name)
    machine = Machine(build_program(name, config.scale))
    trace = machine.run_rows(max_instructions=config.max_instructions)
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)

    infinite = DataflowModel(window_size=None)
    windowed = DataflowModel(window_size=config.window_size)
    base_inf = infinite.analyze(trace)
    base_win = windowed.analyze(trace)

    profile = BenchmarkProfile(
        name=name,
        suite=workload.suite,
        dynamic_count=len(trace),
        percent_reusable=reuse.percent_reusable,
        avg_trace_size=average_span_length(spans),
        trace_count=len(spans),
        base_ipc_inf=base_inf.ipc,
        base_ipc_win=base_win.ipc,
        io_stats=trace_io_stats(spans),
    )

    for latency in config.reuse_latencies:
        ilr_plan = ilr_reuse_plan(trace, reuse.flags, float(latency))
        profile.ilr_speedup_inf[latency] = infinite.analyze(
            trace, ilr_plan
        ).speedup_over(base_inf)
        profile.ilr_speedup_win[latency] = windowed.analyze(
            trace, ilr_plan
        ).speedup_over(base_win)
        tlr_plan = tlr_reuse_plan(trace, spans, ConstantReuseLatency(float(latency)))
        profile.tlr_speedup_inf[latency] = infinite.analyze(
            trace, tlr_plan
        ).speedup_over(base_inf)
        profile.tlr_speedup_win[latency] = windowed.analyze(
            trace, tlr_plan
        ).speedup_over(base_win)

    for k in config.proportional_ks:
        plan = tlr_reuse_plan(trace, spans, ProportionalReuseLatency(k))
        profile.tlr_speedup_win_prop[k] = windowed.analyze(trace, plan).speedup_over(
            base_win
        )

    return profile


def _profile_task(args: tuple[str, ExperimentConfig]) -> BenchmarkProfile:
    name, config = args
    return run_profile(name, config)


def collect_profiles(
    config: ExperimentConfig | None = None,
) -> list[BenchmarkProfile]:
    """Profiles for every configured workload, fanned out over cores."""
    if config is None:
        config = ExperimentConfig()
    tasks = [(name, config) for name in config.workloads]
    return parallel_map(_profile_task, tasks, max_workers=config.max_workers)
