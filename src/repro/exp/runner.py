"""Per-benchmark analysis pipeline and the parallel fan-out.

``run_profile`` executes one kernel and derives every number figures
3-8 and the section 4.5 statistics need.  Since the fused-engine
rewrite the ~24 timing scenarios (base, ILR and TLR sweeps, both
window sizes, plus the proportional-K family) are evaluated by one
:class:`~repro.dataflow.model.FusedDataflowEngine` over a single
dependence precompute, instead of ~24 independent
``DataflowModel.analyze`` scans.  ``run_profile_reference`` keeps the
original per-scenario pipeline (row-layout trace, one ``analyze`` per
scenario) as the slow oracle for differential tests and as the honest
pre-optimisation baseline for the engine benchmark.

``collect_profiles`` fans the 14 kernels out over a process pool
(each worker regenerates its own trace — cheaper than shipping
multi-megabyte streams through pickles, per the owner-computes rule).

The fan-out is *fault tolerant and observable*: every run appends a
JSONL manifest under ``<cache_dir>/runs/`` (see
:mod:`repro.obs.manifest`), a kernel that fails — raises, hangs past
``config.task_timeout``, or takes its worker process down — is
retried with backoff up to ``config.task_retries`` extra attempts and
then *recorded* as a failure instead of killing the sweep, and a
broken process pool degrades to sequential execution in the parent.
Completed profiles land in the persistent cache as they finish, so an
interrupted sweep is checkpointed for free: the next invocation
resumes from the cache and recomputes only the failed/missing
kernels, bit-identical to an uninterrupted run.

``REPRO_FAULT_INJECT="li=crash,gcc=raise"`` (testing/CI only) makes
the named kernels fail on purpose: ``crash`` kills the worker process
(``raise`` in the parent), ``raise`` raises, ``sleep<secs>`` stalls.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro import obs
from repro.baselines.ilr import ilr_reuse_plan, instruction_reusability
from repro.core.reuse_tlr import (
    ConstantReuseLatency,
    ProportionalReuseLatency,
    tlr_reuse_plan,
)
from repro.core.stats import TraceIOStats, trace_io_stats
from repro.core.traces import average_span_length, maximal_reusable_spans
from repro.dataflow.model import DataflowModel, FusedDataflowEngine, Scenario
from repro.dataflow.streaming import StreamingDataflowEngine
from repro.exp.config import ExperimentConfig
from repro.obs.manifest import RunManifest
from repro.util.parallel import default_worker_count
from repro.vm import tracecache
from repro.workloads.base import (
    build_program,
    get_workload,
    run_workload,
    stream_workload,
)

_log = obs.get_logger("runner")

#: Fault-injection env var: ``"kernel=mode[,kernel=mode...]"`` with
#: modes ``crash`` (kill the worker), ``raise`` (raise RuntimeError)
#: and ``sleep<seconds>`` (stall; trips the per-task timeout).
FAULT_ENV = "REPRO_FAULT_INJECT"

#: Opt into the streaming pipeline globally (``config.streaming=None``
#: defers here); truthy values: 1/true/yes/on.
STREAMING_ENV = "REPRO_STREAMING"


def _streaming_enabled(config: ExperimentConfig) -> bool:
    """Resolve ``config.streaming`` against the environment."""
    if config.streaming is not None:
        return config.streaming
    value = os.environ.get(STREAMING_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


@dataclass(slots=True)
class BenchmarkProfile:
    """Everything figures 3-8 need for one benchmark."""

    name: str
    suite: str
    dynamic_count: int
    percent_reusable: float
    avg_trace_size: float
    trace_count: int
    base_ipc_inf: float
    base_ipc_win: float
    #: reuse latency (cycles) -> speed-up, infinite window
    ilr_speedup_inf: dict[int, float] = field(default_factory=dict)
    #: reuse latency (cycles) -> speed-up, finite window
    ilr_speedup_win: dict[int, float] = field(default_factory=dict)
    tlr_speedup_inf: dict[int, float] = field(default_factory=dict)
    tlr_speedup_win: dict[int, float] = field(default_factory=dict)
    #: proportionality constant K -> speed-up, finite window
    tlr_speedup_win_prop: dict[float, float] = field(default_factory=dict)
    io_stats: TraceIOStats | None = None


def run_profile(
    name: str, config: ExperimentConfig | None = None
) -> BenchmarkProfile:
    """Run one kernel and analyse it under every figure-3..8 scenario.

    All scenarios share one :class:`FusedDataflowEngine`, so the
    stream's dependence structure is derived once and each scenario is
    a single tight pass.  The numbers are bit-for-bit identical to
    :func:`run_profile_reference`.

    With ``config.use_cache`` (the default) the finished profile is
    memoised in the persistent cache, keyed by the workload, the
    analysis-relevant config fields and the code fingerprint — a warm
    run skips VM execution *and* analysis.
    """
    if config is None:
        config = ExperimentConfig()
    if config.tier0_static:
        # tier-0: predict the whole profile statically — no VM, no
        # trace, no cache round-trip (the estimator is milliseconds)
        from repro.static.estimator import estimate_profile

        return estimate_profile(name, config)
    if _streaming_enabled(config):
        return run_profile_streaming(name, config)
    if config.use_cache:
        cached = tracecache.load_cached_profile(name, config.cache_key())
        if isinstance(cached, BenchmarkProfile):
            return cached
    workload = get_workload(name)
    with obs.time_stage("stage.trace"):
        trace = run_workload(
            name,
            scale=config.scale,
            max_instructions=config.max_instructions,
            use_cache=config.use_cache,
            backend=config.backend,
        )
    with obs.time_stage("stage.reusability"):
        reuse = instruction_reusability(trace)
        spans = maximal_reusable_spans(trace, reuse.flags)

    with obs.time_stage("stage.engine_init"):
        engine = FusedDataflowEngine(trace, flags=reuse.flags, spans=spans)
    with obs.time_stage("stage.analysis"):
        win = config.window_size
        base_inf = engine.analyze(Scenario("base", window_size=None))
        base_win = engine.analyze(Scenario("base", window_size=win))

        profile = BenchmarkProfile(
            name=name,
            suite=workload.suite,
            dynamic_count=len(trace),
            percent_reusable=reuse.percent_reusable,
            avg_trace_size=average_span_length(spans),
            trace_count=len(spans),
            base_ipc_inf=base_inf.ipc,
            base_ipc_win=base_win.ipc,
            io_stats=trace_io_stats(spans),
        )

        for latency in config.reuse_latencies:
            lat = float(latency)
            profile.ilr_speedup_inf[latency] = engine.analyze(
                Scenario("ilr", window_size=None, latency=lat)
            ).speedup_over(base_inf)
            profile.ilr_speedup_win[latency] = engine.analyze(
                Scenario("ilr", window_size=win, latency=lat)
            ).speedup_over(base_win)
            profile.tlr_speedup_inf[latency] = engine.analyze(
                Scenario("tlr", window_size=None, latency=lat)
            ).speedup_over(base_inf)
            profile.tlr_speedup_win[latency] = engine.analyze(
                Scenario("tlr", window_size=win, latency=lat)
            ).speedup_over(base_win)

        for k in config.proportional_ks:
            profile.tlr_speedup_win_prop[k] = engine.analyze(
                Scenario("tlr", window_size=win, k=k)
            ).speedup_over(base_win)

    obs.incr("profiles.computed")
    if config.use_cache:
        tracecache.store_cached_profile(name, config.cache_key(), profile)
    return profile


def run_profile_streaming(
    name: str, config: ExperimentConfig | None = None
) -> BenchmarkProfile:
    """:func:`run_profile` through the streaming pipeline.

    The trace is consumed as a chunk stream (cache hits decode the v3
    entry chunk by chunk; misses execute through an incremental
    writer), and every scenario folds inside one
    :class:`StreamingDataflowEngine` drain — peak memory is O(chunk),
    not O(trace).  The numbers are bit-for-bit identical to
    :func:`run_profile`, which is why the two paths share one profile
    cache key (``streaming`` is a non-semantic config field).
    """
    if config is None:
        config = ExperimentConfig()
    if config.use_cache:
        cached = tracecache.load_cached_profile(name, config.cache_key())
        if isinstance(cached, BenchmarkProfile):
            return cached
    workload = get_workload(name)
    with obs.time_stage("stage.trace"):
        stream = stream_workload(
            name,
            scale=config.scale,
            max_instructions=config.max_instructions,
            use_cache=config.use_cache,
            backend=config.backend,
            chunk_size=config.stream_chunk_size,
            direct=config.direct_stream,
        )
    with obs.time_stage("stage.engine_init"):
        if config.stream_chunk_size is not None:
            engine = StreamingDataflowEngine(
                stream, chunk_size=config.stream_chunk_size
            )
        else:
            engine = StreamingDataflowEngine(stream)

    # Mirror run_profile's scenario set exactly; each scenario's result
    # is independent of the others, so ordering only decides which
    # TimingResult lands where.
    win = config.window_size
    scenarios = [
        Scenario("base", window_size=None),
        Scenario("base", window_size=win),
    ]
    for latency in config.reuse_latencies:
        lat = float(latency)
        scenarios.append(Scenario("ilr", window_size=None, latency=lat))
        scenarios.append(Scenario("ilr", window_size=win, latency=lat))
        scenarios.append(Scenario("tlr", window_size=None, latency=lat))
        scenarios.append(Scenario("tlr", window_size=win, latency=lat))
    for k in config.proportional_ks:
        scenarios.append(Scenario("tlr", window_size=win, k=k))

    with obs.time_stage("stage.analysis"):
        results = iter(engine.analyze_all(scenarios))
        base_inf = next(results)
        base_win = next(results)

        profile = BenchmarkProfile(
            name=name,
            suite=workload.suite,
            dynamic_count=engine.n,
            percent_reusable=engine.reuse.percent_reusable,
            avg_trace_size=engine.avg_span_length,
            trace_count=engine.span_count,
            base_ipc_inf=base_inf.ipc,
            base_ipc_win=base_win.ipc,
            io_stats=engine.io_stats,
        )

        for latency in config.reuse_latencies:
            profile.ilr_speedup_inf[latency] = next(results).speedup_over(base_inf)
            profile.ilr_speedup_win[latency] = next(results).speedup_over(base_win)
            profile.tlr_speedup_inf[latency] = next(results).speedup_over(base_inf)
            profile.tlr_speedup_win[latency] = next(results).speedup_over(base_win)

        for k in config.proportional_ks:
            profile.tlr_speedup_win_prop[k] = next(results).speedup_over(base_win)

    obs.incr("profiles.computed")
    if config.use_cache:
        tracecache.store_cached_profile(name, config.cache_key(), profile)
    return profile


def run_profile_reference(
    name: str, config: ExperimentConfig | None = None
) -> BenchmarkProfile:
    """The original per-scenario pipeline, kept as the slow oracle.

    Executes the kernel through the step-interpreter
    (:meth:`Machine.run_rows`), builds row-layout reuse plans, and
    runs one :meth:`DataflowModel.analyze` scan per scenario — exactly
    the pre-fused-engine code path.  Differential tests assert
    equality with :func:`run_profile`; the engine benchmark measures
    its wall-clock as the baseline.
    """
    if config is None:
        config = ExperimentConfig()
    from repro.vm.machine import Machine

    workload = get_workload(name)
    machine = Machine(build_program(name, config.scale))
    trace = machine.run_rows(max_instructions=config.max_instructions)
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)

    infinite = DataflowModel(window_size=None)
    windowed = DataflowModel(window_size=config.window_size)
    base_inf = infinite.analyze(trace)
    base_win = windowed.analyze(trace)

    profile = BenchmarkProfile(
        name=name,
        suite=workload.suite,
        dynamic_count=len(trace),
        percent_reusable=reuse.percent_reusable,
        avg_trace_size=average_span_length(spans),
        trace_count=len(spans),
        base_ipc_inf=base_inf.ipc,
        base_ipc_win=base_win.ipc,
        io_stats=trace_io_stats(spans),
    )

    for latency in config.reuse_latencies:
        ilr_plan = ilr_reuse_plan(trace, reuse.flags, float(latency))
        profile.ilr_speedup_inf[latency] = infinite.analyze(
            trace, ilr_plan
        ).speedup_over(base_inf)
        profile.ilr_speedup_win[latency] = windowed.analyze(
            trace, ilr_plan
        ).speedup_over(base_win)
        tlr_plan = tlr_reuse_plan(trace, spans, ConstantReuseLatency(float(latency)))
        profile.tlr_speedup_inf[latency] = infinite.analyze(
            trace, tlr_plan
        ).speedup_over(base_inf)
        profile.tlr_speedup_win[latency] = windowed.analyze(
            trace, tlr_plan
        ).speedup_over(base_win)

    for k in config.proportional_ks:
        plan = tlr_reuse_plan(trace, spans, ProportionalReuseLatency(k))
        profile.tlr_speedup_win_prop[k] = windowed.analyze(trace, plan).speedup_over(
            base_win
        )

    return profile


@dataclass(slots=True)
class ProfileFailure:
    """One kernel that could not be profiled, with its final error."""

    name: str
    kind: str
    message: str
    attempts: int


class ProfileRun(list):
    """``collect_profiles`` result: the successful profiles (in config
    order, as a plain list — existing callers keep working) plus the
    run's fault/resume metadata."""

    def __init__(self, profiles=(), *, failures=(), resumed=(),
                 manifest_path=None):
        super().__init__(profiles)
        #: kernels that exhausted their attempts, as :class:`ProfileFailure`
        self.failures: list[ProfileFailure] = list(failures)
        #: kernels restored from the persistent cache (checkpoint resume)
        self.resumed: tuple[str, ...] = tuple(resumed)
        #: the run's JSONL manifest, or None when manifests are disabled
        self.manifest_path = manifest_path

    @property
    def ok(self) -> bool:
        """True when every configured kernel produced a profile."""
        return not self.failures


def _maybe_inject_fault(name: str) -> None:
    """Honour ``REPRO_FAULT_INJECT`` (testing/CI fault injection).

    ``crash`` terminates the worker process abruptly — but only when
    actually running inside a worker (a process-pool child, or a
    service worker shard, which marks itself with
    ``REPRO_SERVICE_WORKER``); in the parent (e.g. during the
    sequential fallback) it degrades to an exception so the injection
    can never take the whole run down.
    """
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    for clause in spec.split(","):
        kernel, _, mode = clause.partition("=")
        if kernel.strip() != name:
            continue
        mode = mode.strip() or "raise"
        in_worker = (
            multiprocessing.parent_process() is not None
            or os.environ.get("REPRO_SERVICE_WORKER") == "1"
        )
        if mode == "crash" and in_worker:
            os._exit(3)
        if mode.startswith("sleep"):
            time.sleep(float(mode[len("sleep"):] or "3600"))
            return
        raise RuntimeError(f"injected fault for kernel {name!r} ({mode})")


def _profile_task(
    args: tuple[str, ExperimentConfig]
) -> tuple[str, BenchmarkProfile, dict]:
    """Worker body: one kernel, telemetry captured in its own scope."""
    name, config = args
    with obs.scope() as registry:
        _maybe_inject_fault(name)
        profile = run_profile(name, config)
        snapshot = registry.snapshot()
    return name, profile, snapshot


class _Collector:
    """Shared bookkeeping for one ``collect_profiles`` run."""

    def __init__(self, config: ExperimentConfig, manifest: RunManifest | None):
        self.config = config
        self.manifest = manifest
        self.done: dict[str, BenchmarkProfile] = {}
        self.failures: dict[str, ProfileFailure] = {}
        self.attempts: dict[str, int] = {}
        self.errors: dict[str, tuple[str, str]] = {}

    def emit(self, event: str, **fields) -> None:
        if self.manifest is not None:
            self.manifest.emit(event, **fields)

    # -- outcome recording ---------------------------------------------
    def succeeded(self, name: str, profile: BenchmarkProfile,
                  seconds: float, snapshot: dict, source: str = "computed",
                  ) -> None:
        self.done[name] = profile
        self.emit(
            "profile_done", name=name, attempt=self.attempts.get(name, 0),
            seconds=round(seconds, 6), source=source, telemetry=snapshot,
        )

    def errored(self, name: str, kind: str, message: str) -> bool:
        """Record one failed attempt; returns True when a retry is due."""
        attempt = self.attempts.get(name, 0)
        will_retry = attempt <= self.config.task_retries
        self.errors[name] = (kind, message)
        self.emit(
            "profile_error", name=name, attempt=attempt, kind=kind,
            message=message, will_retry=will_retry,
        )
        _log.warning("kernel %s failed (attempt %d, %s: %s)%s",
                     name, attempt, kind, message,
                     "; retrying" if will_retry else "")
        if not will_retry:
            self.failures[name] = ProfileFailure(
                name=name, kind=kind, message=message, attempts=attempt
            )
        return will_retry

    def backoff(self, name: str) -> None:
        attempt = self.attempts.get(name, 1)
        delay = self.config.retry_backoff * (2 ** (attempt - 1))
        self.emit("retry", name=name, attempt=attempt + 1,
                  backoff=round(delay, 6))
        if delay > 0:
            time.sleep(delay)

    def start_attempt(self, name: str) -> int:
        self.attempts[name] = self.attempts.get(name, 0) + 1
        self.emit("profile_start", name=name, attempt=self.attempts[name])
        return self.attempts[name]


def _run_sequential(collector: _Collector, names: list[str]) -> None:
    """Profile ``names`` in-process, with the same retry policy.

    Used for single-worker configs and as the degraded mode after a
    process-pool crash.  ``task_timeout`` cannot preempt in-process
    work, so it is not enforced here.
    """
    config = collector.config
    for name in names:
        while name not in collector.done and name not in collector.failures:
            if collector.attempts.get(name, 0) > 0:
                collector.backoff(name)
            collector.start_attempt(name)
            t0 = time.monotonic()
            try:
                _, profile, snapshot = _profile_task((name, config))
            except Exception as exc:
                collector.errored(name, type(exc).__name__, str(exc))
                continue
            collector.succeeded(name, profile, time.monotonic() - t0,
                                snapshot)


def _run_pool(collector: _Collector, names: list[str], workers: int) -> None:
    """Fan ``names`` out over a spawn-context process pool.

    Per-task timeouts are measured from submission; a timed-out or
    crashed attempt is retried (with backoff) like any other failure.
    A broken pool falls back to :func:`_run_sequential` for everything
    not yet completed.
    """
    config = collector.config
    context = multiprocessing.get_context("spawn")
    pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    in_flight: dict = {}
    abandoned = False
    pool_broken = False

    def submit(name: str) -> bool:
        nonlocal pool_broken
        collector.start_attempt(name)
        try:
            future = pool.submit(_profile_task, (name, config))
        except BrokenProcessPool:
            pool_broken = True
            return False
        in_flight[future] = (name, time.monotonic())
        return True

    try:
        for name in names:
            if not submit(name):
                break
        while in_flight and not pool_broken:
            poll = 0.1 if config.task_timeout is not None else None
            completed, _ = wait(list(in_flight), timeout=poll,
                                return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in completed:
                name, submitted = in_flight.pop(future)
                try:
                    _, profile, snapshot = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    break
                except Exception as exc:
                    if collector.errored(name, type(exc).__name__, str(exc)):
                        collector.backoff(name)
                        submit(name)
                    continue
                collector.succeeded(name, profile, now - submitted, snapshot)
            if pool_broken:
                break
            if config.task_timeout is not None:
                for future in list(in_flight):
                    name, submitted = in_flight[future]
                    if now - submitted <= config.task_timeout:
                        continue
                    del in_flight[future]
                    if not future.cancel():
                        # already running: the worker may be hung; it
                        # will be terminated at shutdown
                        abandoned = True
                    if collector.errored(
                        name, "TimeoutError",
                        f"kernel exceeded task_timeout="
                        f"{config.task_timeout}s",
                    ):
                        collector.backoff(name)
                        submit(name)
    finally:
        if abandoned or pool_broken:
            # don't wait on hung or dead workers; reclaim them hard
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except OSError:  # pragma: no cover - already gone
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)

    if pool_broken:
        remaining = sorted(
            {name for name, _ in in_flight.values()}
            | {
                name for name in names
                if name not in collector.done
                and name not in collector.failures
            }
        )
        collector.emit("worker_crash", in_flight=remaining)
        _log.warning(
            "a profile worker crashed; kernels not yet completed: %s — "
            "falling back to sequential execution",
            ", ".join(remaining) or "<none>",
        )
        obs.incr("runner.worker_crash")
        collector.emit("fallback_sequential", remaining=remaining)
        ordered = [n for n in names if n in remaining]
        _run_sequential(collector, ordered)


def collect_profiles(
    config: ExperimentConfig | None = None,
    *,
    manifest: RunManifest | bool | None = None,
) -> ProfileRun:
    """Profiles for every configured workload, fanned out over cores.

    Fault-tolerant: a kernel that raises, times out or kills its
    worker is retried (``config.task_retries`` extra attempts with
    exponential backoff) and finally recorded in ``.failures`` instead
    of aborting the sweep.  Completed profiles are checkpointed in the
    persistent cache, so re-invoking after an interruption recomputes
    only what is missing ("resume"); restored kernels are listed in
    ``.resumed``.

    ``manifest`` selects run-manifest recording: ``None`` (default)
    writes one when the cache is enabled, ``True`` forces one,
    ``False`` disables it.  The manifest is a JSONL event log under
    ``<cache_dir>/runs/`` — see :mod:`repro.obs.manifest` and the
    ``repro obs`` CLI.
    """
    if config is None:
        config = ExperimentConfig()
    if manifest is None or manifest is True:
        wants = manifest is True or (
            config.use_cache and tracecache.cache_enabled()
        )
        manifest = RunManifest() if wants else None
    elif manifest is False:
        manifest = None

    collector = _Collector(config, manifest)
    names = list(config.workloads)
    t0 = time.monotonic()
    if manifest is not None:
        import dataclasses

        manifest.start(tuple(names), dataclasses.asdict(config))

    # checkpoint resume: anything already in the persistent profile
    # cache (from a previous, possibly interrupted, run) is restored
    # without spawning a worker
    resumed: list[str] = []
    if config.use_cache and tracecache.cache_enabled():
        for name in names:
            with obs.scope() as registry:
                cached = tracecache.load_cached_profile(
                    name, config.cache_key()
                )
                snapshot = registry.snapshot()
            if isinstance(cached, BenchmarkProfile):
                resumed.append(name)
                collector.succeeded(name, cached, 0.0, snapshot,
                                    source="cache")

    pending = [n for n in names if n not in collector.done]
    if pending:
        workers = config.max_workers
        if workers is None:
            workers = default_worker_count(len(pending))
        if workers <= 1 or len(pending) < 2:
            _run_sequential(collector, pending)
        else:
            _run_pool(collector, pending, workers)

    profiles = [collector.done[n] for n in names if n in collector.done]
    failures = [collector.failures[n] for n in names
                if n in collector.failures]
    if manifest is not None:
        manifest.end(
            ok=[n for n in names if n in collector.done],
            failed=[n for n in names if n in collector.failures],
            resumed=resumed,
            seconds=round(time.monotonic() - t0, 6),
        )
    return ProfileRun(
        profiles,
        failures=failures,
        resumed=resumed,
        manifest_path=manifest.path if manifest is not None else None,
    )
