"""Per-benchmark analysis pipeline and the parallel fan-out.

``run_profile`` executes one kernel and derives every number figures
3-8 and the section 4.5 statistics need.  ``collect_profiles`` fans
the 14 kernels out over a process pool (each worker regenerates its
own trace — cheaper than shipping multi-megabyte streams through
pickles, per the owner-computes rule)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.ilr import ilr_reuse_plan, instruction_reusability
from repro.core.reuse_tlr import (
    ConstantReuseLatency,
    ProportionalReuseLatency,
    tlr_reuse_plan,
)
from repro.core.stats import TraceIOStats, trace_io_stats
from repro.core.traces import average_span_length, maximal_reusable_spans
from repro.dataflow.model import DataflowModel
from repro.exp.config import ExperimentConfig
from repro.util.parallel import parallel_map
from repro.workloads.base import get_workload, run_workload


@dataclass(slots=True)
class BenchmarkProfile:
    """Everything figures 3-8 need for one benchmark."""

    name: str
    suite: str
    dynamic_count: int
    percent_reusable: float
    avg_trace_size: float
    trace_count: int
    base_ipc_inf: float
    base_ipc_win: float
    #: reuse latency (cycles) -> speed-up, infinite window
    ilr_speedup_inf: dict[int, float] = field(default_factory=dict)
    #: reuse latency (cycles) -> speed-up, finite window
    ilr_speedup_win: dict[int, float] = field(default_factory=dict)
    tlr_speedup_inf: dict[int, float] = field(default_factory=dict)
    tlr_speedup_win: dict[int, float] = field(default_factory=dict)
    #: proportionality constant K -> speed-up, finite window
    tlr_speedup_win_prop: dict[float, float] = field(default_factory=dict)
    io_stats: TraceIOStats | None = None


def run_profile(name: str, config: ExperimentConfig = ExperimentConfig()) -> BenchmarkProfile:
    """Run one kernel and analyse it under every figure-3..8 scenario."""
    workload = get_workload(name)
    trace = run_workload(
        name, scale=config.scale, max_instructions=config.max_instructions
    )
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)

    infinite = DataflowModel(window_size=None)
    windowed = DataflowModel(window_size=config.window_size)
    base_inf = infinite.analyze(trace)
    base_win = windowed.analyze(trace)

    profile = BenchmarkProfile(
        name=name,
        suite=workload.suite,
        dynamic_count=len(trace),
        percent_reusable=reuse.percent_reusable,
        avg_trace_size=average_span_length(spans),
        trace_count=len(spans),
        base_ipc_inf=base_inf.ipc,
        base_ipc_win=base_win.ipc,
        io_stats=trace_io_stats(spans),
    )

    for latency in config.reuse_latencies:
        ilr_plan = ilr_reuse_plan(trace, reuse.flags, float(latency))
        profile.ilr_speedup_inf[latency] = infinite.analyze(
            trace, ilr_plan
        ).speedup_over(base_inf)
        profile.ilr_speedup_win[latency] = windowed.analyze(
            trace, ilr_plan
        ).speedup_over(base_win)
        tlr_plan = tlr_reuse_plan(trace, spans, ConstantReuseLatency(float(latency)))
        profile.tlr_speedup_inf[latency] = infinite.analyze(
            trace, tlr_plan
        ).speedup_over(base_inf)
        profile.tlr_speedup_win[latency] = windowed.analyze(
            trace, tlr_plan
        ).speedup_over(base_win)

    for k in config.proportional_ks:
        plan = tlr_reuse_plan(trace, spans, ProportionalReuseLatency(k))
        profile.tlr_speedup_win_prop[k] = windowed.analyze(trace, plan).speedup_over(
            base_win
        )

    return profile


def _profile_task(args: tuple[str, ExperimentConfig]) -> BenchmarkProfile:
    name, config = args
    return run_profile(name, config)


def collect_profiles(
    config: ExperimentConfig = ExperimentConfig(),
) -> list[BenchmarkProfile]:
    """Profiles for every configured workload, fanned out over cores."""
    tasks = [(name, config) for name in config.workloads]
    return parallel_map(_profile_task, tasks, max_workers=config.max_workers)
