"""Worker shard: drain the queue through the runner's machinery.

A worker is an ordinary OS process (``repro worker`` or an inline
call to :func:`run_worker`) that loops: claim a shard, profile its
kernel, publish the result.  The profiling itself goes through the
exact retry/backoff/manifest path of a single-process sweep —
:class:`~repro.exp.runner._Collector` plus
:func:`~repro.exp.runner._run_sequential` — so a shard enjoys the same
``task_retries`` policy and emits the same ``profile_start`` /
``profile_done`` / ``profile_error`` manifest events, tagged with the
worker id and merged into one run view by ``repro obs show``.

The result channel is the shared profile cache, not the queue: a
completed shard's ``done`` record carries no payload, and the
coordinator (or the serve front end) reads profiles back from the
cache by content key.  That is what makes stolen or duplicated shards
harmless — recomputing a shard that someone already finished is a
cache hit.

In-process work cannot be preempted, so ``task_timeout`` is enforced
the same way ``_run_sequential`` enforces it (not at all); the queue's
lease TTL is the backstop for a genuinely wedged worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.exp.runner import _Collector, _run_sequential
from repro.exp.service.queue import DEFAULT_LEASE_TTL, ShardJob, ShardQueue
from repro.obs import get_logger, incr
from repro.obs.manifest import RunManifest

_log = get_logger("service.worker")


@dataclass(slots=True)
class WorkerReport:
    """What one worker loop did before exiting."""

    worker: str
    completed: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)
    seconds: float = 0.0


def process_shard(
    job: ShardJob,
    queue: ShardQueue,
    manifest: RunManifest | None,
    worker: str,
) -> bool:
    """Profile one claimed shard and settle its queue record.

    Returns True when the shard completed (profile now in the cache).
    """
    config = job.experiment_config()
    collector = _Collector(config, manifest)
    if manifest is not None:
        manifest.emit("shard_claim", name=job.workload, job=job.job_id,
                      shard_attempt=job.attempts)
    _run_sequential(collector, [job.workload])
    if job.workload in collector.done:
        queue.complete(job)
        if manifest is not None:
            manifest.emit("shard_done", name=job.workload, job=job.job_id)
        return True
    failure = collector.failures[job.workload]
    error = f"{failure.kind}: {failure.message}"
    queue.fail(job, error)
    if manifest is not None:
        manifest.emit("shard_failed", name=job.workload, job=job.job_id,
                      error=error)
    return False


def run_worker(
    worker: str,
    *,
    queue: ShardQueue | None = None,
    manifest: RunManifest | None = None,
    exit_when_empty: bool = True,
    poll_interval: float = 0.2,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_shards: int | None = None,
) -> WorkerReport:
    """Drain the shard queue; returns a :class:`WorkerReport`.

    With ``exit_when_empty`` (the sweep mode) the loop ends once no
    shard is pending *or* leased — as long as any lease is live the
    worker keeps polling, ready to steal it should its owner die.
    With ``exit_when_empty=False`` (the serve mode) the loop polls
    forever for shards the front end enqueues; ``max_shards`` bounds
    the loop for tests.
    """
    queue = queue if queue is not None else ShardQueue()
    t0 = time.monotonic()
    report = WorkerReport(worker=worker)
    if manifest is not None:
        manifest.emit("worker_start", name=worker)
    while max_shards is None or len(report.completed) + len(report.failed) < max_shards:
        job = queue.claim(worker, lease_ttl=lease_ttl)
        if job is None:
            if exit_when_empty and queue.outstanding() == 0:
                break
            time.sleep(poll_interval)
            continue
        incr("service.worker.shards")
        if job.attempts > 1 and manifest is not None:
            # a fresh claim starts at attempts == 1; anything higher
            # means this lease was stolen back from a dead/stuck worker
            manifest.emit("shard_steal", name=job.workload, job=job.job_id,
                          attempt=job.attempts)
        if process_shard(job, queue, manifest, worker):
            report.completed.append(job.workload)
        else:
            report.failed.append(job.workload)
    report.seconds = time.monotonic() - t0
    if manifest is not None:
        manifest.emit(
            "worker_end", name=worker, completed=report.completed,
            failed=report.failed, seconds=round(report.seconds, 6),
        )
    return report
