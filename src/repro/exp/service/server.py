"""``repro serve``: async front end over the cache and shard queue.

A deliberately small asyncio HTTP/1.1 server (stdlib only — the
container bakes no web framework) with one job: keep the hot path
*pure cache*.  A profile or figure query whose inputs are already in
the shared store is answered by unpickling a few kilobytes — the VM,
the analysis stack, even the queue are never touched.  A miss is
answered ``202 Accepted`` after enqueuing the corresponding
kernel × config shards; worker processes (spawned with ``--workers``
or run separately via ``repro worker --forever``) drain them, and the
same query flips to a ``200`` cache hit once the profile lands.

Endpoints (all ``GET``, all ``application/json``):

``/health``
    Liveness: ``{"ok": true, "pid": ...}``.
``/status``
    Queue state counts, cache entry counts, profile-index size.
``/profile?workload=li[&budget=N][&window=N][&scale=N]``
    One kernel's :class:`~repro.exp.runner.BenchmarkProfile` as JSON
    (hit), or the enqueued shard's job id (miss, 202).
``/figure?name=figure3[&budget=N...]``
    A rendered figure table computed from cached profiles only (hit
    requires *every* configured kernel cached; misses are enqueued).
``/job?id=<job_id>``
    A shard's queue record (state, lease, error).

Blocking filesystem work (cache reads, queue scans) runs in the
default executor so one slow disk op never stalls the event loop.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import urllib.parse
from typing import Any, Callable

from repro.exp.config import ExperimentConfig
from repro.exp.runner import BenchmarkProfile
from repro.exp.service.queue import ShardQueue, shard_job_id
from repro.obs import get_logger, incr
from repro.vm import tracecache

_log = get_logger("service.server")

#: Query parameters accepted as ExperimentConfig overrides, with the
#: coercion each needs (names follow the CLI flags).
_CONFIG_PARAMS: dict[str, tuple[str, Callable[[str], Any]]] = {
    "budget": ("max_instructions", int),
    "window": ("window_size", int),
    "scale": ("scale", int),
}


def config_from_query(
    params: dict[str, str], defaults: ExperimentConfig,
) -> ExperimentConfig:
    """Apply recognised query overrides to the server's default config."""
    overrides = {}
    for param, (fld, coerce) in _CONFIG_PARAMS.items():
        if param in params:
            overrides[fld] = coerce(params[param])
    if not overrides:
        return defaults
    return dataclasses.replace(defaults, **overrides)


def profile_to_json(profile: BenchmarkProfile) -> dict[str, Any]:
    """A profile as a JSON-safe dict (numeric dict keys stringified)."""
    out = dataclasses.asdict(profile)
    for fld in ("ilr_speedup_inf", "ilr_speedup_win", "tlr_speedup_inf",
                "tlr_speedup_win", "tlr_speedup_win_prop"):
        out[fld] = {str(k): v for k, v in out[fld].items()}
    return out


class ServiceFrontend:
    """Route table + handlers; one instance per server."""

    def __init__(self, defaults: ExperimentConfig | None = None,
                 queue: ShardQueue | None = None):
        self.defaults = defaults if defaults is not None else ExperimentConfig()
        self.queue = queue if queue is not None else ShardQueue()
        #: finished static estimates, keyed by (workload, config key) —
        #: the estimator is milliseconds but the hot path should not
        #: re-analyse on every poll
        self._static_memo: dict[tuple, dict] = {}
        self._static_bands: dict | None | bool = False  # False = unloaded

    # -- handlers (synchronous; called via executor) -------------------
    def handle_health(self, params: dict[str, str]) -> tuple[int, dict]:
        return 200, {"ok": True, "pid": os.getpid()}

    def handle_status(self, params: dict[str, str]) -> tuple[int, dict]:
        info = tracecache.cache_info()
        return 200, {
            "queue": self.queue.counts(),
            "cache": {
                "dir": info["dir"],
                "traces": info["traces"],
                "profiles": info["profiles"],
                "profile_index": info["profile_index"],
            },
        }

    def handle_profile(self, params: dict[str, str]) -> tuple[int, dict]:
        workload = params.get("workload")
        if not workload:
            return 400, {"error": "missing ?workload="}
        try:
            config = config_from_query(params, self.defaults)
        except ValueError as exc:
            return 400, {"error": f"bad query parameter: {exc}"}
        if params.get("mode") == "static":
            return self.handle_profile_static(workload, config)
        cached = tracecache.load_cached_profile(workload, config.cache_key())
        if isinstance(cached, BenchmarkProfile):
            incr("serve.profile.hit")
            return 200, {"source": "cache", "workload": workload,
                         "profile": profile_to_json(cached)}
        from repro.workloads.base import get_workload

        try:
            get_workload(workload)
        except KeyError:
            return 404, {"error": f"unknown workload {workload!r}"}
        job_id, state = self.queue.enqueue(workload, config)
        incr("serve.profile.miss")
        return 202, {"source": "enqueued", "workload": workload,
                     "job": job_id, "state": state}

    def handle_profile_static(
        self, workload: str, config: ExperimentConfig
    ) -> tuple[int, dict]:
        """``/profile?mode=static`` — predicted profile, zero execution.

        Always a hot-path ``200``: the static estimator needs no trace
        and no queue, so there is no miss case.  The answer carries the
        kernel's recorded error band from ``BENCH_static.json`` so
        callers can judge how far the prediction may sit from a
        dynamic run.
        """
        from repro.static.estimator import estimate_profile
        from repro.static.validate import kernel_band, load_bands
        from repro.workloads.base import get_workload

        try:
            get_workload(workload)
        except KeyError:
            return 404, {"error": f"unknown workload {workload!r}"}
        key = (workload, config.cache_key())
        body = self._static_memo.get(key)
        if body is None:
            profile = estimate_profile(workload, config)
            if self._static_bands is False:
                self._static_bands = load_bands()
            band = kernel_band(self._static_bands, workload)
            body = {
                "source": "static",
                "workload": workload,
                "profile": profile_to_json(profile),
                "error_band": band,
                "error_band_note": (
                    "per-metric prediction error recorded by "
                    "'repro static validate' (BENCH_static.json); "
                    "percent_reusable is absolute/100, others relative"
                    if band else
                    "no recorded bands — run 'repro static validate'"
                ),
            }
            self._static_memo[key] = body
        incr("serve.profile.static")
        return 200, body

    def handle_figure(self, params: dict[str, str]) -> tuple[int, dict]:
        from repro.exp import figures as figmod
        from repro.exp.report import render

        name = params.get("name", "figure3")
        fig = getattr(figmod, name, None)
        if name not in ("figure3", "figure4", "figure5", "figure6",
                        "figure7", "figure8") or fig is None:
            return 404, {"error": f"unknown figure {name!r}"}
        try:
            config = config_from_query(params, self.defaults)
        except ValueError as exc:
            return 400, {"error": f"bad query parameter: {exc}"}
        profiles, missing = [], []
        for workload in config.workloads:
            cached = tracecache.load_cached_profile(
                workload, config.cache_key()
            )
            if isinstance(cached, BenchmarkProfile):
                profiles.append(cached)
            else:
                missing.append(workload)
        if missing:
            jobs = {w: self.queue.enqueue(w, config)[0] for w in missing}
            incr("serve.figure.miss")
            return 202, {"source": "enqueued", "figure": name,
                         "missing": missing, "jobs": jobs}
        if name in ("figure4", "figure5", "figure8"):
            result = fig(profiles, config)
        else:
            result = fig(profiles)
        incr("serve.figure.hit")
        return 200, {"source": "cache", "figure": name,
                     "text": render(result)}

    def handle_job(self, params: dict[str, str]) -> tuple[int, dict]:
        job_id = params.get("id")
        if not job_id:
            return 400, {"error": "missing ?id="}
        job = self.queue.find(job_id)
        if job is None:
            return 404, {"error": f"no such job {job_id!r}"}
        return 200, {"job": job.to_record()}

    ROUTES = {
        "/health": handle_health,
        "/status": handle_status,
        "/profile": handle_profile,
        "/figure": handle_figure,
        "/job": handle_job,
    }

    def dispatch(self, path: str, params: dict[str, str]) -> tuple[int, dict]:
        handler = self.ROUTES.get(path)
        if handler is None:
            return 404, {"error": f"no route {path!r}"}
        return handler(self, params)

    # -- asyncio plumbing ----------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        status, body = 500, {"error": "internal error"}
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
            line = request.split(b"\r\n", 1)[0].decode("latin-1")
            parts = line.split()
            if len(parts) != 3 or parts[0] != "GET":
                status, body = 405, {"error": "only GET is supported"}
            else:
                url = urllib.parse.urlsplit(parts[1])
                params = {
                    k: v[-1] for k, v in
                    urllib.parse.parse_qs(url.query).items()
                }
                loop = asyncio.get_running_loop()
                status, body = await loop.run_in_executor(
                    None, self.dispatch, url.path, params
                )
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                TimeoutError, UnicodeDecodeError):
            status, body = 400, {"error": "malformed request"}
        except Exception as exc:  # never kill the server on one request
            _log.warning("request handler error: %s", exc)
            status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
        payload = json.dumps(body, indent=2).encode() + b"\n"
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  500: "Internal Server Error"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        incr("serve.requests")


async def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    frontend: ServiceFrontend | None = None,
) -> tuple[asyncio.AbstractServer, ServiceFrontend, int]:
    """Bind and start serving; returns ``(server, frontend, port)``.

    ``port=0`` binds an ephemeral port (tests); the bound port is
    returned either way.
    """
    frontend = frontend if frontend is not None else ServiceFrontend()
    server = await asyncio.start_server(
        frontend.handle_connection, host=host, port=port
    )
    bound = server.sockets[0].getsockname()[1]
    return server, frontend, bound


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8023,
    *,
    defaults: ExperimentConfig | None = None,
) -> None:
    """Blocking entry point for the ``repro serve`` CLI."""

    async def main() -> None:
        server, _frontend, bound = await start_server(
            host, port, frontend=ServiceFrontend(defaults)
        )
        _log.warning("repro serve listening on http://%s:%d", host, bound)
        print(f"repro serve listening on http://{host}:{bound}", flush=True)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
