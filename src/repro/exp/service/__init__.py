"""Sharded sweep service: queue, worker shards, and an async front end.

``collect_profiles`` fans a sweep out over a process pool inside one
Python process; this package splits the same work across *independent
processes* coordinated only through the shared ``.repro-cache/``
artifact store:

- :mod:`repro.exp.service.queue` — a persistent work queue of
  kernel × config shards under ``<cache_dir>/service/queue/``, with
  atomic-rename claims, pid-stamped lease records, and work stealing
  of stale leases (crashed or expired workers);
- :mod:`repro.exp.service.worker` — a worker-shard loop that drains
  the queue through the existing retry/timeout/manifest machinery of
  :mod:`repro.exp.runner`, writing a per-worker run manifest that
  ``repro obs show`` merges into one run view;
- :mod:`repro.exp.service.sweep` — the coordinator: enqueue a sweep,
  spawn N worker processes, reap stragglers, and assemble a
  :class:`~repro.exp.runner.ProfileRun` bit-identical to a
  single-process ``collect_profiles``;
- :mod:`repro.exp.service.server` — the ``repro serve`` asyncio front
  end: profile/figure queries answered from the cache in the hot path
  (never touching the VM), misses enqueued as shards for the workers.

Results never travel through the queue: workers publish profiles into
the content-addressed cache and the queue only tracks shard *state*
(pending → leased → done/failed), so any record can be lost or stolen
and the system re-converges by recomputing into a cache hit.
"""

from repro.exp.service.queue import ShardJob, ShardQueue, service_dir
from repro.exp.service.sweep import enqueue_sweep, run_service_sweep
from repro.exp.service.worker import run_worker

__all__ = [
    "ShardJob",
    "ShardQueue",
    "enqueue_sweep",
    "run_service_sweep",
    "run_worker",
    "service_dir",
]
