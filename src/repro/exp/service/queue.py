"""Persistent shard queue: claim/lease/complete over atomic renames.

One *shard* is one kernel × config profile computation — the unit the
service distributes.  The queue is a directory state machine under
``<cache_dir>/service/queue/``::

    pending/<job_id>.json     enqueued, unowned
    leased/<job_id>.json      claimed by a worker (record holds the
                              lease: pid, worker id, claim time)
    done/<job_id>.json        completed; the profile lives in the cache
    failed/<job_id>.json      exhausted its attempts; error recorded

State transitions are single ``os.rename`` calls, which POSIX makes
atomic *and* exclusive: when two workers grab the same pending shard,
exactly one rename succeeds and the loser moves on.  No locks are
needed on the claim path, so claim throughput scales with workers.

Job ids are content-addressed (workload + the config's semantic cache
key), which makes ``enqueue`` idempotent: the front end can enqueue
the same miss from many requests and the queue holds one shard.

Work stealing / crash recovery: a lease carries its owner's pid and
claim time.  :meth:`ShardQueue.steal_stale` returns shards whose
owner is dead (pid probe) or whose lease outlived ``lease_ttl`` back
to ``pending``, where any idle worker picks them up.  A worker killed
mid-shard therefore delays its shard, never loses it — and because
profiles are stored under content-addressed keys, a shard that was
*almost* finished re-runs into a cache hit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any

from repro.exp.config import ExperimentConfig
from repro.obs import get_logger, incr
from repro.util import fslock
from repro.vm import tracecache

_log = get_logger("service.queue")

#: Shard states, in directory form.
STATES = ("pending", "leased", "done", "failed")

#: Default seconds after which a live-pid lease is considered stuck.
DEFAULT_LEASE_TTL = 600.0


def service_dir() -> pathlib.Path:
    """``<cache_dir>/service`` (honours ``REPRO_CACHE_DIR``)."""
    return tracecache.cache_dir() / "service"


@dataclass(slots=True)
class ShardJob:
    """One kernel × config shard and its queue record."""

    job_id: str
    workload: str
    config: dict[str, Any]
    state: str = "pending"
    enqueued_t: float = 0.0
    attempts: int = 0
    #: lease fields (meaningful while ``state == "leased"``)
    worker: str | None = None
    pid: int | None = None
    claimed_t: float | None = None
    #: outcome fields
    completed_t: float | None = None
    error: str | None = None

    def to_record(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "ShardJob":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in known})

    def experiment_config(self) -> ExperimentConfig:
        return ExperimentConfig.from_dict(self.config)


def shard_job_id(workload: str, config: ExperimentConfig) -> str:
    """Content-addressed job id for one kernel × config shard."""
    digest = hashlib.sha256(
        repr((workload, config.cache_key())).encode()
    ).hexdigest()[:12]
    return f"{workload}-{digest}"


class ShardQueue:
    """The on-disk shard queue (safe for concurrent processes)."""

    def __init__(self, root: pathlib.Path | None = None):
        self.root = root if root is not None else service_dir() / "queue"

    # -- paths ---------------------------------------------------------
    def _dir(self, state: str) -> pathlib.Path:
        return self.root / state

    def _path(self, state: str, job_id: str) -> pathlib.Path:
        return self._dir(state) / f"{job_id}.json"

    def _write(self, state: str, job: ShardJob) -> None:
        """Atomically (re)write a job record in ``state``."""
        path = self._path(state, job.job_id)
        tmp = fslock.make_tmp(path.parent, path.name)
        try:
            tmp.write_text(
                json.dumps(job.to_record(), sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def _read(self, path: pathlib.Path) -> ShardJob | None:
        """Parse one record; None when unreadable (racing writer/corrupt)."""
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict) or "job_id" not in record:
            return None
        try:
            return ShardJob.from_record(record)
        except TypeError:
            return None

    # -- producer side -------------------------------------------------
    def enqueue(
        self, workload: str, config: ExperimentConfig,
        *, retry_failed: bool = True,
    ) -> tuple[str, str]:
        """Add one shard; returns ``(job_id, state)``.

        Idempotent: a shard already pending/leased/done is left alone
        (its current state is returned).  A previously *failed* shard
        is re-queued when ``retry_failed`` — an explicit enqueue is a
        request to try again.
        """
        job_id = shard_job_id(workload, config)
        for state in ("done", "leased", "pending"):
            if self._path(state, job_id).is_file():
                return job_id, state
        if self._path("failed", job_id).is_file():
            if not retry_failed:
                return job_id, "failed"
            # lost rename races just mean someone else re-queued it
            try:
                os.unlink(self._path("failed", job_id))
            except FileNotFoundError:
                pass
        job = ShardJob(
            job_id=job_id,
            workload=workload,
            config=config.to_dict(),
            state="pending",
            enqueued_t=time.time(),
        )
        self._dir("pending").mkdir(parents=True, exist_ok=True)
        self._write("pending", job)
        incr("service.enqueued")
        return job_id, "pending"

    # -- worker side ---------------------------------------------------
    def claim(
        self, worker: str, *, lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> ShardJob | None:
        """Claim one pending shard (oldest first), or None when empty.

        When the pending directory is dry, stale leases are stolen
        back first (work stealing from crashed/stuck workers) and the
        claim is retried once.
        """
        job = self._claim_pending(worker)
        if job is not None:
            return job
        if self.steal_stale(worker, lease_ttl=lease_ttl):
            return self._claim_pending(worker)
        return None

    def _claim_pending(self, worker: str) -> ShardJob | None:
        pending = self._dir("pending")
        if not pending.is_dir():
            return None
        candidates = sorted(
            (p for p in pending.iterdir() if p.suffix == ".json"),
            key=lambda p: p.name,
        )
        for path in candidates:
            job = self._read(path)
            if job is None:
                continue
            target = self._path("leased", job.job_id)
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(path, target)
            except FileNotFoundError:
                continue  # lost the race; somebody else owns it now
            job.state = "leased"
            job.worker = worker
            job.pid = os.getpid()
            job.claimed_t = time.time()
            job.attempts += 1
            self._write("leased", job)
            incr("service.claimed")
            return job
        return None

    def steal_stale(
        self, worker: str, *, lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> int:
        """Return stale leased shards to pending; count of steals.

        A lease is stale when its holder's pid is dead, when it is
        older than ``lease_ttl`` seconds, or when the record never
        became readable (claim crashed between rename and rewrite) and
        the file itself is old.
        """
        leased = self._dir("leased")
        if not leased.is_dir():
            return 0
        now = time.time()
        stolen = 0
        for path in sorted(leased.iterdir()):
            if path.suffix != ".json":
                continue
            job = self._read(path)
            if job is None or job.pid is None:
                # unreadable, or a claim that crashed (or is still in
                # flight) between the rename and the lease rewrite:
                # judge by file age, never instantly
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                stale = age > max(lease_ttl, 5.0)
            elif not fslock.pid_alive(job.pid):
                stale = True
            else:
                stale = now - (job.claimed_t or now) > lease_ttl
            if not stale:
                continue
            target = self._path("pending", path.stem)
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(path, target)
            except FileNotFoundError:
                continue  # owner finished or another stealer won
            stolen += 1
            incr("service.stolen")
            _log.warning(
                "worker %s stole stale shard %s (holder pid=%s worker=%s)",
                worker, path.stem,
                job.pid if job else "?", job.worker if job else "?",
            )
        return stolen

    def complete(self, job: ShardJob) -> None:
        """Mark a leased shard done (profile already in the cache)."""
        job.state = "done"
        job.completed_t = time.time()
        job.error = None
        self._dir("done").mkdir(parents=True, exist_ok=True)
        self._write("done", job)
        # unlink after the done record exists: a crash in between
        # leaves a stale lease that re-runs into a cache hit
        try:
            os.unlink(self._path("leased", job.job_id))
        except FileNotFoundError:
            pass
        incr("service.completed")

    def fail(self, job: ShardJob, error: str) -> None:
        """Mark a leased shard failed with its final error."""
        job.state = "failed"
        job.completed_t = time.time()
        job.error = error
        self._dir("failed").mkdir(parents=True, exist_ok=True)
        self._write("failed", job)
        try:
            os.unlink(self._path("leased", job.job_id))
        except FileNotFoundError:
            pass
        incr("service.failed")

    # -- inspection ----------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Shards per state (``{"pending": n, "leased": n, ...}``)."""
        out: dict[str, int] = {}
        for state in STATES:
            directory = self._dir(state)
            out[state] = (
                sum(1 for p in directory.iterdir() if p.suffix == ".json")
                if directory.is_dir() else 0
            )
        return out

    def jobs(self, state: str) -> list[ShardJob]:
        """All readable records in one state, oldest job id first."""
        directory = self._dir(state)
        if not directory.is_dir():
            return []
        out = []
        for path in sorted(directory.iterdir()):
            if path.suffix != ".json":
                continue
            job = self._read(path)
            if job is not None:
                out.append(job)
        return out

    def find(self, job_id: str) -> ShardJob | None:
        """Look one job id up across every state."""
        for state in STATES:
            path = self._path(state, job_id)
            if path.is_file():
                job = self._read(path)
                if job is not None:
                    job.state = state
                    return job
        return None

    def outstanding(self) -> int:
        """Shards not yet settled (pending + leased)."""
        counts = self.counts()
        return counts["pending"] + counts["leased"]
