"""Sweep coordinator: enqueue shards, spawn workers, assemble results.

``run_service_sweep`` is the service-mode twin of
:func:`~repro.exp.runner.collect_profiles`: same config in, same
:class:`~repro.exp.runner.ProfileRun` out (profiles in config order,
failures and resumed kernels recorded, one merged manifest view) —
bit-identical results, because both paths compute each profile with
:func:`~repro.exp.runner.run_profile` under the same content-addressed
cache key.  The difference is the execution substrate: shards go onto
the persistent queue and N independent worker *processes* drain it
through one shared ``.repro-cache/``.

Crash behaviour is belt and braces: a worker that dies mid-shard
leaves a stale lease that surviving workers steal; if *every* worker
dies (or ``workers=0``), the coordinator drains the queue inline as
the degraded mode — mirroring ``collect_profiles``'s broken-pool
fallback to sequential execution.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro.exp.config import ExperimentConfig
from repro.exp.runner import BenchmarkProfile, ProfileFailure, ProfileRun
from repro.exp.service.queue import DEFAULT_LEASE_TTL, ShardQueue, shard_job_id
from repro.exp.service.worker import run_worker
from repro.obs import get_logger
from repro.obs.manifest import RunManifest
from repro.vm import tracecache

_log = get_logger("service.sweep")


@dataclass(slots=True)
class SweepPlan:
    """What ``enqueue_sweep`` did: shards queued vs. already satisfied."""

    enqueued: list[str] = field(default_factory=list)
    resumed: list[str] = field(default_factory=list)
    #: job id per enqueued workload
    jobs: dict[str, str] = field(default_factory=dict)


def enqueue_sweep(
    config: ExperimentConfig,
    *,
    queue: ShardQueue | None = None,
    retry_failed: bool = True,
) -> SweepPlan:
    """Enqueue one shard per configured kernel that the cache misses.

    Kernels whose profile is already cached are *resumed* (checkpoint
    semantics identical to ``collect_profiles``), everything else
    becomes a pending shard.  The service requires the shared cache —
    it is the result channel — so a cache-disabled config is an error.
    """
    if not config.use_cache or not tracecache.cache_enabled():
        raise ValueError(
            "the sweep service requires the shared profile cache "
            "(use_cache=True and REPRO_TRACE_CACHE unset)"
        )
    queue = queue if queue is not None else ShardQueue()
    plan = SweepPlan()
    for name in config.workloads:
        cached = tracecache.load_cached_profile(name, config.cache_key())
        if isinstance(cached, BenchmarkProfile):
            plan.resumed.append(name)
            continue
        job_id, _state = queue.enqueue(name, config,
                                       retry_failed=retry_failed)
        plan.enqueued.append(name)
        plan.jobs[name] = job_id
    return plan


def spawn_worker_process(
    worker: str,
    run_id: str,
    *,
    exit_when_empty: bool = True,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> subprocess.Popen:
    """Start one ``repro worker`` shard as a child process.

    The child inherits the environment (``REPRO_CACHE_DIR`` above all,
    which is the whole coordination substrate) and marks itself with
    ``REPRO_SERVICE_WORKER=1`` so fault injection treats it as a
    killable worker, not a parent.
    """
    cmd = [
        sys.executable, "-m", "repro", "worker",
        "--worker-id", worker, "--run-id", run_id,
        "--lease-ttl", str(lease_ttl),
    ]
    if not exit_when_empty:
        cmd.append("--forever")
    return subprocess.Popen(cmd, env=os.environ.copy())


def run_service_sweep(
    config: ExperimentConfig | None = None,
    *,
    workers: int | None = None,
    run_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    manifest: RunManifest | bool | None = None,
) -> ProfileRun:
    """A full sweep through the shard queue; returns a ProfileRun.

    ``workers`` counts the worker *processes* spawned (default: the
    runner's usual one-per-core heuristic, capped by shard count);
    ``workers=0`` keeps everything in the coordinator, which then
    drains the queue inline.  After the workers exit the coordinator
    always runs one inline drain pass — that is the degraded mode that
    finishes the sweep even if every worker crashed.
    """
    if config is None:
        config = ExperimentConfig()
    from repro.util.parallel import default_worker_count

    t0 = time.monotonic()
    wants_manifest = manifest is not False
    if isinstance(manifest, RunManifest):
        coordinator = manifest
    elif wants_manifest:
        coordinator = RunManifest(run_id)
    else:
        coordinator = None
    rid = coordinator.run_id if coordinator is not None else (run_id or "adhoc")

    queue = ShardQueue()
    names = list(config.workloads)
    if coordinator is not None:
        coordinator.start(tuple(names), config.to_dict())
    plan = enqueue_sweep(config, queue=queue)
    if coordinator is not None:
        coordinator.emit(
            "sweep_enqueued", enqueued=plan.enqueued, resumed=plan.resumed,
        )

    procs: list[subprocess.Popen] = []
    if plan.enqueued:
        if workers is None:
            workers = default_worker_count(len(plan.enqueued))
        for k in range(workers):
            procs.append(spawn_worker_process(f"w{k}", rid,
                                              lease_ttl=lease_ttl))
    crashed = 0
    for proc in procs:
        if proc.wait() != 0:
            crashed += 1
    if crashed and coordinator is not None:
        coordinator.emit("worker_crash", crashed=crashed,
                         in_flight=[j.workload for j in queue.jobs("leased")])

    # degraded mode: whatever the workers left behind (crashed leases,
    # never-claimed shards, the workers=0 case) is drained inline
    if queue.outstanding():
        if procs:
            _log.warning(
                "%d shard(s) still outstanding after the workers exited; "
                "draining inline in the coordinator", queue.outstanding(),
            )
        run_worker("coordinator", queue=queue, manifest=coordinator,
                   exit_when_empty=True, lease_ttl=lease_ttl)

    profiles: list[BenchmarkProfile] = []
    failures: list[ProfileFailure] = []
    for name in names:
        cached = tracecache.load_cached_profile(name, config.cache_key())
        if isinstance(cached, BenchmarkProfile):
            profiles.append(cached)
            continue
        job = queue.find(shard_job_id(name, config))
        message = job.error if job is not None and job.error else "shard lost"
        kind, _, detail = message.partition(": ")
        failures.append(ProfileFailure(
            name=name, kind=kind or "Error", message=detail or message,
            attempts=job.attempts if job is not None else 0,
        ))
    if coordinator is not None:
        coordinator.end(
            ok=[p.name for p in profiles],
            failed=[f.name for f in failures],
            resumed=plan.resumed,
            seconds=round(time.monotonic() - t0, 6),
        )
    return ProfileRun(
        profiles,
        failures=failures,
        resumed=plan.resumed,
        manifest_path=coordinator.path if coordinator is not None else None,
    )
