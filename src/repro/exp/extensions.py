"""Extension experiments beyond the paper's figures.

- :func:`window_sweep` — TLR speed-up as a function of instruction
  window size (the paper fixes W=256; sweeping W shows where the
  fetch/window benefit comes from).
- :func:`warmup_sweep` — reusability as a function of the instruction
  budget, quantifying how much of the gap to the paper's numbers is
  cold-start effect.
- :func:`prediction_vs_reuse` — the Sodani & Sohi [14] comparison:
  value prediction completes without waiting for operands but covers
  fewer instructions; instruction-level reuse waits for operands;
  trace-level reuse collapses whole regions.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.ilr import ilr_reuse_plan, instruction_reusability
from repro.baselines.prediction import (
    LastValuePredictor,
    StridePredictor,
    value_predictability,
    value_prediction_plan,
)
from repro.core.reuse_tlr import ConstantReuseLatency, tlr_reuse_plan
from repro.core.rtm.collector import ILRHeuristic
from repro.core.rtm.memory import RTM_PRESETS
from repro.core.rtm.simulator import FiniteReuseSimulator
from repro.core.traces import maximal_reusable_spans
from repro.dataflow.model import DataflowModel
from repro.exp.figures import FigureResult
from repro.pipeline import PipelineConfig, PipelineModel
from repro.util.means import arithmetic_mean, harmonic_mean
from repro.workloads.base import run_workload


def window_sweep(
    workloads: Sequence[str],
    *,
    windows: Sequence[int] = (32, 64, 128, 256, 512, 1024),
    max_instructions: int = 20_000,
) -> FigureResult:
    """Average base IPC and TLR speed-up per window size."""
    result = FigureResult(
        figure_id="ext_window_sweep",
        title="Extension: trace-level reuse speed-up vs window size",
        headers=["window", "base_ipc", "tlr_speedup"],
    )
    per_workload = []
    for name in workloads:
        trace = run_workload(name, max_instructions=max_instructions)
        flags = instruction_reusability(trace).flags
        spans = maximal_reusable_spans(trace, flags)
        plan = tlr_reuse_plan(trace, spans, ConstantReuseLatency(1.0))
        per_workload.append((trace, plan))
    for window in windows:
        model = DataflowModel(window_size=window)
        ipcs, speedups = [], []
        for trace, plan in per_workload:
            base = model.analyze(trace)
            tlr = model.analyze(trace, plan)
            ipcs.append(base.ipc)
            speedups.append(tlr.speedup_over(base))
        result.rows.append(
            [str(window), arithmetic_mean(ipcs), harmonic_mean(speedups)]
        )
    return result


def warmup_sweep(
    workloads: Sequence[str],
    *,
    budgets: Sequence[int] = (5_000, 10_000, 20_000, 40_000, 80_000),
) -> FigureResult:
    """Average instruction-level reusability per instruction budget.

    Reusability climbs with the budget because the never-reusable
    first occurrences amortise — the effect that separates our small
    windows from the paper's 50M-instruction runs.
    """
    result = FigureResult(
        figure_id="ext_warmup",
        title="Extension: reusability vs instruction budget (warm-up)",
        headers=["budget", "avg_reusable_pct"],
    )
    for budget in budgets:
        rates = []
        for name in workloads:
            trace = run_workload(name, max_instructions=budget)
            rates.append(instruction_reusability(trace).percent_reusable)
        result.rows.append([str(budget), arithmetic_mean(rates)])
    return result


def realistic_engine_timing(
    workloads: Sequence[str],
    *,
    max_instructions: int = 8_000,
    rtm_names: Sequence[str] = ("4K", "256K"),
    pipeline: PipelineConfig = PipelineConfig(),
) -> FigureResult:
    """Cycle-level speed-up of the finite-RTM engine (beyond Figure 9).

    The paper reports only reusability and trace size for finite
    tables; composing the functional :class:`FiniteReuseSimulator`
    with the cycle-level pipeline model yields the corresponding
    *timing* result: how much a realistic engine actually speeds up a
    bounded superscalar core.
    """
    headers = ["program", "base_ipc"]
    for name in rtm_names:
        headers += [f"reused_pct@{name}", f"speedup@{name}"]
    result = FigureResult(
        figure_id="ext_realistic_timing",
        title="Extension: cycle-level speed-up of the finite-RTM engine "
        "(ILR EXP collector)",
        headers=headers,
    )
    model = PipelineModel(pipeline)
    speedup_cols: dict[str, list[float]] = {name: [] for name in rtm_names}
    pct_cols: dict[str, list[float]] = {name: [] for name in rtm_names}
    ipcs: list[float] = []
    for workload in workloads:
        trace = run_workload(workload, max_instructions=max_instructions)
        base = model.simulate(trace)
        ipcs.append(base.ipc)
        row: list[object] = [workload, base.ipc]
        for rtm_name in rtm_names:
            sim = FiniteReuseSimulator(
                RTM_PRESETS[rtm_name], ILRHeuristic(expand=True)
            )
            reuse = sim.run(trace)
            timed = model.simulate(trace, reuse)
            speedup = timed.speedup_over(base)
            row += [reuse.percent_reused, speedup]
            pct_cols[rtm_name].append(reuse.percent_reused)
            speedup_cols[rtm_name].append(speedup)
        result.rows.append(row)
    avg_row: list[object] = ["AVERAGE", arithmetic_mean(ipcs)]
    for rtm_name in rtm_names:
        avg_row += [
            arithmetic_mean(pct_cols[rtm_name]),
            harmonic_mean(speedup_cols[rtm_name]),
        ]
    result.rows.append(avg_row)
    return result


def prediction_vs_reuse(
    workloads: Sequence[str],
    *,
    max_instructions: int = 20_000,
    window_size: int = 256,
) -> FigureResult:
    """Coverage and speed-up of value prediction vs reuse techniques."""
    result = FigureResult(
        figure_id="ext_prediction",
        title="Extension: value prediction vs instruction/trace reuse "
        f"({window_size}-entry window)",
        headers=[
            "program",
            "lv_pred_pct",
            "stride_pred_pct",
            "reusable_pct",
            "lv_speedup",
            "stride_speedup",
            "ilr_speedup",
            "tlr_speedup",
        ],
    )
    model = DataflowModel(window_size=window_size)
    agg = {h: [] for h in result.headers[1:]}
    for name in workloads:
        trace = run_workload(name, max_instructions=max_instructions)
        base = model.analyze(trace)
        lv = value_predictability(trace, LastValuePredictor())
        stride = value_predictability(trace, StridePredictor())
        reuse = instruction_reusability(trace)
        spans = maximal_reusable_spans(trace, reuse.flags)

        lv_su = model.analyze(
            trace, value_prediction_plan(trace, lv.flags)
        ).speedup_over(base)
        st_su = model.analyze(
            trace, value_prediction_plan(trace, stride.flags)
        ).speedup_over(base)
        ilr_su = model.analyze(
            trace, ilr_reuse_plan(trace, reuse.flags, 1.0)
        ).speedup_over(base)
        tlr_su = model.analyze(
            trace, tlr_reuse_plan(trace, spans, ConstantReuseLatency(1.0))
        ).speedup_over(base)

        row = [name, lv.percent_predicted, stride.percent_predicted,
               reuse.percent_reusable, lv_su, st_su, ilr_su, tlr_su]
        result.rows.append(row)
        for header, value in zip(result.headers[1:], row[1:]):
            agg[header].append(value)
    result.rows.append(
        ["AVERAGE"]
        + [
            harmonic_mean(agg[h]) if h.endswith("speedup") else arithmetic_mean(agg[h])
            for h in result.headers[1:]
        ]
    )
    return result
