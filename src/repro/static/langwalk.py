"""AST walker infrastructure for ``repro.lang`` modules.

Generic node iteration plus the language-level structure both the
linter and the estimator's RL front door consume: loop nests with
statically-evaluated bounds, symbol definition/use tables, constant
folding of side-effect-free expressions.  Everything here is pure
tree traversal — nothing executes.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    Function,
    If,
    IndexRef,
    IntLiteral,
    Module,
    Return,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)


def child_nodes(node) -> Iterator:
    """Immediate AST children of any RL node (expressions first)."""
    if isinstance(node, Module):
        yield from node.functions
    elif isinstance(node, Function):
        yield from node.body
    elif isinstance(node, VarDecl):
        if node.initial is not None:
            yield node.initial
    elif isinstance(node, Assign):
        yield node.target
        yield node.value
    elif isinstance(node, If):
        yield node.condition
        yield from node.then_body
        yield from node.else_body
    elif isinstance(node, While):
        yield node.condition
        yield from node.body
    elif isinstance(node, Return):
        if node.value is not None:
            yield node.value
    elif isinstance(node, ExprStmt):
        yield node.expr
    elif isinstance(node, IndexRef):
        yield node.index
    elif isinstance(node, Unary):
        yield node.operand
    elif isinstance(node, Binary):
        yield node.left
        yield node.right
    elif isinstance(node, Call):
        yield from node.args


def walk(node) -> Iterator:
    """Depth-first pre-order walk over a node and its subtree."""
    yield node
    for child in child_nodes(node):
        yield from walk(child)


def fold_constant(expr: Expr) -> int | None:
    """The integer value of a side-effect-free constant expression.

    Returns None when the expression reads a variable, calls a
    function, or divides by a constant zero.
    """
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, Unary):
        v = fold_constant(expr.operand)
        if v is None:
            return None
        return -v if expr.op == "-" else int(not v)
    if isinstance(expr, Binary):
        left = fold_constant(expr.left)
        right = fold_constant(expr.right)
        if left is None or right is None:
            return None
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op in ("/", "%"):
            if right == 0:
                return None
            q = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                q = -q
            return q if op == "/" else left - q * right
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "&&":
            return int(bool(left) and bool(right))
        if op == "||":
            return int(bool(left) or bool(right))
    return None


@dataclass(slots=True)
class LoopInfo:
    """One ``while`` loop and what the walker could prove about it."""

    node: While
    function: str
    depth: int
    #: constant value of the condition, when provable (0 = zero-trip)
    const_condition: int | None = None
    #: True when some statement in the body writes a condition variable
    condition_varies: bool = False
    #: True when the body contains a return/break-equivalent exit
    has_exit: bool = False


@dataclass(slots=True)
class SymbolUses:
    """Definition/read/write sites per symbol name."""

    reads: dict[str, list[int]] = field(default_factory=dict)
    writes: dict[str, list[int]] = field(default_factory=dict)

    def read(self, name: str, line: int) -> None:
        self.reads.setdefault(name, []).append(line)

    def write(self, name: str, line: int) -> None:
        self.writes.setdefault(name, []).append(line)


@dataclass(slots=True)
class FunctionInfo:
    """Walker products for one function."""

    node: Function
    loops: list[LoopInfo] = field(default_factory=list)
    locals: dict[str, int] = field(default_factory=dict)  # name -> decl line
    uses: SymbolUses = field(default_factory=SymbolUses)
    #: statements directly following a Return in the same block
    unreachable: list[Stmt] = field(default_factory=list)
    calls: list[Call] = field(default_factory=list)


@dataclass(slots=True)
class ModuleInfo:
    """Walker products for a whole module."""

    module: Module
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: global name -> declaration line
    globals: dict[str, int] = field(default_factory=dict)
    #: global name -> read/write lines across all functions
    global_uses: SymbolUses = field(default_factory=SymbolUses)


def _condition_names(expr: Expr) -> set[str]:
    return {
        n.name for n in walk(expr) if isinstance(n, (VarRef, IndexRef))
    }


def _body_writes(body: tuple[Stmt, ...]) -> set[str]:
    names: set[str] = set()
    for stmt in body:
        for node in walk(stmt):
            if isinstance(node, Assign):
                names.add(node.target.name)
            elif isinstance(node, VarDecl):
                names.add(node.name)
            elif isinstance(node, Call):
                # a call may mutate globals; treated as writing all
                # names (callers decide how conservative to be)
                names.add("<call>")
    return names


def _collect_function(fn: Function, info: FunctionInfo) -> None:
    def visit_expr(expr: Expr) -> None:
        for node in walk(expr):
            if isinstance(node, (VarRef, IndexRef)):
                info.uses.read(node.name, node.line)
            elif isinstance(node, Call):
                info.calls.append(node)

    def visit_block(body: tuple[Stmt, ...], depth: int) -> None:
        terminated_at: int | None = None
        for i, stmt in enumerate(body):
            if terminated_at is not None:
                info.unreachable.append(stmt)
                continue
            if isinstance(stmt, VarDecl):
                info.locals[stmt.name] = stmt.line
                info.uses.write(stmt.name, stmt.line)
                if stmt.initial is not None:
                    visit_expr(stmt.initial)
            elif isinstance(stmt, Assign):
                info.uses.write(stmt.target.name, stmt.line)
                if isinstance(stmt.target, IndexRef):
                    visit_expr(stmt.target.index)
                visit_expr(stmt.value)
            elif isinstance(stmt, If):
                visit_expr(stmt.condition)
                visit_block(stmt.then_body, depth)
                visit_block(stmt.else_body, depth)
            elif isinstance(stmt, While):
                visit_expr(stmt.condition)
                cond_names = _condition_names(stmt.condition)
                writes = _body_writes(stmt.body)
                loop = LoopInfo(
                    node=stmt,
                    function=fn.name,
                    depth=depth + 1,
                    const_condition=fold_constant(stmt.condition),
                    condition_varies=bool(
                        cond_names & writes or "<call>" in writes
                    ),
                    has_exit=any(
                        isinstance(n, Return)
                        for s in stmt.body for n in walk(s)
                    ),
                )
                info.loops.append(loop)
                visit_block(stmt.body, depth + 1)
            elif isinstance(stmt, Return):
                if stmt.value is not None:
                    visit_expr(stmt.value)
                terminated_at = i
            elif isinstance(stmt, ExprStmt):
                visit_expr(stmt.expr)

    for p in fn.params:
        info.locals[p] = fn.line
        info.uses.write(p, fn.line)
    visit_block(fn.body, 0)


def module_info(module: Module) -> ModuleInfo:
    """Walk a module once, collecting everything lint/estimation need."""
    info = ModuleInfo(module=module)
    for g in module.globals:
        info.globals[g.name] = g.line
    for fn in module.functions:
        fninfo = FunctionInfo(node=fn)
        _collect_function(fn, fninfo)
        info.functions[fn.name] = fninfo
        for name, lines in fninfo.uses.reads.items():
            if name in info.globals and name not in fninfo.locals:
                for line in lines:
                    info.global_uses.read(name, line)
        for name, lines in fninfo.uses.writes.items():
            if name in info.globals and name not in fninfo.locals:
                for line in lines:
                    info.global_uses.write(name, line)
    return info
