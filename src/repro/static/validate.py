"""Cross-validation of the static estimator against dynamic profiles.

``repro static validate`` runs every kernel (and a grid of generated
RL workload families) twice — once through the static estimator, once
through the real dynamic pipeline — and scores the prediction error
per metric.  The per-kernel error bands persist to
``BENCH_static.json``; the serving layer quotes them next to every
``mode=static`` answer, and CI re-runs the harness in ``--check``
mode, failing when any kernel's error regresses beyond its recorded
band (plus a small tolerance for budget jitter).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.exp.config import ExperimentConfig
from repro.exp.runner import BenchmarkProfile

DEFAULT_BANDS_PATH = Path("BENCH_static.json")

#: headroom allowed before a recorded band counts as regressed:
#: ``allowed = recorded * (1 + REL) + ABS``
CHECK_REL_TOLERANCE = 0.25
CHECK_ABS_TOLERANCE = 0.05

#: error metrics scored per kernel (all relative except where noted)
METRICS = (
    "percent_reusable",  # absolute error in percentage points / 100
    "avg_trace_size",
    "trace_count",
    "dynamic_count",
    "base_ipc_inf",
    "base_ipc_win",
    "ilr_speedup_inf",
    "tlr_speedup_inf",
    "tlr_speedup_win_prop",
)


def _rel(pred: float, true: float) -> float:
    """Symmetric-ish relative error, safe at zero."""
    denom = max(abs(true), 1e-9)
    return abs(pred - true) / denom


def profile_errors(
    static: BenchmarkProfile, dynamic: BenchmarkProfile
) -> dict[str, float]:
    """Per-metric prediction error of one static profile."""
    errors = {
        "percent_reusable": abs(
            static.percent_reusable - dynamic.percent_reusable
        ) / 100.0,
        "avg_trace_size": _rel(
            static.avg_trace_size, dynamic.avg_trace_size
        ),
        "trace_count": _rel(static.trace_count, dynamic.trace_count),
        "dynamic_count": _rel(static.dynamic_count, dynamic.dynamic_count),
        "base_ipc_inf": _rel(static.base_ipc_inf, dynamic.base_ipc_inf),
        "base_ipc_win": _rel(static.base_ipc_win, dynamic.base_ipc_win),
    }
    for key in ("ilr_speedup_inf", "tlr_speedup_inf"):
        s_map = getattr(static, key)
        d_map = getattr(dynamic, key)
        shared = sorted(set(s_map) & set(d_map))
        errors[key] = max(
            (_rel(s_map[k], d_map[k]) for k in shared), default=0.0
        )
    s_map = static.tlr_speedup_win_prop
    d_map = dynamic.tlr_speedup_win_prop
    shared_k = sorted(set(s_map) & set(d_map))
    errors["tlr_speedup_win_prop"] = max(
        (_rel(s_map[k], d_map[k]) for k in shared_k), default=0.0
    )
    return {k: round(v, 4) for k, v in errors.items()}


def _profile_summary(profile: BenchmarkProfile) -> dict:
    return {
        "dynamic_count": profile.dynamic_count,
        "percent_reusable": round(profile.percent_reusable, 2),
        "avg_trace_size": round(profile.avg_trace_size, 2),
        "trace_count": profile.trace_count,
        "base_ipc_inf": round(profile.base_ipc_inf, 3),
        "base_ipc_win": round(profile.base_ipc_win, 3),
    }


def _dynamic_profile_for_program(
    program, name: str, config: ExperimentConfig
) -> BenchmarkProfile:
    """A dynamic profile for an unregistered (generated) program.

    Mirrors :func:`repro.exp.runner.run_profile` on a raw
    :class:`Program` — the generated RL families are not in the
    workload registry, so they can't ride the normal path.
    """
    from repro.baselines.ilr import instruction_reusability
    from repro.core.traces import average_span_length, maximal_reusable_spans
    from repro.dataflow.model import FusedDataflowEngine, Scenario
    from repro.vm import backends

    machine = backends.create_machine(
        program, backends.resolve_backend(config.backend)
    )
    trace = machine.run(max_instructions=config.max_instructions)
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)
    engine = FusedDataflowEngine(trace, flags=reuse.flags, spans=spans)
    win = config.window_size
    base_inf = engine.analyze(Scenario("base", window_size=None))
    base_win = engine.analyze(Scenario("base", window_size=win))
    profile = BenchmarkProfile(
        name=name,
        suite="gen",
        dynamic_count=len(trace),
        percent_reusable=reuse.percent_reusable,
        avg_trace_size=average_span_length(spans),
        trace_count=len(spans),
        base_ipc_inf=base_inf.ipc,
        base_ipc_win=base_win.ipc,
    )
    for latency in config.reuse_latencies:
        lat = float(latency)
        profile.ilr_speedup_inf[latency] = engine.analyze(
            Scenario("ilr", window_size=None, latency=lat)
        ).speedup_over(base_inf)
        profile.tlr_speedup_inf[latency] = engine.analyze(
            Scenario("tlr", window_size=None, latency=lat)
        ).speedup_over(base_inf)
    for k in config.proportional_ks:
        profile.tlr_speedup_win_prop[k] = engine.analyze(
            Scenario("tlr", window_size=win, k=k)
        ).speedup_over(base_win)
    return profile


def validate_static(
    config: ExperimentConfig | None = None,
    *,
    include_families: bool = True,
    progress=None,
) -> dict:
    """Score static vs dynamic for every kernel (+ generated families).

    Returns the full report dict (the shape written to
    ``BENCH_static.json``).  ``progress`` is an optional callable
    receiving one status line per unit.
    """
    from repro.exp.runner import run_profile
    from repro.static.estimator import estimate_profile, estimate_source

    if config is None:
        config = ExperimentConfig(max_instructions=8_000)

    kernels: dict[str, dict] = {}
    for name in config.workloads:
        static = estimate_profile(name, config)
        dynamic = run_profile(name, config)
        errors = profile_errors(static, dynamic)
        kernels[name] = {
            "errors": errors,
            "static": _profile_summary(static),
            "dynamic": _profile_summary(dynamic),
        }
        if progress is not None:
            progress(
                f"{name}: reuse {static.percent_reusable:.1f}% static vs "
                f"{dynamic.percent_reusable:.1f}% dynamic "
                f"(err {errors['percent_reusable']:.3f})"
            )

    families: dict[str, dict] = {}
    if include_families:
        from repro.lang.compiler import compile_source
        from repro.workloads.generators import generated_families

        for name, source in generated_families():
            static = estimate_source(source, config, name=name).profile
            program = compile_source(source, name=name)
            dynamic = _dynamic_profile_for_program(program, name, config)
            errors = profile_errors(static, dynamic)
            families[name] = {
                "errors": errors,
                "static": _profile_summary(static),
                "dynamic": _profile_summary(dynamic),
            }
            if progress is not None:
                progress(
                    f"{name}: reuse {static.percent_reusable:.1f}% static "
                    f"vs {dynamic.percent_reusable:.1f}% dynamic "
                    f"(err {errors['percent_reusable']:.3f})"
                )

    all_units = {**kernels, **families}
    summary = {}
    for metric in METRICS:
        values = [u["errors"][metric] for u in all_units.values()]
        summary[metric] = {
            "mean": round(sum(values) / len(values), 4) if values else 0.0,
            "max": round(max(values), 4) if values else 0.0,
        }
    return {
        "budget": config.max_instructions,
        "window": config.window_size,
        "scale": config.scale,
        "kernels": kernels,
        "families": families,
        "summary": summary,
    }


def write_bands(report: dict, path: Path | str = DEFAULT_BANDS_PATH) -> Path:
    """Persist a validation report as the recorded error bands."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_bands(path: Path | str = DEFAULT_BANDS_PATH) -> dict | None:
    """The recorded bands, or None when the file is absent/invalid."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "kernels" not in data:
        return None
    return data


def kernel_band(bands: dict | None, name: str) -> dict | None:
    """The recorded per-metric error band for one kernel, if any."""
    if not bands:
        return None
    entry = bands.get("kernels", {}).get(name) or bands.get(
        "families", {}
    ).get(name)
    return entry.get("errors") if entry else None


def check_bands(report: dict, recorded: dict) -> list[str]:
    """Regressions of a fresh report against recorded bands.

    A metric regresses when its fresh error exceeds
    ``recorded * (1 + CHECK_REL_TOLERANCE) + CHECK_ABS_TOLERANCE``.
    Kernels absent from the recorded bands are skipped (new kernels
    get bands on the next ``repro static validate`` refresh).
    """
    problems: list[str] = []
    for section in ("kernels", "families"):
        fresh_units = report.get(section, {})
        old_units = recorded.get(section, {})
        for name, unit in fresh_units.items():
            old = old_units.get(name)
            if old is None:
                continue
            for metric, value in unit["errors"].items():
                baseline = old.get("errors", {}).get(metric)
                if baseline is None:
                    continue
                allowed = (
                    baseline * (1.0 + CHECK_REL_TOLERANCE)
                    + CHECK_ABS_TOLERANCE
                )
                if value > allowed and math.isfinite(allowed):
                    problems.append(
                        f"{name}.{metric}: error {value:.4f} exceeds "
                        f"recorded band {baseline:.4f} "
                        f"(allowed {allowed:.4f})"
                    )
    return problems
