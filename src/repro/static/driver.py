"""The shared multi-pass analysis driver.

Static consumers (the reuse estimator, the linter, the CLI) all need
the same underlying facts — the CFG, the loop forest, trip counts,
block frequencies, the class census.  The driver derives each fact
**once per analysis unit** through a registry of named passes with
declared dependencies, so adding a consumer never adds a re-analysis.

An :class:`AnalysisUnit` wraps either a compiled ISA
:class:`~repro.vm.program.Program` (the 14 kernels are authored in
assembly) or an RL module (generated workload families, user
sources); RL units keep their AST for the language-level passes and
compile to a program so the ISA passes apply uniformly.

Registering a pass::

    @analysis_pass("census", requires=("cfg", "frequencies"))
    def _census(unit, facts):
        return class_census(facts["cfg"], facts["frequencies"])

Consumers then call ``driver.get(unit, "census")``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.vm.program import Program

#: global registry: name -> (requires, fn)
_PASSES: dict[str, tuple[tuple[str, ...], Callable]] = {}


def analysis_pass(name: str, requires: tuple[str, ...] = ()):
    """Decorator registering ``fn(unit, facts) -> result`` as a pass."""

    def wrap(fn: Callable) -> Callable:
        if name in _PASSES:
            raise ValueError(f"duplicate analysis pass {name!r}")
        _PASSES[name] = (tuple(requires), fn)
        return fn

    return wrap


def registered_passes() -> tuple[str, ...]:
    """Names of all registered passes (for diagnostics)."""
    return tuple(sorted(_PASSES))


@dataclass(slots=True)
class AnalysisUnit:
    """One subject of analysis: an ISA program, optionally with its RL AST."""

    program: Program
    #: parsed repro.lang module when the unit came from RL source
    module: Any = None
    #: original RL source text (line-accurate diagnostics)
    source: str | None = None
    name: str = "<unit>"
    #: instruction budget the estimate should model (None = unbounded)
    budget: int | None = None

    @classmethod
    def from_program(
        cls, program: Program, *, budget: int | None = None
    ) -> "AnalysisUnit":
        return cls(program=program, name=program.name, budget=budget)

    @classmethod
    def from_rl_source(
        cls, source: str, *, name: str = "<rl>", budget: int | None = None
    ) -> "AnalysisUnit":
        """Parse + compile RL text into a unit carrying both views."""
        from repro.lang.compiler import compile_module
        from repro.lang.parser import parse

        module = parse(source)
        program = compile_module(module, name=name)
        return cls(
            program=program, module=module, source=source,
            name=name, budget=budget,
        )

    @classmethod
    def from_workload(
        cls, name: str, *, scale: int = 1, budget: int | None = None
    ) -> "AnalysisUnit":
        """A unit for a registered kernel (assembled, never executed)."""
        from repro.workloads.base import build_program

        return cls(
            program=build_program(name, scale), name=name, budget=budget
        )


class AnalysisDriver:
    """Runs passes over units, memoising results per (unit, pass).

    Facts are keyed by object identity of the unit; a driver is meant
    to live for one request/CLI invocation (the serving layer keeps a
    small LRU of finished *estimates*, not of drivers).
    """

    def __init__(self) -> None:
        self._facts: dict[int, dict[str, Any]] = {}

    def get(self, unit: AnalysisUnit, name: str) -> Any:
        """The result of pass ``name`` on ``unit`` (computing if needed)."""
        facts = self._facts.setdefault(id(unit), {})
        return self._resolve(unit, name, facts, stack=())

    def facts_for(self, unit: AnalysisUnit) -> dict[str, Any]:
        """All facts derived so far for ``unit`` (debugging aid)."""
        return dict(self._facts.get(id(unit), {}))

    def _resolve(
        self,
        unit: AnalysisUnit,
        name: str,
        facts: dict[str, Any],
        stack: tuple[str, ...],
    ) -> Any:
        if name in facts:
            return facts[name]
        if name in stack:
            cycle = " -> ".join(stack + (name,))
            raise ValueError(f"analysis pass dependency cycle: {cycle}")
        try:
            requires, fn = _PASSES[name]
        except KeyError:
            known = ", ".join(registered_passes())
            raise KeyError(
                f"unknown analysis pass {name!r}; registered: {known}"
            ) from None
        for dep in requires:
            self._resolve(unit, dep, facts, stack + (name,))
        result = fn(unit, facts)
        facts[name] = result
        return result


# ---------------------------------------------------------------------------
# the core fact passes (ISA level)
# ---------------------------------------------------------------------------


@analysis_pass("cfg")
def _pass_cfg(unit: AnalysisUnit, facts: dict) -> Any:
    from repro.static.cfg import build_cfg

    return build_cfg(unit.program)


@analysis_pass("frequencies", requires=("cfg",))
def _pass_frequencies(unit: AnalysisUnit, facts: dict) -> Any:
    from repro.static.cfg import estimate_frequencies

    return estimate_frequencies(facts["cfg"], budget=unit.budget)


@analysis_pass("census", requires=("cfg", "frequencies"))
def _pass_census(unit: AnalysisUnit, facts: dict) -> Any:
    from repro.static.cfg import class_census

    return class_census(facts["cfg"], facts["frequencies"])


@analysis_pass("variants", requires=("cfg",))
def _pass_variants(unit: AnalysisUnit, facts: dict) -> Any:
    from repro.static.estimator import loop_variant_registers

    cfg = facts["cfg"]
    return {
        i: loop_variant_registers(cfg, i) for i in range(len(cfg.loops))
    }


@analysis_pass("cardinality", requires=("cfg",))
def _pass_cardinality(unit: AnalysisUnit, facts: dict) -> Any:
    """Per-loop value-cardinality bounds (value-repetition inference)."""
    from repro.static.cfg import data_regions, loop_value_cardinality

    cfg = facts["cfg"]
    regions = data_regions(cfg.program)
    return {
        i: loop_value_cardinality(cfg, i, regions)
        for i in range(len(cfg.loops))
    }


@analysis_pass("langinfo")
def _pass_langinfo(unit: AnalysisUnit, facts: dict) -> Any:
    """Language-level structure (None for pure-assembly units)."""
    if unit.module is None:
        return None
    from repro.static.langwalk import module_info

    return module_info(unit.module)
