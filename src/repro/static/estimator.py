"""Simulation-free reuse-profile estimation.

The :class:`StaticReuseEstimator` predicts every figure-level metric a
dynamic :class:`~repro.exp.runner.BenchmarkProfile` carries — percent
reusable, trace count/size, base IPC, ILR/TLR speed-up sweeps —
purely from the structure the CFG passes recover.  No VM (neither
:class:`Machine` nor :class:`FastMachine`) is ever constructed.

The model rests on two observations about loop programs:

1. **Signature repetition follows value trajectories, not writes.**
   An instruction's inputs repeat whenever every enclosing loop in
   which they *vary across iterations* re-plays the same value
   sequence.  A register is variant in loop L only if it carries
   state across L's iterations (read before written in the body — an
   accumulator or a non-reset induction variable) or derives from one
   that does; a counter re-initialised inside an outer loop re-plays
   the identical trajectory every outer iteration, so everything it
   feeds is reusable across outer entries — exactly the re-scan reuse
   the paper measures.  Distinct signatures per instruction are the
   product of the (budget-trimmed) trip counts of its variant loops.

2. **The dataflow limit is a chain, not a sum.**  Iterations of one
   loop entry serialise through the loop-carried dependence cycle
   (the initiation interval II); separate entries re-start the chain
   and overlap freely.  The critical path of a nest is therefore
   ``trips*II`` of each level plus one instance of its deepest child,
   and base IPC is the instruction total over that path.  Finite
   windows bound how many iterations can overlap (window /
   iteration-footprint), and reuse shortens chains (ILR caps a chain
   edge at the reuse latency; TLR collapses covered iterations to one
   reuse operation).

All tunable constants live in :class:`ModelParams`; the validated
error of the model against dynamic profiles is recorded per kernel by
:mod:`repro.static.validate` into ``BENCH_static.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exp.runner import BenchmarkProfile
from repro.isa.opcodes import Opcode
from repro.static.cfg import (
    ControlFlowGraph,
    FrequencyEstimate,
    Loop,
    function_entry,
    reg_reads,
    reg_writes,
)
from repro.static.driver import AnalysisDriver, AnalysisUnit

#: Ops whose input signature is empty — every instance after the first
#: with the same pc is trivially reusable (constant loads, jumps).
_NO_INPUT_OPS = frozenset({
    Opcode.LI, Opcode.FLI, Opcode.J, Opcode.JAL, Opcode.NOP, Opcode.HALT,
})
_LOAD_OPS = frozenset({Opcode.LW, Opcode.FLW})
_STORE_OPS = frozenset({Opcode.SW, Opcode.FSW})
#: ops producing continuous FP values — trajectories essentially never
#: revisit a value, so dependence chains through them cannot collapse
_FP_VALUE_OPS = frozenset({
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT,
    Opcode.FNEG, Opcode.FABS, Opcode.FMOV, Opcode.FLW, Opcode.FLI,
    Opcode.CVTIF,
})
#: argument-passing registers (a0..a3) — what a call's signature
#: variance flows through
_ARG_REGS = (4, 5, 6, 7)


def _call_contexts(
    cfg: ControlFlowGraph,
    freqs: FrequencyEstimate,
    variants: dict[int, frozenset[int]],
    recursion_signatures: float = 4.0,
) -> dict[int, tuple[float, int | None]]:
    """Loop context inherited by each called function's body.

    For every function entry block, the dominant (highest-frequency)
    call site decides: how many *distinct* argument signatures reach
    the function (the product of the trip counts of site-enclosing
    loops in which an argument register is variant) and which loop
    the body's executions effectively iterate in (the site's
    innermost loop).  A lisp ``eval`` called from the driver loop
    re-sees the same expressions every outer pass — that is where
    interpreter-style kernels get their reuse, and a model that
    priced function bodies as straight-line code would miss it
    entirely.  Nested/recursive call chains resolve transitively with
    a cycle guard.
    """
    sites: dict[int, list[int]] = {}
    for b in cfg.blocks:
        if b.call_target is not None and b.index in cfg.reachable:
            entry = cfg.block_of.get(b.call_target)
            if entry is not None:
                sites.setdefault(entry, []).append(b.index)

    ctx: dict[int, tuple[float, int | None]] = {}

    def resolve(entry: int, stack: frozenset[int]) -> tuple[float, int | None]:
        if entry in ctx:
            return ctx[entry]
        if entry in stack:
            return (1.0, None)  # recursion adds calls, not signatures
        site_list = sites.get(entry)
        if not site_list:
            ctx[entry] = (1.0, None)
            return ctx[entry]
        distinct = 1.0
        inner: int | None = None
        outer = [
            s for s in site_list if function_entry(cfg, s) != entry
        ]
        if len(outer) < len(site_list):
            # self-recursive: calls at different recursion depths see
            # different arguments even from one outer invocation
            distinct *= recursion_signatures
        if outer:
            site = max(outer, key=lambda s: freqs.get(s, 0.0))
            for li in cfg.loops_enclosing(site):
                if any(r in variants[li] for r in _ARG_REGS):
                    distinct *= max(freqs.eff_trips.get(li, 1.0), 1.0)
                inner = li
            parent = function_entry(cfg, site)
            if parent != 0 and parent != entry:
                pd, pl = resolve(parent, stack | {entry})
                distinct *= pd
                if inner is None:
                    inner = pl
        ctx[entry] = (distinct, inner)
        return ctx[entry]

    for entry in list(sites):
        resolve(entry, frozenset())
    return ctx


@dataclass(frozen=True, slots=True)
class ModelParams:
    """Calibration constants of the static model (see DESIGN.md §11)."""

    #: reuse-rate threshold for an instruction to join a trace span
    span_threshold: float = 0.5
    #: ILP assumed for called-function bodies (call instances from
    #: separate loop iterations overlap in the dataflow limit)
    call_ilp: float = 12.0
    #: haircut applied to load reuse per unit of store density in the
    #: same loop (stores may clobber re-read locations)
    load_store_interference: float = 0.5
    #: ILP assumed for straight-line (non-loop) code
    straight_line_ilp: float = 2.0
    #: fraction of the window usable as overlapped in-flight work
    #: (calibrated against the dynamic window-limited IPCs)
    window_efficiency: float = 0.07
    #: absolute IPC ceiling of the dataflow limit (resource proxy)
    ipc_cap: float = 512.0
    #: exponent turning mean body reuse rate into whole-iteration
    #: trace coverage (higher = stricter full-coverage requirement)
    coverage_exponent: float = 2.0
    #: floor on a collapsed iteration's chain contribution (cycles)
    collapsed_ii_floor: float = 0.25
    #: longest register-dependence cycle searched for the loop II
    max_recurrence_edges: int = 4


DEFAULT_PARAMS = ModelParams()


@dataclass(slots=True)
class StaticEstimate:
    """A predicted profile plus the evidence behind it."""

    profile: BenchmarkProfile
    #: {loop depth: {op-class name: estimated dynamic count}}
    census: dict[int, dict[str, float]] = field(default_factory=dict)
    #: one row per loop: header pc, depth, trips, exactness, II
    loop_table: list[dict] = field(default_factory=list)
    #: predicted distinct input signatures (reuse-table footprint proxy)
    signature_count: float = 0.0
    #: predicted reuse-distance summary (dynamic instructions between
    #: signature repeats), weighted over reusable instructions
    reuse_distance: dict[str, float] = field(default_factory=dict)
    #: places where the model fell back to a default assumption
    assumptions: list[str] = field(default_factory=list)


def loop_variant_registers(
    cfg: ControlFlowGraph, loop_index: int
) -> frozenset[int]:
    """Registers whose value *trajectory* differs across iterations.

    Seeds are the loop-carried registers — read in the body before
    any body write reaches them (approximated in pc order from the
    header, which matches the contiguous layout both the RL compiler
    and the hand-written kernels use).  Variance then propagates
    through in-loop definitions: a register written from a variant
    source is variant.  Registers reset at the top of every iteration
    (``li i, 0`` then counted up) re-play the same values, so they —
    and everything computed from them — stay invariant *for this
    loop*, which is what makes re-scan reuse visible statically.
    """
    loop = cfg.loops[loop_index]
    pcs = sorted(pc for b in loop.blocks for pc in cfg.blocks[b].pcs())
    insts = cfg.program.instructions

    first_read: dict[int, int] = {}
    first_write: dict[int, int] = {}
    for pc in pcs:
        inst = insts[pc]
        for r in reg_reads(inst):
            first_read.setdefault(r, pc)
        for r in reg_writes(inst):
            first_write.setdefault(r, pc)
    variant: set[int] = {
        r for r, wpc in first_write.items()
        if first_read.get(r, wpc + 1) < wpc
    }

    changed = True
    while changed:
        changed = False
        for pc in pcs:
            inst = insts[pc]
            writes = reg_writes(inst)
            if not writes or writes[0] in variant:
                continue
            if any(r in variant for r in reg_reads(inst)):
                variant.add(writes[0])
                changed = True
    return frozenset(variant)


def _loop_store_density(cfg: ControlFlowGraph, loop: Loop) -> float:
    """Fraction of the loop's static instructions that are stores."""
    total = stores = 0
    for b in loop.blocks:
        for pc in cfg.blocks[b].pcs():
            total += 1
            if cfg.program.instructions[pc].op in _STORE_OPS:
                stores += 1
    return stores / total if total else 0.0


def _recurrence_ii(
    cfg: ControlFlowGraph,
    loop: Loop,
    params: ModelParams,
    edge_latency=None,
) -> float:
    """The loop's initiation interval: its heaviest dependence cycle.

    Builds the intra-loop register dependence graph (edge ``src ->
    dst`` of weight ``latency`` for every instruction reading ``src``
    and writing ``dst``) and searches cycles up to
    ``params.max_recurrence_edges`` edges long.  Iterations of a loop
    overlap in the dataflow limit down to this latency — a counter
    loop recurs through its ``addi`` in 1 cycle, a float accumulation
    through its ``fadd`` in 4, a pointer chase through its ``lw`` in
    the load latency.

    ``edge_latency(pc, inst) -> float`` overrides the weight per
    instruction — the hook the reuse scenarios use to cap a reused
    edge at the reuse-test latency.
    """
    from repro.static.cfg import _block_const_before

    written: set[int] = set()
    for b in loop.blocks:
        for pc in cfg.blocks[b].pcs():
            written.update(reg_writes(cfg.program.instructions[pc]))

    def slot_node(block, pc, inst):
        """Pseudo-register for a stable memory slot, or None.

        A slot is stable when its base address is provably the same
        every iteration — a constant (globals) or a register the loop
        never rewrites (frame pointer).  Array walks advance their
        base, so they don't serialise and are excluded.
        """
        base = inst.rs1
        const = _block_const_before(cfg, block, pc, base)
        if const is not None:
            return ("mem", const + int(inst.imm))
        if base not in written:
            return ("mem", base, int(inst.imm))
        return None

    edges: dict[object, list[tuple[object, float]]] = {}
    loads: list[tuple[object, int, float]] = []
    stores: list[tuple[object, int, float]] = []
    for b in loop.blocks:
        block = cfg.blocks[b]
        for pc in block.pcs():
            inst = cfg.program.instructions[pc]
            if edge_latency is not None:
                lat = float(edge_latency(pc, inst))
            else:
                lat = float(max(inst.latency, 1))
            for dst in reg_writes(inst):
                for src in reg_reads(inst):
                    edges.setdefault(src, []).append((dst, lat))
            if inst.op in (Opcode.LW, Opcode.FLW):
                node = slot_node(block, pc, inst)
                if node is not None:
                    for dst in reg_writes(inst):
                        loads.append((node, dst, lat))
            elif inst.op in (Opcode.SW, Opcode.FSW):
                node = slot_node(block, pc, inst)
                if node is not None:
                    value = inst.rs2 + (
                        32 if inst.op is Opcode.FSW else 0
                    )
                    stores.append((node, value, lat))
    # memory-carried recurrence: only slots both stored and reloaded
    # in the body serialise iterations (counter / accumulator slots)
    stored_nodes = {node for node, _, _ in stores}
    for node, dst, lat in loads:
        if node in stored_nodes:
            edges.setdefault(node, []).append((dst, lat))
    for node, value, lat in stores:
        edges.setdefault(value, []).append((node, lat))

    best = 1.0

    def walk(start: int, node: int, weight: float, depth: int) -> None:
        nonlocal best
        if depth > params.max_recurrence_edges:
            return
        for nxt, lat in edges.get(node, ()):
            if nxt == start:
                if weight + lat > best:
                    best = weight + lat
            elif depth < params.max_recurrence_edges:
                walk(start, nxt, weight + lat, depth + 1)

    for start in edges:
        walk(start, start, 0.0, 1)
    return best


def _memory_ii(cfg: ControlFlowGraph, loop: Loop) -> float:
    """Cross-entry serial cost of a memory-carried recurrence.

    A loop that keeps its carried state in a stable memory slot (a
    stack-frame counter, a global accumulator) serialises its
    *entries* as well as its iterations: the slot address is the same
    on every entry, and memory is not renamed, so iteration k of
    entry n+1 still waits on the store of entry n.  The serial cost
    per iteration is the slot round-trip — reload, one update op,
    store back — which is what a dynamic dataflow limit actually
    observes (unlike the full II, whose cycle search conservatively
    mixes in same-register reuse).  Returns the heaviest round-trip
    over slots both stored and reloaded in the body, or 0.0 when the
    loop carries no state through memory.
    """
    from repro.static.cfg import _block_const_before

    written: set[int] = set()
    for b in loop.blocks:
        for pc in cfg.blocks[b].pcs():
            written.update(reg_writes(cfg.program.instructions[pc]))

    def slot_node(block, pc, inst):
        base = inst.rs1
        const = _block_const_before(cfg, block, pc, base)
        if const is not None:
            return ("mem", const + int(inst.imm))
        if base not in written:
            return ("mem", base, int(inst.imm))
        return None

    load_lat: dict[object, float] = {}
    store_lat: dict[object, float] = {}
    for b in loop.blocks:
        block = cfg.blocks[b]
        for pc in block.pcs():
            inst = cfg.program.instructions[pc]
            if inst.op in _LOAD_OPS or inst.op in _STORE_OPS:
                node = slot_node(block, pc, inst)
                if node is None:
                    continue
                lat = float(max(inst.latency, 1))
                side = (
                    load_lat if inst.op in _LOAD_OPS else store_lat
                )
                side[node] = max(side.get(node, 0.0), lat)
    best = 0.0
    for node in load_lat.keys() & store_lat.keys():
        best = max(best, load_lat[node] + store_lat[node] + 1.0)
    return best


@dataclass(slots=True)
class _InstModel:
    """Per-static-instruction model outputs (one block pass)."""

    pc: int
    freq: float
    reuse_rate: float
    latency: float
    #: dynamic distance between signature repeats (0 = never reuses)
    repeat_distance: float


@dataclass(slots=True)
class _LoopModel:
    """Per-loop aggregates feeding the cycle model."""

    index: int
    ii: float
    eff_trips: float
    #: total iterations across all entries (header executions)
    total_iters: float
    #: dynamic instructions per iteration
    iter_insts: float
    #: dynamic instructions whose *innermost* loop is this one
    own_work: float
    #: freq-weighted mean reuse rate over the body
    body_rate: float
    #: fraction of iterations assumed fully covered by one trace
    coverage: float
    #: slot round-trip of a memory-carried recurrence (0 = none);
    #: the slot survives re-entry, so entries serialise through it
    mem_ii: float = 0.0


class StaticReuseEstimator:
    """Predicts a dynamic reuse profile from program structure alone."""

    def __init__(
        self,
        driver: AnalysisDriver | None = None,
        params: ModelParams = DEFAULT_PARAMS,
    ) -> None:
        self.driver = driver or AnalysisDriver()
        self.params = params

    # -- the per-instruction model ------------------------------------

    def _instruction_models(
        self,
        cfg: ControlFlowGraph,
        freqs: FrequencyEstimate,
        variants: dict[int, frozenset[int]],
        assumptions: list[str],
        contexts: dict[int, tuple[float, int | None]],
        cards: dict[int, dict[int, float]] | None = None,
    ) -> dict[int, list[_InstModel]]:
        """Reuse rate and repeat distance per instruction, per block."""
        params = self.params
        cards = cards or {}
        insts = cfg.program.instructions
        store_density = {
            i: _loop_store_density(cfg, loop)
            for i, loop in enumerate(cfg.loops)
        }
        iter_size = _iteration_sizes(cfg, freqs)

        out: dict[int, list[_InstModel]] = {}
        for block in cfg.blocks:
            if block.index not in cfg.reachable:
                continue
            f = freqs[block.index]
            if f <= 0.0:
                continue
            chain = cfg.loops_enclosing(block.index)
            entry = function_entry(cfg, block.index)
            ctx_distinct, ctx_loop = (
                contexts.get(entry, (1.0, None)) if entry else (1.0, None)
            )
            models: list[_InstModel] = []
            for pc in block.pcs():
                inst = insts[pc]
                reads = reg_reads(inst)
                no_inputs = inst.op in _NO_INPUT_OPS or (
                    not reads and inst.op not in _LOAD_OPS
                )
                if no_inputs:
                    distinct = 1.0
                    innermost_variant = None
                else:
                    distinct = 1.0
                    innermost_variant = None
                    for li in chain:
                        if any(r in variants[li] for r in reads):
                            trips = max(freqs.eff_trips.get(li, 1.0), 1.0)
                            # value repetition: data contents bound
                            # the signature alphabet independently of
                            # how many iterations replay it
                            value_bound = 1.0
                            loop_cards = cards.get(li, {})
                            for r in reads:
                                if r in variants[li]:
                                    value_bound *= loop_cards.get(
                                        r, float("inf")
                                    )
                            distinct *= min(trips, max(value_bound, 1.0))
                            innermost_variant = li
                    if entry:
                        # function bodies inherit the dominant call
                        # site's loop context: the distinct argument
                        # signatures reaching the function multiply
                        # the body's own loop variance
                        distinct = min(
                            distinct * ctx_distinct, max(f, 1.0)
                        )
                    elif not chain:
                        distinct = f  # top-level straight-line code
                # repeat scope: the innermost loop whose iterations
                # replay this signature (inside the variant scope)
                stable = [
                    li for li in chain
                    if innermost_variant is None
                    or cfg.loops[li].depth
                    > cfg.loops[innermost_variant].depth
                ]
                if stable:
                    repeat = iter_size[stable[0]]
                elif entry and ctx_loop is not None:
                    repeat = iter_size[ctx_loop]
                else:
                    repeat = 0.0
                rate = max(0.0, 1.0 - distinct / f) if f > 0 else 0.0
                if inst.op in _LOAD_OPS:
                    scopes = list(chain)
                    if entry and ctx_loop is not None:
                        scopes.append(ctx_loop)
                    if scopes:
                        density = max(store_density[li] for li in scopes)
                        rate *= max(
                            0.0,
                            1.0 - params.load_store_interference
                            * min(density * 8.0, 1.0),
                        )
                models.append(_InstModel(
                    pc=pc,
                    freq=f,
                    reuse_rate=rate,
                    latency=float(max(inst.latency, 1)),
                    repeat_distance=repeat,
                ))
            out[block.index] = models
        for loop in cfg.loops:
            if not loop.exact:
                assumptions.append(
                    f"loop at block {loop.header} (depth {loop.depth}): "
                    f"trip count not statically provable, assumed "
                    f"{loop.trip_count:.0f}"
                )
        return out

    # -- the cycle model -----------------------------------------------

    def _loop_models(
        self,
        cfg: ControlFlowGraph,
        freqs: FrequencyEstimate,
        models: dict[int, list[_InstModel]],
    ) -> dict[int, _LoopModel]:
        params = self.params
        iter_size = _iteration_sizes(cfg, freqs)
        own_work: dict[int, float] = {i: 0.0 for i in range(len(cfg.loops))}
        for block in cfg.blocks:
            li = cfg.loop_of_block.get(block.index)
            if li is not None and block.index in cfg.reachable:
                own_work[li] += freqs[block.index] * len(block)
        out: dict[int, _LoopModel] = {}
        for i, loop in enumerate(cfg.loops):
            rate_sum = weight = 0.0
            for b in loop.blocks:
                for m in models.get(b, ()):
                    rate_sum += m.freq * m.reuse_rate
                    weight += m.freq
            body_rate = rate_sum / weight if weight else 0.0
            coverage = body_rate ** params.coverage_exponent
            out[i] = _LoopModel(
                index=i,
                ii=_recurrence_ii(cfg, loop, params),
                eff_trips=max(freqs.eff_trips.get(i, 1.0), 1.0),
                total_iters=max(freqs.get(loop.header, 0.0), 0.0),
                iter_insts=iter_size[i],
                own_work=own_work[i],
                body_rate=body_rate,
                coverage=coverage,
                mem_ii=_memory_ii(cfg, loop),
            )
        return out

    def _chain_cycles(
        self,
        cfg: ControlFlowGraph,
        loop_models: dict[int, _LoopModel],
        ii_of,
        straight_cycles: float,
    ) -> float:
        """Critical path: each nest level adds trips*II plus one
        instance of its deepest child (other instances overlap)."""
        children: dict[int | None, list[int]] = {}
        for i, loop in enumerate(cfg.loops):
            children.setdefault(loop.parent, []).append(i)

        def chain(i: int) -> float:
            lm = loop_models[i]
            own = lm.eff_trips * ii_of(lm)
            # entries of a memory-carried loop serialise through the
            # slot at mem_ii per iteration; the store still has to
            # land even for reused iterations, so no scenario
            # shortens this floor
            if lm.mem_ii > 0.0:
                own = max(own, lm.total_iters * lm.mem_ii)
            kids = children.get(i, [])
            deepest = max((chain(c) for c in kids), default=0.0)
            return own + deepest

        roots = children.get(None, [])
        return sum(chain(r) for r in roots) + straight_cycles

    def _windowed_cycles(
        self,
        loop_models: dict[int, _LoopModel],
        ii_of,
        occupancy_of,
        straight_cycles: float,
        window: int,
    ) -> float:
        """Finite-window cycles via Little's law per loop.

        A loop's window-limited throughput is the usable window over
        its initiation interval (each in-flight iteration retires one
        body per II), so its cycle cost is ``work * II / usable``.
        ``occupancy_of(lm)`` scales the footprint an average body
        instruction keeps in the window — trace reuse shrinks it (a
        whole span holds one slot), raising effective throughput.
        """
        params = self.params
        usable = max(window * params.window_efficiency, 1.0)
        cycles = straight_cycles
        for lm in loop_models.values():
            ii = max(ii_of(lm), params.collapsed_ii_floor)
            occupancy = max(occupancy_of(lm), 1e-3)
            term = lm.own_work * ii * occupancy / usable
            # a memory-carried loop is recurrence-bound, not
            # window-bound: one iteration in flight sustains the
            # slot round-trip rate, so the window adds no cost
            # beyond the serial chain
            if lm.mem_ii > 0.0:
                term = min(term, lm.total_iters * lm.mem_ii)
            cycles += term
        return max(cycles, 1.0)

    # -- aggregation ----------------------------------------------------

    def estimate(self, unit: AnalysisUnit) -> StaticEstimate:
        """The full static estimate for one unit (pure analysis)."""
        from repro.exp.config import ExperimentConfig

        return self.estimate_with_config(unit, ExperimentConfig())

    def estimate_with_config(
        self, unit: AnalysisUnit, config
    ) -> StaticEstimate:
        params = self.params
        cfg: ControlFlowGraph = self.driver.get(unit, "cfg")
        freqs: FrequencyEstimate = self.driver.get(unit, "frequencies")
        variants: dict[int, frozenset[int]] = self.driver.get(
            unit, "variants"
        )
        census = self.driver.get(unit, "census")
        assumptions: list[str] = []
        contexts = _call_contexts(cfg, freqs, variants)
        cards = self.driver.get(unit, "cardinality")
        models = self._instruction_models(
            cfg, freqs, variants, assumptions, contexts, cards
        )
        loop_models = self._loop_models(cfg, freqs, models)

        total = sum(m.freq for ms in models.values() for m in ms)
        reusable = sum(
            m.freq * m.reuse_rate for ms in models.values() for m in ms
        )
        signature_count = sum(
            m.freq * (1.0 - m.reuse_rate)
            for ms in models.values() for m in ms
        )

        # expected trace spans: per block pass, a span starts at every
        # high-reuse instruction whose predecessor is low-reuse
        span_starts = 0.0
        span_insts = 0.0
        for ms in models.values():
            prev_rate = 0.0
            for m in ms:
                if m.reuse_rate >= params.span_threshold:
                    span_insts += m.freq * m.reuse_rate
                    if prev_rate < params.span_threshold:
                        span_starts += m.freq * m.reuse_rate
                prev_rate = m.reuse_rate
        trace_count = span_starts
        avg_trace = span_insts / span_starts if span_starts else 0.0

        # reuse-distance summary over reusable work
        dist_weight = 0.0
        dist_sum = 0.0
        dists: list[tuple[float, float]] = []
        for ms in models.values():
            for m in ms:
                w = m.freq * m.reuse_rate
                if w > 0.0 and m.repeat_distance > 0.0:
                    dist_weight += w
                    dist_sum += w * m.repeat_distance
                    dists.append((m.repeat_distance, w))
        reuse_distance: dict[str, float] = {}
        if dist_weight > 0.0:
            dists.sort()
            acc = 0.0
            median = dists[-1][0]
            for d, w in dists:
                acc += w
                if acc >= dist_weight / 2:
                    median = d
                    break
            reuse_distance = {
                "mean": dist_sum / dist_weight,
                "p50": median,
            }

        # base IPC from the chain model.  Non-loop code splits two
        # ways: true top-level glue is straight-line (limited by local
        # ILP), while called-function bodies overlap across call
        # instances (separate iterations of the calling loop restart
        # the body independently) and reuse collapses them per
        # scenario, like a loop II.
        straight = 0.0
        call_insts: list[_InstModel] = []
        for b in cfg.blocks:
            if (
                b.index not in cfg.reachable
                or cfg.loop_of_block.get(b.index) is not None
            ):
                continue
            if function_entry(cfg, b.index):
                call_insts.extend(models.get(b.index, ()))
            else:
                straight += (
                    freqs[b.index] * len(b) / params.straight_line_ilp
                )
        call_work = sum(m.freq for m in call_insts)
        call_rate = (
            sum(m.freq * m.reuse_rate for m in call_insts) / call_work
            if call_work else 0.0
        )
        call_cov = call_rate ** params.coverage_exponent

        def call_serial(rho=None, collapse=False, k=None) -> float:
            """Serial cycles of called-function bodies per scenario.

            Base: latency-weighted work over the call ILP.  ILR caps
            each reused instruction at the reuse latency; TLR/prop
            collapse the covered fraction to one reuse op (or a
            k-proportional cost) amortised over a span.
            """
            if not call_insts:
                return 0.0
            cycles = 0.0
            for m in call_insts:
                lat = m.latency
                # chains through continuous FP values never re-see a
                # value, so reuse cannot shorten them
                gate = (
                    0.0
                    if cfg.program.instructions[m.pc].op in _FP_VALUE_OPS
                    else 1.0
                )
                if rho is not None:
                    r = m.reuse_rate * gate
                    lat = (1.0 - r) * lat + r * max(rho, 1.0)
                if collapse and rho is not None:
                    covered = max(rho, params.collapsed_ii_floor) / max(
                        avg_trace, 1.0
                    )
                    cov = call_cov * gate
                    lat = (1.0 - cov) * lat + cov * covered
                if k is not None:
                    covered = max(k, 1.0 / max(avg_trace, 1.0))
                    lat = (
                        (1.0 - call_cov) * m.latency
                        + call_cov * covered
                    )
                cycles += m.freq * lat
            return cycles / params.call_ilp

        call_base = call_serial()
        cycles_inf = max(
            self._chain_cycles(
                cfg, loop_models, lambda lm: lm.ii, straight + call_base
            ),
            total / params.ipc_cap,
            1.0,
        )
        win = getattr(config, "window_size", 256)
        cycles_win = max(
            self._windowed_cycles(
                loop_models,
                lambda lm: lm.ii,
                lambda lm: 1.0,
                straight + call_base,
                win,
            ),
            cycles_inf,
        )
        ipc_inf = min(max(total / cycles_inf, 0.05), params.ipc_cap)
        ipc_win = min(max(total / cycles_win, 0.05), ipc_inf)

        profile = BenchmarkProfile(
            name=unit.name,
            suite=_suite_of(unit.name),
            dynamic_count=int(round(total)),
            percent_reusable=(100.0 * reusable / total) if total else 0.0,
            avg_trace_size=avg_trace,
            trace_count=int(round(trace_count)),
            base_ipc_inf=ipc_inf,
            base_ipc_win=ipc_win,
        )

        # reuse scenarios: recompute the chains with reuse-shortened
        # edges (ILR) and trace-collapsed iterations (TLR)
        rate_of_pc = {
            m.pc: m.reuse_rate for ms in models.values() for m in ms
        }

        # chain-collapse gate: a loop's recurrence carries its variant
        # registers, and reuse only shortens the chain when those
        # values themselves repeat (finite cardinality).  A float
        # accumulator never re-sees a sum, so its chain keeps full
        # length no matter how reusable the rest of the body is; a
        # token-successor chain over a ten-symbol alphabet collapses.
        import math

        chain_gate: dict[int, float] = {}
        for i in loop_models:
            regs = variants[i]
            if not regs:
                chain_gate[i] = 1.0
                continue
            loop_cards = cards.get(i, {})
            bounded = sum(
                1 for r in regs
                if math.isfinite(loop_cards.get(r, math.inf))
            )
            chain_gate[i] = bounded / len(regs)

        def ilr_ii(loop_index: int, rho: float) -> float:
            loop = cfg.loops[loop_index]
            gate = chain_gate[loop_index]

            def edge_latency(pc, inst) -> float:
                lat = float(max(inst.latency, 1))
                r = rate_of_pc.get(pc, 0.0) * gate
                return (1.0 - r) * lat + r * max(rho, 1.0)

            return _recurrence_ii(cfg, loop, params, edge_latency)

        def scenario_cycles(
            ii_fn, occupancy_fn=None, serial=0.0
        ) -> tuple[float, float]:
            inf = max(
                self._chain_cycles(
                    cfg, loop_models, ii_fn, straight + serial
                ),
                total / params.ipc_cap,
                1.0,
            )
            wn = max(
                self._windowed_cycles(
                    loop_models,
                    ii_fn,
                    occupancy_fn or (lambda lm: 1.0),
                    straight + serial,
                    win,
                ),
                inf,
            )
            return inf, wn

        for latency in config.reuse_latencies:
            rho = float(latency)
            ilr_iis = {
                i: ilr_ii(i, rho) for i in loop_models
            }
            inf_c, win_c = scenario_cycles(
                lambda lm: ilr_iis[lm.index],
                serial=call_serial(rho=rho),
            )
            profile.ilr_speedup_inf[latency] = max(cycles_inf / inf_c, 1.0)
            profile.ilr_speedup_win[latency] = max(cycles_win / win_c, 1.0)

            def tlr_ii(lm: _LoopModel) -> float:
                # covered iterations complete in one reuse op of
                # latency rho; uncovered ones keep the ILR-shortened
                # II — but only chains whose carried values repeat
                # can collapse at all
                base = ilr_iis[lm.index]
                collapsed = max(rho, params.collapsed_ii_floor)
                cov = lm.coverage * chain_gate[lm.index]
                return (1.0 - cov) * base + cov * collapsed

            def tlr_occupancy(lm: _LoopModel) -> float:
                # a reused span holds one window slot instead of
                # one per instruction
                span = max(avg_trace, 1.0)
                return (1.0 - lm.coverage) + lm.coverage / span

            inf_c, win_c = scenario_cycles(
                tlr_ii,
                tlr_occupancy,
                serial=call_serial(rho=rho, collapse=True),
            )
            profile.tlr_speedup_inf[latency] = max(cycles_inf / inf_c, 1.0)
            profile.tlr_speedup_win[latency] = max(cycles_win / win_c, 1.0)

        for k in config.proportional_ks:

            def prop_ii(lm: _LoopModel) -> float:
                reuse_cost = max(
                    k * lm.iter_insts, params.collapsed_ii_floor
                )
                return (
                    (1.0 - lm.coverage) * lm.ii
                    + lm.coverage * min(reuse_cost, lm.ii + reuse_cost)
                )

            def prop_occupancy(lm: _LoopModel) -> float:
                # a span reused at k cycles/instruction holds its
                # slot for a k-proportional time
                span = max(avg_trace, 1.0)
                return (1.0 - lm.coverage) + lm.coverage * max(
                    k, 1.0 / span
                )

            _, win_c = scenario_cycles(
                prop_ii, prop_occupancy, serial=call_serial(k=k)
            )
            profile.tlr_speedup_win_prop[k] = max(cycles_win / win_c, 1.0)

        loop_table = [
            {
                "header_block": loop.header,
                "header_pc": cfg.blocks[loop.header].start,
                "depth": loop.depth,
                "trip_count": loop.trip_count,
                "eff_trips": round(loop_models[i].eff_trips, 2),
                "exact": loop.exact,
                "ii": loop_models[i].ii,
                "body_reuse_rate": round(loop_models[i].body_rate, 3),
                "variant_registers": sorted(variants[i]),
            }
            for i, loop in enumerate(cfg.loops)
        ]
        return StaticEstimate(
            profile=profile,
            census=census,
            loop_table=loop_table,
            signature_count=signature_count,
            reuse_distance=reuse_distance,
            assumptions=assumptions,
        )


def _iteration_sizes(
    cfg: ControlFlowGraph, freqs: FrequencyEstimate
) -> dict[int, float]:
    """Dynamic instructions per iteration of each loop."""
    out: dict[int, float] = {}
    for i, loop in enumerate(cfg.loops):
        body = sum(freqs[b] * len(cfg.blocks[b]) for b in loop.blocks)
        iters = max(freqs.get(loop.header, 1.0), 1.0)
        out[i] = max(body / iters, 1.0)
    return out


def _suite_of(name: str) -> str:
    from repro.workloads.base import FP_SUITE, INT_SUITE

    if name in FP_SUITE:
        return "FP"
    if name in INT_SUITE:
        return "INT"
    return "GEN"


def estimate_workload(
    name: str,
    config=None,
    *,
    params: ModelParams = DEFAULT_PARAMS,
) -> StaticEstimate:
    """Full static estimate for a registered kernel — never executes."""
    from repro.exp.config import ExperimentConfig

    if config is None:
        config = ExperimentConfig()
    unit = AnalysisUnit.from_workload(
        name, scale=config.scale, budget=config.max_instructions
    )
    estimator = StaticReuseEstimator(params=params)
    return estimator.estimate_with_config(unit, config)


def estimate_profile(name: str, config=None) -> BenchmarkProfile:
    """The :class:`BenchmarkProfile`-shaped prediction for one kernel.

    Drop-in shaped like :func:`repro.exp.runner.run_profile` output,
    computed without executing a single instruction.
    """
    return estimate_workload(name, config).profile


def estimate_profiles(config=None):
    """Static predictions for every configured kernel (ProfileRun-shaped)."""
    from repro.exp.config import ExperimentConfig
    from repro.exp.runner import ProfileRun

    if config is None:
        config = ExperimentConfig()
    profiles = [estimate_profile(name, config) for name in config.workloads]
    return ProfileRun(profiles)


def estimate_source(
    source: str,
    config=None,
    *,
    name: str = "<rl>",
    params: ModelParams = DEFAULT_PARAMS,
) -> StaticEstimate:
    """Static estimate for a ``repro.lang`` source text."""
    from repro.exp.config import ExperimentConfig

    if config is None:
        config = ExperimentConfig()
    unit = AnalysisUnit.from_rl_source(
        source, name=name, budget=config.max_instructions
    )
    estimator = StaticReuseEstimator(params=params)
    return estimator.estimate_with_config(unit, config)
