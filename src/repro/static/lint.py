"""``repro lint`` — diagnostics over RL sources and compiled kernels.

Both front ends are thin clients of the shared analysis
infrastructure: RL sources go through :mod:`repro.static.langwalk`
(unused globals/locals, unreachable statements, constant conditions,
zero-trip and provably non-terminating loops), compiled/assembled
programs through the :mod:`repro.static.cfg` facts (unreachable
blocks, trivially-dead branches).  Findings carry a rule id, a
location and a one-line message; ``repro lint`` exits non-zero when
any finding survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.static.cfg import build_cfg
from repro.static.langwalk import ModuleInfo, module_info
from repro.vm.program import Program


@dataclass(frozen=True, slots=True)
class LintFinding:
    """One diagnostic: where, which rule, what."""

    rule: str
    message: str
    unit: str
    line: int | None = None

    def format(self) -> str:
        where = self.unit if self.line is None else f"{self.unit}:{self.line}"
        return f"{where}: {self.rule}: {self.message}"


# ---------------------------------------------------------------------------
# RL source rules
# ---------------------------------------------------------------------------


def _lint_module(info: ModuleInfo, unit: str) -> list[LintFinding]:
    findings: list[LintFinding] = []

    read_globals = set(info.global_uses.reads)
    written_globals = set(info.global_uses.writes)
    for name, line in info.globals.items():
        if name not in read_globals and name not in written_globals:
            findings.append(LintFinding(
                "unused-global",
                f"global '{name}' is never used",
                unit, line,
            ))
        elif name not in read_globals:
            findings.append(LintFinding(
                "write-only-global",
                f"global '{name}' is written but never read",
                unit, line,
            ))

    for fname, fn in info.functions.items():
        for name, line in fn.locals.items():
            if name in fn.node.params:
                continue  # a signature is an interface, not dead code
            reads = fn.uses.reads.get(name, [])
            if not reads:
                findings.append(LintFinding(
                    "unused-local",
                    f"local '{name}' in {fname}() is never read",
                    unit, line,
                ))
        for stmt in fn.unreachable:
            findings.append(LintFinding(
                "unreachable-code",
                f"statement in {fname}() follows a return",
                unit, stmt.line,
            ))
        for loop in fn.loops:
            if loop.const_condition is not None:
                if loop.const_condition == 0:
                    findings.append(LintFinding(
                        "zero-trip-loop",
                        f"while condition in {fname}() is constant 0; "
                        "the body never runs",
                        unit, loop.node.line,
                    ))
                elif not loop.has_exit:
                    findings.append(LintFinding(
                        "non-terminating-loop",
                        f"while condition in {fname}() is constant "
                        f"{loop.const_condition} and the body has no "
                        "return",
                        unit, loop.node.line,
                    ))
                else:
                    findings.append(LintFinding(
                        "constant-condition",
                        f"while condition in {fname}() is constant "
                        f"{loop.const_condition}",
                        unit, loop.node.line,
                    ))
            elif not loop.condition_varies and not loop.has_exit:
                findings.append(LintFinding(
                    "non-terminating-loop",
                    f"while loop in {fname}() never modifies its "
                    "condition and has no other exit",
                    unit, loop.node.line,
                ))

        # constant if-conditions (loops handled above)
        from repro.lang.ast_nodes import If
        from repro.static.langwalk import fold_constant, walk

        for node in walk(fn.node):
            if isinstance(node, If):
                value = fold_constant(node.condition)
                if value is not None:
                    dead = "else" if value else "then"
                    findings.append(LintFinding(
                        "constant-condition",
                        f"if condition in {fname}() is constant "
                        f"{value}; the {dead} branch is dead",
                        unit, node.line,
                    ))
    return findings


def lint_source(source: str, unit: str = "<rl>") -> list[LintFinding]:
    """Lint an RL source text; parse errors surface as findings too."""
    from repro.lang.errors import SourceError
    from repro.lang.parser import parse

    try:
        module = parse(source)
    except SourceError as exc:
        return [LintFinding(
            "parse-error", str(exc), unit, getattr(exc, "line", None)
        )]
    return _lint_module(module_info(module), unit)


# ---------------------------------------------------------------------------
# ISA program rules
# ---------------------------------------------------------------------------


def lint_program(program: Program, unit: str | None = None) -> list[LintFinding]:
    """Lint a compiled/assembled program through the CFG facts."""
    unit = unit or program.name
    findings: list[LintFinding] = []
    cfg = build_cfg(program)
    dead_pcs = 0
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            dead_pcs += len(block)
    if dead_pcs:
        findings.append(LintFinding(
            "unreachable-code",
            f"{dead_pcs} instruction(s) in unreachable blocks",
            unit,
        ))
    # self-branches: a conditional branch whose target is itself with
    # no register change in between is a one-instruction infinite loop
    for block in cfg.blocks:
        if len(block) == 1 and block.successors == (block.index,):
            findings.append(LintFinding(
                "non-terminating-loop",
                f"single-instruction loop at pc {block.start}",
                unit,
            ))
    return findings


# ---------------------------------------------------------------------------
# tree runners
# ---------------------------------------------------------------------------


def lint_workloads(names: list[str] | None = None) -> list[LintFinding]:
    """Lint every registered kernel's assembled program."""
    from repro.workloads.base import FP_SUITE, INT_SUITE, build_program

    if names is None:
        names = list(FP_SUITE + INT_SUITE)
    findings: list[LintFinding] = []
    for name in names:
        findings.extend(lint_program(build_program(name, 1), unit=name))
    return findings


def lint_paths(paths: list[str]) -> list[LintFinding]:
    """Lint ``.rl`` files (RL sources) under files or directories."""
    findings: list[LintFinding] = []
    for raw in paths:
        path = Path(raw)
        files = (
            sorted(path.rglob("*.rl")) if path.is_dir() else [path]
        )
        for file in files:
            findings.extend(
                lint_source(file.read_text(), unit=str(file))
            )
    return findings
