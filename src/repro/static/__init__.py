"""``repro.static`` — simulation-free program analysis.

A multi-pass static-analysis framework over ``repro.lang`` ASTs and
compiled ISA :class:`~repro.vm.program.Program` objects.  Everything
here reads program *structure* only — no kernel is ever executed —
which makes it the cheap tier-0 inference path for the serving stack:
a ``/profile?mode=static`` query is answered from loop bounds and
dependence shapes in well under a millisecond, with the VM held in
reserve for queries that need exact numbers.

Layers (each usable on its own):

:mod:`repro.static.driver`
    The shared pass manager: named passes with declared dependencies,
    memoised per analysis unit.  The estimator and the linter are both
    thin clients of the same driver, so CFG/loop facts are derived
    once per program no matter how many analyses consume them.
:mod:`repro.static.cfg`
    ISA-level facts: basic blocks, CFG, dominators, natural loops with
    nesting, trip-count inference and execution-frequency estimates.
:mod:`repro.static.langwalk`
    AST walker infrastructure for ``repro.lang`` modules (generic node
    iteration, loop-nest and symbol-use extraction, constant folding).
:mod:`repro.static.estimator`
    :class:`StaticReuseEstimator` — predicts a
    :class:`~repro.exp.runner.BenchmarkProfile`-shaped reuse profile
    (reusability, trace spans, reuse-distance proxies, base IPC and
    ILR/TLR speed-ups) without executing a single instruction.
:mod:`repro.static.lint`
    ``repro lint`` diagnostics (unreachable code, unused symbols,
    zero-trip / provably non-terminating loops, constant conditions)
    over RL sources and compiled kernels.
:mod:`repro.static.validate`
    The cross-validation harness scoring static predictions against
    cached dynamic profiles; error bands persist to
    ``BENCH_static.json`` and gate CI.
"""

from repro.static.cfg import ControlFlowGraph, Loop, build_cfg
from repro.static.driver import AnalysisDriver, AnalysisUnit
from repro.static.estimator import (
    StaticEstimate,
    StaticReuseEstimator,
    estimate_profile,
    estimate_workload,
)
from repro.static.lint import LintFinding, lint_program, lint_source, lint_workloads
from repro.static.validate import (
    DEFAULT_BANDS_PATH,
    check_bands,
    load_bands,
    validate_static,
    write_bands,
)

__all__ = [
    "AnalysisDriver",
    "AnalysisUnit",
    "ControlFlowGraph",
    "Loop",
    "build_cfg",
    "StaticEstimate",
    "StaticReuseEstimator",
    "estimate_profile",
    "estimate_workload",
    "LintFinding",
    "lint_program",
    "lint_source",
    "lint_workloads",
    "DEFAULT_BANDS_PATH",
    "check_bands",
    "load_bands",
    "validate_static",
    "write_bands",
]
