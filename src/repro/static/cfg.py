"""ISA-level control-flow facts: blocks, loops, trip counts, frequencies.

Everything in this module is derived from a decoded
:class:`~repro.vm.program.Program` alone — the text segment is never
executed.  The central products are:

- :func:`build_cfg` — basic blocks with successor/predecessor edges
  (``JAL`` is treated as a straight-line call: control returns to the
  fall-through, with the callee entry recorded separately so
  interprocedural consumers can follow it);
- :func:`ControlFlowGraph.dominators` / :func:`find_loops` — natural
  loops from back edges, merged per header, nested by containment;
- :func:`infer_trip_count` — loop bounds recovered from the
  ``li``-init / ``addi``-step / compare-branch idiom the ``repro.lang``
  compiler and the hand-written kernels both emit.  Unknown bounds
  degrade to :data:`DEFAULT_TRIP_COUNT` with ``exact=False`` rather
  than failing;
- :func:`estimate_frequencies` — per-block dynamic execution counts
  (products of enclosing trip counts), optionally rescaled so the
  whole-program total matches an instruction budget the way a
  truncated run would: by cutting outer-loop repetitions first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass, Opcode, op_class
from repro.vm.program import Program

#: Registers read / written per opcode, in terms of Instruction fields.
#: ``"mem"`` in reads/writes marks a memory access through ``rs1+imm``.
#: FP operand fields index the FP register file; the flat location ids
#: used by :func:`inst_reads` / :func:`inst_writes` fold that in.
_FP_DEST = frozenset({
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT,
    Opcode.FNEG, Opcode.FABS, Opcode.FMOV, Opcode.FLI, Opcode.CVTIF,
})
_FP_SRC = frozenset({
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT,
    Opcode.FNEG, Opcode.FABS, Opcode.FMOV, Opcode.CVTFI,
    Opcode.FEQ, Opcode.FLT, Opcode.FLE, Opcode.FSW,
})

_R3_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.SLT, Opcode.SEQ,
    Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    Opcode.FEQ, Opcode.FLT, Opcode.FLE,
})
_R2I_OPS = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
    Opcode.SRLI, Opcode.SRAI, Opcode.SLTI, Opcode.MULI,
})
_R2_OPS = frozenset({
    Opcode.MOV, Opcode.FSQRT, Opcode.FNEG, Opcode.FABS, Opcode.FMOV,
    Opcode.CVTIF, Opcode.CVTFI,
})
_BRANCH_OPS = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT,
})

#: Fp registers live in a disjoint id space in the analyses below.
FP_BASE = 32
#: Trip count assumed for loops whose bounds resist static inference.
DEFAULT_TRIP_COUNT = 16


def _fp_src(inst) -> bool:
    return inst.op in _FP_SRC


def reg_reads(inst) -> tuple[int, ...]:
    """Register ids read by a static instruction (fp offset by 32).

    ``r0`` is hardwired zero, so it never appears as a read — its
    value cannot vary, which matters for the variance analysis.
    """
    op = inst.op
    fp = FP_BASE if _fp_src(inst) else 0
    out: list[int] = []
    if op in _R3_OPS:
        out = [fp + inst.rs1, fp + inst.rs2]
    elif op in _R2I_OPS or op in (Opcode.LW, Opcode.FLW):
        out = [inst.rs1]
    elif op in _R2_OPS:
        out = [fp + inst.rs1] if op != Opcode.CVTIF else [inst.rs1]
    elif op in (Opcode.SW, Opcode.FSW):
        out = [inst.rs1, (FP_BASE if op is Opcode.FSW else 0) + inst.rs2]
    elif op in _BRANCH_OPS:
        out = [inst.rs1, inst.rs2]
    elif op is Opcode.JR:
        out = [inst.rs1]
    return tuple(r for r in out if r != 0)


def reg_writes(inst) -> tuple[int, ...]:
    """Register ids written by a static instruction (fp offset by 32)."""
    op = inst.op
    if op in (Opcode.SW, Opcode.FSW) or op in _BRANCH_OPS or op in (
        Opcode.J, Opcode.JR, Opcode.NOP, Opcode.HALT,
    ):
        return ()
    rd = (FP_BASE if op in _FP_DEST else 0) + inst.rd
    if rd == 0:  # writes to r0 are dropped by the machine
        return ()
    return (rd,)


@dataclass(slots=True)
class BasicBlock:
    """A maximal straight-line instruction run ``[start, stop)``."""

    index: int
    start: int
    stop: int
    successors: tuple[int, ...] = ()
    predecessors: tuple[int, ...] = ()
    #: pc of a JAL target when the block ends in a call (else None)
    call_target: int | None = None

    def __len__(self) -> int:
        return self.stop - self.start

    def pcs(self) -> range:
        return range(self.start, self.stop)


@dataclass(slots=True)
class Loop:
    """A natural loop: header block + body block set."""

    header: int
    blocks: frozenset[int]
    #: immediate parent loop index in ``ControlFlowGraph.loops`` (or None)
    parent: int | None = None
    #: 1 for outermost loops, parents' depth + 1 otherwise
    depth: int = 1
    #: estimated iterations each time the loop is entered
    trip_count: float = float(DEFAULT_TRIP_COUNT)
    #: True when the trip count was recovered from literal bounds
    exact: bool = False


@dataclass(slots=True)
class ControlFlowGraph:
    """Blocks, edges and loop structure of one program."""

    program: Program
    blocks: list[BasicBlock] = field(default_factory=list)
    #: pc -> owning block index
    block_of: dict[int, int] = field(default_factory=dict)
    #: reachable block indices (from pc 0)
    reachable: frozenset[int] = frozenset()
    loops: list[Loop] = field(default_factory=list)
    #: block index -> innermost loop index (or None)
    loop_of_block: dict[int, int | None] = field(default_factory=dict)

    def loops_enclosing(self, block: int) -> list[int]:
        """Loop indices containing ``block``, outermost first."""
        chain: list[int] = []
        loop = self.loop_of_block.get(block)
        while loop is not None:
            chain.append(loop)
            loop = self.loops[loop].parent
        chain.reverse()
        return chain

    def depth_of_block(self, block: int) -> int:
        """Loop-nest depth of a block (0 = not in any loop)."""
        loop = self.loop_of_block.get(block)
        return 0 if loop is None else self.loops[loop].depth


def build_cfg(program: Program) -> ControlFlowGraph:
    """Partition a program into basic blocks and wire the CFG.

    ``JAL`` falls through (call-return abstraction) with the callee
    recorded in :attr:`BasicBlock.call_target`; ``JR`` ends a block
    with no successors (returns/indirect jumps are opaque); ``HALT``
    ends a block with no successors.
    """
    insts = program.instructions
    n = len(insts)
    cfg = ControlFlowGraph(program=program)
    if n == 0:
        return cfg

    leaders = {0}
    for pc, inst in enumerate(insts):
        op = inst.op
        if op in _BRANCH_OPS or op in (Opcode.J, Opcode.JAL):
            target = int(inst.imm)
            if 0 <= target < n:
                leaders.add(target)
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif op in (Opcode.JR, Opcode.HALT):
            if pc + 1 < n:
                leaders.add(pc + 1)

    starts = sorted(leaders)
    bounds = starts + [n]
    succ: list[list[int]] = []
    for bi, start in enumerate(starts):
        stop = bounds[bi + 1]
        block = BasicBlock(index=bi, start=start, stop=stop)
        cfg.blocks.append(block)
        for pc in range(start, stop):
            cfg.block_of[pc] = bi

    for block in cfg.blocks:
        last = insts[block.stop - 1]
        op = last.op
        out: list[int] = []
        if op in _BRANCH_OPS:
            target = int(last.imm)
            if 0 <= target < n:
                out.append(cfg.block_of[target])
            if block.stop < n:
                out.append(cfg.block_of[block.stop])
        elif op is Opcode.J:
            target = int(last.imm)
            if 0 <= target < n:
                out.append(cfg.block_of[target])
        elif op is Opcode.JAL:
            block.call_target = int(last.imm)
            if block.stop < n:
                out.append(cfg.block_of[block.stop])
        elif op in (Opcode.JR, Opcode.HALT):
            pass
        elif block.stop < n:  # plain fall-through
            out.append(cfg.block_of[block.stop])
        # dedupe, keep order (branch target before fall-through)
        seen: set[int] = set()
        block.successors = tuple(
            s for s in out if not (s in seen or seen.add(s))
        )
        succ.append(list(block.successors))

    preds: dict[int, list[int]] = {b.index: [] for b in cfg.blocks}
    for block in cfg.blocks:
        for s in block.successors:
            preds[s].append(block.index)
    for block in cfg.blocks:
        block.predecessors = tuple(preds[block.index])

    # interprocedural reachability: follow normal edges and call edges
    worklist = [0]
    reachable: set[int] = set()
    while worklist:
        b = worklist.pop()
        if b in reachable:
            continue
        reachable.add(b)
        worklist.extend(cfg.blocks[b].successors)
        target = cfg.blocks[b].call_target
        if target is not None and 0 <= target < n:
            worklist.append(cfg.block_of[target])
    cfg.reachable = frozenset(reachable)

    _attach_loops(cfg)
    return cfg


def _dominators(cfg: ControlFlowGraph) -> dict[int, set[int]]:
    """Iterative dominator sets over the *intra-procedural* edges.

    Entry points are block 0 plus every call target (each function is
    its own little flow graph; a callee's header is not dominated by
    its callers under the call-return abstraction).
    """
    entries = {0}
    for block in cfg.blocks:
        if block.call_target is not None:
            entries.add(cfg.block_of[block.call_target])
    nodes = set(cfg.reachable)
    dom: dict[int, set[int]] = {}
    for b in nodes:
        dom[b] = {b} if b in entries else set(nodes)
    changed = True
    while changed:
        changed = False
        for b in sorted(nodes):
            if b in entries:
                continue
            preds = [p for p in cfg.blocks[b].predecessors if p in nodes]
            if preds:
                new = set.intersection(*(dom[p] for p in preds))
            else:
                new = set()
            new = new | {b}
            if new != dom[b]:
                dom[b] = new
                changed = True
    return dom


def _attach_loops(cfg: ControlFlowGraph) -> None:
    """Find natural loops, merge per header, nest, infer trip counts."""
    dom = _dominators(cfg)
    bodies: dict[int, set[int]] = {}
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        for s in block.successors:
            if s in dom.get(block.index, set()):
                # back edge block -> s
                body = bodies.setdefault(s, {s})
                stack = [block.index]
                while stack:
                    b = stack.pop()
                    if b in body:
                        continue
                    body.add(b)
                    stack.extend(
                        p for p in cfg.blocks[b].predecessors
                        if p in cfg.reachable
                    )
                bodies[s] = body

    loops = [
        Loop(header=header, blocks=frozenset(body))
        for header, body in sorted(bodies.items())
    ]
    # nesting: the parent is the smallest strictly-containing loop
    for i, loop in enumerate(loops):
        best: int | None = None
        for j, other in enumerate(loops):
            if i == j or loop.header not in other.blocks:
                continue
            if other.blocks == loop.blocks:
                continue
            if not loop.blocks <= other.blocks:
                continue
            if best is None or other.blocks < loops[best].blocks:
                best = j
        loop.parent = best
    for loop in loops:
        depth = 1
        parent = loop.parent
        while parent is not None:
            depth += 1
            parent = loops[parent].parent
        loop.depth = depth

    loop_of_block: dict[int, int | None] = {
        b.index: None for b in cfg.blocks
    }
    # innermost loop wins: assign deeper loops later
    for li in sorted(range(len(loops)), key=lambda k: loops[k].depth):
        for b in loops[li].blocks:
            loop_of_block[b] = li

    cfg.loops = loops
    cfg.loop_of_block = loop_of_block

    for i, loop in enumerate(loops):
        trip, exact = infer_trip_count(cfg, i, dom)
        loop.trip_count = trip
        loop.exact = exact


def _constant_defs(cfg: ControlFlowGraph) -> dict[int, list[tuple[int, int]]]:
    """``reg -> [(pc, constant)]`` for every LI of an int literal."""
    out: dict[int, list[tuple[int, int]]] = {}
    for pc, inst in enumerate(cfg.program.instructions):
        if inst.op is Opcode.LI and isinstance(inst.imm, int):
            out.setdefault(inst.rd, []).append((pc, int(inst.imm)))
    return out


def _reaching_constant(
    cfg: ControlFlowGraph,
    reg: int,
    loop: Loop,
    dom: dict[int, set[int]],
    consts: dict[int, list[tuple[int, int]]],
) -> int | None:
    """The literal a register holds on loop entry, if provable.

    A definition qualifies when it is the *only* write to ``reg``
    outside the loop that sits in a block dominating the header, and
    no other out-of-loop write could intervene.  This covers the
    ``li``-before-loop idiom without a full dataflow solver.
    """
    candidates: list[int] = []
    writes_outside = 0
    for pc, inst in enumerate(cfg.program.instructions):
        block = cfg.block_of.get(pc)
        if block is None or block in loop.blocks:
            continue
        if reg in reg_writes(inst):
            writes_outside += 1
            if (
                inst.op is Opcode.LI
                and isinstance(inst.imm, int)
                and block in dom.get(loop.header, set())
            ):
                candidates.append(int(inst.imm))
    if writes_outside == 1 and len(candidates) == 1:
        return candidates[0]
    if len(candidates) == 1 and writes_outside == len(candidates):
        return candidates[0]
    return None


def _loop_step(cfg: ControlFlowGraph, loop: Loop, reg: int) -> int | None:
    """Constant per-iteration increment of ``reg`` inside the loop."""
    step = 0
    found = False
    for b in loop.blocks:
        block = cfg.blocks[b]
        for pc in block.pcs():
            inst = cfg.program.instructions[pc]
            if reg not in reg_writes(inst):
                continue
            if (
                inst.op is Opcode.ADDI
                and inst.rs1 == reg
                and isinstance(inst.imm, int)
            ):
                step += int(inst.imm)
                found = True
            else:
                return None  # non-affine update
    return step if found and step != 0 else None


def infer_trip_count(
    cfg: ControlFlowGraph,
    loop_index: int,
    dom: dict[int, set[int]] | None = None,
) -> tuple[float, bool]:
    """Estimate iterations per entry for one loop.

    Recognises the compare-and-branch idiom: a conditional branch in
    the loop whose taken/fall-through edge leaves the loop, comparing
    an affine induction register against a register (or ``r0``) with a
    provable entry constant.  Returns ``(trips, exact)``;
    unrecognised loops report ``(DEFAULT_TRIP_COUNT, False)``.
    """
    loop = cfg.loops[loop_index]
    if dom is None:
        dom = _dominators(cfg)
    consts = _constant_defs(cfg)
    insts = cfg.program.instructions

    best: tuple[float, bool] | None = None
    for b in loop.blocks:
        block = cfg.blocks[b]
        last = insts[block.stop - 1]
        if last.op not in _BRANCH_OPS:
            continue
        # the branch must decide between staying and leaving
        stays = [s for s in block.successors if s in loop.blocks]
        leaves = [s for s in block.successors if s not in loop.blocks]
        if not stays or not leaves:
            continue
        taken_block = cfg.block_of.get(int(last.imm))
        taken_stays = taken_block in loop.blocks

        if last.rs2 == 0 and last.op in (Opcode.BEQ, Opcode.BNE):
            candidate = _compare_trips(
                cfg, loop, b, last, taken_stays, dom, consts
            )
            if candidate is not None:
                if best is None or candidate[0] < best[0]:
                    best = candidate
                continue

        for ind_reg, bound_reg, flipped in (
            (last.rs1, last.rs2, False),
            (last.rs2, last.rs1, True),
        ):
            step = _loop_step(cfg, loop, ind_reg)
            if step is None:
                continue
            init = _reaching_constant(cfg, ind_reg, loop, dom, consts)
            bound = (
                0 if bound_reg == 0
                else _reaching_constant(cfg, bound_reg, loop, dom, consts)
            )
            if bound is None:
                # in-loop constant bound (li inside the loop body)
                bound = _in_loop_constant(cfg, loop, bound_reg)
            if init is None or bound is None:
                continue
            trips = _solve_trips(
                last.op, init, bound, step, flipped, taken_stays
            )
            if trips is None:
                continue
            candidate = (float(max(trips, 1)), True)
            if best is None or candidate[0] < best[0]:
                best = candidate
    if best is not None:
        return best
    return float(DEFAULT_TRIP_COUNT), False


def _block_const_before(
    cfg: ControlFlowGraph, block: BasicBlock, pc: int, reg: int
) -> int | None:
    """The literal ``reg`` holds at ``pc`` when defined by an in-block li."""
    if reg == 0:
        return 0
    insts = cfg.program.instructions
    for p in range(pc - 1, block.start - 1, -1):
        inst = insts[p]
        if reg in reg_writes(inst):
            if inst.op is Opcode.LI and isinstance(inst.imm, int):
                return int(inst.imm)
            return None
    return None


def _loads_slot_before(
    cfg: ControlFlowGraph,
    block: BasicBlock,
    pc: int,
    reg: int,
    slot: tuple[int, int],
) -> bool:
    """Whether ``reg``'s last in-block def before ``pc`` loads ``slot``."""
    insts = cfg.program.instructions
    for p in range(pc - 1, block.start - 1, -1):
        inst = insts[p]
        if reg in reg_writes(inst):
            return (
                inst.op is Opcode.LW
                and inst.rs1 == slot[0]
                and int(inst.imm) == slot[1]
            )
    return False


def _slot_step(
    cfg: ControlFlowGraph, loop: Loop, slot: tuple[int, int]
) -> int | None:
    """Constant per-iteration increment of a memory-resident counter.

    Compilers that keep locals in stack slots (the RL compiler does)
    emit ``lw x, off(fp); li c; add x, x, c; sw x, off(fp)`` per
    iteration; every in-loop store to the slot must match the same
    increment for the step to be provable.
    """
    base, off = slot
    insts = cfg.program.instructions
    step: int | None = None
    for b in loop.blocks:
        block = cfg.blocks[b]
        for pc in block.pcs():
            inst = insts[pc]
            if (
                inst.op is not Opcode.SW
                or inst.rs1 != base
                or int(inst.imm) != off
            ):
                continue
            def_pc = None
            for p in range(pc - 1, block.start - 1, -1):
                if inst.rs2 in reg_writes(insts[p]):
                    def_pc = p
                    break
            if def_pc is None:
                return None
            d = insts[def_pc]
            inc: int | None = None
            if d.op is Opcode.ADDI and _loads_slot_before(
                cfg, block, def_pc, d.rs1, slot
            ):
                inc = int(d.imm)
            elif d.op is Opcode.ADD:
                for x, y in ((d.rs1, d.rs2), (d.rs2, d.rs1)):
                    if _loads_slot_before(cfg, block, def_pc, x, slot):
                        c = _block_const_before(cfg, block, def_pc, y)
                        if c is not None:
                            inc = c
                        break
            if inc is None:
                return None
            if step is None:
                step = inc
            elif step != inc:
                return None
    return step


def _slot_init(
    cfg: ControlFlowGraph,
    loop: Loop,
    slot: tuple[int, int],
    dom: dict[int, set[int]],
) -> int | None:
    """The literal a memory-resident counter holds on loop entry."""
    base, off = slot
    insts = cfg.program.instructions
    header_dom = dom.get(loop.header, set())
    inits: list[int | None] = []
    for block in cfg.blocks:
        if block.index in loop.blocks or block.index not in header_dom:
            continue
        for pc in block.pcs():
            inst = insts[pc]
            if (
                inst.op is Opcode.SW
                and inst.rs1 == base
                and int(inst.imm) == off
            ):
                inits.append(_block_const_before(cfg, block, pc, inst.rs2))
    if len(inits) == 1 and inits[0] is not None:
        return inits[0]
    return None


def _compare_trips(
    cfg: ControlFlowGraph,
    loop: Loop,
    block_index: int,
    branch,
    taken_stays: bool,
    dom: dict[int, set[int]],
    consts: dict[int, list[tuple[int, int]]],
) -> tuple[float, bool] | None:
    """Trips for the materialised-compare idiom: slt/seq then beq/bne r0.

    The RL compiler (like most simple code generators) lowers ``while
    (i < n)`` to a compare writing 0/1 followed by a branch against
    ``r0``, with the counter living in a stack slot.  This recognises
    both register and memory-slot induction through the compare.
    """
    block = cfg.blocks[block_index]
    insts = cfg.program.instructions
    cmp_pc = None
    for pc in range(block.stop - 2, block.start - 1, -1):
        if branch.rs1 in reg_writes(insts[pc]):
            cmp_pc = pc
            break
    if cmp_pc is None:
        return None
    cmp_inst = insts[cmp_pc]
    if cmp_inst.op not in (Opcode.SLT, Opcode.SLTI, Opcode.SEQ):
        return None
    synth_op = Opcode.BEQ if cmp_inst.op is Opcode.SEQ else Opcode.BLT
    # beq t, r0 branches when the compare came out FALSE
    if branch.op is Opcode.BEQ:
        taken_stays = not taken_stays

    if cmp_inst.op is Opcode.SLTI:
        bound: int | None = int(cmp_inst.imm)
    else:
        bound_reg = cmp_inst.rs2
        bound = _block_const_before(cfg, block, cmp_pc, bound_reg)
        if bound is None:
            bound = (
                0 if bound_reg == 0
                else _reaching_constant(cfg, bound_reg, loop, dom, consts)
            )
        if bound is None:
            bound = _in_loop_constant(cfg, loop, bound_reg)
    if bound is None:
        return None

    a_reg = cmp_inst.rs1
    slot: tuple[int, int] | None = None
    for pc in range(cmp_pc - 1, block.start - 1, -1):
        if a_reg in reg_writes(insts[pc]):
            ld = insts[pc]
            if ld.op is Opcode.LW:
                slot = (ld.rs1, int(ld.imm))
            break
    if slot is not None:
        step = _slot_step(cfg, loop, slot)
        init = _slot_init(cfg, loop, slot, dom)
    else:
        step = _loop_step(cfg, loop, a_reg)
        init = _reaching_constant(cfg, a_reg, loop, dom, consts)
    if step is None or init is None:
        return None
    trips = _solve_trips(synth_op, init, bound, step, False, taken_stays)
    if trips is None:
        return None
    return (float(max(trips, 1)), True)


def _in_loop_constant(cfg: ControlFlowGraph, loop: Loop, reg: int) -> int | None:
    """A bound register reloaded with the same literal every iteration."""
    values: set[int] = set()
    for b in loop.blocks:
        for pc in cfg.blocks[b].pcs():
            inst = cfg.program.instructions[pc]
            if reg in reg_writes(inst):
                if inst.op is Opcode.LI and isinstance(inst.imm, int):
                    values.add(int(inst.imm))
                else:
                    return None
    return values.pop() if len(values) == 1 else None


def _solve_trips(
    op: Opcode, init: int, bound: int, step: int,
    flipped: bool, taken_stays: bool,
) -> int | None:
    """Iterations until the compare-branch stops staying in the loop.

    ``flipped`` means the induction register is the branch's second
    operand; ``taken_stays`` means the taken edge remains in the loop.
    Simulation in closed form: find the smallest k >= 0 where the
    "stay" condition fails, capped for pathological parameters.
    """
    def cond(x: int) -> bool:
        a, b = (bound, x) if flipped else (x, bound)
        if op is Opcode.BLT:
            taken = a < b
        elif op is Opcode.BGE:
            taken = a >= b
        elif op is Opcode.BLE:
            taken = a <= b
        elif op is Opcode.BGT:
            taken = a > b
        elif op is Opcode.BEQ:
            taken = a == b
        elif op is Opcode.BNE:
            taken = a != b
        else:  # pragma: no cover - _BRANCH_OPS is exhaustive
            return False
        return taken if taken_stays else not taken

    # closed forms for the common monotone comparisons
    if op in (Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT):
        lo = init
        if not cond(lo):
            return 1  # body runs once in do-while shape before the test
        # distance to the bound in steps
        span = bound - init if step > 0 else init - bound
        if span <= 0:
            return 1
        import math

        k = math.ceil(span / abs(step))
        slack = 2  # <=/>= off-by-one; verify around the closed form
        for candidate in range(max(k - slack, 1), k + slack + 1):
            x = init + candidate * step
            if not cond(x):
                return candidate
        return k
    # equality tests: walk a bounded number of steps
    x = init
    for k in range(1, 1 << 16):
        x += step
        if not cond(x):
            return k
    return None


# ---------------------------------------------------------------------------
# value-repetition inference
# ---------------------------------------------------------------------------

#: compare-style ops: results are 0/1 regardless of input cardinality
_BOOL_OPS = frozenset({
    Opcode.SLT, Opcode.SEQ, Opcode.SLTI,
    Opcode.FEQ, Opcode.FLT, Opcode.FLE,
})
#: cardinality products beyond this are indistinguishable from "varies"
_CARD_CAP = 1e18


def data_regions(program: Program) -> list[tuple[int, int, float]]:
    """Per-label data regions as ``(start, end, cardinality)``.

    Cardinality is the number of distinct initialised words in the
    region — the static upper bound on what any load from it can
    produce.  Uniform regions (``.space`` scratch buffers assemble to
    all-zeros) are runtime-written, so their contents are unknowable
    statically and report ``inf``.
    """
    import math

    if not program.data_labels:
        return []
    starts = sorted(set(program.data_labels.values()))
    data_end = max(program.data) + 1 if program.data else starts[-1]
    regions: list[tuple[int, int, float]] = []
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else data_end
        values = {
            program.data[a] for a in range(start, end) if a in program.data
        }
        card = float(len(values)) if len(values) > 1 else math.inf
        regions.append((start, end, card))
    return regions


def loop_value_cardinality(
    cfg: ControlFlowGraph,
    loop_index: int,
    regions: list[tuple[int, int, float]] | None = None,
    dom: dict[int, set[int]] | None = None,
) -> dict[int, float]:
    """Distinct values each register can take across one loop's run.

    Control structure bounds *when* an instruction re-executes; data
    contents bound *what* it can see.  A register loaded through a
    small-alphabet region (a token stream of ten kinds, a text buffer
    over a sixteen-symbol alphabet) takes at most that many values no
    matter how many iterations run — and everything computed from it
    inherits the bound (products across sources, 2 for compare
    results, the divisor for a constant modulus).  The estimator
    clamps structural signature counts with these bounds, which is
    where kernels whose reuse is carried by value repetition rather
    than loop re-entry (the paper's ``gcc``/``compress`` pattern)
    become visible statically.

    Returns ``{register: cardinality}``; unbounded registers report
    ``inf``.  Registers invariant in the loop are not included —
    their trajectory is a single value per entry by definition.
    """
    import math

    loop = cfg.loops[loop_index]
    if regions is None:
        regions = data_regions(cfg.program)
    if dom is None:
        dom = _dominators(cfg)
    consts = _constant_defs(cfg)
    insts = cfg.program.instructions
    pcs = sorted(pc for b in loop.blocks for pc in cfg.blocks[b].pcs())

    def region_of(addr: int) -> tuple[int, int, float] | None:
        for start, end, card in regions:
            if start <= addr < end:
                return (start, end, card)
        return None

    # seed register facts reaching the loop: literal values (for
    # modulus divisors) and data-region base addresses
    known: dict[int, int] = {}
    tags: dict[int, tuple[int, int, float]] = {}
    seen: set[int] = set()
    for pc in pcs:
        inst = insts[pc]
        for r in reg_reads(inst):
            if r in seen:
                continue
            seen.add(r)
            value = _reaching_constant(cfg, r, loop, dom, consts)
            if value is None:
                continue
            known[r] = value
            region = region_of(value)
            if region is not None:
                tags[r] = region

    card: dict[int, float] = {}

    def card_of(reg: int) -> float:
        return card.get(reg, math.inf)

    def transfer(inst) -> float | None:
        op = inst.op
        reads = reg_reads(inst)
        if op in (Opcode.LI, Opcode.FLI):
            return 1.0
        if op in _BOOL_OPS:
            return 2.0
        if op in (Opcode.LW, Opcode.FLW):
            # the loaded value: bounded by the region's alphabet, and
            # by how many distinct addresses the base can form
            base = reads[0] if reads else None
            bound = math.inf
            if base is not None:
                region = tags.get(base)
                if region is not None:
                    bound = region[2]
                bound = min(bound, card_of(base)) if base in card else bound
            return bound
        if op is Opcode.REM and len(reads) == 2:
            divisor = known.get(inst.rs2)
            if divisor:
                return float(abs(divisor))
        if op is Opcode.ANDI and isinstance(inst.imm, int) and inst.imm >= 0:
            return float(inst.imm + 1)
        if not reads:
            return 1.0
        product = 1.0
        for r in reads:
            product *= card_of(r)
            if product > _CARD_CAP:
                return math.inf
        return product

    # fixpoint: variant registers start unbounded and only tighten
    # (min-combine), so a loop-carried ``tok = successor[tok]`` chain
    # settles at the region alphabet instead of diverging
    for _ in range(8):
        changed = False
        for pc in pcs:
            inst = insts[pc]
            writes = reg_writes(inst)
            if not writes:
                # in-body li feeding a modulus: record the literal
                continue
            if inst.op is Opcode.LI and isinstance(inst.imm, int):
                known.setdefault(writes[0], int(inst.imm))
                region = region_of(int(inst.imm))
                if region is not None and writes[0] not in tags:
                    tags[writes[0]] = region
            if inst.op in (Opcode.ADD, Opcode.ADDI, Opcode.MOV):
                for r in reg_reads(inst):
                    region = tags.get(r)
                    if region is not None and writes[0] not in tags:
                        tags[writes[0]] = region
                        changed = True
            new = transfer(inst)
            if new is not None and new < card.get(writes[0], math.inf):
                card[writes[0]] = new
                changed = True
        if not changed:
            break
    return card


@dataclass(slots=True)
class FrequencyEstimate:
    """Block execution counts plus the trip counts that produced them."""

    #: block index -> estimated dynamic executions
    blocks: dict[int, float]
    #: loop index -> iterations per entry *after* budget trimming
    eff_trips: dict[int, float]

    # dict-compatible read access (census and older callers index by
    # block): ``freqs[block_index]`` keeps working either way
    def __getitem__(self, block: int) -> float:
        return self.blocks[block]

    def get(self, block: int, default: float = 0.0) -> float:
        return self.blocks.get(block, default)


def estimate_frequencies(
    cfg: ControlFlowGraph,
    budget: int | None = None,
) -> FrequencyEstimate:
    """Estimated dynamic executions per *block*.

    The frequency of a block is the product of the trip counts of its
    enclosing loops, times the entry count of the outermost enclosing
    structure (1 for top-level code, the caller's frequency for called
    functions — approximated by the total frequency of call sites).

    With ``budget`` set, outer-loop repetitions are trimmed first —
    the shape a truncated run has — until the estimated dynamic
    instruction total fits the budget; whatever excess remains after
    every outer loop has hit one iteration (e.g. recursion-amplified
    call multipliers) is removed by a final uniform rescale.
    """
    eff_trips = {i: loop.trip_count for i, loop in enumerate(cfg.loops)}

    def block_freq(call_mult: dict[int, float]) -> dict[int, float]:
        freqs: dict[int, float] = {}
        for block in cfg.blocks:
            if block.index not in cfg.reachable:
                freqs[block.index] = 0.0
                continue
            f = call_mult.get(_function_entry(cfg, block.index), 1.0)
            for li in cfg.loops_enclosing(block.index):
                f *= max(eff_trips[li], 1.0)
            freqs[block.index] = f
        return freqs

    call_mult = _call_multipliers(cfg, eff_trips)
    freqs = block_freq(call_mult)

    if budget is not None:
        total = sum(
            freqs[b.index] * len(b) for b in cfg.blocks
        )
        guard = 0
        while total > budget and guard < 64:
            guard += 1
            outer = [
                i for i, loop in enumerate(cfg.loops)
                if loop.parent is None and eff_trips[i] > 1.0
            ]
            if not outer:
                break
            factor = budget / total
            for i in outer:
                eff_trips[i] = max(eff_trips[i] * factor, 1.0)
            call_mult = _call_multipliers(cfg, eff_trips)
            freqs = block_freq(call_mult)
            total = sum(freqs[b.index] * len(b) for b in cfg.blocks)
        if total > budget and total > 0:
            # loops are all at one iteration yet the total still
            # overshoots (recursion-amplified call multipliers):
            # truncate uniformly
            factor = budget / total
            freqs = {b: f * factor for b, f in freqs.items()}
    return FrequencyEstimate(blocks=freqs, eff_trips=eff_trips)


def function_entry(cfg: ControlFlowGraph, block: int) -> int:
    """Public alias of :func:`_function_entry` (0 = top-level code)."""
    return _function_entry(cfg, block)


def _function_entry(cfg: ControlFlowGraph, block: int) -> int:
    """The entry block of the function containing ``block``.

    Approximated as the closest call-target block at or before it
    (functions are laid out contiguously by both the RL compiler and
    the hand-written kernels); top-level code maps to block 0.
    """
    targets = sorted(
        cfg.block_of[b.call_target]
        for b in cfg.blocks
        if b.call_target is not None and b.call_target in cfg.block_of
    )
    entry = 0
    for t in targets:
        if t <= block:
            entry = max(entry, t)
    return entry


def _call_multipliers(
    cfg: ControlFlowGraph, eff_trips: dict[int, float]
) -> dict[int, float]:
    """Entry frequency per function-entry block, from call sites.

    One bounded fixpoint round (call graphs here are shallow; the RL
    compiler only emits direct calls).
    """
    mult: dict[int, float] = {0: 1.0}
    for _round in range(8):
        changed = False
        new: dict[int, float] = {0: 1.0}
        for block in cfg.blocks:
            if block.call_target is None or block.index not in cfg.reachable:
                continue
            entry = cfg.block_of.get(block.call_target)
            if entry is None:
                continue
            f = mult.get(_function_entry(cfg, block.index), 1.0)
            for li in cfg.loops_enclosing(block.index):
                f *= max(eff_trips[li], 1.0)
            new[entry] = new.get(entry, 0.0) + f
        for k, v in new.items():
            if abs(mult.get(k, 0.0) - v) > 1e-9:
                changed = True
        mult = new
        if not changed:
            break
    return mult


def class_census(
    cfg: ControlFlowGraph,
    freqs: FrequencyEstimate | dict[int, float] | None = None,
) -> dict[int, dict[str, float]]:
    """Instruction-class census per loop depth.

    Returns ``{depth: {op-class name: estimated dynamic count}}``;
    depth 0 is straight-line code outside any loop.
    """
    if freqs is None:
        freqs = estimate_frequencies(cfg)
    census: dict[int, dict[str, float]] = {}
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        depth = cfg.depth_of_block(block.index)
        bucket = census.setdefault(depth, {})
        f = freqs[block.index]
        for pc in block.pcs():
            name = op_class(cfg.program.instructions[pc].op).name
            bucket[name] = bucket.get(name, 0.0) + f
    return census
