"""Abstract syntax of the RL language."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class for expressions (all nodes carry a source line)."""

    line: int


@dataclass(frozen=True, slots=True)
class IntLiteral(Expr):
    value: int


@dataclass(frozen=True, slots=True)
class VarRef(Expr):
    name: str


@dataclass(frozen=True, slots=True)
class IndexRef(Expr):
    name: str
    index: Expr


@dataclass(frozen=True, slots=True)
class Unary(Expr):
    op: str  # "-" or "!"
    operand: Expr


@dataclass(frozen=True, slots=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class Call(Expr):
    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class Stmt:
    """Base class for statements."""

    line: int


@dataclass(frozen=True, slots=True)
class VarDecl(Stmt):
    name: str
    initial: Expr | None


@dataclass(frozen=True, slots=True)
class Assign(Stmt):
    target: VarRef | IndexRef
    value: Expr


@dataclass(frozen=True, slots=True)
class If(Stmt):
    condition: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...]


@dataclass(frozen=True, slots=True)
class While(Stmt):
    condition: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True, slots=True)
class Return(Stmt):
    value: Expr | None


@dataclass(frozen=True, slots=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True, slots=True)
class GlobalVar:
    name: str
    size: int  # 1 for scalars
    initial: tuple[int, ...]  # initial words (padded with zeros)
    line: int


@dataclass(frozen=True, slots=True)
class Function:
    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    line: int


@dataclass(frozen=True, slots=True)
class Module:
    globals: tuple[GlobalVar, ...] = field(default=())
    functions: tuple[Function, ...] = field(default=())
