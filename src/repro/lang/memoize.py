"""Software memoization: the paper's section-2 software reuse path.

Data value reuse "can be implemented by software or hardware"; the
software form is memoization — wrap a pure function with a result
table.  :func:`memoize_functions` performs that transformation on an
RL module mechanically:

- the original function ``f`` is renamed ``f__orig``;
- a wrapper named ``f`` is generated that hashes the argument into a
  direct-mapped table, returns the cached result on a key match, and
  otherwise computes, fills the table, and returns;
- every call site (including recursive ones inside ``f`` itself) now
  reaches the wrapper, so recursive computations collapse the way a
  textbook memoized Fibonacci does.

Only single-argument functions are supported (the table is keyed on
one value, like Richardson's result cache for unary operations).  The
transformation assumes the function is *pure*: callers are responsible
for that judgement, exactly as with manual memoization.

Comparing the reuse profile of a memoized binary against the hardware
RTM on the unmemoized one quantifies the paper's software/hardware
trade-off — see ``benchmarks/test_ablation_memoization.py``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.lang.ast_nodes import Function, Module
from repro.lang.compiler import CompileError
from repro.lang.parser import parse


def _wrapper_source(name: str, table_size: int) -> str:
    """RL source of the memo table and wrapper for one function."""
    return f"""
var memo_key_{name}[{table_size}]
var memo_val_{name}[{table_size}]

func {name}(x) {{
    var h = (x * 2654435761) % {table_size}
    if (h < 0) {{ h = 0 - h }}
    if (memo_key_{name}[h] == x + 1) {{
        return memo_val_{name}[h]
    }}
    var r = {name}__orig(x)
    memo_key_{name}[h] = x + 1
    memo_val_{name}[h] = r
    return r
}}
"""


def memoize_functions(
    source: str,
    names: Iterable[str],
    *,
    table_size: int = 64,
) -> Module:
    """Parse RL source and memoize the named single-argument functions.

    Returns the transformed module, ready for
    :func:`repro.lang.compiler.compile_module`.
    """
    if table_size <= 0:
        raise ValueError("table_size must be positive")
    module = parse(source)
    names = list(names)
    by_name = {f.name: f for f in module.functions}
    for name in names:
        if name not in by_name:
            raise CompileError(f"cannot memoize unknown function {name!r}", 1)
        if name == "main":
            raise CompileError("cannot memoize 'main'", 1)
        if len(by_name[name].params) != 1:
            raise CompileError(
                f"memoization supports single-argument functions; "
                f"{name!r} takes {len(by_name[name].params)}",
                by_name[name].line,
            )

    # Call sites need no rewriting: they keep calling ``name``, which
    # becomes the wrapper — recursive calls inside the original body
    # therefore go through the memo table too.  Only the definition of
    # the memoized function is renamed.
    from dataclasses import replace

    new_functions: list[Function] = []
    for function in module.functions:
        if function.name in names:
            new_functions.append(replace(function, name=f"{function.name}__orig"))
        else:
            new_functions.append(function)

    new_globals = list(module.globals)
    for name in names:
        wrapper_module = parse(_wrapper_source(name, table_size))
        new_globals.extend(wrapper_module.globals)
        new_functions.extend(wrapper_module.functions)

    return Module(globals=tuple(new_globals), functions=tuple(new_functions))
