"""Recursive-descent parser for the RL language."""

from __future__ import annotations

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    Function,
    GlobalVar,
    If,
    IndexRef,
    IntLiteral,
    Module,
    Return,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from repro.lang.errors import SourceError
from repro.lang.lexer import Token, tokenize


class ParseError(SourceError):
    """Syntax error with a source position."""


#: binary operator precedence levels, loosest first
_PRECEDENCE: list[list[str]] = [
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if not self.check(kind, text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text!r}",
                token.line, token.col,
            )
        return self.advance()

    # -- grammar ---------------------------------------------------------
    def module(self) -> Module:
        globals_: list[GlobalVar] = []
        functions: list[Function] = []
        while not self.check("eof"):
            if self.check("keyword", "var"):
                globals_.append(self.global_var())
            elif self.check("keyword", "func"):
                functions.append(self.function())
            else:
                token = self.peek()
                raise ParseError(
                    f"expected 'var' or 'func' at top level, found {token.text!r}",
                    token.line,
                )
        return Module(globals=tuple(globals_), functions=tuple(functions))

    def global_var(self) -> GlobalVar:
        line = self.expect("keyword", "var").line
        name = self.expect("ident").text
        size = 1
        initial: tuple[int, ...] = ()
        if self.accept("op", "["):
            size_token = self.expect("int")
            size = int(size_token.text, 0)
            if size <= 0:
                raise ParseError("array size must be positive", size_token.line)
            self.expect("op", "]")
        if self.accept("op", "="):
            if self.accept("op", "{"):
                values = [int(self.expect("int").text, 0)]
                while self.accept("op", ","):
                    values.append(int(self.expect("int").text, 0))
                self.expect("op", "}")
                if len(values) > size:
                    raise ParseError("too many initialisers", line)
                initial = tuple(values)
            else:
                token = self.peek()
                negative = bool(self.accept("op", "-"))
                value_token = self.expect("int")
                value = int(value_token.text, 0)
                initial = (-value if negative else value,)
                if size != 1:
                    raise ParseError(
                        "array initialisers use {v, v, ...}", token.line
                    )
        self.accept("op", ";")
        return GlobalVar(name=name, size=size, initial=initial, line=line)

    def function(self) -> Function:
        line = self.expect("keyword", "func").line
        name = self.expect("ident").text
        self.expect("op", "(")
        params: list[str] = []
        if not self.check("op", ")"):
            params.append(self.expect("ident").text)
            while self.accept("op", ","):
                params.append(self.expect("ident").text)
        self.expect("op", ")")
        body = self.block()
        if len(params) > 4:
            raise ParseError("at most 4 parameters are supported", line)
        return Function(name=name, params=tuple(params), body=body, line=line)

    def block(self) -> tuple[Stmt, ...]:
        self.expect("op", "{")
        statements: list[Stmt] = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise ParseError(
                    "unterminated block",
                    self.peek().line, self.peek().col,
                )
            statements.append(self.statement())
        self.expect("op", "}")
        return tuple(statements)

    def statement(self) -> Stmt:
        token = self.peek()
        if token.kind == "keyword":
            if token.text == "var":
                return self.local_var()
            if token.text == "if":
                return self.if_stmt()
            if token.text == "while":
                return self.while_stmt()
            if token.text == "return":
                return self.return_stmt()
            raise ParseError(
                f"unexpected keyword {token.text!r}", token.line, token.col
            )
        # assignment or expression statement
        expr = self.expression()
        if self.accept("op", "="):
            if not isinstance(expr, (VarRef, IndexRef)):
                raise ParseError("invalid assignment target", token.line, token.col)
            value = self.expression()
            self.accept("op", ";")
            return Assign(line=token.line, target=expr, value=value)
        self.accept("op", ";")
        return ExprStmt(line=token.line, expr=expr)

    def local_var(self) -> VarDecl:
        line = self.expect("keyword", "var").line
        name = self.expect("ident").text
        if self.check("op", "["):
            raise ParseError("arrays must be declared at top level", line)
        initial = None
        if self.accept("op", "="):
            initial = self.expression()
        self.accept("op", ";")
        return VarDecl(line=line, name=name, initial=initial)

    def if_stmt(self) -> If:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        condition = self.expression()
        self.expect("op", ")")
        then_body = self.block()
        else_body: tuple[Stmt, ...] = ()
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                else_body = (self.if_stmt(),)
            else:
                else_body = self.block()
        return If(line=line, condition=condition, then_body=then_body,
                  else_body=else_body)

    def while_stmt(self) -> While:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        condition = self.expression()
        self.expect("op", ")")
        body = self.block()
        return While(line=line, condition=condition, body=body)

    def return_stmt(self) -> Return:
        line = self.expect("keyword", "return").line
        value = None
        if not self.check("op", ";") and not self.check("op", "}"):
            value = self.expression()
        self.accept("op", ";")
        return Return(line=line, value=value)

    # -- expressions -------------------------------------------------
    def expression(self, level: int = 0) -> Expr:
        if level == len(_PRECEDENCE):
            return self.unary()
        left = self.expression(level + 1)
        while self.peek().kind == "op" and self.peek().text in _PRECEDENCE[level]:
            op = self.advance()
            right = self.expression(level + 1)
            left = Binary(line=op.line, op=op.text, left=left, right=right)
        return left

    def unary(self) -> Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!"):
            self.advance()
            operand = self.unary()
            return Unary(line=token.line, op=token.text, operand=operand)
        return self.primary()

    def primary(self) -> Expr:
        token = self.advance()
        if token.kind == "int":
            return IntLiteral(line=token.line, value=int(token.text, 0))
        if token.kind == "ident":
            if self.accept("op", "("):
                args: list[Expr] = []
                if not self.check("op", ")"):
                    args.append(self.expression())
                    while self.accept("op", ","):
                        args.append(self.expression())
                self.expect("op", ")")
                if len(args) > 4:
                    raise ParseError("at most 4 arguments are supported", token.line)
                return Call(line=token.line, name=token.text, args=tuple(args))
            if self.accept("op", "["):
                index = self.expression()
                self.expect("op", "]")
                return IndexRef(line=token.line, name=token.text, index=index)
            return VarRef(line=token.line, name=token.text)
        if token.kind == "op" and token.text == "(":
            expr = self.expression()
            self.expect("op", ")")
            return expr
        raise ParseError(
            f"unexpected token {token.text!r}", token.line, token.col
        )


def parse(source: str) -> Module:
    """Parse RL source text into a :class:`Module`.

    Raises :class:`~repro.lang.errors.SourceError` subclasses only
    (``LexError``/``ParseError``) — internal faults on pathological
    input are converted at this boundary.
    """
    try:
        return _Parser(tokenize(source)).module()
    except SourceError:
        raise
    except RecursionError:
        raise ParseError("expression nesting too deep", 1) from None
    except (KeyError, IndexError) as exc:  # pragma: no cover - belt
        raise ParseError(f"internal parser fault: {exc!r}", 1) from exc
