"""RL — a small imperative language for authoring workloads.

Writing benchmark kernels directly in assembly is exacting; RL is a
tiny integer language (variables, global arrays, ``if``/``while``,
functions) that compiles to the reproduction ISA, so users can author
custom workloads for the reuse analyses in a few readable lines:

.. code-block:: text

    var table[64]

    func fill(n) {
        var i = 0
        while (i < n) {
            table[i] = i * i
            i = i + 1
        }
        return 0
    }

    func main() {
        var pass = 0
        while (pass < 100) {
            fill(64)
            pass = pass + 1
        }
        return 0
    }

Use :func:`compile_source` for a ready-to-run
:class:`~repro.vm.program.Program`, or :func:`compile_to_assembly` to
inspect the generated assembly.
"""

from repro.lang.compiler import (
    CompileError,
    compile_source,
    compile_to_assembly,
)
from repro.lang.errors import SourceError
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError, parse

__all__ = [
    "compile_source", "compile_to_assembly", "parse",
    "SourceError", "LexError", "ParseError", "CompileError",
]
