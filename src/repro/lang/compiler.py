"""Code generation: RL modules to reproduction-ISA assembly.

Conventions:

- globals live in the data segment; locals live in a stack frame
  addressed through the frame pointer (``fp``);
- expressions evaluate on a small register stack (``t0``-``t7``);
  deeper nesting is a compile error rather than a silent spill;
- arguments pass in ``a0``-``a3``, results return in ``v0``;
- ``>>`` is an arithmetic shift; division truncates toward zero
  (the ISA's DIV/REM semantics).
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    Function,
    GlobalVar,
    If,
    IndexRef,
    IntLiteral,
    Module,
    Return,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from repro.lang.errors import SourceError
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError, parse
from repro.vm.assembler import assemble
from repro.vm.program import Program

__all__ = [
    "CompileError",
    "compile_module",
    "compile_source",
    "compile_to_assembly",
]

_MAX_DEPTH = 8  # expression register stack: t0..t7


class CompileError(SourceError):
    """Semantic error with a source line."""


_BINARY_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor", "<<": "sll", ">>": "sra",
}


class _FunctionCompiler:
    def __init__(self, module_compiler: "_ModuleCompiler", function: Function):
        self.mc = module_compiler
        self.function = function
        self.lines: list[str] = []
        self.slots: dict[str, int] = {}
        self._collect_locals()

    # -- frame layout ---------------------------------------------------
    def _declare(self, name: str, line: int) -> int:
        if name in self.slots:
            raise CompileError(f"duplicate local {name!r}", line)
        if name in self.mc.global_sizes:
            raise CompileError(f"local {name!r} shadows a global", line)
        slot = len(self.slots)
        self.slots[name] = slot
        return slot

    def _collect_locals(self) -> None:
        for param in self.function.params:
            self._declare(param, self.function.line)

        def walk(statements):
            for stmt in statements:
                if isinstance(stmt, VarDecl):
                    self._declare(stmt.name, stmt.line)
                elif isinstance(stmt, If):
                    walk(stmt.then_body)
                    walk(stmt.else_body)
                elif isinstance(stmt, While):
                    walk(stmt.body)

        walk(self.function.body)

    def _slot_offset(self, slot: int) -> int:
        return -(slot + 1)

    # -- emission helpers -------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def _reg(self, depth: int, line: int) -> str:
        if depth >= _MAX_DEPTH:
            raise CompileError(
                f"expression too deep (more than {_MAX_DEPTH} live values); "
                "split it across statements",
                line,
            )
        return f"t{depth}"

    # -- expressions ------------------------------------------------------
    def expr(self, node: Expr, depth: int) -> str:
        """Evaluate ``node`` into the register for ``depth``; returns it."""
        reg = self._reg(depth, node.line)
        if isinstance(node, IntLiteral):
            self.emit(f"li   {reg}, {node.value}")
            return reg
        if isinstance(node, VarRef):
            if node.name in self.slots:
                offset = self._slot_offset(self.slots[node.name])
                self.emit(f"lw   {reg}, {offset}(fp)")
            elif node.name in self.mc.global_sizes:
                if self.mc.global_sizes[node.name] != 1:
                    raise CompileError(
                        f"array {node.name!r} needs an index", node.line
                    )
                self.emit(f"la   {reg}, g_{node.name}")
                self.emit(f"lw   {reg}, 0({reg})")
            else:
                raise CompileError(f"undefined variable {node.name!r}", node.line)
            return reg
        if isinstance(node, IndexRef):
            self._array_address(node, depth)
            self.emit(f"lw   {reg}, 0({reg})")
            return reg
        if isinstance(node, Unary):
            self.expr(node.operand, depth)
            if node.op == "-":
                self.emit(f"sub  {reg}, r0, {reg}")
            else:  # "!"
                self.emit(f"seq  {reg}, {reg}, r0")
            return reg
        if isinstance(node, Binary):
            return self._binary(node, depth)
        if isinstance(node, Call):
            return self._call(node, depth)
        raise CompileError(f"unsupported expression {type(node).__name__}", node.line)

    def _array_address(self, node: IndexRef, depth: int) -> str:
        """Leave the element address in the depth register."""
        reg = self._reg(depth, node.line)
        if node.name in self.slots:
            raise CompileError(f"{node.name!r} is a scalar local", node.line)
        if node.name not in self.mc.global_sizes:
            raise CompileError(f"undefined array {node.name!r}", node.line)
        self.expr(node.index, depth)
        scratch = self._reg(depth + 1, node.line)
        self.emit(f"la   {scratch}, g_{node.name}")
        self.emit(f"add  {reg}, {reg}, {scratch}")
        return reg

    def _binary(self, node: Binary, depth: int) -> str:
        reg = self._reg(depth, node.line)
        self.expr(node.left, depth)
        rhs = self.expr(node.right, depth + 1)
        op = node.op
        if op in _BINARY_OPS:
            self.emit(f"{_BINARY_OPS[op]:4s} {reg}, {reg}, {rhs}")
        elif op == "<":
            self.emit(f"slt  {reg}, {reg}, {rhs}")
        elif op == ">":
            self.emit(f"slt  {reg}, {rhs}, {reg}")
        elif op == "<=":
            self.emit(f"slt  {reg}, {rhs}, {reg}")
            self.emit(f"xori {reg}, {reg}, 1")
        elif op == ">=":
            self.emit(f"slt  {reg}, {reg}, {rhs}")
            self.emit(f"xori {reg}, {reg}, 1")
        elif op == "==":
            self.emit(f"seq  {reg}, {reg}, {rhs}")
        elif op == "!=":
            self.emit(f"seq  {reg}, {reg}, {rhs}")
            self.emit(f"xori {reg}, {reg}, 1")
        else:  # pragma: no cover - the parser only produces known ops
            raise CompileError(f"unknown operator {op!r}", node.line)
        return reg

    def _call(self, node: Call, depth: int) -> str:
        if node.name not in self.mc.function_params:
            raise CompileError(f"undefined function {node.name!r}", node.line)
        expected = self.mc.function_params[node.name]
        if len(node.args) != expected:
            raise CompileError(
                f"{node.name!r} takes {expected} argument(s), "
                f"got {len(node.args)}",
                node.line,
            )
        reg = self._reg(depth, node.line)
        for i, arg in enumerate(node.args):
            self.expr(arg, depth + i)
        # preserve the caller's live expression registers
        for i in range(depth):
            self.emit(f"push t{i}")
        for i in range(len(node.args)):
            self.emit(f"mov  a{i}, t{depth + i}")
        self.emit(f"call fn_{node.name}")
        for i in reversed(range(depth)):
            self.emit(f"pop  t{i}")
        self.emit(f"mov  {reg}, v0")
        return reg

    # -- statements -------------------------------------------------------
    def stmt(self, node: Stmt) -> None:
        if isinstance(node, VarDecl):
            if node.initial is not None:
                reg = self.expr(node.initial, 0)
                offset = self._slot_offset(self.slots[node.name])
                self.emit(f"sw   {reg}, {offset}(fp)")
            return
        if isinstance(node, Assign):
            target = node.target
            if isinstance(target, VarRef):
                reg = self.expr(node.value, 0)
                if target.name in self.slots:
                    offset = self._slot_offset(self.slots[target.name])
                    self.emit(f"sw   {reg}, {offset}(fp)")
                elif target.name in self.mc.global_sizes:
                    if self.mc.global_sizes[target.name] != 1:
                        raise CompileError(
                            f"array {target.name!r} needs an index", target.line
                        )
                    scratch = self._reg(1, target.line)
                    self.emit(f"la   {scratch}, g_{target.name}")
                    self.emit(f"sw   {reg}, 0({scratch})")
                else:
                    raise CompileError(
                        f"undefined variable {target.name!r}", target.line
                    )
            else:  # IndexRef
                value = self.expr(node.value, 0)
                address = self._array_address(target, 1)
                self.emit(f"sw   {value}, 0({address})")
            return
        if isinstance(node, If):
            label = self.mc.fresh_label()
            cond = self.expr(node.condition, 0)
            if node.else_body:
                self.emit(f"beqz {cond}, {label}_else")
            else:
                self.emit(f"beqz {cond}, {label}_end")
            for inner in node.then_body:
                self.stmt(inner)
            if node.else_body:
                self.emit(f"j    {label}_end")
                self.emit_label(f"{label}_else")
                for inner in node.else_body:
                    self.stmt(inner)
            self.emit_label(f"{label}_end")
            return
        if isinstance(node, While):
            label = self.mc.fresh_label()
            self.emit_label(f"{label}_cond")
            cond = self.expr(node.condition, 0)
            self.emit(f"beqz {cond}, {label}_end")
            for inner in node.body:
                self.stmt(inner)
            self.emit(f"j    {label}_cond")
            self.emit_label(f"{label}_end")
            return
        if isinstance(node, Return):
            if node.value is not None:
                reg = self.expr(node.value, 0)
                self.emit(f"mov  v0, {reg}")
            else:
                self.emit("li   v0, 0")
            self.emit(f"j    fn_{self.function.name}__ret")
            return
        if isinstance(node, ExprStmt):
            self.expr(node.expr, 0)
            return
        raise CompileError(  # pragma: no cover - parser covers all statements
            f"unsupported statement {type(node).__name__}", node.line
        )

    # -- whole function -----------------------------------------------------
    def compile(self) -> list[str]:
        name = self.function.name
        self.emit_label(f"fn_{name}")
        self.emit("push ra")
        self.emit("push fp")
        self.emit("mov  fp, sp")
        if self.slots:
            self.emit(f"subi sp, sp, {len(self.slots)}")
        for i, _param in enumerate(self.function.params):
            self.emit(f"sw   a{i}, {self._slot_offset(i)}(fp)")
        for stmt in self.function.body:
            self.stmt(stmt)
        self.emit("li   v0, 0")  # implicit return 0 at fall-off
        self.emit_label(f"fn_{name}__ret")
        self.emit("mov  sp, fp")
        self.emit("pop  fp")
        self.emit("pop  ra")
        self.emit("ret")
        return self.lines


class _ModuleCompiler:
    def __init__(self, module: Module):
        self.module = module
        self.global_sizes: dict[str, int] = {}
        self.function_params: dict[str, int] = {}
        self._label_counter = 0
        for decl in module.globals:
            if decl.name in self.global_sizes:
                raise CompileError(f"duplicate global {decl.name!r}", decl.line)
            self.global_sizes[decl.name] = decl.size
        for function in module.functions:
            if function.name in self.function_params:
                raise CompileError(
                    f"duplicate function {function.name!r}", function.line
                )
            self.function_params[function.name] = len(function.params)
        if "main" not in self.function_params:
            raise CompileError("no 'main' function defined", 1)
        if self.function_params["main"] != 0:
            raise CompileError("'main' takes no arguments", 1)

    def fresh_label(self) -> str:
        self._label_counter += 1
        return f"L{self._label_counter}"

    def compile(self) -> str:
        lines: list[str] = ["# generated by repro.lang", ".data"]
        for decl in self.module.globals:
            values = list(decl.initial) + [0] * (decl.size - len(decl.initial))
            body = " ".join(str(v) for v in values)
            lines.append(f"g_{decl.name}: .word {body}")
        lines.append("")
        lines.append(".text")
        lines.append("main:")
        lines.append("    call fn_main")
        lines.append("    halt")
        for function in self.module.functions:
            lines.append("")
            lines.extend(_FunctionCompiler(self, function).compile())
        return "\n".join(lines) + "\n"


def _guarded(fn, line: int = 1):
    """Run one compilation stage, converting internal faults.

    The compiler walks user ASTs recursively; pathological nesting or
    a malformed (hand-built) module must surface as a typed
    :class:`CompileError`, never a bare ``RecursionError``/
    ``KeyError``/``IndexError``.
    """
    try:
        return fn()
    except SourceError:
        raise
    except RecursionError:
        raise CompileError("program nesting too deep", line) from None
    except (KeyError, IndexError) as exc:
        raise CompileError(f"internal compiler fault: {exc!r}", line) from exc


def compile_module(module: Module, name: str = "<rl>") -> Program:
    """Compile an already-parsed (or transformed) module."""
    return assemble(
        _guarded(_ModuleCompiler(module).compile), name=name
    )


def compile_to_assembly(source: str) -> str:
    """Compile RL source text to assembly text."""
    module = parse(source)
    return _guarded(_ModuleCompiler(module).compile)


def compile_source(source: str, name: str = "<rl>") -> Program:
    """Compile RL source text to a ready-to-run program."""
    return assemble(compile_to_assembly(source), name=name)
