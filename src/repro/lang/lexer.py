"""Tokeniser for the RL language."""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import SourceError

KEYWORDS = {"var", "func", "if", "else", "while", "return"}

#: multi-character operators, longest first
_OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
    "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


class LexError(SourceError):
    """Bad character or malformed literal."""


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # "int", "ident", "keyword", "op", "eof"
    text: str
    line: int
    col: int = 1


def tokenize(source: str) -> list[Token]:
    """Split source text into tokens (comments start with ``#``)."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    i = 0
    n = len(source)

    def col(at: int) -> int:
        return at - line_start + 1

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and (source[i].isdigit() or source[i].lower() in "abcdef"):
                    i += 1
                text = source[start:i]
                if len(text) == 2:
                    raise LexError("malformed hex literal", line, col(start))
            else:
                while i < n and source[i].isdigit():
                    i += 1
                text = source[start:i]
                if i < n and (source[i].isalpha() or source[i] == "_"):
                    raise LexError(
                        f"malformed number {text + source[i]!r}",
                        line, col(start),
                    )
            tokens.append(Token("int", text, line, col(start)))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col(start)))
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col(i)))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col(i))
    tokens.append(Token("eof", "", line, col(i)))
    return tokens
