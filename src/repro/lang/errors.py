"""Typed front-end errors with source positions.

Every failure the RL front end can produce — tokenising, parsing,
semantic checking — derives from :class:`SourceError`, which pins a
``line`` (and, where the lexer knows it, a ``col``).  The ``parse``
and ``compile_*`` entry points guarantee the contract: internal
faults (recursion blow-ups on pathological nesting, lookup misses on
malformed token streams) are converted at the boundary, so a caller
feeding untrusted source can catch ``SourceError`` and never sees a
bare ``KeyError``/``IndexError``/``RecursionError``.
"""

from __future__ import annotations


class SourceError(ValueError):
    """A diagnosable error at a source position."""

    def __init__(self, message: str, line: int, col: int | None = None):
        pos = f"line {line}" if col is None else f"line {line}, col {col}"
        super().__init__(f"{pos}: {message}")
        self.message = message
        self.line = line
        self.col = col
