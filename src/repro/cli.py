"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``workloads``
    List the registered benchmark kernels.
``run WORKLOAD``
    Execute a kernel and print stream statistics (optionally saving
    the trace with ``--save-trace``).
``analyze WORKLOAD``
    The full single-kernel analysis: reusability, trace sizes, and
    base/ILR/TLR timing for both window scenarios.
``figures``
    Regenerate the paper's figures 3-8 tables (and figure 9 with
    ``--fig9``).
``rtm WORKLOAD``
    Finite-RTM sweep for one kernel (sizes x heuristics, both reuse
    tests).
``disasm WORKLOAD``
    Disassemble a kernel's text segment.
``cache {info,clear}``
    Inspect or wipe the persistent trace/profile cache
    (``.repro-cache/``; see ``repro.vm.tracecache``).  ``info`` lists
    every cached trace with its format version (v2/v3), on-disk size
    and compression ratio.  Commands that execute kernels accept
    ``--no-cache`` to bypass it.
``trace info PATH``
    Structural stats of a saved trace file: format version, program,
    instruction count, and — for chunked v3 files — chunk geometry and
    compression ratio (read from the footer alone, O(1)).
``obs {list,show}``
    Inspect the JSONL run manifests that ``figures`` (and the
    benchmark suite) record under ``<cache_dir>/runs/`` — per-kernel
    status, timings, retries, cache hit/miss counters.  A service
    sweep's coordinator + worker manifests are merged into one run
    view, and torn (partially written) lines are reported instead of
    silently dropped.  See :mod:`repro.obs`.
``sweep``
    Run a sweep through the sharded service: enqueue kernel × config
    shards, spawn N worker processes over the shared cache, and print
    the per-kernel outcome — bit-identical results to ``figures``'s
    in-process ``collect_profiles``.  ``--enqueue-only`` just loads
    the queue (workers started separately drain it).
``worker``
    One worker shard: claim/lease/complete loop over the persistent
    queue, stealing stale leases from crashed workers.  Normally
    spawned by ``sweep``/``serve``, but first-class for running shards
    across terminals or hosts sharing one cache directory.
``serve``
    Async front end: answers ``/profile`` and ``/figure`` queries from
    the cache in the hot path (the VM is never touched on a hit) and
    enqueues misses as shards; ``--workers N`` spawns resident workers
    to drain them.  See :mod:`repro.exp.service.server`.
``estimate WORKLOAD``
    Simulation-free profile prediction through the static analyser
    (:mod:`repro.static`): reuse percentage, trace shape and the full
    IPC/speed-up sweep without executing one instruction, annotated
    with the kernel's recorded error band from ``BENCH_static.json``.
``lint [PATHS...]``
    Static diagnostics over RL sources (``.rl`` files/directories) or
    — with ``--kernels`` or no arguments — every registered kernel's
    assembled program.  Exits non-zero when any finding survives.
``static validate``
    Cross-validate the static estimator against the dynamic pipeline
    over all kernels plus the generated workload families; writes (or
    ``--check``s against) the per-kernel error bands in
    ``BENCH_static.json``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.baselines.ilr import ilr_reuse_plan, instruction_reusability
from repro.core.reuse_tlr import ConstantReuseLatency, tlr_reuse_plan
from repro.core.rtm.collector import FixedLengthHeuristic, ILRHeuristic
from repro.core.rtm.memory import RTM_PRESETS
from repro.core.rtm.simulator import FiniteReuseSimulator
from repro.core.stats import trace_io_stats
from repro.core.traces import maximal_reusable_spans
from repro.dataflow.model import DataflowModel
from repro.exp.config import ExperimentConfig
from repro.exp.figures import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    trace_io_summary,
)
from repro.exp.report import render
from repro.exp.runner import collect_profiles
from repro.isa.disasm import disassemble
from repro.util.tables import format_table
from repro.vm.backends import BACKENDS
from repro.vm.tracefile import save_trace
from repro.workloads.base import all_workloads, build_program, run_workload


def _cmd_workloads(_args) -> int:
    rows = [[w.name, w.suite, w.description] for w in all_workloads()]
    print(format_table(["name", "suite", "description"], rows))
    return 0


def _cmd_run(args) -> int:
    trace = run_workload(
        args.workload,
        max_instructions=args.budget,
        use_cache=not args.no_cache,
        backend=args.backend,
    )
    print(f"{args.workload}: {len(trace)} dynamic instructions "
          f"(halted={trace.halted})")
    hist = sorted(
        trace.class_histogram().items(), key=lambda kv: kv[1], reverse=True
    )
    print(format_table(
        ["class", "count", "share"],
        [[cls.name, count, f"{100 * count / len(trace):.1f}%"]
         for cls, count in hist],
    ))
    if args.save_trace:
        fmt = args.trace_format
        if fmt is None:
            # .jsonl/.gz ask for the portable JSON-lines layout;
            # anything else gets the chunked v3 format
            fmt = ("v1" if str(args.save_trace).endswith((".jsonl", ".gz"))
                   else "v3")
        save_trace(trace, args.save_trace, format=fmt)
        print(f"trace written to {args.save_trace} ({fmt})")
    return 0


def _cmd_analyze(args) -> int:
    if args.stream:
        return _cmd_analyze_stream(args)
    trace = run_workload(
        args.workload,
        max_instructions=args.budget,
        use_cache=not args.no_cache,
        backend=args.backend,
    )
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)
    stats = trace_io_stats(spans)
    print(f"{args.workload}: {len(trace)} instructions, "
          f"{reuse.percent_reusable:.1f}% reusable, "
          f"{stats.trace_count} traces (avg {stats.avg_trace_size:.1f} instr, "
          f"{stats.avg_inputs:.1f} in / {stats.avg_outputs:.1f} out)")
    rows = []
    for window in (None, args.window):
        model = DataflowModel(window_size=window)
        base = model.analyze(trace)
        ilr = model.analyze(trace, ilr_reuse_plan(trace, reuse.flags, 1.0))
        tlr = model.analyze(
            trace, tlr_reuse_plan(trace, spans, ConstantReuseLatency(1.0))
        )
        label = "infinite" if window is None else f"W={window}"
        rows.append([label, base.ipc, ilr.speedup_over(base), tlr.speedup_over(base)])
    print(format_table(["window", "base_ipc", "ilr_speedup", "tlr_speedup"], rows))
    return 0


def _cmd_analyze_stream(args) -> int:
    """``analyze --stream``: same numbers, O(chunk) memory.

    The trace is consumed as a chunk stream and all six scenarios fold
    inside one :class:`StreamingDataflowEngine` drain; output is
    bit-identical to the materialized path.
    """
    from repro.dataflow.model import Scenario
    from repro.dataflow.streaming import StreamingDataflowEngine
    from repro.workloads.base import stream_workload

    stream = stream_workload(
        args.workload,
        max_instructions=args.budget,
        use_cache=not args.no_cache,
        backend=args.backend,
    )
    engine = StreamingDataflowEngine(stream)
    scenarios = []
    for window in (None, args.window):
        scenarios.append(Scenario("base", window_size=window))
        scenarios.append(Scenario("ilr", window_size=window, latency=1.0))
        scenarios.append(Scenario("tlr", window_size=window, latency=1.0))
    results = engine.analyze_all(scenarios)
    stats = engine.io_stats
    print(f"{args.workload}: {engine.n} instructions, "
          f"{engine.reuse.percent_reusable:.1f}% reusable, "
          f"{stats.trace_count} traces (avg {stats.avg_trace_size:.1f} instr, "
          f"{stats.avg_inputs:.1f} in / {stats.avg_outputs:.1f} out)")
    rows = []
    for i, window in enumerate((None, args.window)):
        base, ilr, tlr = results[3 * i:3 * i + 3]
        label = "infinite" if window is None else f"W={args.window}"
        rows.append([label, base.ipc, ilr.speedup_over(base), tlr.speedup_over(base)])
    print(format_table(["window", "base_ipc", "ilr_speedup", "tlr_speedup"], rows))
    return 0


def _cmd_figures(args) -> int:
    config = ExperimentConfig(
        max_instructions=args.budget, use_cache=not args.no_cache,
        backend=args.backend, streaming=True if args.stream else None,
    )
    profiles = collect_profiles(config)
    for failure in getattr(profiles, "failures", ()):
        print(
            f"warning: kernel {failure.name} failed after "
            f"{failure.attempts} attempt(s): {failure.kind}: "
            f"{failure.message}; figures exclude it",
            file=sys.stderr,
        )
    if not profiles:
        print("error: no kernel produced a profile", file=sys.stderr)
        return 1
    for result in (
        figure3(profiles),
        figure4(profiles, config),
        figure5(profiles, config),
        figure6(profiles),
        figure7(profiles),
        figure8(profiles, config),
        trace_io_summary(profiles),
    ):
        print(render(result))
        print()
    if args.fig9:
        fig9_config = ExperimentConfig(
            max_instructions=args.fig9_budget, use_cache=not args.no_cache,
            backend=args.backend, streaming=True if args.stream else None,
        )
        print(render(figure9(fig9_config)))
    if getattr(profiles, "manifest_path", None) is not None:
        print(f"run manifest: {profiles.manifest_path}", file=sys.stderr)
    return 0


def _cmd_rtm(args) -> int:
    trace = run_workload(
        args.workload,
        max_instructions=args.budget,
        use_cache=not args.no_cache,
        backend=args.backend,
    )
    heuristics = [ILRHeuristic(False), ILRHeuristic(True),
                  FixedLengthHeuristic(4)]
    rows = []
    for reuse_test in ("compare", "invalidate"):
        for heuristic in heuristics:
            for rtm_name in args.sizes:
                sim = FiniteReuseSimulator(
                    RTM_PRESETS[rtm_name], heuristic, reuse_test=reuse_test
                )
                result = sim.run(trace)
                rows.append([
                    reuse_test, heuristic.name, rtm_name,
                    result.percent_reused, result.avg_reused_trace_size,
                    result.rtm_invalidations,
                ])
    print(format_table(
        ["reuse_test", "heuristic", "rtm", "reused_pct", "avg_trace", "invalidations"],
        rows,
        title=f"Finite-RTM sweep for {args.workload} ({len(trace)} instructions)",
    ))
    return 0


def _cmd_disasm(args) -> int:
    program = build_program(args.workload)
    print(disassemble(program, with_pcs=True))
    return 0


def _cmd_cache(args) -> int:
    from repro.vm import tracecache

    if args.action == "clear":
        removed = tracecache.clear_cache()
        print(f"removed {removed} cache entries from {tracecache.cache_dir()}")
        return 0
    info = tracecache.cache_info(per_entry=True)
    state = "enabled" if info["enabled"] else "disabled (REPRO_TRACE_CACHE=0)"
    print(f"cache directory: {info['dir']} ({state})")
    print(format_table(
        ["layer", "entries", "bytes"],
        [
            ["traces", info["traces"], info["trace_bytes"]],
            ["profiles", info["profiles"], info["profile_bytes"]],
            ["runs", info["runs"], info["run_bytes"]],
        ],
    ))
    entries = info.get("trace_entries") or []
    if entries:
        print()
        print(format_table(
            ["trace entry", "format", "bytes", "instructions", "ratio"],
            [
                [
                    e["file"],
                    e["format"],
                    e["bytes"],
                    "-" if e["instructions"] is None else e["instructions"],
                    "-" if e["compression_ratio"] is None
                    else f"{e['compression_ratio']:.1f}x",
                ]
                for e in entries
            ],
        ))
    return 0


def _cmd_trace(args) -> int:
    from repro.vm.tracefile import TraceFileError, trace_file_info

    want_columns = getattr(args, "columns", False)
    want_chunks = getattr(args, "chunks", False)
    try:
        info = trace_file_info(args.path, columns=want_columns,
                               per_chunk=want_chunks)
    except (TraceFileError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = [
        ["format", info["format"]],
        ["program", info["program"]],
        ["instructions", info["instructions"]],
        ["halted", info["halted"]],
        ["truncated", info["truncated"]],
        ["file bytes", info["file_bytes"]],
        ["bytes/instr", f"{info['bytes_per_instruction']:.2f}"],
    ]
    if info["chunk_count"] is not None:
        rows.append(["chunks", info["chunk_count"]])
        rows.append(["chunk size", info["chunk_size"]])
        rows.append(["encoded bytes", info["encoded_bytes"]])
        rows.append(["compressed bytes", info["compressed_bytes"]])
        rows.append(["compression", f"{info['compression_ratio']:.1f}x"])
    print(format_table(["field", "value"], rows, title=info["path"]))
    if (want_columns or want_chunks) and info["chunk_count"] is None:
        print("(per-column/per-chunk breakdowns need a v3 file)")
        return 0
    if want_columns:
        total = sum(c["encoded_bytes"] for c in info["columns"].values()) or 1
        print()
        print(format_table(
            ["column", "encoded bytes", "share", "decode ms", "modes"],
            [
                [
                    name,
                    stats["encoded_bytes"],
                    f"{100 * stats['encoded_bytes'] / total:.1f}%",
                    f"{1000 * stats['decode_seconds']:.1f}",
                    ",".join(sorted(stats["modes"])),
                ]
                for name, stats in sorted(
                    info["columns"].items(),
                    key=lambda kv: -kv[1]["encoded_bytes"],
                )
            ],
            title="per-column breakdown",
        ))
    if want_chunks:
        print()
        print(format_table(
            ["chunk", "instr", "encoded", "compressed", "ratio", "decode ms"],
            [
                [
                    c["chunk"],
                    c["instructions"],
                    c["encoded_bytes"],
                    c["compressed_bytes"],
                    f"{c['compression_ratio']:.1f}x",
                    f"{1000 * c['decode_seconds']:.1f}",
                ]
                for c in info["chunks"]
            ],
            title="per-chunk breakdown",
        ))
    return 0


def _cmd_characterize(args) -> int:
    from repro.workloads.base import FP_SUITE, INT_SUITE
    from repro.workloads.characterize import suite_characterization

    names = args.workloads or (FP_SUITE + INT_SUITE)
    fig = suite_characterization(
        names, max_instructions=args.budget, use_cache=not args.no_cache,
        backend=args.backend,
    )
    print(render(fig))
    return 0


def _cmd_obs(args) -> int:
    from repro import obs

    if args.action == "list":
        rows = []
        for run_id, paths in obs.list_run_groups():
            events, torn = obs.merge_events(paths)
            summary = obs.summarize(events)
            kernels = summary["kernels"]
            failed = sum(1 for k in kernels.values() if k["status"] == "failed")
            ok = sum(1 for k in kernels.values() if k["status"] == "ok")
            rows.append([
                summary["run_id"] or run_id,
                len(paths),
                ok,
                failed,
                len(summary["resumed"]),
                "-" if summary["seconds"] is None
                else f"{summary['seconds']:.2f}",
                ("yes" if summary["complete"] else "no (interrupted?)")
                + (f", {torn} torn line(s)" if torn else ""),
            ])
        if not rows:
            print(f"no run manifests under {obs.runs_dir()}")
            return 0
        print(format_table(
            ["run", "files", "ok", "failed", "resumed", "seconds",
             "complete"], rows,
            title=f"Recorded runs ({obs.runs_dir()})",
        ))
        return 0

    try:
        paths = obs.find_run_paths(args.run)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    events, torn = obs.merge_events(paths)
    summary = obs.summarize(events)
    if len(paths) == 1:
        print(f"manifest: {paths[0]}")
    else:
        print(f"manifests ({len(paths)}, merged):")
        for path in paths:
            print(f"  {path}")
    if torn:
        print(f"note: skipped {torn} torn line(s) — a writer was killed "
              "mid-append; every complete event is shown")
    if summary["workers"]:
        note = f"workers: {', '.join(summary['workers'])}"
        if summary["steals"]:
            note += f" ({summary['steals']} stolen shard(s))"
        print(note)
    if not summary["complete"]:
        print("note: no run_end event — the run was interrupted")
    kernel_rows = [
        [
            name,
            entry["status"],
            entry["source"] or "-",
            entry["attempts"],
            "-" if entry["seconds"] is None else f"{entry['seconds']:.3f}",
            "; ".join(entry["errors"]) or "-",
        ]
        for name, entry in summary["kernels"].items()
    ]
    print(format_table(
        ["kernel", "status", "source", "attempts", "seconds", "errors"],
        kernel_rows,
        title=f"Run {summary['run_id']} "
        f"({summary['seconds']:.2f}s)" if summary["seconds"] is not None
        else f"Run {summary['run_id']}",
    ))
    if summary["counters"]:
        print()
        print(format_table(
            ["counter", "count"],
            sorted(summary["counters"].items()),
            title="Counters",
        ))
    if summary["timers"]:
        print()
        print(format_table(
            ["timer", "seconds", "calls"],
            [[name, f"{entry['seconds']:.3f}", entry["calls"]]
             for name, entry in sorted(summary["timers"].items())],
            title="Stage timers",
        ))
    failed = [n for n, k in summary["kernels"].items()
              if k["status"] == "failed"]
    if failed:
        print()
        print(f"failed kernels: {', '.join(failed)}")
    return 0


def _print_sweep_outcome(run) -> None:
    rows = [[p.name, "ok", "resumed" if p.name in run.resumed else "computed"]
            for p in run]
    rows += [[f.name, "FAILED", f"{f.kind}: {f.message}"] for f in run.failures]
    print(format_table(["kernel", "status", "detail"], rows,
                       title="Service sweep"))
    if run.manifest_path is not None:
        print(f"run manifest: {run.manifest_path}", file=sys.stderr)


def _cmd_sweep(args) -> int:
    from repro.exp.service import ShardQueue, enqueue_sweep, run_service_sweep

    config = ExperimentConfig(
        max_instructions=args.budget, backend=args.backend,
        streaming=True if args.stream else None,
    )
    if args.enqueue_only:
        plan = enqueue_sweep(config)
        queue = ShardQueue()
        print(f"enqueued {len(plan.enqueued)} shard(s), "
              f"{len(plan.resumed)} already cached; queue: {queue.counts()}")
        return 0
    run = run_service_sweep(config, workers=args.workers,
                            lease_ttl=args.lease_ttl)
    _print_sweep_outcome(run)
    return 0 if run.ok else 1


def _cmd_worker(args) -> int:
    from repro.exp.service import run_worker
    from repro.obs.manifest import RunManifest

    # mark this process as a killable worker shard (fault injection's
    # ``crash`` mode takes the process down instead of raising)
    os.environ["REPRO_SERVICE_WORKER"] = "1"
    manifest = RunManifest(args.run_id, worker=args.worker_id) \
        if args.run_id else RunManifest(worker=args.worker_id)
    report = run_worker(
        args.worker_id,
        manifest=manifest,
        exit_when_empty=not args.forever,
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval,
    )
    print(f"worker {report.worker}: {len(report.completed)} shard(s) "
          f"completed, {len(report.failed)} failed "
          f"in {report.seconds:.2f}s")
    return 0 if not report.failed else 1


def _cmd_serve(args) -> int:
    from repro.exp.service.server import serve_forever
    from repro.exp.service.sweep import spawn_worker_process

    defaults = ExperimentConfig(max_instructions=args.budget,
                                backend=args.backend)
    procs = []
    for k in range(args.workers):
        procs.append(spawn_worker_process(
            f"serve-w{k}", f"serve-p{os.getpid()}", exit_when_empty=False,
        ))
    try:
        serve_forever(args.host, args.port, defaults=defaults)
    finally:
        for proc in procs:
            proc.terminate()
    return 0


def _cmd_estimate(args) -> int:
    from repro.static.estimator import estimate_workload
    from repro.static.validate import kernel_band, load_bands

    config = ExperimentConfig(
        max_instructions=args.budget, window_size=args.window
    )
    estimate = estimate_workload(args.workload, config)
    profile = estimate.profile
    print(f"{args.workload}: {profile.dynamic_count} predicted "
          f"instructions, {profile.percent_reusable:.1f}% reusable, "
          f"{profile.trace_count} traces "
          f"(avg {profile.avg_trace_size:.1f} instr) — static, "
          f"no execution")
    rows = [
        ["infinite", f"{profile.base_ipc_inf:.2f}",
         f"{profile.ilr_speedup_inf.get(1, 1.0):.2f}",
         f"{profile.tlr_speedup_inf.get(1, 1.0):.2f}"],
        [f"W={config.window_size}", f"{profile.base_ipc_win:.2f}",
         f"{profile.ilr_speedup_win.get(1, 1.0):.2f}",
         f"{profile.tlr_speedup_win.get(1, 1.0):.2f}"],
    ]
    print(format_table(
        ["window", "base_ipc", "ilr_speedup", "tlr_speedup"], rows
    ))
    if estimate.loop_table:
        print(format_table(
            ["loop@pc", "depth", "eff_trips", "exact", "II", "body_reuse"],
            [[row["header_pc"], row["depth"], f"{row['eff_trips']:.1f}",
              "y" if row["exact"] else "n", f"{row['ii']:.1f}",
              f"{row['body_reuse_rate']:.2f}"]
             for row in estimate.loop_table],
        ))
    band = kernel_band(load_bands(), args.workload)
    if band:
        print("recorded error band (vs dynamic, "
              f"see BENCH_static.json): reuse ±{band['percent_reusable']:.3f}, "
              f"ipc_inf ±{band['base_ipc_inf']:.3f}, "
              f"ipc_win ±{band['base_ipc_win']:.3f}")
    else:
        print("no recorded error band — run 'repro static validate'")
    for note in estimate.assumptions:
        print(f"note: {note}")
    return 0


def _cmd_lint(args) -> int:
    from repro.static.lint import lint_paths, lint_workloads

    findings = []
    if args.kernels or not args.paths:
        findings.extend(lint_workloads())
    if args.paths:
        findings.extend(lint_paths(args.paths))
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("clean")
    return 0


def _cmd_static(args) -> int:
    from repro.static import validate as sv

    config = ExperimentConfig(max_instructions=args.budget)
    report = sv.validate_static(
        config,
        include_families=not args.no_families,
        progress=print,
    )
    summary = report["summary"]
    rows = [
        [metric, f"{stats['mean']:.3f}", f"{stats['max']:.3f}"]
        for metric, stats in summary.items()
    ]
    print(format_table(["metric (error)", "mean", "max"], rows))
    if args.check:
        recorded = sv.load_bands(args.output)
        if recorded is None:
            print(f"no recorded bands at {args.output}; "
                  "run without --check first")
            return 1
        problems = sv.check_bands(report, recorded)
        for problem in problems:
            print(f"REGRESSION {problem}")
        if problems:
            return 1
        print(f"within recorded bands ({args.output})")
        return 0
    path = sv.write_bands(report, args.output)
    print(f"wrote error bands to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace-level reuse (ICPP 1999) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # shared by every command that executes kernels; None defers to
    # the REPRO_BACKEND environment variable, then the interpreter
    backend_parent = argparse.ArgumentParser(add_help=False)
    backend_parent.add_argument(
        "--backend", choices=sorted(BACKENDS), default=None,
        help="execution backend (default: $REPRO_BACKEND or interp)",
    )

    sub.add_parser("workloads", help="list benchmark kernels")

    p_run = sub.add_parser("run", help="execute a kernel", parents=[backend_parent])
    p_run.add_argument("workload")
    p_run.add_argument("--budget", type=int, default=20_000)
    p_run.add_argument("--save-trace", metavar="PATH")
    p_run.add_argument("--trace-format", choices=["v1", "v2", "v3"],
                       default=None,
                       help="on-disk format for --save-trace (default: "
                       "chunked v3, or v1 for .jsonl/.gz paths)")
    p_run.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent trace cache")

    p_an = sub.add_parser("analyze", help="full single-kernel analysis", parents=[backend_parent])
    p_an.add_argument("workload")
    p_an.add_argument("--budget", type=int, default=20_000)
    p_an.add_argument("--window", type=int, default=256)
    p_an.add_argument("--no-cache", action="store_true",
                      help="bypass the persistent trace cache")
    p_an.add_argument("--stream", action="store_true",
                      help="analyse through the streaming pipeline "
                      "(O(chunk) memory, bit-identical numbers)")

    p_fig = sub.add_parser("figures", help="regenerate the paper's figures", parents=[backend_parent])
    p_fig.add_argument("--budget", type=int, default=20_000)
    p_fig.add_argument("--fig9", action="store_true",
                       help="also run the (slow) finite-RTM grid")
    p_fig.add_argument("--fig9-budget", type=int, default=8_000)
    p_fig.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent trace/profile cache")
    p_fig.add_argument("--stream", action="store_true",
                       help="profile every kernel through the streaming "
                       "pipeline (O(chunk) memory, bit-identical numbers)")

    p_rtm = sub.add_parser("rtm", help="finite-RTM design sweep", parents=[backend_parent])
    p_rtm.add_argument("workload")
    p_rtm.add_argument("--budget", type=int, default=12_000)
    p_rtm.add_argument("--sizes", nargs="+", default=["512", "4K"],
                       choices=list(RTM_PRESETS))
    p_rtm.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent trace cache")

    p_dis = sub.add_parser("disasm", help="disassemble a kernel")
    p_dis.add_argument("workload")

    p_ch = sub.add_parser("characterize", help="workload suite statistics", parents=[backend_parent])
    p_ch.add_argument("workloads", nargs="*")
    p_ch.add_argument("--budget", type=int, default=10_000)
    p_ch.add_argument("--no-cache", action="store_true",
                      help="bypass the persistent trace cache")

    p_cache = sub.add_parser("cache", help="inspect or wipe the trace cache")
    p_cache.add_argument("action", choices=["info", "clear"])

    p_tr = sub.add_parser("trace", help="inspect a saved trace file")
    p_tr.add_argument("action", choices=["info"])
    p_tr.add_argument("path", help="path to a .trace file (v1/v2/v3)")
    p_tr.add_argument("--columns", action="store_true",
                      help="decode the file and report per-column "
                      "encoded size, decode time and codec mode (v3)")
    p_tr.add_argument("--chunks", action="store_true",
                      help="report per-chunk size/ratio/decode-time "
                      "breakdowns (v3)")

    p_obs = sub.add_parser("obs", help="inspect recorded run manifests")
    p_obs.add_argument("action", choices=["list", "show"])
    p_obs.add_argument("run", nargs="?", default="latest",
                       help="run id (or unique prefix) for 'show'; "
                       "defaults to the most recent run")

    p_sw = sub.add_parser(
        "sweep", help="run a sweep through the sharded service",
        parents=[backend_parent],
    )
    p_sw.add_argument("--budget", type=int, default=20_000)
    p_sw.add_argument("--workers", type=int, default=None,
                      help="worker processes to spawn (default: one per "
                      "core; 0 = drain inline in this process)")
    p_sw.add_argument("--enqueue-only", action="store_true",
                      help="load the queue and exit; separately started "
                      "workers drain it")
    p_sw.add_argument("--lease-ttl", type=float, default=600.0,
                      help="seconds before a live worker's lease may be "
                      "stolen (dead workers are stolen from immediately)")
    p_sw.add_argument("--stream", action="store_true",
                      help="workers profile through the streaming pipeline")

    p_wk = sub.add_parser(
        "worker", help="run one shard worker over the persistent queue",
    )
    p_wk.add_argument("--worker-id", default=f"w{os.getpid()}",
                      help="name used in leases and manifest events")
    p_wk.add_argument("--run-id", default=None,
                      help="sweep run id to attach this worker's manifest to")
    p_wk.add_argument("--forever", action="store_true",
                      help="keep polling when the queue is empty (serve "
                      "mode) instead of exiting")
    p_wk.add_argument("--lease-ttl", type=float, default=600.0)
    p_wk.add_argument("--poll-interval", type=float, default=0.2)

    p_srv = sub.add_parser(
        "serve", help="async cache-backed profile/figure server",
        parents=[backend_parent],
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8023)
    p_srv.add_argument("--budget", type=int, default=20_000,
                       help="default max_instructions for queries that "
                       "don't pass ?budget=")
    p_srv.add_argument("--workers", type=int, default=0,
                       help="resident worker processes draining enqueued "
                       "misses")

    p_est = sub.add_parser(
        "estimate",
        help="simulation-free static profile prediction",
    )
    p_est.add_argument("workload")
    p_est.add_argument("--budget", type=int, default=20_000,
                       help="instruction budget the estimate models")
    p_est.add_argument("--window", type=int, default=256)

    p_lint = sub.add_parser(
        "lint", help="static diagnostics over RL sources / kernels",
    )
    p_lint.add_argument("paths", nargs="*",
                        help=".rl files or directories (default: lint "
                        "every registered kernel)")
    p_lint.add_argument("--kernels", action="store_true",
                        help="also lint the registered kernels when "
                        "paths are given")

    p_st = sub.add_parser(
        "static", help="static-estimator validation harness",
    )
    st_sub = p_st.add_subparsers(dest="static_command", required=True)
    p_val = st_sub.add_parser(
        "validate",
        help="score static vs dynamic over kernels + generated families",
    )
    p_val.add_argument("--budget", type=int, default=8_000)
    p_val.add_argument("--output", default="BENCH_static.json",
                       help="error-band file to write or check")
    p_val.add_argument("--check", action="store_true",
                       help="compare against recorded bands instead of "
                       "rewriting them; non-zero exit on regression")
    p_val.add_argument("--no-families", action="store_true",
                       help="skip the generated RL workload families")
    return parser


_COMMANDS = {
    "workloads": _cmd_workloads,
    "run": _cmd_run,
    "analyze": _cmd_analyze,
    "figures": _cmd_figures,
    "rtm": _cmd_rtm,
    "disasm": _cmd_disasm,
    "characterize": _cmd_characterize,
    "cache": _cmd_cache,
    "trace": _cmd_trace,
    "obs": _cmd_obs,
    "sweep": _cmd_sweep,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "estimate": _cmd_estimate,
    "lint": _cmd_lint,
    "static": _cmd_static,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # stdout went away mid-report (e.g. piped into ``head``); the
        # conventional quiet exit, with stdout detached so the
        # interpreter's shutdown flush cannot raise again
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
