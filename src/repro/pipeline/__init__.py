"""Cycle-level superscalar pipeline model (the Figure 2 integration).

The paper's section 3 sketches how trace-level reuse plugs into a
superscalar processor: the RTM is probed in parallel with the I-cache;
on a reuse the fetch unit jumps to the trace's next PC and the
trace's outputs are written through a single window entry.  The
limit-study model of :mod:`repro.dataflow` abstracts the pipeline
away; this package provides a concrete trace-driven, cycle-driven
model — fetch / dispatch / issue / execute / commit with a reorder
buffer, bounded widths and per-class functional units — so the finite
RTM engine can be evaluated in *time*, not just reusability (an
extension beyond the paper's Figure 9).
"""

from repro.pipeline.config import FU_PRESET_21164ish, PipelineConfig
from repro.pipeline.model import PipelineModel, PipelineResult

__all__ = [
    "PipelineConfig",
    "FU_PRESET_21164ish",
    "PipelineModel",
    "PipelineResult",
]
