"""Pipeline model configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass

#: A 4-wide machine with a functional-unit mix loosely following the
#: Alpha 21164 (two integer pipes, one load/store port modelled as
#: two, two FP pipes; divides share the FP units but are unpipelined).
FU_PRESET_21164ish: dict[OpClass, int] = {
    OpClass.INT_ALU: 2,
    OpClass.INT_MUL: 1,
    OpClass.INT_DIV: 1,
    OpClass.LOAD: 2,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.FP_ADD: 1,
    OpClass.FP_MUL: 1,
    OpClass.FP_DIV: 1,
    OpClass.FP_SQRT: 1,
    OpClass.FP_CVT: 1,
    OpClass.CONTROL: 2,
}

#: Operation classes whose functional units are not pipelined (a new
#: operation cannot start until the previous one retires the unit).
UNPIPELINED: frozenset[OpClass] = frozenset(
    {OpClass.INT_DIV, OpClass.FP_DIV, OpClass.FP_SQRT}
)


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Widths and capacities of the modelled superscalar core.

    Branch prediction is assumed perfect (the captured trace supplies
    the dynamic path), matching the paper's focus on data dependences.
    """

    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_size: int = 64
    functional_units: dict[OpClass, int] = field(
        default_factory=lambda: dict(FU_PRESET_21164ish)
    )
    #: cycles a trace reuse operation occupies at dispatch (the RTM
    #: lookup + state update; section 4.5's constant-latency model)
    reuse_latency: int = 1

    def __post_init__(self) -> None:
        if min(self.fetch_width, self.issue_width, self.commit_width) < 1:
            raise ValueError("pipeline widths must be positive")
        if self.rob_size < 1:
            raise ValueError("rob_size must be positive")
        for cls in OpClass:
            if self.functional_units.get(cls, 0) < 1:
                raise ValueError(f"no functional units for {cls.name}")
