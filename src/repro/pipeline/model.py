"""Trace-driven, cycle-driven superscalar timing model.

The model consumes a captured dynamic stream (and, optionally, the
reuse decisions of a :class:`~repro.core.rtm.simulator
.FiniteReuseSimulator` run) and simulates a bounded out-of-order core
cycle by cycle:

- **fetch**: up to ``fetch_width`` slots per cycle enter the reorder
  buffer while space remains.  A reused trace enters as a *single*
  slot — its instructions are never fetched (the paper's fetch-
  bandwidth and effective-window arguments fall out of this directly).
- **rename**: at fetch, each operand is bound to its in-flight
  producer slot (or to "already architectural"), so write-after-write
  hazards never confuse wake-up.
- **issue**: up to ``issue_width`` ready slots per cycle, oldest
  first, subject to per-class functional-unit availability; divide
  and square-root units are unpipelined and allocated in *program
  order* — a younger divide never steals the unit from an older,
  not-yet-ready one (age-ordered scheduling; without it a wider
  front end could finish *later* than a narrow one by letting a
  younger long-latency op jump the queue).  A trace-reuse slot needs
  no functional unit (the reuse engine performs the state update)
  but does consume dispatch bandwidth.
- **commit**: in order, up to ``commit_width`` slots per cycle; a
  trace slot commits its whole instruction count at once (the RTM
  writes all outputs in one state update, section 3.3).

Branch prediction is perfect (the trace supplies the dynamic path),
as in the paper's dependence-focused analysis.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.rtm.simulator import FiniteReuseResult
from repro.isa.opcodes import OpClass
from repro.pipeline.config import UNPIPELINED, PipelineConfig
from repro.vm.trace import AnyTrace, DynInst, stream_of


class _Slot:
    """One reorder-buffer entry: an instruction or a reused trace."""

    __slots__ = (
        "op_class",
        "latency",
        "count",
        "dep_slots",
        "write_locs",
        "min_issue_cycle",
        "done_cycle",
    )

    def __init__(self, op_class, latency, count, dep_slots, write_locs):
        self.op_class = op_class  # None for a reused trace
        self.latency = latency
        self.count = count
        self.dep_slots = dep_slots
        self.write_locs = write_locs
        self.min_issue_cycle = 0
        self.done_cycle: int | None = None

    def ready(self, cycle: int) -> bool:
        if cycle < self.min_issue_cycle:
            return False
        for dep in self.dep_slots:
            if dep.done_cycle is None or dep.done_cycle > cycle:
                return False
        return True


@dataclass(slots=True)
class PipelineResult:
    """Outcome of one pipeline simulation."""

    total_cycles: int
    committed_instructions: int
    committed_slots: int
    reused_instructions: int
    reuse_events: int

    @property
    def ipc(self) -> float:
        """Committed instructions (reused ones included) per cycle."""
        if self.total_cycles == 0:
            return 0.0
        return self.committed_instructions / self.total_cycles

    def speedup_over(self, baseline: "PipelineResult") -> float:
        """Cycle-count speed-up relative to another run."""
        if self.total_cycles <= 0:
            raise ValueError("degenerate pipeline result")
        return baseline.total_cycles / self.total_cycles


@dataclass(frozen=True, slots=True)
class _FetchItem:
    """Pre-built fetch-stream element (decoded once, simulated once)."""

    read_locs: tuple[int, ...]
    write_locs: tuple[int, ...]
    op_class: OpClass | None
    latency: int
    count: int


class PipelineModel:
    """Cycle-level simulation of a bounded superscalar core."""

    def __init__(self, config: PipelineConfig = PipelineConfig()):
        self.config = config

    # ------------------------------------------------------------------
    def _build_fetch_stream(
        self,
        stream: Sequence[DynInst],
        reuse: FiniteReuseResult | None,
    ) -> list[_FetchItem]:
        items: list[_FetchItem] = []
        ranges = reuse.reused_ranges if reuse is not None else []
        entries = reuse.reused_entries if reuse is not None else []
        next_range = 0
        i = 0
        n = len(stream)
        while i < n:
            if next_range < len(ranges) and ranges[next_range][0] == i:
                start, stop = ranges[next_range]
                entry = entries[next_range]
                items.append(
                    _FetchItem(
                        read_locs=tuple(loc for loc, _ in entry.inputs),
                        write_locs=tuple(loc for loc, _ in entry.outputs),
                        op_class=None,
                        latency=self.config.reuse_latency,
                        count=stop - start,
                    )
                )
                next_range += 1
                i = stop
                continue
            inst = stream[i]
            items.append(
                _FetchItem(
                    read_locs=tuple(loc for loc, _ in inst.reads),
                    write_locs=tuple(loc for loc, _ in inst.writes),
                    op_class=inst.op_class,
                    latency=inst.latency,
                    count=1,
                )
            )
            i += 1
        return items

    # ------------------------------------------------------------------
    def simulate(
        self,
        trace: AnyTrace | Sequence[DynInst],
        reuse: FiniteReuseResult | None = None,
    ) -> PipelineResult:
        """Run the core over a stream, optionally with reuse decisions.

        ``reuse`` must come from a :class:`FiniteReuseSimulator` run
        over the *same* stream.
        """
        stream = stream_of(trace)
        items = self._build_fetch_stream(stream, reuse)
        config = self.config

        rob: deque[_Slot] = deque()
        last_writer: dict[int, _Slot] = {}
        # unpipelined units: next-free cycle per unit instance
        unpipelined_free: dict[OpClass, list[int]] = {
            cls: [0] * config.functional_units[cls] for cls in UNPIPELINED
        }

        fetch_index = 0
        committed_instructions = 0
        committed_slots = 0
        reused_instructions = 0
        reuse_events = 0
        cycle = 0
        total_items = len(items)
        # hard ceiling so a model bug cannot hang the suite
        max_cycles = 40 * max(len(stream), 1) + 1000

        while (fetch_index < total_items or rob) and cycle < max_cycles:
            # ---- commit (in order) -----------------------------------
            budget = config.commit_width
            while (
                budget
                and rob
                and rob[0].done_cycle is not None
                and rob[0].done_cycle <= cycle
            ):
                slot = rob.popleft()
                committed_slots += 1
                committed_instructions += slot.count
                if slot.op_class is None:
                    reused_instructions += slot.count
                    reuse_events += 1
                budget -= 1

            # ---- issue (oldest first) --------------------------------
            budget = config.issue_width
            pipelined_used: dict[OpClass, int] = {}
            # An unpipelined class closes for younger slots once an
            # older slot of that class failed to issue this cycle:
            # letting a younger divide grab the unit would make its
            # multi-cycle occupancy delay program-order-earlier work.
            blocked: set[OpClass] = set()
            for slot in rob:
                if budget == 0:
                    break
                if slot.done_cycle is not None:
                    continue
                cls = slot.op_class
                if not slot.ready(cycle):
                    if cls in UNPIPELINED:
                        blocked.add(cls)
                    continue
                if cls is None:
                    slot.done_cycle = cycle + slot.latency
                    budget -= 1
                    continue
                if cls in UNPIPELINED:
                    if cls in blocked:
                        continue  # an older divide has first claim
                    units = unpipelined_free[cls]
                    unit = min(range(len(units)), key=units.__getitem__)
                    if units[unit] > cycle:
                        blocked.add(cls)
                        continue  # all units busy
                    units[unit] = cycle + slot.latency
                else:
                    used = pipelined_used.get(cls, 0)
                    if used >= config.functional_units[cls]:
                        continue  # class issue ports exhausted
                    pipelined_used[cls] = used + 1
                slot.done_cycle = cycle + slot.latency
                budget -= 1

            # ---- fetch / rename --------------------------------------
            budget = config.fetch_width
            while budget and fetch_index < total_items and len(rob) < config.rob_size:
                item = items[fetch_index]
                deps = []
                seen = set()
                for loc in item.read_locs:
                    producer = last_writer.get(loc)
                    if producer is not None and id(producer) not in seen:
                        seen.add(id(producer))
                        deps.append(producer)
                slot = _Slot(
                    item.op_class, item.latency, item.count, deps, item.write_locs
                )
                slot.min_issue_cycle = cycle + 1
                for loc in item.write_locs:
                    last_writer[loc] = slot
                rob.append(slot)
                fetch_index += 1
                budget -= 1

            cycle += 1

        if rob or fetch_index < total_items:  # pragma: no cover
            raise RuntimeError("pipeline model exceeded its cycle ceiling")

        return PipelineResult(
            total_cycles=cycle,
            committed_instructions=committed_instructions,
            committed_slots=committed_slots,
            reused_instructions=reused_instructions,
            reuse_events=reuse_events,
        )
