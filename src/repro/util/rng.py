"""Deterministic pseudo-random data for workload construction.

The workload kernels need input data (text to compress, images to
transform, grids to relax...) that is reproducible across runs and
independent of Python's global RNG state.  ``DeterministicRNG`` is a
small splitmix64/xorshift generator: fast, seedable, and stable across
platforms and Python versions (unlike ``random.Random`` whose
algorithms are an implementation detail we'd rather not depend on for
published experiment tables).
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1


def mix64(x: int) -> int:
    """SplitMix64 finalizer: avalanche a 64-bit integer."""
    x &= MASK64
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & MASK64
    return (x ^ (x >> 31)) & MASK64


class DeterministicRNG:
    """A seedable splitmix64 stream with convenience draws.

    >>> rng = DeterministicRNG(42)
    >>> rng.randint(0, 10) == DeterministicRNG(42).randint(0, 10)
    True
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = mix64(seed ^ 0x9E3779B97F4A7C15)

    def next_u64(self) -> int:
        """Advance the stream and return a 64-bit unsigned value."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & MASK64
        return mix64(self._state)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range ``[lo, hi]``."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        return lo + self.next_u64() % span

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randint(0, i)
            seq[i], seq[j] = seq[j], seq[i]

    def ints(self, n: int, lo: int, hi: int) -> list[int]:
        """A list of ``n`` uniform integers in ``[lo, hi]``."""
        return [self.randint(lo, hi) for _ in range(n)]

    def floats(self, n: int, lo: float = 0.0, hi: float = 1.0) -> list[float]:
        """A list of ``n`` uniform floats in ``[lo, hi)``."""
        span = hi - lo
        return [lo + span * self.random() for _ in range(n)]
