"""Cross-process filesystem primitives for the shared artifact store.

``.repro-cache/`` started life as a single-process memoisation
directory; the sweep service turns it into a *shared* store with many
concurrent writer processes.  Atomic renames alone are not enough for
that: read-modify-write sequences (the profile index), first-claim
races (queue shards) and crash cleanup (orphaned temp files, stale
leases) all need real cross-process coordination.  This module is the
small POSIX toolbox the store and the service are built on:

- :func:`file_lock` — advisory per-file locks via ``flock(2)``.  Locks
  are keyed by path, so independent entries never contend; the lock
  file itself is a zero-byte sibling that is cheap to create and safe
  to leave behind (``flock`` locks die with the holder's fd, so a
  killed process can never wedge the store).
- :func:`pid_alive` — liveness probe used to tell a *crashed* writer's
  leftovers from a *slow* writer's work in progress.
- :func:`make_tmp` / :func:`tmp_pid` — temp files tagged with their
  creator's pid so the reaper can apply pid liveness, not just age.
- :func:`reap_stale_tmps` — remove temp files whose creator is dead
  (immediately) or unknown and old (after ``max_age``).

On the one non-POSIX platform without ``fcntl`` the locks degrade to
no-ops with a one-time warning: single-process use stays correct, and
the concurrent sweep service is documented POSIX-only.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import tempfile
import time

from repro.obs import get_logger

try:  # pragma: no cover - fcntl exists on every POSIX platform
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback
    fcntl = None  # type: ignore[assignment]

_log = get_logger("fslock")
_warned_no_flock = False

#: Temp files whose creator pid is unknown are reaped after this many
#: seconds; pid-tagged temp files of dead processes are reaped at once.
DEFAULT_TMP_MAX_AGE = 3600.0


@contextlib.contextmanager
def file_lock(path: str | os.PathLike, *, shared: bool = False):
    """Hold an advisory ``flock`` on ``path`` for the ``with`` body.

    The lock file is created (empty) if missing and never deleted —
    deleting would race a concurrent locker that already opened the
    old inode and would silently split the lock in two.  Blocks until
    the lock is granted; ``shared=True`` takes a read lock.
    """
    global _warned_no_flock
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
        elif not _warned_no_flock:  # pragma: no cover - non-POSIX only
            _warned_no_flock = True
            _log.warning(
                "fcntl.flock unavailable on this platform; file locks "
                "degrade to no-ops (single-process use only)"
            )
        yield
    finally:
        # closing the fd releases the flock atomically
        os.close(fd)


def pid_alive(pid: int) -> bool:
    """True when a process with ``pid`` exists (signal-0 probe).

    ``EPERM`` counts as alive — the process exists, we just may not
    signal it.  Pid reuse can report a recycled pid as alive; callers
    that care combine this with an age threshold.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-uid process
        return True
    return True


def make_tmp(directory: str | os.PathLike, prefix: str) -> pathlib.Path:
    """Create a pid-tagged temp file and return its path.

    The name embeds the creating pid (``<prefix>.pid<N>.<rand>.tmp``)
    so :func:`reap_stale_tmps` can distinguish a crashed writer's
    orphan from a live writer's file in flight.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    fd, name = tempfile.mkstemp(
        dir=directory, prefix=f"{prefix}.pid{os.getpid()}.", suffix=".tmp"
    )
    os.close(fd)
    return pathlib.Path(name)


def tmp_pid(path: str | os.PathLike) -> int | None:
    """The creator pid embedded in a temp file name, or None."""
    name = pathlib.Path(path).name
    for part in name.split("."):
        if part.startswith("pid") and part[len("pid"):].isdigit():
            return int(part[len("pid"):])
    return None


def reap_stale_tmps(
    directory: str | os.PathLike,
    *,
    max_age: float = DEFAULT_TMP_MAX_AGE,
) -> int:
    """Delete orphaned ``*.tmp`` files under ``directory`` (one level).

    A temp file is an orphan when its embedded creator pid is dead, or
    — for legacy/untagged names — when it is older than ``max_age``
    seconds.  Pid-tagged files of *live* processes are never touched
    regardless of age: a 50M-instruction trace write is slow, not
    stuck.  Returns the number of files removed.  Races with the
    creator finishing (``os.replace`` away) are benign: unlink of a
    vanished file is ignored.
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return 0
    now = time.time()
    removed = 0
    for entry in directory.iterdir():
        if not entry.name.endswith(".tmp") or not entry.is_file():
            continue
        pid = tmp_pid(entry)
        if pid is not None:
            stale = not pid_alive(pid)
        else:
            try:
                stale = now - entry.stat().st_mtime > max_age
            except OSError:
                continue
        if stale:
            try:
                entry.unlink()
                removed += 1
            except OSError:  # pragma: no cover - lost a benign race
                continue
    if removed:
        _log.warning("reaped %d orphaned tmp file(s) under %s",
                     removed, directory)
    return removed
