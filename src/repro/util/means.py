"""Averaging helpers matching the paper's reporting conventions.

Section 4.1 of the paper: *"Average speed-ups have been computed
through harmonic means and average percentages have been determined
through arithmetic means."*  Every figure driver in :mod:`repro.exp`
uses these functions so the aggregation rule is applied uniformly.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def _as_list(values: Iterable[float]) -> list[float]:
    out = [float(v) for v in values]
    if not out:
        raise ValueError("cannot average an empty sequence")
    return out


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain arithmetic mean; used for percentages and trace sizes."""
    vals = _as_list(values)
    return sum(vals) / len(vals)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; used for speed-ups (paper section 4.1).

    Raises :class:`ValueError` on non-positive inputs, for which the
    harmonic mean is undefined.
    """
    vals = _as_list(values)
    if any(v <= 0.0 for v in vals):
        raise ValueError("harmonic mean requires strictly positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; provided for cross-checking aggregate speed-ups."""
    vals = _as_list(values)
    if any(v <= 0.0 for v in vals):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean (e.g. instruction-count-weighted rates)."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not values:
        raise ValueError("cannot average an empty sequence")
    total_w = float(sum(weights))
    if total_w <= 0.0:
        raise ValueError("weights must sum to a positive value")
    return sum(float(v) * float(w) for v, w in zip(values, weights)) / total_w


def harmonic_mean_speedup(
    baseline_times: Sequence[float], improved_times: Sequence[float]
) -> float:
    """Harmonic mean of per-program speed-ups ``baseline/improved``."""
    if len(baseline_times) != len(improved_times):
        raise ValueError("sequences must have the same length")
    speedups = [b / i for b, i in zip(baseline_times, improved_times)]
    return harmonic_mean(speedups)
