"""Process-pool fan-out for per-benchmark experiment work.

The 14 workload kernels are embarrassingly parallel: each produces its
own dynamic trace and its own analysis results.  ``parallel_map``
mirrors the map-style collective pattern from the HPC guides
(mpi4py's ``scatter``/``gather``) using the standard library so the
library works on a laptop with no MPI installation.

Workers receive picklable task descriptions, never live ``Machine``
objects, so the fan-out stays cheap and the workers re-derive state
locally (the "owner computes" rule).

A worker that *dies* (OOM kill, segfaulting extension, ``kill -9``)
breaks the whole ``ProcessPoolExecutor``; the stdlib surfaces that as
an opaque ``BrokenProcessPool`` with no hint of what was running.
``parallel_map`` instead reports which items were in flight through
the ``repro.obs`` logger and finishes the unfinished items
sequentially in the parent — on the theory that a dead worker is an
environment problem (memory pressure, external kill), not a property
of the item it happened to be holding.  Deterministic exceptions
*raised by* ``fn`` are not retried or swallowed; they propagate to the
caller exactly as before.
"""

from __future__ import annotations

import multiprocessing
import os
import reprlib
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TypeVar

from repro.obs import get_logger, incr

T = TypeVar("T")
R = TypeVar("R")

_log = get_logger("parallel")

_repr = reprlib.Repr()
_repr.maxother = 60
_repr.maxstring = 60


def default_worker_count(task_count: int) -> int:
    """Pick a worker count: never more workers than tasks or cores."""
    cores = os.cpu_count() or 1
    return max(1, min(task_count, cores))


def _apply_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    """Worker body: map ``fn`` over one batch of items."""
    return [fn(item) for item in chunk]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    max_workers: int | None = None,
    serial_threshold: int = 2,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    Falls back to a serial loop for tiny inputs (process start-up costs
    more than it saves) and when ``max_workers`` is 1, which also makes
    the function safe to call from within a worker process.

    Workers are started with the explicit ``spawn`` context — the same
    start method on every platform, and safe in threaded parents where
    ``fork`` can deadlock.  Items ship in computed-size chunks so many
    small tasks batch instead of paying one IPC round-trip each.

    If a worker process dies, the items it may have been holding are
    named in a warning and every not-yet-finished chunk is computed
    sequentially in the parent, so one crashed worker degrades the run
    instead of losing it.
    """
    items = list(items)
    if max_workers is None:
        max_workers = default_worker_count(len(items))
    if len(items) < serial_threshold or max_workers <= 1:
        return [fn(item) for item in items]
    # ~4 chunks per worker balances batching against load imbalance
    chunksize = max(1, len(items) // (max_workers * 4))
    starts = list(range(0, len(items), chunksize))
    chunks = {start: items[start : start + chunksize] for start in starts}

    results: list = [None] * len(items)
    crashed_at: int | None = None
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=max_workers, mp_context=context) as pool:
        futures = {
            start: pool.submit(_apply_chunk, fn, chunks[start])
            for start in starts
        }
        for start in starts:
            try:
                chunk_result = futures[start].result()
            except BrokenProcessPool:
                crashed_at = start
                break
            for offset, value in enumerate(chunk_result):
                results[start + offset] = value

    # the pool is dead, but chunks that finished *before* the crash
    # still hold results — salvage those, redo the rest locally
    unfinished: list[int] = []
    if crashed_at is not None:
        for start in starts[starts.index(crashed_at):]:
            fut = futures[start]
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                for offset, value in enumerate(fut.result()):
                    results[start + offset] = value
            else:
                unfinished.append(start)

    if unfinished:
        incr("parallel.worker_crash")
        in_flight = [
            _repr.repr(item) for s in unfinished for item in chunks[s]
        ]
        _log.warning(
            "a worker process died; items possibly in flight: %s — "
            "finishing %d item(s) sequentially in the parent",
            ", ".join(in_flight[:8]) + (" ..." if len(in_flight) > 8 else ""),
            sum(len(chunks[s]) for s in unfinished),
        )
        for s in unfinished:
            for offset, item in enumerate(chunks[s]):
                results[s + offset] = fn(item)
    return results


def chunked(items: Sequence[T], chunk_size: int) -> Iterable[Sequence[T]]:
    """Yield successive fixed-size chunks (last chunk may be short)."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    for start in range(0, len(items), chunk_size):
        yield items[start : start + chunk_size]
