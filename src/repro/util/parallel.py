"""Process-pool fan-out for per-benchmark experiment work.

The 14 workload kernels are embarrassingly parallel: each produces its
own dynamic trace and its own analysis results.  ``parallel_map``
mirrors the map-style collective pattern from the HPC guides
(mpi4py's ``scatter``/``gather``) using the standard library so the
library works on a laptop with no MPI installation.

Workers receive picklable task descriptions, never live ``Machine``
objects, so the fan-out stays cheap and the workers re-derive state
locally (the "owner computes" rule).
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count(task_count: int) -> int:
    """Pick a worker count: never more workers than tasks or cores."""
    cores = os.cpu_count() or 1
    return max(1, min(task_count, cores))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    max_workers: int | None = None,
    serial_threshold: int = 2,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    Falls back to a serial loop for tiny inputs (process start-up costs
    more than it saves) and when ``max_workers`` is 1, which also makes
    the function safe to call from within a worker process.

    Workers are started with the explicit ``spawn`` context — the same
    start method on every platform, and safe in threaded parents where
    ``fork`` can deadlock.  ``pool.map`` gets a computed ``chunksize``
    so many small tasks ship in batches instead of one IPC round-trip
    each.
    """
    items = list(items)
    if max_workers is None:
        max_workers = default_worker_count(len(items))
    if len(items) < serial_threshold or max_workers <= 1:
        return [fn(item) for item in items]
    # ~4 chunks per worker balances batching against load imbalance
    chunksize = max(1, len(items) // (max_workers * 4))
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=max_workers, mp_context=context) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def chunked(items: Sequence[T], chunk_size: int) -> Iterable[Sequence[T]]:
    """Yield successive fixed-size chunks (last chunk may be short)."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    for start in range(0, len(items), chunk_size):
        yield items[start : start + chunk_size]
