"""Shared utilities: statistics, deterministic data generation, formatting.

These helpers are deliberately dependency-light so every other
subpackage can import them without cycles.
"""

from repro.util.means import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    harmonic_mean_speedup,
    weighted_mean,
)
from repro.util.rng import DeterministicRNG, mix64
from repro.util.tables import format_markdown_table, format_table

__all__ = [
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "harmonic_mean_speedup",
    "weighted_mean",
    "DeterministicRNG",
    "mix64",
    "format_table",
    "format_markdown_table",
]
