"""ASCII/markdown table rendering for experiment reports.

Every benchmark harness prints its results through these helpers so
the regenerated figures read like the paper's tables: one row per
program plus the suite averages.
"""

from __future__ import annotations

from collections.abc import Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a monospace table with a ruled header.

    Floats are formatted to two decimals, matching the paper's
    precision for speed-ups and percentages.
    """
    str_rows = [[_stringify(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    lines.extend("| " + " | ".join(row) + " |" for row in str_rows)
    return "\n".join(lines)
