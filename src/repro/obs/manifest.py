"""JSONL run manifests: one append-only file per experiment run.

A *run* is one ``collect_profiles`` invocation (a figure sweep, a
benchmark session, a CI smoke run).  Its manifest is a JSON-lines file
under ``<cache_dir>/runs/`` where every line is one event::

    {"event": "run_start",  "t": ..., "run_id": ..., "schema": 1,
     "workloads": [...], "config": {...}}
    {"event": "profile_start", "t": ..., "name": ..., "attempt": 1}
    {"event": "profile_done",  "t": ..., "name": ..., "attempt": 1,
     "seconds": ..., "source": "computed"|"cache",
     "telemetry": {"counters": {...}, "timers": {...}}}
    {"event": "profile_error", "t": ..., "name": ..., "attempt": 1,
     "kind": "RuntimeError", "message": ..., "will_retry": bool}
    {"event": "retry",         "t": ..., "name": ..., "attempt": 2,
     "backoff": 0.05}
    {"event": "worker_crash",  "t": ..., "in_flight": [...]}
    {"event": "fallback_sequential", "t": ..., "remaining": [...]}
    {"event": "run_end",       "t": ..., "ok": [...], "failed": [...],
     "resumed": [...], "seconds": ...}

Writes are append-one-line-per-event with an ``fsync``-free flush: a
killed run leaves a readable prefix (at worst one truncated final
line, which :func:`read_events` tolerates), so the manifest is exactly
as durable as the work it describes.  The ``repro obs`` CLI renders
these files; :func:`summarize` is the shared reduction it uses.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any

from repro.obs import telemetry

#: Manifest schema version, bumped on incompatible event changes.
SCHEMA_VERSION = 1

#: Per-process sequence number so two runs in one second stay distinct.
_SEQ = 0


def runs_dir() -> pathlib.Path:
    """``<cache_dir>/runs`` (honours ``REPRO_CACHE_DIR``)."""
    from repro.vm import tracecache

    return tracecache.cache_dir() / "runs"


def _new_run_id() -> str:
    global _SEQ
    _SEQ += 1
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-p{os.getpid()}-{_SEQ}"


class RunManifest:
    """Append-only JSONL event writer for one run.

    The file is opened and closed per event: with a handful of kernels
    per run the overhead is irrelevant and every event is on disk the
    moment it happened — which is the whole point when a worker is
    about to take the process down.
    """

    def __init__(self, run_id: str | None = None,
                 directory: pathlib.Path | None = None):
        self.run_id = run_id or _new_run_id()
        directory = directory if directory is not None else runs_dir()
        self.path = directory / f"run-{self.run_id}.jsonl"

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event line (creating the runs directory lazily)."""
        record = {"event": event, "t": time.time(), **fields}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        telemetry.incr("manifest.events")

    def start(self, workloads: tuple[str, ...], config: dict[str, Any]) -> None:
        self.emit(
            "run_start",
            run_id=self.run_id,
            schema=SCHEMA_VERSION,
            workloads=list(workloads),
            config=config,
        )

    def end(self, ok: list[str], failed: list[str], resumed: list[str],
            seconds: float) -> None:
        self.emit(
            "run_end", ok=ok, failed=failed, resumed=resumed,
            seconds=seconds,
        )


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------

def read_events(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse a manifest, skipping unparseable (e.g. truncated) lines.

    A run killed mid-write leaves at most a truncated final line;
    treating bad lines as absent keeps every completed event readable.
    """
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                telemetry.incr("manifest.bad_lines")
                continue
            if isinstance(record, dict):
                events.append(record)
    return events


def list_runs(directory: pathlib.Path | None = None) -> list[pathlib.Path]:
    """Manifest paths, oldest first (by modification time)."""
    directory = directory if directory is not None else runs_dir()
    if not directory.is_dir():
        return []
    paths = [
        p for p in directory.iterdir()
        if p.is_file() and p.name.startswith("run-") and p.suffix == ".jsonl"
    ]
    return sorted(paths, key=lambda p: (p.stat().st_mtime, p.name))


def find_run(run_id: str, directory: pathlib.Path | None = None) -> pathlib.Path:
    """Resolve ``latest`` or a (possibly abbreviated) run id to a path."""
    runs = list_runs(directory)
    if not runs:
        raise FileNotFoundError("no run manifests recorded yet")
    if run_id == "latest":
        return runs[-1]
    matches = [p for p in runs if run_id in p.name]
    if not matches:
        raise FileNotFoundError(f"no run manifest matching {run_id!r}")
    return matches[-1]


def summarize(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Reduce a run's events to the shape ``repro obs show`` renders.

    Returns::

        {"run_id": ..., "workloads": [...], "seconds": ...,
         "kernels": {name: {"status": "ok"|"failed"|"missing",
                            "source": ..., "seconds": ..., "attempts": n,
                            "errors": [...]}},
         "counters": {...}, "timers": {...},
         "worker_crashes": n, "resumed": [...], "complete": bool}
    """
    kernels: dict[str, dict[str, Any]] = {}
    totals = telemetry.Telemetry()
    summary: dict[str, Any] = {
        "run_id": None,
        "workloads": [],
        "seconds": None,
        "kernels": kernels,
        "worker_crashes": 0,
        "resumed": [],
        "complete": False,
    }

    def kernel(name: str) -> dict[str, Any]:
        return kernels.setdefault(
            name,
            {"status": "missing", "source": None, "seconds": None,
             "attempts": 0, "errors": []},
        )

    for record in events:
        event = record.get("event")
        if event == "run_start":
            summary["run_id"] = record.get("run_id")
            summary["workloads"] = list(record.get("workloads", []))
            for name in summary["workloads"]:
                kernel(name)
        elif event == "profile_start":
            entry = kernel(record["name"])
            entry["attempts"] = max(entry["attempts"],
                                    int(record.get("attempt", 1)))
        elif event == "profile_done":
            entry = kernel(record["name"])
            entry["status"] = "ok"
            entry["source"] = record.get("source", "computed")
            entry["seconds"] = record.get("seconds")
            entry["attempts"] = max(entry["attempts"],
                                    int(record.get("attempt", 1)))
            totals.merge(record.get("telemetry", {}))
        elif event == "profile_error":
            entry = kernel(record["name"])
            if entry["status"] != "ok":
                entry["status"] = "failed"
            entry["attempts"] = max(entry["attempts"],
                                    int(record.get("attempt", 1)))
            entry["errors"].append(
                f"{record.get('kind', 'Error')}: {record.get('message', '')}"
            )
        elif event == "worker_crash":
            summary["worker_crashes"] += 1
        elif event == "run_end":
            summary["seconds"] = record.get("seconds")
            summary["resumed"] = list(record.get("resumed", []))
            summary["complete"] = True

    snap = totals.snapshot()
    summary["counters"] = snap["counters"]
    summary["timers"] = snap["timers"]
    return summary
