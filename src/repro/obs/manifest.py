"""JSONL run manifests: one append-only file per experiment run.

A *run* is one ``collect_profiles`` invocation (a figure sweep, a
benchmark session, a CI smoke run).  Its manifest is a JSON-lines file
under ``<cache_dir>/runs/`` where every line is one event::

    {"event": "run_start",  "t": ..., "run_id": ..., "schema": 1,
     "workloads": [...], "config": {...}}
    {"event": "profile_start", "t": ..., "name": ..., "attempt": 1}
    {"event": "profile_done",  "t": ..., "name": ..., "attempt": 1,
     "seconds": ..., "source": "computed"|"cache",
     "telemetry": {"counters": {...}, "timers": {...}}}
    {"event": "profile_error", "t": ..., "name": ..., "attempt": 1,
     "kind": "RuntimeError", "message": ..., "will_retry": bool}
    {"event": "retry",         "t": ..., "name": ..., "attempt": 2,
     "backoff": 0.05}
    {"event": "worker_crash",  "t": ..., "in_flight": [...]}
    {"event": "fallback_sequential", "t": ..., "remaining": [...]}
    {"event": "run_end",       "t": ..., "ok": [...], "failed": [...],
     "resumed": [...], "seconds": ...}

Every event is appended as one ``write(2)`` on an ``O_APPEND`` file
descriptor.  POSIX makes such appends atomic with respect to each
other, so *concurrent writers* (the sweep service's worker shards all
feeding one coordinator manifest, or many workers writing their own
files in one directory) can never interleave partial lines — the
failure mode of buffered ``open(..., "a")`` appends, where one logical
line could reach the kernel as several writes with another process's
bytes spliced between them.  A *killed* writer still leaves at most
one truncated final line; :func:`read_manifest` tolerates (and counts)
such torn lines so ``repro obs show`` can both render the readable
prefix and report what was lost.

A service sweep produces a *family* of manifests sharing one run id:
the coordinator's ``run-<id>.jsonl`` plus one ``run-<id>-w<worker>``
file per worker shard.  :func:`find_run_paths` resolves a run id to
the whole family and :func:`merge_events` folds them into a single
time-ordered event list, so ``repro obs show`` presents one run view
regardless of how many processes wrote it.  The ``repro obs`` CLI
renders these files; :func:`summarize` is the shared reduction it
uses.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import time
from typing import Any

from repro.obs import telemetry

#: Manifest schema version, bumped on incompatible event changes.
SCHEMA_VERSION = 1

#: Worker-shard manifest suffix: ``run-<id>-w<worker>.jsonl``.
_WORKER_SUFFIX = re.compile(r"-w[A-Za-z0-9_]+$")

#: Per-process sequence number so two runs in one second stay distinct.
_SEQ = 0


def runs_dir() -> pathlib.Path:
    """``<cache_dir>/runs`` (honours ``REPRO_CACHE_DIR``)."""
    from repro.vm import tracecache

    return tracecache.cache_dir() / "runs"


def _new_run_id() -> str:
    global _SEQ
    _SEQ += 1
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-p{os.getpid()}-{_SEQ}"


class RunManifest:
    """Append-only JSONL event writer for one run.

    The file is opened and closed per event: with a handful of kernels
    per run the overhead is irrelevant and every event is on disk the
    moment it happened — which is the whole point when a worker is
    about to take the process down.

    ``worker`` names a worker shard of a multi-process run: the
    manifest lands next to the coordinator's as
    ``run-<run_id>-w<worker>.jsonl`` (same run id inside), every event
    is tagged with the worker, and ``repro obs show <run_id>`` merges
    the whole family into one run view.
    """

    def __init__(self, run_id: str | None = None,
                 directory: pathlib.Path | None = None,
                 worker: str | None = None):
        self.run_id = run_id or _new_run_id()
        self.worker = worker
        directory = directory if directory is not None else runs_dir()
        tag = "" if worker is None else f"-w{re.sub(r'[^A-Za-z0-9_]', '_', worker)}"
        self.path = directory / f"run-{self.run_id}{tag}.jsonl"

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event line (creating the runs directory lazily).

        The line reaches the file as a single ``write(2)`` on an
        ``O_APPEND`` descriptor, so appends from concurrent processes
        serialize whole-line instead of interleaving fragments.
        """
        record = {"event": event, "t": time.time(), **fields}
        if self.worker is not None:
            record.setdefault("worker", self.worker)
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        telemetry.incr("manifest.events")

    def start(self, workloads: tuple[str, ...], config: dict[str, Any]) -> None:
        self.emit(
            "run_start",
            run_id=self.run_id,
            schema=SCHEMA_VERSION,
            workloads=list(workloads),
            config=config,
        )

    def end(self, ok: list[str], failed: list[str], resumed: list[str],
            seconds: float) -> None:
        self.emit(
            "run_end", ok=ok, failed=failed, resumed=resumed,
            seconds=seconds,
        )


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------

def read_manifest(
    path: str | pathlib.Path,
) -> tuple[list[dict[str, Any]], int]:
    """Parse a manifest; returns ``(events, torn_line_count)``.

    A run killed mid-write leaves at most a truncated final line;
    treating bad lines as absent keeps every completed event readable,
    and the count lets ``repro obs show`` report the damage instead of
    hiding it.
    """
    events: list[dict[str, Any]] = []
    torn = 0
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                telemetry.incr("manifest.bad_lines")
                torn += 1
                continue
            if isinstance(record, dict):
                events.append(record)
            else:
                torn += 1
    return events, torn


def read_events(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse a manifest, skipping unparseable (e.g. truncated) lines."""
    return read_manifest(path)[0]


def merge_events(
    paths: list[pathlib.Path] | tuple[pathlib.Path, ...],
) -> tuple[list[dict[str, Any]], int]:
    """Fold a manifest family into one time-ordered event list.

    Returns ``(events, torn_line_count)`` summed across the family.
    Events are ordered by their ``t`` stamp (stable across files), so
    a coordinator's ``run_start`` precedes the workers' shard events
    it caused.
    """
    merged: list[dict[str, Any]] = []
    torn = 0
    for path in paths:
        events, bad = read_manifest(path)
        merged.extend(events)
        torn += bad
    merged.sort(key=lambda record: record.get("t") or 0.0)
    return merged, torn


def list_runs(directory: pathlib.Path | None = None) -> list[pathlib.Path]:
    """Manifest paths, oldest first (by modification time)."""
    directory = directory if directory is not None else runs_dir()
    if not directory.is_dir():
        return []
    paths = [
        p for p in directory.iterdir()
        if p.is_file() and p.name.startswith("run-") and p.suffix == ".jsonl"
    ]
    return sorted(paths, key=lambda p: (p.stat().st_mtime, p.name))


def group_key(path: pathlib.Path) -> str:
    """The run id shared by a manifest family (worker tag stripped)."""
    return _WORKER_SUFFIX.sub("", path.stem.removeprefix("run-"))


def list_run_groups(
    directory: pathlib.Path | None = None,
) -> list[tuple[str, list[pathlib.Path]]]:
    """Manifest families grouped by run id, oldest group first.

    Each entry is ``(run_id, [paths])`` with the coordinator manifest
    (no worker tag) first when present, then worker manifests in name
    order.
    """
    groups: dict[str, list[pathlib.Path]] = {}
    order: list[str] = []
    for path in list_runs(directory):
        key = group_key(path)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(path)
    for paths in groups.values():
        paths.sort(key=lambda p: (_WORKER_SUFFIX.search(p.stem) is not None,
                                  p.name))
    return [(key, groups[key]) for key in order]


def find_run(run_id: str, directory: pathlib.Path | None = None) -> pathlib.Path:
    """Resolve ``latest`` or a (possibly abbreviated) run id to a path."""
    runs = list_runs(directory)
    if not runs:
        raise FileNotFoundError("no run manifests recorded yet")
    if run_id == "latest":
        return runs[-1]
    matches = [p for p in runs if run_id in p.name]
    if not matches:
        raise FileNotFoundError(f"no run manifest matching {run_id!r}")
    return matches[-1]


def find_run_paths(
    run_id: str, directory: pathlib.Path | None = None
) -> list[pathlib.Path]:
    """Resolve a run id to its whole manifest family (see module doc).

    ``latest`` resolves to the group of the most recently written
    manifest; otherwise any group whose id contains ``run_id``
    matches, newest such group winning.
    """
    groups = list_run_groups(directory)
    if not groups:
        raise FileNotFoundError("no run manifests recorded yet")
    if run_id == "latest":
        newest = find_run("latest", directory)
        key = group_key(newest)
        return dict(groups)[key]
    matches = [(key, paths) for key, paths in groups if run_id in key]
    if not matches:
        # fall back to matching the full file name (worker tags etc.)
        matches = [
            (key, paths) for key, paths in groups
            if any(run_id in p.name for p in paths)
        ]
    if not matches:
        raise FileNotFoundError(f"no run manifest matching {run_id!r}")
    return matches[-1][1]


def summarize(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Reduce a run's events to the shape ``repro obs show`` renders.

    Returns::

        {"run_id": ..., "workloads": [...], "seconds": ...,
         "kernels": {name: {"status": "ok"|"failed"|"missing",
                            "source": ..., "seconds": ..., "attempts": n,
                            "errors": [...]}},
         "counters": {...}, "timers": {...},
         "worker_crashes": n, "resumed": [...], "complete": bool,
         "workers": [...], "steals": n}

    Accepts merged multi-manifest event lists (a service sweep's
    coordinator + worker shards): the first ``run_start`` wins,
    ``workers`` collects the worker tags seen, and ``steals`` counts
    shards reclaimed from crashed workers.
    """
    kernels: dict[str, dict[str, Any]] = {}
    totals = telemetry.Telemetry()
    workers: set[str] = set()
    summary: dict[str, Any] = {
        "run_id": None,
        "workloads": [],
        "seconds": None,
        "kernels": kernels,
        "worker_crashes": 0,
        "resumed": [],
        "complete": False,
        "steals": 0,
    }

    def kernel(name: str) -> dict[str, Any]:
        return kernels.setdefault(
            name,
            {"status": "missing", "source": None, "seconds": None,
             "attempts": 0, "errors": []},
        )

    for record in events:
        event = record.get("event")
        if "worker" in record:
            workers.add(str(record["worker"]))
        if event == "run_start":
            if summary["run_id"] is None:
                summary["run_id"] = record.get("run_id")
                summary["workloads"] = list(record.get("workloads", []))
            for name in record.get("workloads", []):
                kernel(name)
        elif event == "shard_steal":
            summary["steals"] += 1
        elif event == "profile_start":
            entry = kernel(record["name"])
            entry["attempts"] = max(entry["attempts"],
                                    int(record.get("attempt", 1)))
        elif event == "profile_done":
            entry = kernel(record["name"])
            entry["status"] = "ok"
            entry["source"] = record.get("source", "computed")
            entry["seconds"] = record.get("seconds")
            entry["attempts"] = max(entry["attempts"],
                                    int(record.get("attempt", 1)))
            totals.merge(record.get("telemetry", {}))
        elif event == "profile_error":
            entry = kernel(record["name"])
            if entry["status"] != "ok":
                entry["status"] = "failed"
            entry["attempts"] = max(entry["attempts"],
                                    int(record.get("attempt", 1)))
            entry["errors"].append(
                f"{record.get('kind', 'Error')}: {record.get('message', '')}"
            )
        elif event == "worker_crash":
            summary["worker_crashes"] += 1
        elif event == "run_end":
            summary["seconds"] = record.get("seconds")
            summary["resumed"] = list(record.get("resumed", []))
            summary["complete"] = True

    snap = totals.snapshot()
    summary["counters"] = snap["counters"]
    summary["timers"] = snap["timers"]
    summary["workers"] = sorted(workers)
    return summary
