"""Observability: structured telemetry, run manifests, and logging.

The experiment stack got fast (the fused engine) and persistent (the
trace cache); this package makes it *watchable* and *diagnosable*:

- :mod:`repro.obs.telemetry` — named counters and stage timers, scoped
  per task and mergeable across processes;
- :mod:`repro.obs.manifest` — append-only JSONL run manifests under
  ``<cache_dir>/runs/``, one event per line, summarized by the
  ``repro obs`` CLI subcommand;
- :func:`get_logger` — the shared ``repro.obs`` logger through which
  recoverable infrastructure trouble (corrupt cache entries, worker
  crashes, retries) is reported as warnings instead of being swallowed.

``REPRO_PROFILE=1`` additionally turns on per-scenario profiling in
:class:`~repro.dataflow.model.FusedDataflowEngine` (wall time and
instruction throughput per analysis pass); see
:func:`profiling_enabled`.
"""

from __future__ import annotations

import logging
import os

from repro.obs.manifest import (
    RunManifest,
    find_run,
    find_run_paths,
    list_run_groups,
    list_runs,
    merge_events,
    read_events,
    read_manifest,
    runs_dir,
    summarize,
)
from repro.obs.telemetry import Telemetry, current, incr, scope, time_stage

__all__ = [
    "RunManifest",
    "Telemetry",
    "current",
    "find_run",
    "find_run_paths",
    "get_logger",
    "incr",
    "list_run_groups",
    "list_runs",
    "merge_events",
    "profiling_enabled",
    "read_events",
    "read_manifest",
    "runs_dir",
    "scope",
    "summarize",
    "time_stage",
]


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro.obs`` logger (or a child of it).

    Unconfigured applications still see warnings on stderr via
    ``logging.lastResort``; anything beyond that is the embedder's
    logging configuration, as usual.
    """
    base = "repro.obs"
    return logging.getLogger(f"{base}.{name}" if name else base)


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE=1`` asks for per-scenario profiling."""
    return os.environ.get("REPRO_PROFILE", "0") not in ("", "0")
