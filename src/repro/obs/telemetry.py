"""Process-local telemetry: named counters and stage timers.

Every experiment stage worth watching — VM execution, reusability
analysis, engine passes, cache probes — reports into the *current*
:class:`Telemetry` registry.  The registry is deliberately tiny: a
counter is one dict slot, a timer is a ``perf_counter`` pair, and a
snapshot is a plain JSON-able dict, so instrumentation can stay on in
production runs (the overhead is nanoseconds against milliseconds of
real work).

Registries nest.  ``scope()`` pushes a fresh registry so one task's
numbers can be captured in isolation (the experiment runner wraps each
kernel in a scope and ships the snapshot back through the process
pool); on exit the scoped totals are merged into the enclosing
registry, so whole-session totals still accumulate.

Workers in a process pool each get their own module state (spawned
interpreters), which is exactly the isolation we want: a worker
snapshots its own registry and the parent merges it into the run
manifest.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator


class Telemetry:
    """A registry of named counters and cumulative stage timers."""

    __slots__ = ("counters", "timers")

    def __init__(self) -> None:
        #: name -> integer count
        self.counters: dict[str, int] = {}
        #: name -> [total_seconds, calls]
        self.timers: dict[str, list[float]] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold ``seconds`` into the named cumulative timer."""
        entry = self.timers.get(name)
        if entry is None:
            self.timers[name] = [seconds, calls]
        else:
            entry[0] += seconds
            entry[1] += calls

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the named timer."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able copy: ``{"counters": {...}, "timers": {...}}``.

        Timer entries become ``{"seconds": total, "calls": n}``.
        """
        return {
            "counters": dict(self.counters),
            "timers": {
                name: {"seconds": entry[0], "calls": int(entry[1])}
                for name, entry in self.timers.items()
            },
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (possibly from another process) in."""
        for name, count in snapshot.get("counters", {}).items():
            self.incr(name, count)
        for name, entry in snapshot.get("timers", {}).items():
            self.add_time(name, entry["seconds"], entry.get("calls", 1))

    def reset(self) -> None:
        """Drop every counter and timer."""
        self.counters.clear()
        self.timers.clear()


#: Registry stack; the module-level root collects whole-process totals.
_STACK: list[Telemetry] = [Telemetry()]


def current() -> Telemetry:
    """The innermost active registry."""
    return _STACK[-1]


@contextmanager
def scope() -> Iterator[Telemetry]:
    """Push a fresh registry for one task; merge it outward on exit.

    The yielded registry's :meth:`~Telemetry.snapshot` taken inside the
    block contains only the block's own activity.
    """
    registry = Telemetry()
    _STACK.append(registry)
    try:
        yield registry
    finally:
        _STACK.pop()
        _STACK[-1].merge(registry.snapshot())


def incr(name: str, amount: int = 1) -> None:
    """Increment a counter on the current registry."""
    current().incr(name, amount)


def time_stage(name: str):
    """Context manager timing a block on the current registry."""
    return current().time(name)
