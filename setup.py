"""Legacy setup shim.

The environment this repository is developed in has an old setuptools
without PEP 660 editable-install support; ``pip install -e .`` falls
back to this file.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
