#!/usr/bin/env python
"""Engine smoke benchmark: writes ``BENCH_engine.json``.

Measures the three layers the fused-engine PR optimised, against the
retained pre-optimisation reference pipeline:

- ``machine_run``: raw VM throughput (instr/s) through ``Machine.run``;
- ``fused_engine``: scenario throughput (scenarios/s) of
  ``FusedDataflowEngine`` over the standard figure-3..8 scenario set;
- ``collect_profiles``: wall-clock of a full 14-kernel profile
  collection — the pre-PR per-scenario baseline
  (``run_profile_reference``), a cold fused run (empty cache), and a
  warm run (cache hit) — plus the cold/warm speed-ups and a
  bit-identical check of the profiles.

Usage::

    PYTHONPATH=src python scripts/bench_engine.py [--budget N] [--output PATH]

``REPRO_BENCH_BUDGET`` also sets the budget (flag wins).  The cache
measurements use a throwaway directory, so the run neither reads nor
pollutes ``.repro-cache/``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.ilr import instruction_reusability  # noqa: E402
from repro.core.traces import maximal_reusable_spans  # noqa: E402
from repro.dataflow.model import FusedDataflowEngine, Scenario  # noqa: E402
from repro.exp.config import ExperimentConfig  # noqa: E402
from repro.exp.runner import run_profile_reference  # noqa: E402
from repro.workloads.base import build_program, run_workload  # noqa: E402
from repro.vm.machine import Machine  # noqa: E402


def scenario_set(config: ExperimentConfig) -> list[Scenario]:
    """The scenarios one ``run_profile`` call evaluates."""
    win = config.window_size
    scens = [Scenario("base", window_size=None), Scenario("base", window_size=win)]
    for latency in config.reuse_latencies:
        for window in (None, win):
            scens.append(Scenario("ilr", window_size=window, latency=float(latency)))
            scens.append(Scenario("tlr", window_size=window, latency=float(latency)))
    for k in config.proportional_ks:
        scens.append(Scenario("tlr", window_size=win, k=k))
    return scens


def bench_machine_run(budget: int) -> dict:
    kernels = ("compress", "tomcatv", "go")
    programs = {name: build_program(name) for name in kernels}
    total_instr = 0
    start = time.perf_counter()
    for name, program in programs.items():
        trace = Machine(program).run(max_instructions=budget)
        total_instr += len(trace)
    elapsed = time.perf_counter() - start
    return {
        "kernels": list(kernels),
        "instructions": total_instr,
        "seconds": round(elapsed, 4),
        "instr_per_sec": round(total_instr / elapsed),
    }


def bench_fused_engine(budget: int, config: ExperimentConfig) -> dict:
    trace = run_workload("compress", max_instructions=budget, use_cache=False)
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)
    scens = scenario_set(config)
    start = time.perf_counter()
    engine = FusedDataflowEngine(trace, flags=reuse.flags, spans=spans)
    engine.analyze_all(scens)
    elapsed = time.perf_counter() - start
    return {
        "kernel": "compress",
        "instructions": len(trace),
        "scenarios": len(scens),
        "seconds": round(elapsed, 4),
        "scenarios_per_sec": round(len(scens) / elapsed, 1),
    }


def bench_collect_profiles(budget: int) -> dict:
    from repro.exp.runner import collect_profiles

    cold_config = ExperimentConfig(max_instructions=budget, max_workers=1)

    start = time.perf_counter()
    baseline_profiles = [
        run_profile_reference(name, cold_config)
        for name in cold_config.workloads
    ]
    baseline = time.perf_counter() - start

    start = time.perf_counter()
    cold_profiles = collect_profiles(cold_config)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_profiles = collect_profiles(cold_config)
    warm = time.perf_counter() - start

    return {
        "workloads": len(cold_config.workloads),
        "baseline_seconds": round(baseline, 4),
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "cold_speedup": round(baseline / cold, 2),
        "warm_speedup": round(baseline / warm, 1),
        "bit_identical": (
            baseline_profiles == cold_profiles == warm_profiles
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=int,
        default=int(os.environ.get("REPRO_BENCH_BUDGET", "40000")),
        help="dynamic instruction budget per kernel (default 40000)",
    )
    parser.add_argument(
        "--output", default="BENCH_engine.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        report = {
            "budget": args.budget,
            "machine_run": bench_machine_run(args.budget),
            "fused_engine": bench_fused_engine(
                args.budget, ExperimentConfig(max_instructions=args.budget)
            ),
            "collect_profiles": bench_collect_profiles(args.budget),
        }

    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}", file=sys.stderr)

    cp = report["collect_profiles"]
    ok = cp["bit_identical"] and cp["cold_speedup"] >= 1.0
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
