#!/usr/bin/env python
"""Engine smoke benchmark: writes ``BENCH_engine.json``.

Measures the three layers the fused-engine PR optimised, against the
retained pre-optimisation reference pipeline:

- ``machine_run``: raw VM throughput (instr/s) of both execution
  backends — the ``Machine`` interpreter and the trace-compiling
  ``FastMachine`` — at the paper-scale instruction budget, plus the
  per-kernel and aggregate speed-ups and a bit-identity check (run at
  a smaller ``verify_budget`` so the differential comparison does not
  hold two paper-scale traces in memory at once).  Each timing is the
  best of two runs, each in a fresh process, so one kernel's heap does
  not pollute the next measurement and scheduler noise is rejected;
- ``fused_engine``: scenario throughput (scenarios/s) of
  ``FusedDataflowEngine`` over the standard figure-3..8 scenario set;
- ``collect_profiles``: wall-clock of a full 14-kernel profile
  collection — the pre-PR per-scenario baseline
  (``run_profile_reference``), a cold fused run (empty cache), and a
  warm run (cache hit) — plus the cold/warm speed-ups and a
  bit-identical check of the profiles.

With ``--tracev3`` the script instead benchmarks the streaming trace
pipeline and writes ``BENCH_tracev3.json``:

- ``codec``: v3 write/read throughput (instr/s) and compression stats
  at the paper-scale ``--trace-budget`` — execution streams through
  the incremental ``TraceWriter``, so this path never materializes
  the trace — plus the on-disk ratio against a v2 (pickled columnar)
  encoding of the same trace;
- per-kernel ``columns``: a per-column decode micro-benchmark —
  encoded size, share and decode wall time of every v3 section (the
  breakdown that located the tomcatv value-column decode anomaly);
- ``engine``: ``StreamingDataflowEngine`` vs ``FusedDataflowEngine``
  scenario throughput over the standard figure-3..8 scenario set at
  ``--budget``, with a bit-identity check of every ``TimingResult``;
- exits non-zero when bit-identity fails, when the v3-vs-v2
  compression ratio drops below the 4x floor on any kernel, or when
  the slowest kernel decodes more than 3x slower than the fastest
  (the tomcatv-anomaly regression gate).

With ``--coldpath`` the script benchmarks the cold execute→analyze
path end to end and writes ``BENCH_coldpath.json``: per kernel, pure
execution wall time (fresh-process best-of-2), execute+encode wall
time (the incremental v3 writer), and the tee'd cold run
(execute+encode+analyze in one drain, cache entry persisted), plus a
bit/byte-identity check of the tee'd path against write-then-reread
at ``--verify-budget``.  Ratio gates keep it machine-independent:
encode overhead (write/exec wall) must stay under 3x and every
identity check must hold.

Usage::

    PYTHONPATH=src python scripts/bench_engine.py [--budget N] \
        [--machine-budget N] [--output PATH]
    PYTHONPATH=src python scripts/bench_engine.py --tracev3 \
        [--budget N] [--trace-budget N] [--output PATH]

``REPRO_BENCH_BUDGET`` / ``REPRO_BENCH_MACHINE_BUDGET`` also set the
budgets (flags win).  ``--budget`` drives the engine and profile
benches; ``--machine-budget`` drives the backend throughput bench and
defaults to the paper's 50M-instruction scale.  The cache
measurements use a throwaway directory, so the run neither reads nor
pollutes ``.repro-cache/``.

The script exits non-zero when the fast backend fails bit-identity,
when it is *slower* than the interpreter, or when the fused-engine
profile collection regresses — so a CI hook-up fails loudly instead
of silently shipping a slow or wrong backend.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.ilr import instruction_reusability  # noqa: E402
from repro.core.traces import maximal_reusable_spans  # noqa: E402
from repro.dataflow.model import FusedDataflowEngine, Scenario  # noqa: E402
from repro.exp.config import ExperimentConfig  # noqa: E402
from repro.exp.runner import run_profile_reference  # noqa: E402
from repro.workloads.base import build_program, run_workload  # noqa: E402
from repro.vm.fastmachine import FastMachine  # noqa: E402
from repro.vm.machine import Machine  # noqa: E402
from repro.vm.trace import trace_identical  # noqa: E402


def scenario_set(config: ExperimentConfig) -> list[Scenario]:
    """The scenarios one ``run_profile`` call evaluates."""
    win = config.window_size
    scens = [Scenario("base", window_size=None), Scenario("base", window_size=win)]
    for latency in config.reuse_latencies:
        for window in (None, win):
            scens.append(Scenario("ilr", window_size=window, latency=float(latency)))
            scens.append(Scenario("tlr", window_size=window, latency=float(latency)))
    for k in config.proportional_ks:
        scens.append(Scenario("tlr", window_size=win, k=k))
    return scens


_RUN_SNIPPET = """\
import sys, time
from repro.workloads.base import build_program
from repro.vm.backends import create_machine
machine = create_machine(build_program(sys.argv[2]), sys.argv[1])
start = time.perf_counter()
trace = machine.run(max_instructions=int(sys.argv[3]))
print(len(trace), time.perf_counter() - start)
"""


def _timed_run(backend: str, name: str, budget: int,
               repeats: int = 2) -> tuple[int, float]:
    """Best-of-N wall clock of one backend run, each in a fresh process.

    Process isolation keeps one measurement's heap from polluting the
    next: a retired paper-scale trace leaves the allocator arenas
    fragmented even after it is freed, which costs the *following*
    kernel 10-20% (measured: tomcatv's 50M fast run takes 15.7s after
    compress's in the same process, 13.0s in a fresh one).  Taking the
    minimum of two runs rejects scheduler noise on shared boxes — the
    minimum is the least-disturbed observation of a deterministic
    workload.
    """
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    n = None
    best = float("inf")
    for _ in range(repeats):
        proc = subprocess.run(
            [sys.executable, "-c", _RUN_SNIPPET, backend, name, str(budget)],
            capture_output=True, text=True, env=env,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{backend}/{name} benchmark process failed:\n{proc.stderr}")
        count_s, elapsed_s = proc.stdout.split()
        count, elapsed = int(count_s), float(elapsed_s)
        assert n is None or n == count, f"{backend}/{name}: {n} vs {count}"
        n = count
        best = min(best, elapsed)
    return n, best


def bench_machine_run(budget: int, verify_budget: int) -> dict:
    kernels = ("compress", "tomcatv", "go")
    per_kernel = {}
    interp_total = fast_total = 0.0
    total_instr = 0
    identical = True
    for name in kernels:
        ni, ti = _timed_run("interp", name, budget)
        nf, tf = _timed_run("fast", name, budget)
        assert ni == nf, f"{name}: backends retired {ni} vs {nf} instructions"
        interp_total += ti
        fast_total += tf
        total_instr += ni
        per_kernel[name] = {
            "instructions": ni,
            "interp_seconds": round(ti, 4),
            "fast_seconds": round(tf, 4),
            "interp_instr_per_sec": round(ni / ti),
            "fast_instr_per_sec": round(nf / tf),
            "speedup": round(ti / tf, 2),
        }
        # differential oracle at a budget small enough to hold both
        # traces in memory at once
        a = Machine(build_program(name)).run(max_instructions=verify_budget)
        b = FastMachine(build_program(name)).run(max_instructions=verify_budget)
        identical = identical and trace_identical(a, b)
        del a, b
        gc.collect()
    return {
        "kernels": list(kernels),
        "budget": budget,
        "verify_budget": verify_budget,
        "protocol": "best-of-2, fresh process per measurement",
        "instructions": total_instr,
        "interp_seconds": round(interp_total, 4),
        "fast_seconds": round(fast_total, 4),
        "interp_instr_per_sec": round(total_instr / interp_total),
        "fast_instr_per_sec": round(total_instr / fast_total),
        "speedup": round(interp_total / fast_total, 2),
        "bit_identical": identical,
        "per_kernel": per_kernel,
    }


def bench_fused_engine(budget: int, config: ExperimentConfig) -> dict:
    trace = run_workload("compress", max_instructions=budget, use_cache=False)
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)
    scens = scenario_set(config)
    start = time.perf_counter()
    engine = FusedDataflowEngine(trace, flags=reuse.flags, spans=spans)
    engine.analyze_all(scens)
    elapsed = time.perf_counter() - start
    return {
        "kernel": "compress",
        "instructions": len(trace),
        "scenarios": len(scens),
        "seconds": round(elapsed, 4),
        "scenarios_per_sec": round(len(scens) / elapsed, 1),
    }


def bench_collect_profiles(budget: int) -> dict:
    from repro.exp.runner import collect_profiles

    cold_config = ExperimentConfig(max_instructions=budget, max_workers=1)

    start = time.perf_counter()
    baseline_profiles = [
        run_profile_reference(name, cold_config)
        for name in cold_config.workloads
    ]
    baseline = time.perf_counter() - start

    start = time.perf_counter()
    cold_profiles = collect_profiles(cold_config)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_profiles = collect_profiles(cold_config)
    warm = time.perf_counter() - start

    return {
        "workloads": len(cold_config.workloads),
        "baseline_seconds": round(baseline, 4),
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "cold_speedup": round(baseline / cold, 2),
        "warm_speedup": round(baseline / warm, 1),
        "bit_identical": (
            baseline_profiles == cold_profiles == warm_profiles
        ),
    }


class _CountingSink:
    """A write-only file object that just counts bytes (v2 sizing
    without touching disk)."""

    def __init__(self) -> None:
        self.count = 0

    def write(self, data) -> int:
        self.count += len(data)
        return len(data)


def bench_tracev3(trace_budget: int, engine_budget: int,
                  config: ExperimentConfig, tmpdir: str) -> dict:
    """Streaming trace pipeline benchmark (``--tracev3``)."""
    import pickle

    from repro.dataflow.streaming import StreamingDataflowEngine
    from repro.vm.trace import as_columnar
    from repro.vm.tracestream import (
        ExecutionChunkStream,
        FileTraceStream,
        write_stream,
    )
    from repro.vm.tracev3 import trace_v3_info, write_v3

    tmp = pathlib.Path(tmpdir)
    kernels = ("compress", "tomcatv", "go")
    per_kernel = {}
    min_ratio_vs_v2 = float("inf")
    for name in kernels:
        path = tmp / f"{name}.trace"
        stream = ExecutionChunkStream(
            lambda name=name: FastMachine(build_program(name)),
            program_name=name,
            max_instructions=trace_budget,
        )
        start = time.perf_counter()
        n = write_stream(stream, path)
        write_s = time.perf_counter() - start

        reader = FileTraceStream(path)
        start = time.perf_counter()
        read_n = sum(len(chunk) for chunk in reader.chunks())
        read_s = time.perf_counter() - start
        assert read_n == n, f"{name}: wrote {n}, read back {read_n}"

        info = trace_v3_info(path, columns=True)
        v3_bytes = info["file_bytes"]
        total_enc = sum(
            c["encoded_bytes"] for c in info["columns"].values()) or 1
        columns = {
            col: {
                "encoded_bytes": c["encoded_bytes"],
                "share": round(c["encoded_bytes"] / total_enc, 4),
                "decode_seconds": round(c["decode_seconds"], 4),
                "modes": c["modes"],
            }
            for col, c in sorted(info["columns"].items(),
                                 key=lambda kv: -kv[1]["encoded_bytes"])
        }

        # v2 size of the same trace: pickle the materialized columnar
        # layout into a counting sink (no disk, freed immediately)
        trace = FastMachine(build_program(name)).run(
            max_instructions=trace_budget
        )
        sink = _CountingSink()
        pickle.dump(as_columnar(trace), sink,
                    protocol=pickle.HIGHEST_PROTOCOL)
        del trace
        gc.collect()
        v2_bytes = sink.count
        ratio_vs_v2 = v2_bytes / v3_bytes
        min_ratio_vs_v2 = min(min_ratio_vs_v2, ratio_vs_v2)
        per_kernel[name] = {
            "instructions": n,
            "write_seconds": round(write_s, 4),
            "write_instr_per_sec": round(n / write_s),
            "read_seconds": round(read_s, 4),
            "read_instr_per_sec": round(n / read_s),
            "chunks": info["chunk_count"],
            "v3_bytes": v3_bytes,
            "v2_bytes": v2_bytes,
            "bytes_per_instruction": round(v3_bytes / n, 3),
            "chunk_compression_ratio": round(info["compression_ratio"], 2),
            "ratio_vs_v2": round(ratio_vs_v2, 2),
            "columns": columns,
        }
        path.unlink()

    reads = [per_kernel[k]["read_instr_per_sec"] for k in kernels]
    decode_balance = max(reads) / min(reads)

    # streaming vs materialized engine throughput + bit-identity.
    # Both timers start from a ready trace and end at the full
    # scenario-set results: the streaming engine derives reusability
    # flags and spans internally, so the materialized leg must pay
    # for the same derivation inside its timer or the comparison
    # charges that work to streaming only.
    trace = run_workload("compress", max_instructions=engine_budget,
                         use_cache=False)
    scens = scenario_set(config)
    start = time.perf_counter()
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)
    fused = FusedDataflowEngine(trace, flags=reuse.flags, spans=spans)
    mat_results = fused.analyze_all(scens)
    mat_s = time.perf_counter() - start

    engine_path = tmp / "engine.trace"
    write_v3(trace, engine_path)
    del trace, reuse, spans, fused
    gc.collect()
    start = time.perf_counter()
    streaming = StreamingDataflowEngine(FileTraceStream(engine_path))
    stream_results = streaming.analyze_all(scens)
    stream_s = time.perf_counter() - start
    engine_path.unlink()
    bit_identical = mat_results == stream_results

    return {
        "kernels": list(kernels),
        "trace_budget": trace_budget,
        "codec": per_kernel,
        "min_ratio_vs_v2": round(min_ratio_vs_v2, 2),
        "decode_balance": round(decode_balance, 2),
        "engine": {
            "kernel": "compress",
            "instructions": engine_budget,
            "scenarios": len(scens),
            "materialized_seconds": round(mat_s, 4),
            "streaming_seconds": round(stream_s, 4),
            "materialized_scenarios_per_sec": round(len(scens) / mat_s, 1),
            "streaming_scenarios_per_sec": round(len(scens) / stream_s, 1),
            "streaming_overhead": round(stream_s / mat_s, 2),
            "bit_identical": bit_identical,
        },
    }


#: The cold-path scenario subset: one representative of each fold
#: family.  The full 24-scenario figure sweep is analysis-bound at any
#: budget (24 folds dwarf one execution), so the cold-path question —
#: "does the codec keep up with the machine?" — is asked with a
#: bounded analysis instead.
COLDPATH_SCENARIOS = [
    Scenario("base", window_size=None),
    Scenario("ilr", window_size=None, latency=1.0),
    Scenario("tlr", window_size=256, latency=1.0),
]


def bench_coldpath(trace_budget: int, verify_budget: int,
                   tmpdir: str) -> dict:
    """Cold execute→analyze benchmark (``--coldpath``)."""
    from repro.dataflow.streaming import StreamingDataflowEngine
    from repro.vm.tracestream import ExecutionChunkStream, write_stream
    from repro.workloads.base import stream_workload

    tmp = pathlib.Path(tmpdir)
    kernels = ("compress", "tomcatv", "go")
    per_kernel = {}
    all_identical = True
    max_encode_overhead = 0.0
    for name in kernels:
        # leg 1: pure execution (fresh-process best-of-2)
        n, exec_s = _timed_run("fast", name, trace_budget)

        # leg 2: execute + encode through the incremental writer
        path = tmp / f"{name}.coldpath.trace"
        stream = ExecutionChunkStream(
            lambda name=name: FastMachine(build_program(name)),
            program_name=name, max_instructions=trace_budget)
        start = time.perf_counter()
        wrote = write_stream(stream, path)
        write_s = time.perf_counter() - start
        path.unlink()
        assert wrote == n, f"{name}: executed {n}, wrote {wrote}"

        # leg 3: the tee'd cold run — execute + encode + analyze in
        # one drain, cache entry persisted as a side effect
        os.environ["REPRO_CACHE_DIR"] = str(tmp / "cold" / name)
        start = time.perf_counter()
        tee = stream_workload(name, max_instructions=trace_budget,
                              backend="fast", direct=True)
        engine = StreamingDataflowEngine(tee)
        engine.analyze_all(COLDPATH_SCENARIOS)
        cold_s = time.perf_counter() - start
        persisted = bool(getattr(tee, "persisted", False))

        # identity: tee'd == write-then-reread == materialized fused,
        # and the two cache entries are the same bytes — at a budget
        # small enough to hold the materialized trace
        os.environ["REPRO_CACHE_DIR"] = str(tmp / "va" / name)
        direct_res = StreamingDataflowEngine(
            stream_workload(name, max_instructions=verify_budget,
                            backend="fast", direct=True)
        ).analyze_all(COLDPATH_SCENARIOS)
        (entry_a,) = (tmp / "va" / name / "traces").glob("*.trace")
        os.environ["REPRO_CACHE_DIR"] = str(tmp / "vb" / name)
        legacy_res = StreamingDataflowEngine(
            stream_workload(name, max_instructions=verify_budget,
                            backend="fast", direct=False)
        ).analyze_all(COLDPATH_SCENARIOS)
        (entry_b,) = (tmp / "vb" / name / "traces").glob("*.trace")
        trace = FastMachine(build_program(name)).run(
            max_instructions=verify_budget)
        reuse = instruction_reusability(trace)
        spans = maximal_reusable_spans(trace, reuse.flags)
        fused_res = FusedDataflowEngine(
            trace, flags=reuse.flags, spans=spans,
        ).analyze_all(COLDPATH_SCENARIOS)
        del trace, reuse, spans
        gc.collect()
        identical = (direct_res == legacy_res == fused_res
                     and entry_a.read_bytes() == entry_b.read_bytes())
        all_identical = all_identical and identical and persisted

        encode_overhead = write_s / exec_s
        max_encode_overhead = max(max_encode_overhead, encode_overhead)
        per_kernel[name] = {
            "instructions": n,
            "exec_seconds": round(exec_s, 4),
            "exec_instr_per_sec": round(n / exec_s),
            "write_seconds": round(write_s, 4),
            "write_instr_per_sec": round(n / write_s),
            "cold_seconds": round(cold_s, 4),
            "cold_instr_per_sec": round(n / cold_s),
            "encode_overhead_vs_exec": round(encode_overhead, 3),
            "cold_vs_exec": round(cold_s / exec_s, 3),
            "analyze_seconds": round(cold_s - write_s, 4),
            "bit_identical": identical,
            "tee_persisted": persisted,
        }

    return {
        "kernels": list(kernels),
        "trace_budget": trace_budget,
        "verify_budget": verify_budget,
        "scenarios": len(COLDPATH_SCENARIOS),
        "codec_threads": _codec_threads(),
        "protocol": ("exec: best-of-2 fresh process; write/cold: one "
                     "in-process run each"),
        "per_kernel": per_kernel,
        "max_encode_overhead_vs_exec": round(max_encode_overhead, 3),
        "bit_identical": all_identical,
    }


def _codec_threads() -> int:
    from repro.vm.tracev3 import codec_threads

    return codec_threads()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=int,
        default=int(os.environ.get("REPRO_BENCH_BUDGET", "40000")),
        help="dynamic instruction budget per kernel for the engine and "
             "profile benches (default 40000)",
    )
    parser.add_argument(
        "--machine-budget", type=int,
        default=int(os.environ.get("REPRO_BENCH_MACHINE_BUDGET",
                                   "50000000")),
        help="instruction budget per kernel for the backend throughput "
             "bench (default 50M, the paper scale)",
    )
    parser.add_argument(
        "--verify-budget", type=int,
        default=int(os.environ.get("REPRO_BENCH_VERIFY_BUDGET",
                                   "1000000")),
        help="budget for the backend bit-identity check (default 1M)",
    )
    parser.add_argument(
        "--tracev3", action="store_true",
        help="benchmark the streaming trace pipeline instead "
             "(writes BENCH_tracev3.json)",
    )
    parser.add_argument(
        "--coldpath", action="store_true",
        help="benchmark the cold execute→analyze path instead "
             "(writes BENCH_coldpath.json)",
    )
    parser.add_argument(
        "--trace-budget", type=int,
        default=int(os.environ.get("REPRO_BENCH_TRACE_BUDGET",
                                   "50000000")),
        help="instruction budget per kernel for the v3 codec bench "
             "(default 50M, the paper scale)",
    )
    parser.add_argument(
        "--output", default=None,
        help="where to write the JSON report (default "
             "BENCH_engine.json, or BENCH_tracev3.json with --tracev3)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        if args.coldpath:
            args.output = "BENCH_coldpath.json"
        elif args.tracev3:
            args.output = "BENCH_tracev3.json"
        else:
            args.output = "BENCH_engine.json"

    if args.coldpath:
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
            os.environ["REPRO_CACHE_DIR"] = tmp
            report = {
                "coldpath": bench_coldpath(
                    args.trace_budget,
                    min(args.verify_budget, 200_000),
                    tmp,
                ),
            }
        out = pathlib.Path(args.output)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))
        print(f"\nwritten to {out}", file=sys.stderr)
        cp = report["coldpath"]
        ok = True
        if not cp["bit_identical"]:
            print("FAIL: the tee'd cold path is not bit/byte-identical "
                  "to write-then-reread", file=sys.stderr)
            ok = False
        if cp["max_encode_overhead_vs_exec"] > 3.0:
            print(f"FAIL: encoding overhead exceeds 3x pure execution "
                  f"({cp['max_encode_overhead_vs_exec']}x)", file=sys.stderr)
            ok = False
        return 0 if ok else 1

    if args.tracev3:
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
            os.environ["REPRO_CACHE_DIR"] = tmp
            report = {
                "budget": args.budget,
                "tracev3": bench_tracev3(
                    args.trace_budget, args.budget,
                    ExperimentConfig(max_instructions=args.budget), tmp,
                ),
            }
        out = pathlib.Path(args.output)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))
        print(f"\nwritten to {out}", file=sys.stderr)
        tv = report["tracev3"]
        ok = True
        if not tv["engine"]["bit_identical"]:
            print("FAIL: streaming engine results are not bit-identical "
                  "to the materialized engine", file=sys.stderr)
            ok = False
        if tv["min_ratio_vs_v2"] < 4.0:
            print(f"FAIL: v3 compression ratio vs v2 fell below the 4x "
                  f"floor ({tv['min_ratio_vs_v2']}x)", file=sys.stderr)
            ok = False
        if tv["decode_balance"] > 3.0:
            print(f"FAIL: slowest kernel decodes {tv['decode_balance']}x "
                  f"slower than the fastest (tomcatv-anomaly gate is 3x)",
                  file=sys.stderr)
            ok = False
        return 0 if ok else 1

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        report = {
            "budget": args.budget,
            "machine_run": bench_machine_run(
                args.machine_budget, args.verify_budget
            ),
            "fused_engine": bench_fused_engine(
                args.budget, ExperimentConfig(max_instructions=args.budget)
            ),
            "collect_profiles": bench_collect_profiles(args.budget),
        }

    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}", file=sys.stderr)

    ok = True
    mr = report["machine_run"]
    if not mr["bit_identical"]:
        print("FAIL: fast backend traces are not bit-identical",
              file=sys.stderr)
        ok = False
    if mr["speedup"] < 1.0:
        print(f"FAIL: fast backend is slower than the interpreter "
              f"({mr['speedup']}x)", file=sys.stderr)
        ok = False
    cp = report["collect_profiles"]
    if not (cp["bit_identical"] and cp["cold_speedup"] >= 1.0):
        print("FAIL: fused-engine profile collection regressed",
              file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
