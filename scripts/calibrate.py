"""Developer calibration: per-kernel reusability / trace-size profile.

Usage: python scripts/calibrate.py [kernel ...] [--budget N]

Prints, for each kernel, the metrics the paper's figures are built
from, so kernel authors can steer each workload toward its SPEC95
counterpart's profile.
"""

import argparse
import sys
import time

from repro.baselines.ilr import instruction_reusability, ilr_reuse_plan
from repro.core.traces import average_span_length, maximal_reusable_spans
from repro.core.reuse_tlr import ConstantReuseLatency, tlr_reuse_plan
from repro.dataflow.model import DataflowModel


def profile(name: str, budget: int) -> None:
    from repro.workloads.base import run_workload

    t0 = time.perf_counter()
    trace = run_workload(name, max_instructions=budget)
    t_run = time.perf_counter() - t0
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)
    infinite = DataflowModel(window_size=None)
    limited = DataflowModel(window_size=256)
    base_inf = infinite.analyze(trace)
    base_win = limited.analyze(trace)
    ilr_plan = ilr_reuse_plan(trace, reuse.flags, 1.0)
    tlr_plan = tlr_reuse_plan(trace, spans, ConstantReuseLatency(1.0))
    ilr_inf = infinite.analyze(trace, ilr_plan)
    ilr_win = limited.analyze(trace, ilr_plan)
    tlr_inf = infinite.analyze(trace, tlr_plan)
    tlr_win = limited.analyze(trace, tlr_plan)
    print(
        f"{name:10s} n={len(trace):6d} reuse%={reuse.percent_reusable:5.1f} "
        f"tracesz={average_span_length(spans):7.1f} "
        f"ipc_inf={base_inf.ipc:6.2f} ipc_w256={base_win.ipc:6.2f} "
        f"ilr_su=({ilr_inf.speedup_over(base_inf):4.2f},{ilr_win.speedup_over(base_win):4.2f}) "
        f"tlr_su=({tlr_inf.speedup_over(base_inf):5.2f},{tlr_win.speedup_over(base_win):5.2f}) "
        f"[{t_run:4.1f}s run]"
    )


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("kernels", nargs="*")
    parser.add_argument("--budget", type=int, default=60_000)
    args = parser.parse_args()
    import repro.workloads  # noqa: F401

    from repro.workloads.base import _REGISTRY

    names = args.kernels or sorted(_REGISTRY)
    for name in names:
        try:
            profile(name, args.budget)
        except Exception as exc:  # calibration tool: report and continue
            print(f"{name:10s} FAILED: {exc}", file=sys.stderr)


if __name__ == "__main__":
    main()
