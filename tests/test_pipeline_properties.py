"""Property-based invariants of the cycle-level pipeline model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opcodes import Opcode
from repro.pipeline import PipelineConfig, PipelineModel
from repro.dataflow.model import DataflowModel
from repro.vm.trace import DynInst


@st.composite
def pipeline_streams(draw):
    """Random dependence-realistic streams with varied op classes."""
    n_locs = draw(st.integers(min_value=2, max_value=5))
    n = draw(st.integers(min_value=1, max_value=80))
    ops = [
        (Opcode.ADD, 1), (Opcode.ADD, 1), (Opcode.MUL, 8), (Opcode.LW, 2),
        (Opcode.SW, 1), (Opcode.FADD, 4), (Opcode.FDIV, 18),
    ]
    values = [0] * n_locs
    stream = []
    for i in range(n):
        op, latency = draw(st.sampled_from(ops))
        src1 = draw(st.integers(0, n_locs - 1))
        src2 = draw(st.integers(0, n_locs - 1))
        dst = draw(st.integers(0, n_locs - 1))
        a, b = values[src1], values[src2]
        result = (a + b + i) % 5
        values[dst] = result
        stream.append(
            DynInst(
                pc=i % 9,
                op=op,
                reads=((src1, a), (src2, b)),
                writes=((dst, result),),
                latency=latency,
                next_pc=i % 9 + 1,
            )
        )
    return stream


@given(pipeline_streams())
@settings(max_examples=80, deadline=None)
def test_all_instructions_commit(stream):
    result = PipelineModel().simulate(stream)
    assert result.committed_instructions == len(stream)
    assert result.committed_slots == len(stream)


@given(pipeline_streams())
@settings(max_examples=80, deadline=None)
def test_cycles_bounded_below_by_widths(stream):
    config = PipelineConfig()
    result = PipelineModel(config).simulate(stream)
    # can never commit faster than commit_width per cycle, and every
    # instruction spends at least fetch+issue+latency cycles in flight
    assert result.total_cycles >= len(stream) / config.commit_width
    if stream:
        assert result.total_cycles >= 2  # fetch cycle + execute cycle


@given(pipeline_streams())
@settings(max_examples=60, deadline=None)
def test_wider_machine_never_slower(stream):
    narrow = PipelineModel(
        PipelineConfig(fetch_width=2, issue_width=2, commit_width=2, rob_size=16)
    ).simulate(stream)
    wide = PipelineModel(
        PipelineConfig(fetch_width=8, issue_width=8, commit_width=8, rob_size=128)
    ).simulate(stream)
    assert wide.total_cycles <= narrow.total_cycles


@given(pipeline_streams())
@settings(max_examples=60, deadline=None)
def test_bigger_rob_never_slower(stream):
    small = PipelineModel(PipelineConfig(rob_size=8)).simulate(stream)
    large = PipelineModel(PipelineConfig(rob_size=256)).simulate(stream)
    assert large.total_cycles <= small.total_cycles


@given(pipeline_streams())
@settings(max_examples=60, deadline=None)
def test_pipeline_never_beats_dataflow_limit(stream):
    """The bounded core is a refinement of the limit model: with the
    same latencies it can only be slower than pure dataflow."""
    limit = DataflowModel(window_size=None).analyze(stream)
    core = PipelineModel(
        PipelineConfig(fetch_width=8, issue_width=8, commit_width=8, rob_size=256)
    ).simulate(stream)
    assert core.total_cycles >= limit.total_cycles - 1e-9


@given(pipeline_streams())
@settings(max_examples=40, deadline=None)
def test_deterministic(stream):
    a = PipelineModel().simulate(stream)
    b = PipelineModel().simulate(stream)
    assert a.total_cycles == b.total_cycles


def test_unpipelined_unit_priority_inversion_regression():
    """A younger divide must not steal the single unpipelined unit
    from an older, not-yet-ready divide.

    Found by hypothesis: with greedy allocation, the wide machine
    fetches both divides together, the younger (independent) one
    grabs the unit, and the older divide — plus everything behind it
    in the in-order commit stream — waits out the full occupancy.
    The narrow machine fetched the younger divide too late to steal,
    so it finished *earlier* than the wide one (41 vs 39 cycles).
    """

    def di(i, op, reads, writes, lat):
        return DynInst(pc=i, op=op, reads=reads, writes=writes,
                       latency=lat, next_pc=i + 1)

    stream = [
        di(0, Opcode.ADD,  ((0, 0), (0, 0)), ((1, 1),), 1),
        di(1, Opcode.FDIV, ((1, 1), (1, 1)), ((2, 1),), 18),
        di(2, Opcode.ADD,  ((2, 1), (0, 0)), ((3, 1),), 1),
        di(3, Opcode.ADD,  ((3, 1), (0, 0)), ((3, 2),), 1),
        di(4, Opcode.ADD,  ((3, 2), (0, 0)), ((3, 3),), 1),
        di(5, Opcode.FDIV, ((0, 0), (0, 0)), ((4, 1),), 18),
    ]
    narrow = PipelineModel(
        PipelineConfig(fetch_width=2, issue_width=2, commit_width=2, rob_size=16)
    ).simulate(stream)
    wide = PipelineModel(
        PipelineConfig(fetch_width=8, issue_width=8, commit_width=8, rob_size=128)
    ).simulate(stream)
    assert wide.total_cycles <= narrow.total_cycles
