"""Property + differential tests for the static estimator.

Two layers of confidence:

* **hypothesis** sweeps the :func:`rl_loop_nest` generator space and
  asserts every estimate is finite, internally consistent and
  correctly shaped — the estimator must never blow up or emit NaNs
  on a program the workload generators can produce.
* a **differential** pass replays the fixed generated families both
  statically and dynamically and pins the per-metric error inside the
  band recorded in ``BENCH_static.json`` (plus the documented check
  tolerance) — the same contract CI's ``static-validate`` job
  enforces over the full kernel suite.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exp.config import ExperimentConfig
from repro.static.estimator import estimate_source
from repro.static.validate import (
    CHECK_ABS_TOLERANCE,
    CHECK_REL_TOLERANCE,
    _dynamic_profile_for_program,
    load_bands,
    profile_errors,
)
from repro.workloads.generators import generated_families, rl_loop_nest

CONFIG = ExperimentConfig(max_instructions=8_000)

BANDS_PATH = Path(__file__).resolve().parent.parent / "BENCH_static.json"


class TestEstimatorProperties:
    @given(
        depth=st.integers(1, 3),
        trips=st.integers(1, 16),
        branchiness=st.integers(0, 2),
        value_period=st.integers(0, 4),
        array_size=st.integers(1, 24),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_estimates_finite_and_consistent(
        self, depth, trips, branchiness, value_period, array_size
    ):
        source = rl_loop_nest(
            depth=depth,
            trips=trips,
            branchiness=branchiness,
            value_period=value_period,
            array_size=array_size,
        )
        profile = estimate_source(source, CONFIG, name="prop").profile

        assert profile.dynamic_count > 0
        assert profile.dynamic_count <= CONFIG.max_instructions * 1.01
        assert 0.0 <= profile.percent_reusable <= 100.0
        assert 0 <= profile.trace_count <= profile.dynamic_count
        assert 0.0 <= profile.avg_trace_size <= profile.dynamic_count
        for value in (profile.base_ipc_inf, profile.base_ipc_win):
            assert math.isfinite(value) and value > 0.0
        assert profile.base_ipc_win <= profile.base_ipc_inf + 1e-9
        for mapping in (profile.ilr_speedup_inf, profile.tlr_speedup_inf,
                        profile.tlr_speedup_win_prop):
            for value in mapping.values():
                assert math.isfinite(value) and value >= 1.0

    @given(trips=st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_estimates_are_deterministic(self, trips):
        source = rl_loop_nest(depth=2, trips=trips)
        first = estimate_source(source, CONFIG, name="det").profile
        second = estimate_source(source, CONFIG, name="det").profile
        assert first == second


@pytest.mark.skipif(
    not BANDS_PATH.exists(), reason="BENCH_static.json not generated"
)
class TestDifferentialBands:
    """Static-vs-dynamic error stays inside the recorded bands."""

    @pytest.mark.parametrize(
        "name,source", generated_families(), ids=[n for n, _ in generated_families()]
    )
    def test_family_error_within_recorded_band(self, name, source):
        from repro.lang.compiler import compile_source

        bands = load_bands(BANDS_PATH)
        recorded = bands.get("families", {}).get(name)
        if recorded is None:
            pytest.skip(f"no recorded band for {name}")

        static = estimate_source(source, CONFIG, name=name).profile
        dynamic = _dynamic_profile_for_program(
            compile_source(source, name=name), name, CONFIG
        )
        errors = profile_errors(static, dynamic)
        for metric, value in errors.items():
            baseline = recorded["errors"].get(metric)
            if baseline is None:
                continue
            allowed = baseline * (1.0 + CHECK_REL_TOLERANCE) + CHECK_ABS_TOLERANCE
            assert value <= allowed, (
                f"{name}.{metric}: error {value:.4f} exceeds recorded "
                f"band {baseline:.4f} (allowed {allowed:.4f})"
            )
