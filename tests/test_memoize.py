"""Software memoization transform (section 2's software reuse)."""

import pytest

from repro.lang.compiler import CompileError, compile_module, compile_source
from repro.lang.memoize import memoize_functions
from repro.vm.machine import Machine

FIB = """
func fib(n) {
    if (n < 2) { return n }
    return fib(n - 1) + fib(n - 2)
}
func main() { return fib(%d) }
"""


def run(program, budget=2_000_000):
    machine = Machine(program)
    trace = machine.run(max_instructions=budget)
    assert trace.halted
    return machine, trace


class TestMemoizeTransform:
    def test_preserves_result(self):
        src = FIB % 15
        _, plain_trace = run(compile_source(src))
        machine, memo_trace = run(compile_module(memoize_functions(src, ["fib"])))
        assert machine.regs[2] == 610

    def test_collapses_recursion(self):
        src = FIB % 16
        plain_machine, plain_trace = run(compile_source(src))
        memo_machine, memo_trace = run(
            compile_module(memoize_functions(src, ["fib"]))
        )
        assert memo_machine.regs[2] == plain_machine.regs[2]
        assert len(memo_trace) < len(plain_trace) / 5

    def test_non_recursive_function(self):
        src = """
        func square(x) { return x * x }
        func main() {
            var s = 0
            var i = 0
            while (i < 30) {
                s = s + square(i % 5)
                i = i + 1
            }
            return s
        }
        """
        plain_machine, plain_trace = run(compile_source(src))
        memo_machine, memo_trace = run(
            compile_module(memoize_functions(src, ["square"]))
        )
        assert memo_machine.regs[2] == plain_machine.regs[2]

    def test_negative_arguments_safe(self):
        src = """
        func double(x) { return x + x }
        func main() { return double(0 - 21) }
        """
        machine, _ = run(compile_module(memoize_functions(src, ["double"])))
        assert machine.regs[2] == -42

    def test_table_collisions_still_correct(self):
        # a 2-entry table collides constantly; results must not change
        src = """
        func inc(x) { return x + 1 }
        func main() {
            var s = 0
            var i = 0
            while (i < 40) {
                s = s + inc(i)
                i = i + 1
            }
            return s
        }
        """
        machine, _ = run(compile_module(memoize_functions(src, ["inc"],
                                                          table_size=2)))
        assert machine.regs[2] == sum(i + 1 for i in range(40))

    def test_memoizing_two_functions(self):
        src = """
        func a(x) { return x * 3 }
        func b(x) { return a(x) + 1 }
        func main() { return b(5) + b(5) }
        """
        machine, _ = run(compile_module(memoize_functions(src, ["a", "b"])))
        assert machine.regs[2] == 32


class TestMemoizeErrors:
    def test_unknown_function(self):
        with pytest.raises(CompileError, match="unknown function"):
            memoize_functions("func main() { return 0 }", ["nope"])

    def test_multi_argument_rejected(self):
        src = "func add(a, b) { return a + b }\nfunc main() { return add(1, 2) }"
        with pytest.raises(CompileError, match="single-argument"):
            memoize_functions(src, ["add"])

    def test_main_rejected(self):
        with pytest.raises(CompileError, match="cannot memoize 'main'"):
            memoize_functions("func main() { return 0 }", ["main"])

    def test_bad_table_size(self):
        with pytest.raises(ValueError):
            memoize_functions(FIB % 5, ["fib"], table_size=0)
