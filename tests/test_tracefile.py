"""Trace serialization: round-trips and error handling."""

import json

import pytest

from repro.vm.tracefile import TraceFileError, load_trace, save_trace
from repro.workloads.base import run_workload

from conftest import run_asm


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        _, trace = run_asm("li r1, 5\nmuli r2, r1, 3\nhalt")
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.halted == trace.halted
        assert loaded.truncated == trace.truncated
        assert [repr(d) for d in loaded] == [repr(d) for d in trace]

    def test_gzip_round_trip(self, tmp_path):
        _, trace = run_asm("li r1, 5\nhalt")
        path = tmp_path / "t.jsonl.gz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert [repr(d) for d in loaded] == [repr(d) for d in trace]

    def test_float_values_preserved(self, tmp_path):
        _, trace = run_asm("fli f1, 0.1\nfadd f2, f1, f1\nhalt")
        path = tmp_path / "fp.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        value = loaded[1].writes[0][1]
        assert isinstance(value, float)
        assert value == trace[1].writes[0][1]

    def test_int_values_stay_ints(self, tmp_path):
        _, trace = run_asm("li r1, 7\nhalt")
        path = tmp_path / "int.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert isinstance(loaded[0].writes[0][1], int)

    def test_program_name_preserved(self, tmp_path):
        trace = run_workload("li", max_instructions=200)
        path = tmp_path / "li.jsonl"
        save_trace(trace, path)
        assert load_trace(path).program_name == "li"

    def test_empty_trace(self, tmp_path):
        from repro.vm.trace import Trace

        path = tmp_path / "empty.jsonl"
        save_trace(Trace(), path)
        assert len(load_trace(path)) == 0

    def test_analyses_agree_on_loaded_trace(self, tmp_path):
        from repro.baselines.ilr import instruction_reusability

        trace = run_workload("compress", max_instructions=2_000)
        path = tmp_path / "c.jsonl.gz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert (
            instruction_reusability(loaded).percent_reusable
            == instruction_reusability(trace).percent_reusable
        )


class TestColumnarV2:
    def test_v2_round_trip(self, tmp_path):
        from repro.vm.trace import ColumnarTrace

        _, trace = run_asm("li r1, 5\nmuli r2, r1, 3\nfli f1, 0.5\nhalt")
        path = tmp_path / "t.trace"
        save_trace(trace, path, format="v2")
        loaded = load_trace(path)
        assert isinstance(loaded, ColumnarTrace)
        assert loaded.program_name == trace.program_name
        assert loaded.halted == trace.halted
        assert loaded.truncated == trace.truncated
        assert [repr(d) for d in loaded] == [repr(d) for d in trace]

    def test_v2_gzip_round_trip(self, tmp_path):
        _, trace = run_asm("li r1, 5\nhalt")
        path = tmp_path / "t.trace.gz"
        save_trace(trace, path, format="v2")
        assert [repr(d) for d in load_trace(path)] == [repr(d) for d in trace]

    def test_cross_format_same_stream(self, tmp_path):
        """v1 and v2 files of the same trace decode to the same stream."""
        trace = run_workload("li", max_instructions=400, use_cache=False)
        v1, v2 = tmp_path / "t.jsonl", tmp_path / "t.trace"
        save_trace(trace, v1, format="v1")
        save_trace(trace, v2, format="v2")
        a, b = load_trace(v1), load_trace(v2)
        assert [repr(d) for d in a] == [repr(d) for d in b]
        assert a.program_name == b.program_name == "li"

    def test_v2_analyses_agree(self, tmp_path):
        from repro.baselines.ilr import instruction_reusability

        trace = run_workload("compress", max_instructions=2_000, use_cache=False)
        path = tmp_path / "c.trace"
        save_trace(trace, path, format="v2")
        assert (
            instruction_reusability(load_trace(path)).percent_reusable
            == instruction_reusability(trace).percent_reusable
        )

    def test_unknown_format_rejected(self, tmp_path):
        _, trace = run_asm("halt")
        with pytest.raises(TraceFileError, match="unknown trace format"):
            save_trace(trace, tmp_path / "t.bin", format="v9")

    def test_bad_v2_payload(self, tmp_path):
        from repro.vm.tracefile import MAGIC_V2

        path = tmp_path / "bad.trace"
        path.write_bytes(MAGIC_V2 + b"\x00not a pickle")
        with pytest.raises(TraceFileError, match="bad v2 payload"):
            load_trace(path)

    def test_v2_payload_wrong_type(self, tmp_path):
        import pickle

        from repro.vm.tracefile import MAGIC_V2

        path = tmp_path / "wrong.trace"
        path.write_bytes(MAGIC_V2 + pickle.dumps([1, 2, 3]))
        with pytest.raises(TraceFileError, match="not a trace"):
            load_trace(path)

    def test_truncated_v2_payload(self, tmp_path):
        _, trace = run_asm("li r1, 5\nhalt")
        path = tmp_path / "t.trace"
        save_trace(trace, path, format="v2")
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(TraceFileError, match="bad v2 payload"):
            load_trace(path)

    def test_bad_v2_payload_logs_warning(self, tmp_path, caplog):
        import logging

        from repro.vm.tracefile import MAGIC_V2

        path = tmp_path / "bad.trace"
        path.write_bytes(MAGIC_V2 + b"\x00not a pickle")
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            with pytest.raises(TraceFileError):
                load_trace(path)
        assert any("unreadable v2 trace file" in r.message
                   for r in caplog.records)

    def test_unexpected_error_propagates(self, tmp_path, monkeypatch):
        """Only *expected* unpickling/IO failures become
        TraceFileError; interpreter-level errors must not be
        swallowed as if the file were corrupt."""
        import repro.vm.tracefile as tracefile

        _, trace = run_asm("li r1, 5\nhalt")
        path = tmp_path / "t.trace"
        save_trace(trace, path, format="v2")

        def explode(_fh):
            raise MemoryError("interpreter out of memory")

        monkeypatch.setattr(tracefile.pickle, "load", explode)
        with pytest.raises(MemoryError):
            load_trace(path)


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("")
        with pytest.raises(TraceFileError, match="empty"):
            load_trace(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "b.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceFileError, match="bad header"):
            load_trace(path)

    def test_wrong_format_tag(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text(json.dumps({"format": "other"}) + "\n")
        with pytest.raises(TraceFileError, match="not a repro-trace"):
            load_trace(path)

    def test_bad_record(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(
            json.dumps({"format": "repro-trace-v1", "count": 1}) + "\n[1, 2]\n"
        )
        with pytest.raises(TraceFileError, match="bad record"):
            load_trace(path)

    def test_count_mismatch(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(json.dumps({"format": "repro-trace-v1", "count": 5}) + "\n")
        with pytest.raises(TraceFileError, match="declares 5"):
            load_trace(path)

    def test_odd_pair_list(self, tmp_path):
        path = tmp_path / "o.jsonl"
        header = json.dumps({"format": "repro-trace-v1", "count": 1})
        record = json.dumps([0, 1, [1], [], 1, 1])
        path.write_text(header + "\n" + record + "\n")
        with pytest.raises(TraceFileError, match="odd-length"):
            load_trace(path)
