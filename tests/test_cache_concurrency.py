"""Cross-process safety of the shared cache (``.repro-cache/``).

These tests spawn real OS processes (``sys.executable -c``) against
one cache directory, exercising the races the service architecture
depends on surviving:

* the profile-index compare-and-swap (two concurrent writers must
  both land — the old unlocked read-modify-write dropped one),
* ≥4 processes hammering the *same* keys (no corrupt entries, no
  lost profiles, bytes identical to a sequential run),
* crash-orphan temp files reaped when the cache is next opened.

Children inherit ``REPRO_CACHE_DIR`` (set per test) and
``PYTHONPATH`` from the test environment.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest

from repro.vm import tracecache


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A fresh shared cache directory exported to child processes."""
    target = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
    return target


def _spawn(script: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-c", script],
        env=os.environ.copy(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def _wait_all(procs: list[subprocess.Popen]) -> None:
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()


def _key(budget: int) -> tuple:
    """A well-formed config key (profile_path wants (name, value) pairs)."""
    return (("max_instructions", budget), ("window_size", 32))


# Each child stores a disjoint range of keys, concurrently with its
# siblings.  Under last-writer-wins index updates, most of one child's
# records vanish; under CAS they all survive.
_WRITER = """
from repro.vm import tracecache

start = {start}
count = {count}
for i in range(start, start + count):
    key = (("max_instructions", i), ("window_size", 32))
    tracecache.store_cached_profile("w%d" % i, key, {{"i": i}})
"""


class TestIndexRace:
    def test_two_concurrent_writers_both_land(self, cache_dir):
        """Regression: concurrent index updates must not drop entries."""
        per_child = 20
        procs = [
            _spawn(_WRITER.format(start=0, count=per_child)),
            _spawn(_WRITER.format(start=per_child, count=per_child)),
        ]
        _wait_all(procs)
        index = tracecache.load_profile_index()
        assert len(index) == 2 * per_child
        workloads = {meta["workload"] for meta in index.values()}
        assert workloads == {f"w{i}" for i in range(2 * per_child)}
        # every indexed entry exists on disk and loads
        for i in range(2 * per_child):
            assert tracecache.load_cached_profile(f"w{i}", _key(i)) == {"i": i}


# Every child stores *every* key, many times over — maximal same-key
# contention through the entry lock + atomic replace path.
_HAMMER = """
from repro.vm import tracecache

KEYS = {keys}
for _round in range({rounds}):
    for name, budget in KEYS:
        key = (("max_instructions", budget), ("window_size", 32))
        payload = {{"name": name, "budget": budget,
                   "series": list(range(64))}}
        tracecache.store_cached_profile(name, key, payload)
        got = tracecache.load_cached_profile(name, key)
        assert got == payload, got
"""


class TestSameKeyStress:
    def test_four_processes_hammer_same_keys(self, cache_dir, tmp_path):
        keys = [(f"k{i}", 1000 + i) for i in range(5)]
        script = _HAMMER.format(keys=keys, rounds=6)
        _wait_all([_spawn(script) for _ in range(4)])

        # no lost profiles: every key loads and matches its payload
        for name, budget in keys:
            expected = {"name": name, "budget": budget,
                        "series": list(range(64))}
            assert tracecache.load_cached_profile(name, _key(budget)) == expected

        # no index corruption or drops
        index = tracecache.load_profile_index()
        assert {meta["workload"] for meta in index.values()} == {
            name for name, _ in keys
        }

        # no torn writes left behind: every entry file's bytes are
        # bit-identical to a sequential store of the same payload
        seq_dir = tmp_path / "seq-cache"
        os.environ["REPRO_CACHE_DIR"] = str(seq_dir)
        try:
            for name, budget in keys:
                payload = {"name": name, "budget": budget,
                           "series": list(range(64))}
                tracecache.store_cached_profile(name, _key(budget), payload)
                ref = tracecache.profile_path(name, _key(budget)).read_bytes()
                os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
                got = tracecache.profile_path(name, _key(budget)).read_bytes()
                os.environ["REPRO_CACHE_DIR"] = str(seq_dir)
                assert got == ref
        finally:
            os.environ["REPRO_CACHE_DIR"] = str(cache_dir)

        # no temp-file litter anywhere in the hammered cache
        litter = [p for p in cache_dir.rglob("*.tmp")]
        assert litter == []


class TestOrphanReaping:
    def test_dead_writer_tmp_reaped_on_open(self, cache_dir):
        """A writer killed between mkstemp and os.replace is cleaned up."""
        profiles = cache_dir / "profiles"
        profiles.mkdir(parents=True)
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        orphan = profiles / f"li-n100-abc.pkl.pid{child.pid}.xyz.tmp"
        orphan.write_bytes(pickle.dumps({"partial": True})[:10])
        # force a fresh "open" of this root in-process
        tracecache._reaped_roots.discard(str(cache_dir))
        assert tracecache.reap_orphans() >= 1
        assert not orphan.exists()

    def test_open_store_reaps_once_per_root(self, cache_dir):
        profiles = cache_dir / "profiles"
        profiles.mkdir(parents=True)
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        orphan = profiles / f"x.pkl.pid{child.pid}.a.tmp"
        orphan.write_bytes(b"junk")
        tracecache._reaped_roots.discard(str(cache_dir))
        # any cache operation opens the store and triggers the reap
        assert tracecache.load_cached_profile("li", _key(1)) is None
        assert not orphan.exists()
        # a second orphan appearing later is NOT reaped until a new
        # process (or root) opens the store — reaping is once per root
        orphan2 = profiles / f"y.pkl.pid{child.pid}.b.tmp"
        orphan2.write_bytes(b"junk")
        tracecache.load_cached_profile("li", _key(1))
        assert orphan2.exists()

    def test_live_writer_tmp_survives(self, cache_dir):
        from repro.util import fslock

        profiles = cache_dir / "profiles"
        profiles.mkdir(parents=True)
        mine = fslock.make_tmp(profiles, "li-n100-abc.pkl")
        tracecache._reaped_roots.discard(str(cache_dir))
        assert tracecache.reap_orphans() == 0
        assert mine.exists()
