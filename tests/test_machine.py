"""VM semantics: one behaviour per test, organised by opcode family."""

import pytest

from repro.isa.opcodes import Opcode
from repro.isa.registers import FP_REG_BASE, MEM_LOC_BASE
from repro.vm.assembler import assemble
from repro.vm.errors import VMError
from repro.vm.machine import DEFAULT_STACK_TOP, Machine
from repro.vm.program import DATA_BASE

from conftest import run_asm


class TestIntegerALU:
    def test_add(self):
        m, _ = run_asm("li r1, 5\nli r2, 7\nadd r3, r1, r2\nhalt")
        assert m.regs[3] == 12

    def test_sub_negative_result(self):
        m, _ = run_asm("li r1, 5\nli r2, 7\nsub r3, r1, r2\nhalt")
        assert m.regs[3] == -2

    def test_logic_ops(self):
        m, _ = run_asm(
            "li r1, 12\nli r2, 10\nand r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\nhalt"
        )
        assert (m.regs[3], m.regs[4], m.regs[5]) == (8, 14, 6)

    def test_shifts(self):
        m, _ = run_asm(
            "li r1, -8\nslli r2, r1, 1\nsrai r3, r1, 1\nli r4, 8\nsrli r5, r4, 2\nhalt"
        )
        assert m.regs[2] == -16
        assert m.regs[3] == -4
        assert m.regs[5] == 2

    def test_srl_of_negative_is_logical(self):
        m, _ = run_asm("li r1, -1\nsrli r2, r1, 1\nhalt")
        assert m.regs[2] == (1 << 63) - 1

    def test_slt_seq(self):
        m, _ = run_asm(
            "li r1, 3\nli r2, 5\nslt r3, r1, r2\nslt r4, r2, r1\nseq r5, r1, r1\nhalt"
        )
        assert (m.regs[3], m.regs[4], m.regs[5]) == (1, 0, 1)

    def test_mul(self):
        m, _ = run_asm("li r1, 6\nmuli r2, r1, 7\nhalt")
        assert m.regs[2] == 42

    def test_add_wraps_64_bits(self):
        m, _ = run_asm(
            "li r1, 0x7fffffffffffffff\nli r2, 1\nadd r3, r1, r2\nhalt"
        )
        assert m.regs[3] == -(1 << 63)

    def test_div_truncates_toward_zero(self):
        m, _ = run_asm("li r1, -7\nli r2, 2\ndiv r3, r1, r2\nrem r4, r1, r2\nhalt")
        assert m.regs[3] == -3
        assert m.regs[4] == -1

    def test_div_by_zero_raises(self):
        with pytest.raises(VMError, match="division by zero"):
            run_asm("li r1, 1\nli r2, 0\ndiv r3, r1, r2\nhalt")

    def test_rem_by_zero_raises(self):
        with pytest.raises(VMError, match="remainder"):
            run_asm("li r1, 1\nli r2, 0\nrem r3, r1, r2\nhalt")

    def test_r0_reads_zero(self):
        m, _ = run_asm("li r1, 9\nadd r2, r0, r0\nhalt")
        assert m.regs[2] == 0

    def test_r0_writes_discarded(self):
        m, trace = run_asm("li r0, 99\nhalt")
        assert m.regs[0] == 0
        assert trace[0].writes == ()

    def test_li_mov(self):
        m, _ = run_asm("li r1, 123\nmov r2, r1\nhalt")
        assert m.regs[2] == 123


class TestMemory:
    def test_store_then_load(self):
        m, _ = run_asm("li r1, 100\nli r2, 55\nsw r2, 0(r1)\nlw r3, 0(r1)\nhalt")
        assert m.regs[3] == 55
        assert m.memory[100] == 55

    def test_offset_addressing(self):
        m, _ = run_asm("li r1, 200\nli r2, 7\nsw r2, 3(r1)\nlw r3, 3(r1)\nhalt")
        assert m.memory[203] == 7 and m.regs[3] == 7

    def test_uninitialised_reads_zero(self):
        m, _ = run_asm("li r1, 5000\nlw r2, 0(r1)\nhalt")
        assert m.regs[2] == 0

    def test_data_segment_initialised(self):
        m, _ = run_asm(".data\nv: .word 42\n.text\nmain: lw r1, v\nhalt")
        assert m.regs[1] == 42

    def test_negative_address_raises(self):
        with pytest.raises(VMError, match="negative"):
            run_asm("li r1, -5\nlw r2, 0(r1)\nhalt")

    def test_fp_store_load(self):
        m, _ = run_asm("fli f1, 2.5\nli r1, 300\nfsw f1, 0(r1)\nflw f2, 0(r1)\nhalt")
        assert m.fregs[2] == pytest.approx(2.5)

    def test_lw_of_float_truncates(self):
        m, _ = run_asm(".data\nf: .float 3.9\n.text\nmain: lw r1, f\nhalt")
        assert m.regs[1] == 3

    def test_stack_pointer_initialised(self):
        machine = Machine(assemble("halt"))
        assert machine.regs[29] == DEFAULT_STACK_TOP

    def test_push_pop_roundtrip(self):
        m, _ = run_asm("li r1, 77\npush r1\nli r1, 0\npop r2\nhalt")
        assert m.regs[2] == 77
        assert m.regs[29] == DEFAULT_STACK_TOP


class TestControlFlow:
    def test_branch_taken(self):
        m, _ = run_asm("li r1, 1\nbeqz r0, skip\nli r1, 2\nskip: halt")
        assert m.regs[1] == 1

    def test_branch_not_taken(self):
        m, _ = run_asm("li r1, 1\nbnez r0, skip\nli r1, 2\nskip: halt")
        assert m.regs[1] == 2

    def test_all_branch_conditions(self):
        source = """
        li r1, 3
        li r2, 5
        li r9, 0
        blt r1, r2, a
        j end
    a:  addi r9, r9, 1
        bgt r2, r1, b
        j end
    b:  addi r9, r9, 1
        ble r1, r1, c
        j end
    c:  addi r9, r9, 1
        bge r2, r2, d
        j end
    d:  addi r9, r9, 1
    end: halt
        """
        m, _ = run_asm(source)
        assert m.regs[9] == 4

    def test_loop_counts(self):
        m, _ = run_asm(
            "li t0, 0\nli t1, 10\nloop: addi t0, t0, 1\nblt t0, t1, loop\nhalt"
        )
        assert m.regs[8] == 10

    def test_call_ret(self):
        m, _ = run_asm(
            """
        main:
            li   a0, 5
            call double
            mov  s0, v0
            halt
        double:
            add  v0, a0, a0
            ret
            """
        )
        assert m.regs[16] == 10

    def test_nested_calls_with_stack(self):
        m, _ = run_asm(
            """
        main:
            li   a0, 3
            call f
            halt
        f:  # returns a0 * 2 + 1 via a helper
            push ra
            call g
            addi v0, v0, 1
            pop  ra
            ret
        g:
            add  v0, a0, a0
            ret
            """
        )
        assert m.regs[2] == 7

    def test_jr_computed_target(self):
        m, _ = run_asm("li r1, 3\njr r1\nhalt\nli r2, 9\nhalt")
        assert m.regs[2] == 9

    def test_pc_out_of_range_raises(self):
        with pytest.raises(VMError, match="outside program"):
            run_asm("li r1, 100\njr r1\nhalt")

    def test_halt_stops(self):
        m, trace = run_asm("halt\nnop")
        assert m.halted and len(trace) == 1

    def test_step_after_halt_raises(self):
        machine = Machine(assemble("halt"))
        machine.step()
        with pytest.raises(VMError, match="halted"):
            machine.step()

    def test_budget_truncates(self):
        machine = Machine(assemble("loop: j loop"))
        trace = machine.run(max_instructions=25)
        assert len(trace) == 25
        assert trace.truncated and not trace.halted

    def test_entry_at_main(self):
        m, _ = run_asm("li r1, 1\nhalt\nmain: li r1, 2\nhalt")
        assert m.regs[1] == 2


class TestFloatingPoint:
    def test_arith(self):
        m, _ = run_asm(
            "fli f1, 3.0\nfli f2, 2.0\nfadd f3, f1, f2\nfsub f4, f1, f2\n"
            "fmul f5, f1, f2\nfdiv f6, f1, f2\nhalt"
        )
        assert m.fregs[3] == pytest.approx(5.0)
        assert m.fregs[4] == pytest.approx(1.0)
        assert m.fregs[5] == pytest.approx(6.0)
        assert m.fregs[6] == pytest.approx(1.5)

    def test_sqrt_abs_neg_mov(self):
        m, _ = run_asm(
            "fli f1, 9.0\nfsqrt f2, f1\nfli f3, -2.0\nfabs f4, f3\n"
            "fneg f5, f1\nfmov f6, f1\nhalt"
        )
        assert m.fregs[2] == pytest.approx(3.0)
        assert m.fregs[4] == pytest.approx(2.0)
        assert m.fregs[5] == pytest.approx(-9.0)
        assert m.fregs[6] == pytest.approx(9.0)

    def test_fdiv_by_zero_raises(self):
        with pytest.raises(VMError, match="floating division"):
            run_asm("fli f1, 1.0\nfli f2, 0.0\nfdiv f3, f1, f2\nhalt")

    def test_sqrt_negative_raises(self):
        with pytest.raises(VMError, match="square root"):
            run_asm("fli f1, -1.0\nfsqrt f2, f1\nhalt")

    def test_comparisons(self):
        m, _ = run_asm(
            "fli f1, 1.0\nfli f2, 2.0\nflt r1, f1, f2\nfle r2, f2, f2\n"
            "feq r3, f1, f2\nhalt"
        )
        assert (m.regs[1], m.regs[2], m.regs[3]) == (1, 1, 0)

    def test_conversions(self):
        m, _ = run_asm("li r1, 7\ncvtif f1, r1\nfli f2, 3.9\ncvtfi r2, f2\nhalt")
        assert m.fregs[1] == pytest.approx(7.0)
        assert m.regs[2] == 3


class TestTraceRecords:
    def test_alu_reads_and_writes(self):
        _, trace = run_asm("li r1, 5\nli r2, 7\nadd r3, r1, r2\nhalt")
        add = trace[2]
        assert add.op is Opcode.ADD
        assert add.reads == ((1, 5), (2, 7))
        assert add.writes == ((3, 12),)

    def test_load_records_memory_read(self):
        _, trace = run_asm(".data\nv: .word 9\n.text\nmain: lw r1, v\nhalt")
        load = trace[0]
        assert (MEM_LOC_BASE + DATA_BASE, 9) in load.reads
        assert load.writes == ((1, 9),)

    def test_store_records_memory_write(self):
        _, trace = run_asm("li r1, 50\nli r2, 3\nsw r2, 0(r1)\nhalt")
        store = trace[2]
        assert store.writes == ((MEM_LOC_BASE + 50, 3),)

    def test_fp_locations_offset(self):
        _, trace = run_asm("fli f1, 1.0\nfmov f2, f1\nhalt")
        mov = trace[1]
        assert mov.reads == ((FP_REG_BASE + 1, 1.0),)
        assert mov.writes == ((FP_REG_BASE + 2, 1.0),)

    def test_branch_next_pc(self):
        _, trace = run_asm("beqz r0, target\nnop\ntarget: halt")
        assert trace[0].next_pc == 2

    def test_fallthrough_next_pc(self):
        _, trace = run_asm("nop\nhalt")
        assert trace[0].next_pc == 1

    def test_latencies_attached(self):
        _, trace = run_asm("li r1, 2\nmul r2, r1, r1\nhalt")
        assert trace[1].latency == 8

    def test_determinism(self):
        src = ".data\nv: .word 3\n.text\nmain: lw r1, v\nmuli r2, r1, 5\nhalt"
        _, t1 = run_asm(src)
        _, t2 = run_asm(src)
        assert [repr(d) for d in t1] == [repr(d) for d in t2]

    def test_histograms(self):
        _, trace = run_asm("li r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt")
        hist = trace.opcode_histogram()
        assert hist[Opcode.LI] == 2 and hist[Opcode.ADD] == 1
        assert sum(trace.class_histogram().values()) == len(trace)

    def test_static_pcs(self):
        _, trace = run_asm("loop: nop\nnop\nj loop", max_instructions=30)
        assert trace.static_pcs() == {0, 1, 2}
