"""Tracefile v3: round-trip fidelity, chunk boundaries, corruption.

The v3 contract is threefold: (1) any trace written through
``TraceWriter`` decodes back bit-identically, at every chunk size;
(2) reading is O(chunk) — the reader never materializes more than ~2
chunks; (3) damage of any kind surfaces as the typed
``TraceFileError``, never a codec internal, and the trace cache
treats a damaged entry as a miss it atomically rewrites.
"""

import gc

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.workloads  # registers the kernels
from repro.lang import compile_source
from repro.vm.machine import Machine
from repro.vm.trace import as_columnar, trace_identical
from repro.vm.tracefile import (
    TraceFileError,
    load_trace,
    save_trace,
    trace_file_info,
)
from repro.vm.tracestream import FileTraceStream, write_stream
from repro.vm.tracev3 import TraceReader, TraceWriter, write_v3
from repro.workloads.base import all_workloads, run_workload
from test_fastmachine import rl_programs

KERNELS = [w.name for w in all_workloads()]

#: The boundary-stress chunk sizes from the issue: degenerate (1),
#: coprime-to-everything (7), and a power of two (4096).
CHUNK_SIZES = (1, 7, 4096)


def roundtrip(trace, tmp_path, chunk_size):
    path = tmp_path / f"c{chunk_size}.trace"
    write_v3(trace, path, chunk_size=chunk_size)
    loaded = load_trace(path)
    assert trace_identical(trace, loaded)
    assert loaded.program_name == trace.program_name
    assert loaded.halted == trace.halted
    assert loaded.truncated == trace.truncated
    return path


class TestRoundTrip:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_kernel_roundtrip(self, tmp_path, chunk_size):
        trace = run_workload("compress", max_instructions=3_000)
        roundtrip(trace, tmp_path, chunk_size)

    def test_empty_trace(self, tmp_path):
        machine = Machine(compile_source(
            "func main() {\nreturn 0\n}\n"))
        trace = machine.run(max_instructions=0)
        assert len(trace) == 0
        roundtrip(trace, tmp_path, 64)

    def test_chunk_boundaries_partition_exactly(self, tmp_path):
        trace = run_workload("li", max_instructions=1_000)
        for chunk_size in (1, 7, 256, 4096):
            path = tmp_path / "t.trace"
            write_v3(trace, path, chunk_size=chunk_size)
            with TraceReader(path) as reader:
                sizes = [len(chunk) for chunk in reader.chunks()]
                assert sum(sizes) == len(trace) == reader.count
                # every chunk is full except possibly the last
                assert all(s == chunk_size for s in sizes[:-1])
                assert 0 < sizes[-1] <= chunk_size

    def test_incremental_writer_equals_batch(self, tmp_path):
        """Row-by-row append and one-shot write produce equal files."""
        trace = run_workload("li", max_instructions=500)
        batch = tmp_path / "batch.trace"
        write_v3(trace, batch, chunk_size=64)
        rowwise = tmp_path / "rows.trace"
        with TraceWriter(rowwise, program_name=trace.program_name,
                         chunk_size=64) as writer:
            for inst in trace:
                writer.append(inst.pc, inst.op, inst.reads, inst.writes,
                              inst.latency, inst.next_pc)
            writer.close(halted=trace.halted, truncated=trace.truncated)
        assert batch.read_bytes() == rowwise.read_bytes()

    def test_v2_v3_differential_all_kernels(self, tmp_path):
        """v2 and v3 encodings of every kernel decode identically."""
        for name in KERNELS:
            trace = run_workload(name, max_instructions=1_500)
            v2 = tmp_path / f"{name}.v2.trace"
            v3 = tmp_path / f"{name}.v3.trace"
            save_trace(trace, v2, format="v2")
            save_trace(trace, v3, format="v3")
            from_v2 = load_trace(v2)
            from_v3 = load_trace(v3)
            assert trace_identical(from_v2, from_v3), name
            assert trace_identical(trace, from_v3), name


class TestGeneratedPrograms:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            # the same file path is reused deliberately: write_v3
            # truncates on open, so examples never see stale bytes
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(source=rl_programs(), chunk_size=st.sampled_from(CHUNK_SIZES))
    def test_roundtrip_generated(self, tmp_path, source, chunk_size):
        from repro.vm.errors import VMError
        from repro.vm.trace import ColumnarTrace, extend_columnar

        program = compile_source(source)
        try:
            trace = Machine(program).run(max_instructions=5_000)
        except VMError:
            return  # faulting programs (e.g. div by zero) have no trace
        path = tmp_path / "gen.trace"
        write_v3(trace, path, chunk_size=chunk_size)
        loaded = load_trace(path)
        assert trace_identical(trace, loaded)
        # chunked reads concatenate to the same stream
        with TraceReader(path) as reader:
            rebuilt = ColumnarTrace(program_name=reader.program_name)
            for chunk in reader.chunks():
                extend_columnar(rebuilt, chunk)
            rebuilt.halted = reader.halted
            rebuilt.truncated = reader.truncated
        assert trace_identical(trace, rebuilt)


class TestCorruption:
    @pytest.fixture
    def valid_file(self, tmp_path):
        trace = run_workload("compress", max_instructions=2_000)
        path = tmp_path / "ok.trace"
        write_v3(trace, path, chunk_size=256)
        return path

    def test_truncation_everywhere_raises_typed(self, valid_file):
        """Cutting the file at any structural point is a TraceFileError.

        A crashed writer, a partial copy, or a torn download must
        never surface zlib/struct internals.
        """
        data = valid_file.read_bytes()
        # prefix lengths spanning magic, chunk frames, footer and tail
        cuts = {0, 4, len(data) // 3, len(data) // 2,
                len(data) - 30, len(data) - 8, len(data) - 1}
        for cut in sorted(cuts):
            valid_file.write_bytes(data[:cut])
            with pytest.raises(TraceFileError):
                load_trace(valid_file)

    def test_corrupt_chunk_payload_raises_typed(self, valid_file):
        data = bytearray(valid_file.read_bytes())
        mid = len(data) // 2  # inside some compressed frame
        data[mid] ^= 0xFF
        valid_file.write_bytes(bytes(data))
        with pytest.raises(TraceFileError):
            load_trace(valid_file)

    def test_bad_magic_raises_typed(self, valid_file):
        data = bytearray(valid_file.read_bytes())
        data[0] ^= 0xFF
        valid_file.write_bytes(bytes(data))
        with pytest.raises(TraceFileError):
            load_trace(valid_file)

    def test_streaming_reader_rejects_truncation(self, valid_file):
        data = valid_file.read_bytes()
        valid_file.write_bytes(data[:len(data) - 9])
        with pytest.raises(TraceFileError):
            FileTraceStream(valid_file)

    def test_corrupt_cache_entry_is_miss_and_rewritten(self):
        """A damaged cache entry yields the correct trace again and the
        entry is atomically rewritten valid."""
        from repro.vm import tracecache
        from repro.workloads.base import get_workload

        name, budget = "li", 1_200
        fresh = run_workload(name, max_instructions=budget, use_cache=True)
        source = get_workload(name).source(1)
        path = tracecache.trace_path(name, 1, budget, source, "interp")
        assert path.is_file()
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])  # torn write
        again = run_workload(name, max_instructions=budget, use_cache=True)
        assert trace_identical(fresh, again)
        # the rewrite healed the entry: a plain load works again
        assert trace_identical(load_trace(path), fresh)

    def test_corrupt_cache_entry_is_stream_miss(self):
        from repro.vm import tracecache
        from repro.workloads.base import get_workload, stream_workload

        name, budget = "perl", 1_000
        fresh = run_workload(name, max_instructions=budget, use_cache=True)
        source = get_workload(name).source(1)
        path = tracecache.trace_path(name, 1, budget, source, "interp")
        path.write_bytes(path.read_bytes()[:40])
        stream = stream_workload(name, max_instructions=budget,
                                 use_cache=True)
        rebuilt = as_columnar(stream)
        assert trace_identical(fresh, rebuilt)


class TestBoundedMemory:
    def test_reader_holds_at_most_two_chunks(self, tmp_path):
        """Drain a many-chunk file counting live decoded chunks: at any
        point at most ~2 may be alive (the one just yielded plus the
        one being decoded).  ``ColumnarTrace`` is a slots class without
        ``__weakref__``, so liveness is counted via the gc instead."""
        from repro.vm.trace import ColumnarTrace

        trace = run_workload("compress", max_instructions=4_000)
        path = tmp_path / "many.trace"
        write_v3(trace, path, chunk_size=100)  # 40 chunks
        del trace
        gc.collect()
        baseline = sum(1 for o in gc.get_objects()
                       if isinstance(o, ColumnarTrace))
        seen = 0
        max_live = 0
        with TraceReader(path) as reader:
            for chunk in reader.chunks():
                seen += 1
                del chunk
                gc.collect()
                live = sum(1 for o in gc.get_objects()
                           if isinstance(o, ColumnarTrace)) - baseline
                max_live = max(max_live, live)
        assert seen == 40
        assert max_live <= 2, f"{max_live} chunks live at once"

    def test_writer_pending_stays_bounded(self, tmp_path):
        trace = run_workload("li", max_instructions=2_000)
        path = tmp_path / "w.trace"
        with TraceWriter(path, chunk_size=128) as writer:
            for inst in trace:
                writer.append(inst.pc, inst.op, inst.reads, inst.writes,
                              inst.latency, inst.next_pc)
                assert len(writer._pending) < 128
            writer.close()


class TestInfo:
    def test_v3_info_fields(self, tmp_path):
        trace = run_workload("compress", max_instructions=2_000)
        path = tmp_path / "t.trace"
        write_v3(trace, path, chunk_size=512)
        info = trace_file_info(path)
        assert info["format"] == "v3"
        assert info["instructions"] == 2_000
        assert info["chunk_count"] == 4
        assert info["chunk_size"] == 512
        assert info["compression_ratio"] > 1.0
        assert info["file_bytes"] == path.stat().st_size
        assert info["program"] == trace.program_name

    def test_v2_info_fields(self, tmp_path):
        trace = run_workload("compress", max_instructions=1_000)
        path = tmp_path / "t2.trace"
        save_trace(trace, path, format="v2")
        info = trace_file_info(path)
        assert info["format"] == "v2"
        assert info["instructions"] == 1_000
        assert info["chunk_count"] is None

    def test_write_stream_rechunks(self, tmp_path):
        trace = run_workload("li", max_instructions=700)
        src = tmp_path / "src.trace"
        write_v3(trace, src, chunk_size=64)
        dst = tmp_path / "dst.trace"
        n = write_stream(FileTraceStream(src), dst, chunk_size=100)
        assert n == 700
        info = trace_file_info(dst)
        assert info["chunk_size"] == 100
        assert info["chunk_count"] == 7
        assert trace_identical(load_trace(src), load_trace(dst))


class TestThreadedCodec:
    """The codec thread pool reorders *work*, never *bytes*: frames are
    serialized in submission order, and zlib is deterministic, so any
    pool size produces the identical file."""

    @pytest.fixture(scope="class")
    def trace(self):
        return run_workload("compress", max_instructions=2_000)

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    @pytest.mark.parametrize("threads", (1, 2, 8))
    def test_threaded_writer_byte_identical(self, tmp_path, trace,
                                            threads, chunk_size):
        serial = tmp_path / "serial.trace"
        pooled = tmp_path / "pooled.trace"
        write_stream(trace, serial, chunk_size=chunk_size, threads=0)
        write_stream(trace, pooled, chunk_size=chunk_size, threads=threads)
        assert serial.read_bytes() == pooled.read_bytes()

    def test_abort_with_pool_leaves_no_footer(self, tmp_path, trace):
        path = tmp_path / "aborted.trace"
        writer = TraceWriter(path, chunk_size=64, threads=2)
        writer.write_segment(as_columnar(trace))
        writer.abort()
        with pytest.raises(TraceFileError):
            load_trace(path)

    def test_env_knob_resolves_pool_size(self, monkeypatch):
        from repro.vm.tracev3 import codec_threads

        monkeypatch.setenv("REPRO_CODEC_THREADS", "3")
        assert codec_threads() == 3
        monkeypatch.setenv("REPRO_CODEC_THREADS", "0")
        assert codec_threads() == 0


class TestPrefetchReader:
    @pytest.mark.parametrize("prefetch", (1, 3))
    def test_prefetch_holds_at_most_k_plus_two(self, tmp_path, prefetch):
        """Read-ahead is bounded: with ``prefetch=K`` at most K + 2
        decoded chunks are ever live (K in flight plus the yielded one
        plus the consumer's previous one); counted via the gc as in
        ``TestBoundedMemory``."""
        from repro.vm.trace import ColumnarTrace

        trace = run_workload("compress", max_instructions=4_000)
        path = tmp_path / "many.trace"
        write_v3(trace, path, chunk_size=100)  # 40 chunks
        del trace
        gc.collect()
        baseline = sum(1 for o in gc.get_objects()
                       if isinstance(o, ColumnarTrace))
        seen = 0
        max_live = 0
        with TraceReader(path) as reader:
            for chunk in reader.chunks(prefetch=prefetch):
                seen += 1
                del chunk
                gc.collect()
                live = sum(1 for o in gc.get_objects()
                           if isinstance(o, ColumnarTrace)) - baseline
                max_live = max(max_live, live)
        assert seen == 40
        assert max_live <= prefetch + 2, (
            f"{max_live} chunks live with prefetch={prefetch}")

    def test_prefetch_yields_identical_chunks(self, tmp_path):
        trace = run_workload("li", max_instructions=1_500)
        path = tmp_path / "t.trace"
        write_v3(trace, path, chunk_size=128)
        with TraceReader(path) as reader:
            plain = [c for c in reader.chunks(prefetch=0)]
            ahead = [c for c in reader.chunks(prefetch=4)]
        assert len(plain) == len(ahead)
        for a, b in zip(plain, ahead):
            assert trace_identical(a, b)


class TestInfoColumns:
    def test_column_sections_sum_to_payload(self, tmp_path):
        from repro.vm.tracev3 import SECTION_NAMES

        trace = run_workload("compress", max_instructions=2_000)
        path = tmp_path / "t.trace"
        write_v3(trace, path, chunk_size=512)
        info = trace_file_info(path, columns=True, per_chunk=True)
        cols = info["columns"]
        assert set(cols) == set(SECTION_NAMES) | {"header"}
        total = sum(c["encoded_bytes"] for c in cols.values())
        assert total == info["encoded_bytes"]
        chunks = info["chunks"]
        assert len(chunks) == info["chunk_count"]
        assert sum(c["encoded_bytes"] for c in chunks) == info["encoded_bytes"]
        assert sum(c["compressed_bytes"] for c in chunks) == info["compressed_bytes"]
        assert sum(c["instructions"] for c in chunks) == 2_000
        # the dominant columns carry a real codec mode tag
        assert any("bitmap+f8" in m for m in cols["read_vals"]["modes"])
