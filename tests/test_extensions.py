"""Extension experiments: window sweep, warm-up, prediction-vs-reuse."""

import pytest

from repro.exp.extensions import prediction_vs_reuse, warmup_sweep, window_sweep


class TestWindowSweep:
    def test_shape(self):
        fig = window_sweep(["compress"], windows=(32, 128), max_instructions=2000)
        assert [row[0] for row in fig.rows] == ["32", "128"]
        assert all(row[2] >= 1.0 - 1e-9 for row in fig.rows)

    def test_base_ipc_grows_with_window(self):
        fig = window_sweep(
            ["compress", "li"], windows=(32, 256), max_instructions=3000
        )
        assert fig.rows[1][1] >= fig.rows[0][1]  # base IPC monotone


class TestWarmupSweep:
    def test_reusability_grows_with_budget(self):
        fig = warmup_sweep(["compress", "li"], budgets=(1000, 8000))
        small = fig.rows[0][1]
        large = fig.rows[1][1]
        assert large > small

    def test_labels(self):
        fig = warmup_sweep(["li"], budgets=(500,))
        assert fig.rows[0][0] == "500"


class TestPredictionVsReuse:
    @pytest.fixture(scope="class")
    def fig(self):
        return prediction_vs_reuse(["compress", "li"], max_instructions=3000)

    def test_columns(self, fig):
        assert fig.headers[0] == "program"
        assert "stride_pred_pct" in fig.headers
        assert "tlr_speedup" in fig.headers

    def test_average_row(self, fig):
        avg = fig.row_for("AVERAGE")
        assert len(avg) == len(fig.headers)

    def test_tlr_wins(self, fig):
        # trace-level reuse dominates both predictors and ILR on these
        # highly repetitive kernels
        assert fig.value("AVERAGE", "tlr_speedup") >= fig.value(
            "AVERAGE", "ilr_speedup"
        )

    def test_speedups_at_least_one(self, fig):
        for col in ("lv_speedup", "stride_speedup", "ilr_speedup", "tlr_speedup"):
            assert fig.value("AVERAGE", col) >= 1.0 - 1e-9

    def test_coverage_percentages_valid(self, fig):
        for col in ("lv_pred_pct", "stride_pred_pct", "reusable_pct"):
            assert 0.0 <= fig.value("AVERAGE", col) <= 100.0
