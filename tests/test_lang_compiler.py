"""RL compiler: generated code semantics, checked by execution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import CompileError, compile_source, compile_to_assembly
from repro.vm.machine import Machine


def run_main(source: str, max_instructions: int = 200_000):
    """Compile, run, return (machine, main's return value)."""
    machine = Machine(compile_source(source))
    trace = machine.run(max_instructions=max_instructions)
    assert trace.halted, "program did not terminate"
    return machine, machine.regs[2]  # v0


def returns(source_body: str) -> int:
    _, value = run_main(f"func main() {{ {source_body} }}")
    return value


class TestExpressions:
    def test_arithmetic(self):
        assert returns("return 2 + 3 * 4") == 14
        assert returns("return (2 + 3) * 4") == 20
        assert returns("return 17 / 5") == 3
        assert returns("return 17 % 5") == 2
        assert returns("return -17 / 5") == -3  # truncates toward zero

    def test_bitwise(self):
        assert returns("return 12 & 10") == 8
        assert returns("return 12 | 10") == 14
        assert returns("return 12 ^ 10") == 6
        assert returns("return 3 << 4") == 48
        assert returns("return -16 >> 2") == -4  # arithmetic shift

    def test_comparisons(self):
        assert returns("return 3 < 5") == 1
        assert returns("return 5 < 3") == 0
        assert returns("return 3 <= 3") == 1
        assert returns("return 3 > 5") == 0
        assert returns("return 5 >= 5") == 1
        assert returns("return 4 == 4") == 1
        assert returns("return 4 != 4") == 0

    def test_unary(self):
        assert returns("return -(3 + 4)") == -7
        assert returns("return !0") == 1
        assert returns("return !7") == 0

    def test_deep_expression_ok(self):
        assert returns("return 1 + (2 + (3 + (4 + 5)))") == 15

    def test_too_deep_expression_rejected(self):
        nested = "1"
        for _ in range(10):
            nested = f"(1 + {nested})"
        with pytest.raises(CompileError, match="too deep"):
            compile_source(f"func main() {{ return {nested} }}")


class TestVariablesAndControl:
    def test_locals(self):
        assert returns("var x = 5\nvar y = x * 2\nreturn x + y") == 15

    def test_global_scalar(self):
        source = """
        var g = 10
        func main() {
            g = g + 5
            return g
        }
        """
        machine, value = run_main(source)
        assert value == 15

    def test_global_array_roundtrip(self):
        source = """
        var a[4] = {9, 8, 7, 6}
        func main() {
            a[2] = a[0] + a[3]
            return a[2]
        }
        """
        _, value = run_main(source)
        assert value == 15

    def test_if_else(self):
        assert returns("if (1 < 2) { return 10 } else { return 20 }") == 10
        assert returns("if (2 < 1) { return 10 } else { return 20 }") == 20

    def test_else_if_chain(self):
        source = """
        func classify(x) {
            if (x < 0) { return -1 }
            else if (x == 0) { return 0 }
            else { return 1 }
        }
        func main() { return classify(5) + classify(0) + classify(-9) * 10 }
        """
        _, value = run_main(source)
        assert value == 1 + 0 - 10

    def test_while_loop(self):
        body = """
        var i = 0
        var s = 0
        while (i < 10) {
            s = s + i
            i = i + 1
        }
        return s
        """
        assert returns(body) == 45

    def test_nested_loops_with_inner_declaration(self):
        # `var j` inside the loop body declares once (function scope)
        # and re-initialises on every outer iteration
        body = """
        var i = 0
        var s = 0
        while (i < 5) {
            var j = 0
            while (j < 5) {
                s = s + 1
                j = j + 1
            }
            i = i + 1
        }
        return s
        """
        assert returns(body) == 25

    def test_duplicate_local_rejected(self):
        with pytest.raises(CompileError, match="duplicate local"):
            returns("var x = 1\nvar x = 2\nreturn x")

    def test_single_declaration_nested_loops(self):
        body = """
        var i = 0
        var j = 0
        var s = 0
        while (i < 5) {
            j = 0
            while (j < 5) {
                s = s + 1
                j = j + 1
            }
            i = i + 1
        }
        return s
        """
        assert returns(body) == 25

    def test_implicit_return_zero(self):
        assert returns("var x = 5") == 0


class TestFunctions:
    def test_call_with_args(self):
        source = """
        func add3(a, b, c) { return a + b + c }
        func main() { return add3(1, 2, 3) }
        """
        assert run_main(source)[1] == 6

    def test_recursion(self):
        source = """
        func fact(n) {
            if (n <= 1) { return 1 }
            return n * fact(n - 1)
        }
        func main() { return fact(10) }
        """
        assert run_main(source)[1] == 3628800

    def test_mutual_recursion(self):
        source = """
        func is_even(n) {
            if (n == 0) { return 1 }
            return is_odd(n - 1)
        }
        func is_odd(n) {
            if (n == 0) { return 0 }
            return is_even(n - 1)
        }
        func main() { return is_even(10) + is_odd(10) * 10 }
        """
        assert run_main(source)[1] == 1

    def test_call_inside_expression_preserves_registers(self):
        source = """
        func id(x) { return x }
        func main() { return 100 + id(23) * id(2) }
        """
        assert run_main(source)[1] == 146

    def test_fibonacci(self):
        source = """
        func fib(n) {
            if (n < 2) { return n }
            return fib(n - 1) + fib(n - 2)
        }
        func main() { return fib(12) }
        """
        assert run_main(source)[1] == 144


class TestErrors:
    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined variable"):
            compile_source("func main() { return nope }")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            compile_source("func main() { return nope(1) }")

    def test_wrong_arity(self):
        with pytest.raises(CompileError, match="takes 2"):
            compile_source(
                "func f(a, b) { return a }\nfunc main() { return f(1) }"
            )

    def test_missing_main(self):
        with pytest.raises(CompileError, match="no 'main'"):
            compile_source("func helper() { return 0 }")

    def test_main_with_params(self):
        with pytest.raises(CompileError, match="takes no arguments"):
            compile_source("func main(x) { return x }")

    def test_duplicate_function(self):
        with pytest.raises(CompileError, match="duplicate function"):
            compile_source("func f() { return 0 }\nfunc f() { return 1 }\n"
                           "func main() { return 0 }")

    def test_duplicate_global(self):
        with pytest.raises(CompileError, match="duplicate global"):
            compile_source("var x\nvar x\nfunc main() { return 0 }")

    def test_local_shadowing_global(self):
        with pytest.raises(CompileError, match="shadows"):
            compile_source("var x\nfunc main() { var x = 1\nreturn x }")

    def test_scalar_local_indexed(self):
        with pytest.raises(CompileError, match="scalar local"):
            compile_source("func main() { var x = 1\nreturn x[0] }")

    def test_array_without_index(self):
        with pytest.raises(CompileError, match="needs an index"):
            compile_source("var a[4]\nfunc main() { return a }")


class TestAssemblyOutput:
    def test_output_is_assembleable_text(self):
        text = compile_to_assembly("func main() { return 1 + 2 }")
        assert ".data" in text and "fn_main:" in text
        from repro.vm.assembler import assemble

        assemble(text)  # must not raise

    def test_globals_named_in_output(self):
        text = compile_to_assembly("var zz[3] = {4, 5}\nfunc main() { return 0 }")
        assert "g_zz: .word 4 5 0" in text


_LEAF = st.integers(min_value=-50, max_value=50)


@st.composite
def arith_exprs(draw, depth=0):
    """Random RL arithmetic expression plus its Python value."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(_LEAF)
        return (f"({value})" if value < 0 else str(value)), value
    op = draw(st.sampled_from(["+", "-", "*"]))
    left_text, left_val = draw(arith_exprs(depth=depth + 1))
    right_text, right_val = draw(arith_exprs(depth=depth + 1))
    value = {"+": left_val + right_val, "-": left_val - right_val,
             "*": left_val * right_val}[op]
    return f"({left_text} {op} {right_text})", value


class TestDifferential:
    @given(arith_exprs())
    @settings(max_examples=60, deadline=None)
    def test_random_expressions_match_python(self, case):
        text, expected = case
        _, value = run_main(f"func main() {{ return {text} }}")
        assert value == expected

    @given(st.integers(0, 30), st.integers(1, 7))
    @settings(max_examples=30, deadline=None)
    def test_division_truncates_toward_zero(self, a, b):
        # for a, b >= 0: trunc(-a / b) == -(a // b)
        _, value = run_main(f"func main() {{ return (0 - {a}) / {b} }}")
        assert value == -(a // b)
