"""The 14-kernel workload suite: registration, execution, character."""

import pytest

from repro.isa.opcodes import OpClass
from repro.vm.machine import Machine
from repro.workloads import FP_SUITE, INT_SUITE, all_workloads, get_workload
from repro.workloads.base import build_program, run_workload

ALL_NAMES = FP_SUITE + INT_SUITE


class TestRegistry:
    def test_all_fourteen_registered(self):
        names = [w.name for w in all_workloads()]
        assert names == ALL_NAMES
        assert len(names) == 14

    def test_suite_membership(self):
        for name in FP_SUITE:
            assert get_workload(name).suite == "FP"
        for name in INT_SUITE:
            assert get_workload(name).suite == "INT"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("doom")

    def test_descriptions_present(self):
        for w in all_workloads():
            assert len(w.description) > 10

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            get_workload("compress").source(scale=0)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryKernel:
    def test_assembles(self, name):
        program = build_program(name)
        assert len(program) > 10

    def test_runs_to_budget(self, name):
        trace = run_workload(name, max_instructions=4000)
        assert len(trace) == 4000  # kernels outlast any realistic budget
        assert trace.truncated and not trace.halted

    def test_deterministic(self, name):
        t1 = run_workload(name, max_instructions=1500)
        t2 = run_workload(name, max_instructions=1500)
        assert [repr(d) for d in t1] == [repr(d) for d in t2]

    def test_no_stray_memory_below_data_base(self, name):
        # kernels must address only the data segment and the stack
        machine = Machine(build_program(name))
        machine.run(max_instructions=4000)
        from repro.vm.program import DATA_BASE

        for addr in machine.memory:
            assert addr >= DATA_BASE or addr > 0x8000, (
                f"{name} wrote near-null address {addr:#x}"
            )


class TestSuiteCharacter:
    @pytest.mark.parametrize("name", FP_SUITE)
    def test_fp_kernels_use_fp(self, name):
        trace = run_workload(name, max_instructions=4000)
        hist = trace.class_histogram()
        fp_ops = sum(
            hist.get(cls, 0)
            for cls in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV,
                        OpClass.FP_SQRT, OpClass.FP_CVT)
        )
        assert fp_ops / len(trace) > 0.15, f"{name} has too little FP work"

    @pytest.mark.parametrize("name", INT_SUITE)
    def test_int_kernels_mostly_integer(self, name):
        trace = run_workload(name, max_instructions=4000)
        hist = trace.class_histogram()
        fp_ops = sum(
            hist.get(cls, 0)
            for cls in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV,
                        OpClass.FP_SQRT, OpClass.FP_CVT)
        )
        assert fp_ops == 0, f"{name} unexpectedly uses FP"

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_kernels_access_memory(self, name):
        trace = run_workload(name, max_instructions=4000)
        hist = trace.class_histogram()
        assert hist.get(OpClass.LOAD, 0) > 0
        assert hist.get(OpClass.STORE, 0) > 0

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_kernels_branch(self, name):
        trace = run_workload(name, max_instructions=4000)
        hist = trace.class_histogram()
        assert hist.get(OpClass.BRANCH, 0) > 0

    def test_applu_is_least_reusable(self):
        """The paper's figure 3 ordering: applu at the bottom."""
        from repro.baselines.ilr import instruction_reusability

        rates = {}
        for name in ("applu", "hydro2d", "compress"):
            trace = run_workload(name, max_instructions=20_000)
            rates[name] = instruction_reusability(trace).percent_reusable
        assert rates["applu"] < rates["compress"]
        assert rates["applu"] < rates["hydro2d"]

    def test_hydro2d_has_long_traces(self):
        """Figure 7's headline: hydro2d has by far the largest traces."""
        from repro.baselines.ilr import instruction_reusability
        from repro.core.traces import average_span_length, maximal_reusable_spans

        sizes = {}
        for name in ("hydro2d", "applu", "fpppp"):
            trace = run_workload(name, max_instructions=20_000)
            flags = instruction_reusability(trace).flags
            sizes[name] = average_span_length(maximal_reusable_spans(trace, flags))
        assert sizes["hydro2d"] > 5 * sizes["applu"]
        assert sizes["hydro2d"] > 5 * sizes["fpppp"]
