"""Odds and ends of the public API surface."""

import pytest

from repro import __version__
from repro.exp.report import render, render_markdown
from repro.exp.figures import FigureResult
from repro.vm.assembler import assemble
from repro.vm.machine import Machine, run_source
from repro.workloads.base import get_workload, run_workload


class TestVersion:
    def test_version_matches_pyproject(self):
        import pathlib
        import re

        text = pathlib.Path(__file__).parent.parent.joinpath(
            "pyproject.toml"
        ).read_text()
        match = re.search(r'^version = "(.+)"$', text, re.M)
        assert match and match.group(1) == __version__


class TestMachineInspection:
    def test_read_helpers(self):
        machine = Machine(assemble("li r5, 9\nfli f3, 2.5\nli r1, 77\n"
                                   "sw r5, 0(r1)\nhalt"))
        machine.run()
        assert machine.register(5) == 9
        assert machine.fp_register(3) == pytest.approx(2.5)
        assert machine.read_memory(77) == 9
        assert machine.read_memory(12345) == 0
        assert machine.instruction_count == 5

    def test_run_source_convenience(self):
        trace = run_source("li r1, 1\nhalt", name="snippet")
        assert trace.program_name == "snippet" and trace.halted


class TestWorkloadScaling:
    @pytest.mark.parametrize("name", ["compress", "gcc"])
    def test_scale_grows_static_data(self, name):
        small = get_workload(name).program(scale=1)
        large = get_workload(name).program(scale=2)
        assert len(large.data) > len(small.data)

    def test_scaled_kernels_still_run(self):
        trace = run_workload("compress", scale=2, max_instructions=2_000)
        assert len(trace) == 2_000


class TestReportRendering:
    def test_render_includes_all_rows(self):
        fig = FigureResult(
            figure_id="x", title="T", headers=["a", "b"],
            rows=[["r1", 1.0], ["r2", 2.0]],
        )
        text = render(fig)
        assert "r1" in text and "r2" in text and text.startswith("T")

    def test_markdown_escapes_nothing_needed(self):
        fig = FigureResult(
            figure_id="x", title="T", headers=["a"], rows=[["v"]]
        )
        md = render_markdown(fig)
        assert md.count("|") >= 6

    def test_figure_result_value_type_preserved(self):
        fig = FigureResult(
            figure_id="x", title="T", headers=["a", "b"], rows=[["k", 1.25]]
        )
        assert fig.value("k", "b") == 1.25
