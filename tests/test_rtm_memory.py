"""Reuse Trace Memory: entries, geometry, lookup and LRU replacement."""

import pytest

from repro.core.rtm.entry import RTMEntry
from repro.core.rtm.memory import RTM_PRESETS, ReuseTraceMemory, RTMConfig


def entry(pc=0, length=3, inputs=((1, 5),), outputs=((2, 6),), next_pc=10):
    return RTMEntry(
        start_pc=pc, length=length, inputs=inputs, outputs=outputs, next_pc=next_pc
    )


class TestRTMEntry:
    def test_matches_when_values_equal(self):
        assert entry().matches({1: 5})

    def test_mismatch_value(self):
        assert not entry().matches({1: 6})

    def test_missing_location_fails(self):
        assert not entry().matches({})

    def test_empty_inputs_always_match(self):
        assert entry(inputs=()).matches({})

    def test_multiple_inputs_all_checked(self):
        e = entry(inputs=((1, 5), (2, 6)))
        assert e.matches({1: 5, 2: 6})
        assert not e.matches({1: 5, 2: 7})

    def test_counts(self):
        from repro.isa.registers import loc_mem

        e = entry(inputs=((1, 5), (loc_mem(4), 0)), outputs=((2, 1), (loc_mem(9), 2)))
        assert e.input_count == 2 and e.output_count == 2
        assert e.reg_input_count == 1 and e.mem_input_count == 1
        assert e.reg_output_count == 1 and e.mem_output_count == 1

    def test_identity_same_for_equal_traces(self):
        assert entry().identity() == entry().identity()

    def test_identity_differs_on_inputs(self):
        assert entry().identity() != entry(inputs=((1, 9),)).identity()


class TestPresets:
    def test_paper_capacities(self):
        assert RTM_PRESETS["512"].total_entries == 512
        assert RTM_PRESETS["4K"].total_entries == 4096
        assert RTM_PRESETS["32K"].total_entries == 32768
        assert RTM_PRESETS["256K"].total_entries == 262144

    def test_paper_organisation(self):
        assert RTM_PRESETS["512"].ways == 4
        assert RTM_PRESETS["512"].traces_per_pc == 4
        assert RTM_PRESETS["4K"].traces_per_pc == 8
        assert RTM_PRESETS["32K"].ways == 8
        assert RTM_PRESETS["256K"].traces_per_pc == 16

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            ReuseTraceMemory(RTMConfig("bad", num_sets=0, ways=1, traces_per_pc=1))


class TestLookupAndInsert:
    def small(self):
        return ReuseTraceMemory(RTMConfig("t", num_sets=2, ways=2, traces_per_pc=2))

    def test_miss_on_empty(self):
        rtm = self.small()
        assert rtm.lookup(0, {1: 5}) is None
        assert rtm.lookups == 1 and rtm.hits == 0

    def test_insert_then_hit(self):
        rtm = self.small()
        rtm.insert(entry())
        found = rtm.lookup(0, {1: 5})
        assert found is not None and found.length == 3
        assert rtm.hits == 1

    def test_hit_requires_matching_inputs(self):
        rtm = self.small()
        rtm.insert(entry())
        assert rtm.lookup(0, {1: 99}) is None

    def test_lookup_wrong_pc_misses(self):
        rtm = self.small()
        rtm.insert(entry(pc=0))
        assert rtm.lookup(1, {1: 5}) is None

    def test_longest_match_wins(self):
        rtm = self.small()
        rtm.insert(entry(length=2))
        rtm.insert(entry(length=5, inputs=((1, 5),)))
        found = rtm.lookup(0, {1: 5})
        assert found.length == 5

    def test_occupancy(self):
        rtm = self.small()
        rtm.insert(entry())
        rtm.insert(entry(pc=1))
        assert rtm.occupancy == 2
        assert len(rtm.stored_entries()) == 2

    def test_duplicate_insert_refreshes_not_duplicates(self):
        rtm = self.small()
        rtm.insert(entry())
        rtm.insert(entry())
        assert rtm.occupancy == 1
        assert rtm.insertions == 1

    def test_traces_per_pc_eviction(self):
        rtm = self.small()  # 2 traces per pc
        rtm.insert(entry(inputs=((1, 1),)))
        rtm.insert(entry(inputs=((1, 2),)))
        rtm.insert(entry(inputs=((1, 3),)))  # evicts ((1,1))
        assert rtm.lookup(0, {1: 1}) is None
        assert rtm.lookup(0, {1: 3}) is not None
        assert rtm.trace_evictions == 1

    def test_lru_refresh_on_hit(self):
        rtm = self.small()
        rtm.insert(entry(inputs=((1, 1),)))
        rtm.insert(entry(inputs=((1, 2),)))
        rtm.lookup(0, {1: 1})  # refresh the older one
        rtm.insert(entry(inputs=((1, 3),)))  # should evict ((1,2))
        assert rtm.lookup(0, {1: 1}) is not None
        assert rtm.lookup(0, {1: 2}) is None

    def test_way_eviction_drops_whole_pc(self):
        rtm = self.small()  # 2 ways, 2 sets: pcs 0,2,4 share set 0
        rtm.insert(entry(pc=0))
        rtm.insert(entry(pc=2, inputs=((1, 5),)))
        rtm.insert(entry(pc=4, inputs=((1, 5),)))  # evicts pc 0 bucket
        assert rtm.lookup(0, {1: 5}) is None
        assert rtm.pc_evictions == 1

    def test_set_indexing_by_pc_low_bits(self):
        rtm = self.small()
        rtm.insert(entry(pc=0))
        rtm.insert(entry(pc=1, inputs=((1, 5),)))
        # different sets: no interference
        assert rtm.lookup(0, {1: 5}) is not None
        assert rtm.lookup(1, {1: 5}) is not None

    def test_hit_rate(self):
        rtm = self.small()
        rtm.insert(entry())
        rtm.lookup(0, {1: 5})
        rtm.lookup(0, {1: 0})
        assert rtm.hit_rate() == pytest.approx(0.5)

    def test_capacity_never_exceeded(self):
        config = RTMConfig("t", num_sets=2, ways=2, traces_per_pc=2)
        rtm = ReuseTraceMemory(config)
        for pc in range(10):
            for v in range(5):
                rtm.insert(entry(pc=pc, inputs=((1, v),)))
        assert rtm.occupancy <= config.total_entries
