"""Deterministic RNG: stability, ranges and distribution sanity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import MASK64, DeterministicRNG, mix64


class TestMix64:
    def test_deterministic(self):
        assert mix64(42) == mix64(42)

    def test_avalanche(self):
        # flipping one input bit changes roughly half of the output bits
        a, b = mix64(1234), mix64(1234 ^ 1)
        flipped = bin(a ^ b).count("1")
        assert 10 < flipped < 54

    def test_stays_in_64_bits(self):
        assert 0 <= mix64(2**200) <= MASK64

    @given(st.integers(min_value=0, max_value=MASK64))
    def test_range_property(self, x):
        assert 0 <= mix64(x) <= MASK64


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(7)
        b = DeterministicRNG(7)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = DeterministicRNG(7)
        b = DeterministicRNG(8)
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]

    @given(st.integers(0, 2**32), st.integers(-100, 100), st.integers(0, 200))
    def test_randint_in_range(self, seed, lo, span):
        rng = DeterministicRNG(seed)
        hi = lo + span
        for _ in range(10):
            assert lo <= rng.randint(lo, hi) <= hi

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            DeterministicRNG(1).randint(5, 4)

    def test_random_unit_interval(self):
        rng = DeterministicRNG(3)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_random_covers_interval(self):
        rng = DeterministicRNG(5)
        values = [rng.random() for _ in range(500)]
        assert min(values) < 0.1 and max(values) > 0.9

    def test_choice(self):
        rng = DeterministicRNG(11)
        seq = ["a", "b", "c"]
        for _ in range(20):
            assert rng.choice(seq) in seq

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRNG(1).choice([])

    @given(st.integers(0, 2**32), st.integers(0, 30))
    def test_shuffle_is_permutation(self, seed, n):
        rng = DeterministicRNG(seed)
        items = list(range(n))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_ints_length_and_range(self):
        vals = DeterministicRNG(9).ints(50, 3, 7)
        assert len(vals) == 50
        assert all(3 <= v <= 7 for v in vals)

    def test_floats_length_and_range(self):
        vals = DeterministicRNG(9).floats(50, -1.0, 1.0)
        assert len(vals) == 50
        assert all(-1.0 <= v < 1.0 for v in vals)
