"""Trace-collection heuristics on crafted streams."""

import pytest

from repro.baselines.ilr import InstructionReuseBuffer
from repro.core.rtm.collector import (
    FixedLengthHeuristic,
    ILRHeuristic,
    TraceCollector,
)
from repro.core.rtm.memory import ReuseTraceMemory, RTMConfig
from repro.core.traces import TraceLimits
from repro.isa.opcodes import Opcode
from repro.isa.registers import loc_mem
from repro.vm.trace import DynInst


def make_inst(pc, reads=(), writes=(), next_pc=None):
    return DynInst(
        pc,
        Opcode.ADD,
        tuple(reads),
        tuple(writes),
        1,
        pc + 1 if next_pc is None else next_pc,
    )


def rtm(traces_per_pc=4):
    return ReuseTraceMemory(
        RTMConfig("t", num_sets=4, ways=4, traces_per_pc=traces_per_pc)
    )


def buffer():
    return InstructionReuseBuffer(total_entries=64, associativity=8)


class TestHeuristicNames:
    def test_ilr_names(self):
        assert ILRHeuristic(expand=False).name == "ILR NE"
        assert ILRHeuristic(expand=True).name == "ILR EXP"

    def test_fixed_names(self):
        assert FixedLengthHeuristic(4).name == "I4 EXP"
        assert FixedLengthHeuristic(4).expand is True

    def test_fixed_requires_positive(self):
        with pytest.raises(ValueError):
            FixedLengthHeuristic(0)


class TestILRCollection:
    def test_requires_buffer(self):
        with pytest.raises(ValueError):
            TraceCollector(ILRHeuristic(), rtm(), [])

    def test_collects_reusable_run(self):
        # stream: two identical passes over 3 instructions; the second
        # pass is ILR-reusable and should be collected as one trace
        stream = [make_inst(i, [(1, 0)], [(2, 1)]) for i in range(3)]
        stream = stream + [make_inst(i, [(1, 0)], [(2, 1)]) for i in range(3)]
        memory = rtm()
        collector = TraceCollector(ILRHeuristic(), memory, stream, ilr_buffer=buffer())
        for i, inst in enumerate(stream):
            collector.on_fetch(i, inst)
        collector.flush(len(stream))
        entries = memory.stored_entries()
        assert len(entries) == 1
        assert entries[0].start_pc == 0
        assert entries[0].length == 3
        assert entries[0].next_pc == 3

    def test_trace_ends_at_non_reusable(self):
        # second pass, but instruction 1 reads a fresh value each time
        def passes(v):
            return [
                make_inst(0, [(1, 0)], []),
                make_inst(1, [(2, v)], []),
                make_inst(2, [(3, 0)], []),
            ]

        stream = passes(0) + passes(1) + passes(2)
        memory = rtm()
        collector = TraceCollector(ILRHeuristic(), memory, stream, ilr_buffer=buffer())
        for i, inst in enumerate(stream):
            collector.on_fetch(i, inst)
        collector.flush(len(stream))
        # pc1 is never reusable, so no stored trace may include it: its
        # read location (2) must not appear in any entry's live-ins
        entries = memory.stored_entries()
        assert entries
        for e in entries:
            assert 2 not in dict(e.inputs)
            assert e.length <= 2  # runs are broken at every pc1

    def test_io_limit_terminates_trace(self):
        # each instruction reads a distinct memory word; the 4-mem-input
        # limit forces trace termination
        def one_pass():
            return [
                make_inst(i, [(loc_mem(i), 7)], [(1, i)]) for i in range(10)
            ]

        stream = one_pass() + one_pass()
        memory = rtm(traces_per_pc=16)
        collector = TraceCollector(
            ILRHeuristic(), memory, stream, ilr_buffer=buffer(),
            limits=TraceLimits(max_mem_inputs=4),
        )
        for i, inst in enumerate(stream):
            collector.on_fetch(i, inst)
        collector.flush(len(stream))
        assert collector.limit_terminations >= 1
        for e in memory.stored_entries():
            assert e.mem_input_count <= 4

    def test_inputs_record_live_ins_only(self):
        # write then read of the same location: not a live-in
        def one_pass():
            return [
                make_inst(0, [(1, 5)], [(2, 8)]),
                make_inst(1, [(2, 8)], [(3, 9)]),
            ]

        stream = one_pass() + one_pass()
        memory = rtm()
        collector = TraceCollector(ILRHeuristic(), memory, stream, ilr_buffer=buffer())
        for i, inst in enumerate(stream):
            collector.on_fetch(i, inst)
        collector.flush(len(stream))
        (entry,) = memory.stored_entries()
        assert dict(entry.inputs) == {1: 5}
        assert dict(entry.outputs) == {2: 8, 3: 9}


class TestFixedCollection:
    def test_fixed_length_traces(self):
        stream = [make_inst(i % 4, [(1, 0)], []) for i in range(12)]
        memory = rtm(traces_per_pc=16)
        collector = TraceCollector(FixedLengthHeuristic(4), memory, stream)
        for i, inst in enumerate(stream):
            collector.on_fetch(i, inst)
        collector.flush(len(stream))
        entries = memory.stored_entries()
        assert entries and all(e.length == 4 for e in entries)

    def test_partial_tail_discarded(self):
        stream = [make_inst(i, [(1, 0)], []) for i in range(5)]
        memory = rtm(traces_per_pc=16)
        collector = TraceCollector(FixedLengthHeuristic(4), memory, stream)
        for i, inst in enumerate(stream):
            collector.on_fetch(i, inst)
        collector.flush(len(stream))
        assert all(e.length == 4 for e in memory.stored_entries())
        assert collector.discarded_fragments == 1

    def test_fixed_collects_any_instructions(self):
        # unlike ILR heuristics, I(n) needs no reusability
        stream = [make_inst(0, [(1, i)], []) for i in range(4)]
        memory = rtm(traces_per_pc=16)
        collector = TraceCollector(FixedLengthHeuristic(2), memory, stream)
        for i, inst in enumerate(stream):
            collector.on_fetch(i, inst)
        collector.flush(len(stream))
        assert len(memory.stored_entries()) == 2


class TestExpansion:
    def test_on_reuse_without_expansion_resets(self):
        stream = [make_inst(i, [(1, 0)], []) for i in range(6)]
        memory = rtm()
        collector = TraceCollector(
            ILRHeuristic(expand=False), memory, stream, ilr_buffer=buffer()
        )
        entry_stub = memory  # not used; craft a real entry below
        from repro.core.rtm.entry import RTMEntry

        entry = RTMEntry(start_pc=0, length=2, inputs=(), outputs=(), next_pc=2)
        collector.on_reuse(0, entry)
        # no expansion pending: fetching reusable instructions later
        # starts a fresh trace, not an extension
        assert collector._base is None

    def test_expansion_extends_reused_trace(self):
        # pass 1 trains the buffer; a reuse event at pass 2 start with
        # reusable instructions following should store a longer trace
        def one_pass():
            return [make_inst(i, [(1, 0)], []) for i in range(4)]

        stream = one_pass() + one_pass()
        memory = rtm(traces_per_pc=16)
        collector = TraceCollector(
            ILRHeuristic(expand=True), memory, stream, ilr_buffer=buffer()
        )
        # train pass 1
        for i in range(4):
            collector.on_fetch(i, stream[i])
        from repro.core.rtm.entry import RTMEntry

        reused = RTMEntry(start_pc=0, length=2, inputs=((1, 0),), outputs=(), next_pc=2)
        collector.on_reuse(4, reused)  # reuse covers indices 4..6
        collector.on_fetch(6, stream[6])
        collector.on_fetch(7, stream[7])
        collector.flush(8)
        lengths = [e.length for e in memory.stored_entries()]
        assert 4 in lengths  # merged trace: reused 2 + extension 2

    def test_consecutive_reuses_merge(self):
        stream = [make_inst(i, [(1, 0)], []) for i in range(8)]
        memory = rtm(traces_per_pc=16)
        collector = TraceCollector(
            ILRHeuristic(expand=True), memory, stream, ilr_buffer=buffer()
        )
        from repro.core.rtm.entry import RTMEntry

        e1 = RTMEntry(start_pc=0, length=2, inputs=((1, 0),), outputs=(), next_pc=2)
        e2 = RTMEntry(start_pc=2, length=2, inputs=((1, 0),), outputs=(), next_pc=4)
        collector.on_reuse(0, e1)
        collector.on_reuse(2, e2)
        collector.on_fetch(4, stream[4])  # non-extension fetch closes nothing yet
        collector.flush(8)
        lengths = [e.length for e in memory.stored_entries()]
        assert any(length >= 4 for length in lengths)

    def test_fixed_expansion_grows_by_n(self):
        stream = [make_inst(i, [(1, 0)], []) for i in range(8)]
        memory = rtm(traces_per_pc=16)
        collector = TraceCollector(FixedLengthHeuristic(2), memory, stream)
        from repro.core.rtm.entry import RTMEntry

        reused = RTMEntry(start_pc=0, length=2, inputs=(), outputs=(), next_pc=2)
        collector.on_reuse(0, reused)
        collector.on_fetch(2, stream[2])
        collector.on_fetch(3, stream[3])
        collector.flush(8)
        lengths = [e.length for e in memory.stored_entries()]
        assert 4 in lengths  # reused 2 + n=2 expansion
